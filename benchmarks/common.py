"""Shared configuration for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  Runtime is
controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``quick`` (default) — reduced repetition counts; each bench finishes in
  seconds to a few minutes and already shows the paper's qualitative shape;
* ``full`` — paper-scale repetition counts for the statistics benches.

Benches print their tables/series to stdout (run pytest with ``-s`` to see
them live; EXPERIMENTS.md quotes representative output) and also append them
to ``benchmarks/out/<bench>.txt`` so results survive the pytest capture.
"""

from __future__ import annotations

import os
import sys
import warnings
from datetime import datetime, timezone
from pathlib import Path

#: Chip used throughout the evaluation (Sec. VII-B simulates the fabricated
#: 30x60-MC device; we orient it 60 wide x 30 tall as in Fig. 8's coordinate
#: convention).
CHIP_WIDTH = 60
CHIP_HEIGHT = 30

VALID_SCALES = ("quick", "full")


def _resolve_scale() -> str:
    """Validate ``REPRO_BENCH_SCALE``; typos must not silently mean quick."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if raw not in VALID_SCALES:
        message = (
            f"REPRO_BENCH_SCALE={raw!r} is not one of {VALID_SCALES}; "
            f"falling back to 'quick'"
        )
        warnings.warn(message, stacklevel=2)
        print(f"WARNING: {message}", file=sys.stderr)
        return "quick"
    return raw


SCALE = _resolve_scale()

OUT_DIR = Path(__file__).resolve().parent / "out"


def scaled(quick: int, full: int) -> int:
    """Pick a repetition count for the current scale."""
    return full if SCALE == "full" else quick


def emit(bench_name: str, text: str) -> None:
    """Print a result block and append it under ``benchmarks/out/``.

    Each run adds a timestamped header so successive runs accumulate in
    ``benchmarks/out/<bench>.txt`` instead of overwriting each other.
    """
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{bench_name}.txt"
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    header = f"=== {bench_name} · {stamp} · scale={SCALE} ==="
    with path.open("a") as fh:
        fh.write(f"{header}\n{text}\n\n")
