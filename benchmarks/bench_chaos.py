"""Chaos bench: whole-bioassay survival under deterministic fault injection.

Executes consecutive runs of the master-mix and cep evaluation bioassays
on a fast-degrading 60x30 chip (the ``--runs N`` CLI shape: chip wear,
engine, and strategy store persist across runs), once fault-free and
serially (the reference sequence), then once per chaos scenario with a
pooled synthesis engine under injection:

* **worker-kills** — workers die mid-payload (``BrokenProcessPool``);
* **payload-errors** — workers raise deterministically;
* **hung-workers** — workers stall past the engine deadline and are reaped;
* **store-corruption** — every strategy-store row is garbled on write
  (later runs read the garbled rows back);
* **mixed** — all of the above at lower rates.

Two hard gates (always enforced, they are the PR's contract):

1. **completion probability 1.0** — every chaos run finishes without an
   unhandled exception and reaches the same terminal state as the serial
   reference;
2. **routing identity** — cycles, resyntheses, and the execution-trace
   digest of every chaos run are bit-identical to the serial reference
   (speculation and its failures change latency only, never routing).

A third hard gate guards the bench itself: at least one fault must
actually have been injected, otherwise the sweep exercised nothing.

One soft gate (``--enforce`` makes it fail): chaos-run wall time stays
under ``OVERHEAD_LIMIT``x the serial reference — fault recovery must not
be quadratically expensive.

The injector seed comes from ``REPRO_CHAOS_SEED`` (default 0) so a CI
matrix can sweep seeds.  Results land in ``BENCH_chaos.json`` at the repo
root; the run journal (engine fault/rebuild/degrade events included) is
written to ``benchmarks/out/bench_chaos.journal.jsonl`` for artifact
upload.  Honours ``REPRO_BENCH_SCALE=quick|full``.

Run with ``PYTHONPATH=src python benchmarks/bench_chaos.py``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import CHIP_HEIGHT, CHIP_WIDTH, OUT_DIR, SCALE, emit, scaled  # noqa: E402

from repro import obs  # noqa: E402
from repro.bioassay.library import EVALUATION_BIOASSAYS  # noqa: E402
from repro.bioassay.planner import plan  # noqa: E402
from repro.biochip.chip import MedaChip  # noqa: E402
from repro.biochip.simulator import MedaSimulator  # noqa: E402
from repro.biochip.trace import ExecutionTrace  # noqa: E402
from repro.core.baseline import AdaptiveRouter  # noqa: E402
from repro.core.scheduler import HybridScheduler  # noqa: E402
from repro.engine import StrategyStore, SynthesisEngine  # noqa: E402
from repro.engine import chaos  # noqa: E402
from repro.engine.faults import RetryPolicy  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_chaos.json"
JOURNAL_PATH = OUT_DIR / "bench_chaos.journal.jsonl"

BIOASSAYS = ("master-mix", "cep")
CHIP_SEED = 11
MAX_CYCLES = 1200
OVERHEAD_LIMIT = 6.0

#: name -> (chaos kwargs, engine deadline_ms).  Probabilities are moderate
#: on purpose: the engine must survive repeated faults, not a single one.
SCENARIOS: dict[str, tuple[dict, float | None]] = {
    "worker-kills": ({"kill_p": 0.3}, None),
    "payload-errors": ({"raise_p": 0.5}, None),
    "hung-workers": ({"delay_p": 0.6, "delay_ms": 1500.0}, 250.0),
    "store-corruption": ({"store_p": 1.0}, None),
    "mixed": (
        {"kill_p": 0.15, "raise_p": 0.15, "delay_p": 0.25,
         "delay_ms": 1000.0, "store_p": 0.5},
        500.0,
    ),
}


def sample_chip() -> MedaChip:
    # The bench_parallel fast-degrading recipe: health keeps moving, so
    # later runs resynthesize and re-query the store.
    return MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(CHIP_SEED),
        tau_range=(0.75, 0.90), c_range=(300.0, 800.0),
    )


def trace_digest(trace: ExecutionTrace) -> str:
    """A stable digest of the routed frames (position-exact identity)."""
    hasher = hashlib.sha256()
    for frame in trace.frames:
        hasher.update(
            repr((frame.cycle, frame.droplets, frame.moving)).encode()
        )
    return hasher.hexdigest()[:16]


def execute_sequence(graphs, runs_per_assay: int,
                     engine: SynthesisEngine | None) -> list[dict]:
    """The reference workload: consecutive runs per bioassay, one chip and
    one engine/store per bioassay sequence (chip wear carries over)."""
    outcomes = []
    for name, graph in graphs.items():
        chip = sample_chip()
        for run in range(runs_per_assay):
            router = AdaptiveRouter(engine=engine)
            scheduler = HybridScheduler(graph, router, CHIP_WIDTH, CHIP_HEIGHT)
            trace = ExecutionTrace()
            sim = MedaSimulator(
                chip, np.random.default_rng(CHIP_SEED + 1 + run), trace=trace
            )
            t0 = time.perf_counter()
            if engine is not None and engine.pooled:
                scheduler.presynthesize(chip.health())
            result = sim.run(scheduler, max_cycles=MAX_CYCLES)
            outcomes.append({
                "bioassay": name,
                "run": run + 1,
                "success": bool(result.success),
                "cycles": int(result.cycles),
                "resyntheses": int(result.resyntheses),
                "wall_s": round(time.perf_counter() - t0, 4),
                "digest": trace_digest(trace),
            })
    return outcomes


def run_scenario(graphs, name: str, runs_per_assay: int, seed: int,
                 workers: int, store_dir: Path) -> dict:
    chaos_kwargs, deadline_ms = SCENARIOS[name]
    config = chaos.ChaosConfig(seed=seed, **chaos_kwargs)
    policy = RetryPolicy(
        retries=2, rebuild_budget=2, backoff_base_s=0.02,
        deadline_ms=deadline_ms,
    )
    store = None
    if config.store_p:
        store = StrategyStore(store_dir / f"{name}.sqlite")
    engine = SynthesisEngine(workers=workers, policy=policy, store=store)
    obs.journal_event("bench.scenario", name=name, spec=config.to_spec())
    chaos.activate(config)
    try:
        outcomes = execute_sequence(graphs, runs_per_assay, engine)
        crashed = None
    except Exception as exc:  # a crash is exactly what the gate must catch
        outcomes = []
        crashed = repr(exc)
    finally:
        chaos.deactivate()
        engine._kill_worker_processes()  # reap chaos-delayed sleepers
        engine.close()
    return {
        "spec": config.to_spec(),
        "deadline_ms": deadline_ms,
        "crashed": crashed,
        "degraded": engine.degraded,
        "runs": outcomes,
        "engine": engine.counters(),
    }


def run_bench(seed: int, workers: int) -> dict:
    runs_per_assay = scaled(3, 6)
    graphs = {
        name: plan(EVALUATION_BIOASSAYS[name](), CHIP_WIDTH, CHIP_HEIGHT)
        for name in BIOASSAYS
    }

    serial = execute_sequence(graphs, runs_per_assay, engine=None)

    scenarios: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-chaos-") as tmp:
        for name in SCENARIOS:
            scenarios[name] = run_scenario(
                graphs, name, runs_per_assay, seed, workers, Path(tmp)
            )

    attempted = completed = 0
    mismatches = []
    injected = 0
    for name, scenario in scenarios.items():
        engine = scenario["engine"]
        injected += engine.get("errors", 0) + engine.get("deadline_reaps", 0)
        injected += engine.get("store_corrupt", 0)
        attempted += len(serial)
        if scenario["crashed"] is not None:
            mismatches.append(f"{name}: crashed: {scenario['crashed']}")
            continue
        completed += len(scenario["runs"])
        for reference, outcome in zip(serial, scenario["runs"]):
            for field in ("success", "cycles", "resyntheses", "digest"):
                if outcome[field] != reference[field]:
                    mismatches.append(
                        f"{name}/{reference['bioassay']}#{reference['run']}: "
                        f"{field} {outcome[field]!r} != serial "
                        f"{reference[field]!r}"
                    )

    serial_wall = sum(run["wall_s"] for run in serial)
    overhead = max(
        (sum(r["wall_s"] for r in scenario["runs"]) / serial_wall
         if scenario["runs"] else float("inf"))
        for scenario in scenarios.values()
    )
    return {
        "bench": "chaos",
        "bioassays": list(BIOASSAYS),
        "chip": {"width": CHIP_WIDTH, "height": CHIP_HEIGHT},
        "max_cycles": MAX_CYCLES,
        "scale": SCALE,
        "chaos_seed": seed,
        "workers": workers,
        "runs_per_assay": runs_per_assay,
        "serial": serial,
        "scenarios": scenarios,
        "completion_probability": completed / attempted if attempted else 0.0,
        "injected_faults": injected,
        "determinism_ok": not mismatches,
        "mismatches": mismatches,
        "worst_overhead_x": round(overhead, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seed", type=int,
        default=int(os.environ.get(chaos.ENV_SEED, "0")),
        help="chaos injector seed (default: REPRO_CHAOS_SEED or 0)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="pool size for the chaos runs (default 2: a pool even on a "
             "single-core runner)",
    )
    parser.add_argument(
        "--enforce", action="store_true",
        help="also fail (exit 1) when the soft overhead gate is missed",
    )
    args = parser.parse_args(argv)

    OUT_DIR.mkdir(exist_ok=True)
    obs.configure(journal=JOURNAL_PATH)
    try:
        report = run_bench(args.seed, args.workers)
    finally:
        obs.shutdown()
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"chaos survival, {'+'.join(report['bioassays'])} on "
        f"{CHIP_WIDTH}x{CHIP_HEIGHT}, {report['runs_per_assay']} runs each, "
        f"chaos seed {report['chaos_seed']}, {report['workers']} workers "
        f"(scale={report['scale']})",
    ]
    for name, scenario in report["scenarios"].items():
        engine = scenario["engine"]
        lines.append(
            f"  {name:16s} completed {len(scenario['runs'])}"
            f"/{len(report['serial'])}"
            f"  faults={engine.get('errors', 0)}"
            f" rebuilds={engine.get('rebuilds', 0)}"
            f" reaps={engine.get('deadline_reaps', 0)}"
            f" store_corrupt={engine.get('store_corrupt', 0)}"
            f" degraded={'yes' if scenario['degraded'] else 'no'}"
        )
    lines += [
        f"  completion probability: {report['completion_probability']:.2f} "
        f"(gate: 1.00)",
        f"  routing identity:       "
        f"{'ok' if report['determinism_ok'] else 'VIOLATED'}",
        f"  injected faults:        {report['injected_faults']}",
        f"  worst overhead:         {report['worst_overhead_x']:.2f}x "
        f"(soft gate {OVERHEAD_LIMIT:.1f}x)",
        f"  wrote {JSON_PATH}",
        f"  journal {JOURNAL_PATH}",
    ]
    emit("bench_chaos", "\n".join(lines))

    hard_failures = []
    if report["completion_probability"] != 1.0:
        hard_failures.append(
            f"completion probability "
            f"{report['completion_probability']:.2f} != 1.0"
        )
    if not report["determinism_ok"]:
        hard_failures.extend(report["mismatches"])
    if report["injected_faults"] == 0:
        hard_failures.append(
            "no faults were injected — the bench exercised nothing"
        )
    for message in hard_failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if hard_failures:
        return 1

    if report["worst_overhead_x"] > OVERHEAD_LIMIT:
        message = (
            f"chaos overhead {report['worst_overhead_x']:.2f}x > "
            f"{OVERHEAD_LIMIT:.1f}x serial"
        )
        print(f"{'FAIL' if args.enforce else 'WARN'}: {message}",
              file=sys.stderr)
        if args.enforce:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
