"""Ablation — the full SMG vs the frozen-health MDP reduction.

Sec. VI-C freezes the health matrix within a routing job, arguing the
change during one job is insignificant.  This bench quantifies the claim on
a small instance: it compares the MDP's success probability against the
game value when the degradation player may degrade a bottleneck column
(adversarially or not), for increasing degradation budgets.

Expected shape: the cooperative game matches the frozen-H MDP; adversarial
values decrease monotonically with the degradation budget — the gap *is*
the modelling error of the partial-order reduction, small for small
budgets.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.routing_job import RoutingJob
from repro.core.smg import build_meda_smg
from repro.core.synthesis import synthesize
from repro.geometry.rect import Rect
from repro.modelcheck.games import game_reach_avoid_probability
from repro.modelcheck.properties import probability_query

from benchmarks.common import emit


def _job() -> RoutingJob:
    return RoutingJob(Rect(2, 2, 3, 3), Rect(7, 2, 8, 3), Rect(1, 1, 9, 5))


def test_ablation_game_vs_mdp(benchmark):
    health = np.full((10, 6), 3)
    job = _job()
    bottleneck = [(5, 2), (5, 3)]  # mid-corridor column player 2 may degrade

    mdp_result = synthesize(job, health, query=probability_query())
    assert mdp_result.success_probability is not None

    rows = [["frozen-H MDP", "-", f"{mdp_result.success_probability:.4f}"]]
    values = []
    for budget in (0, 1, 2, 4):
        game = build_meda_smg(
            job, health, degradable_cells=bottleneck, max_degradations=budget
        )
        adv = game_reach_avoid_probability(game, adversarial=True)
        coop = game_reach_avoid_probability(game, adversarial=False)
        v_adv = float(adv.values[game.initial])
        v_coop = float(coop.values[game.initial])
        values.append((budget, v_adv, v_coop))
        rows.append([
            f"SMG budget={budget}", f"{v_adv:.4f}", f"{v_coop:.4f}",
        ])
    emit(
        "ablation_game",
        format_table(
            ["model", "adversarial Pmax", "cooperative Pmax"],
            rows,
            title="Ablation — SMG game values vs the frozen-H MDP reduction",
        ),
    )

    # Budget 0 game == frozen-H MDP (the partial-order-reduction identity).
    np.testing.assert_allclose(
        values[0][1], mdp_result.success_probability, atol=1e-6
    )
    # Adversarial values weakly decrease with the degradation budget.
    adv_series = [v for _, v, _ in values]
    assert all(a >= b - 1e-9 for a, b in zip(adv_series, adv_series[1:]))
    # A cooperative degradation player cannot help the droplet.
    for _, v_adv, v_coop in values:
        assert v_adv <= v_coop + 1e-9
        assert v_coop <= mdp_result.success_probability + 1e-6

    benchmark(
        lambda: build_meda_smg(
            job, health, degradable_cells=bottleneck, max_degradations=1
        )
    )
