"""Ablation — health-to-force estimators and sensor resolution.

The controller reconstructs per-MC forces from the quantized health code.
This bench compares, on a half-degraded chip:

* the mid-bucket estimator (library default) vs the pessimistic bucket
  floor, against an oracle that sees the true degradation;
* 2-bit vs 3-bit health sensing (the paper's model is valid for any b;
  Sec. IV-B) — more bits mean a sharper force estimate and routes closer
  to the oracle's.

Reported: planned expected cycles and *realized* mean cycles over simulated
roll-outs with the true hidden forces.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.actions import ACTIONS
from repro.core.routing_job import RoutingJob
from repro.core.synthesis import (
    force_field_from_degradation,
    synthesize,
    synthesize_with_field,
)
from repro.core.transitions import MatrixForceField, sample_outcome
from repro.degradation.model import quantize_health
from repro.geometry.rect import Rect

from benchmarks.common import emit, scaled

W, H = 40, 24


def _degraded_chip(rng: np.random.Generator) -> np.ndarray:
    """True degradation: healthy north half, badly worn south corridor."""
    d = rng.uniform(0.75, 1.0, size=(W, H))
    d[10:30, 2:10] = rng.uniform(0.15, 0.45, size=(20, 8))
    return d


def _job() -> RoutingJob:
    return RoutingJob(Rect(2, 4, 5, 7), Rect(34, 4, 37, 7), Rect(1, 1, 40, 22))


def _rollout(strategy, job, degradation, rng, cap=600) -> int:
    field = MatrixForceField(degradation**2)
    delta = job.start
    for k in range(cap):
        if job.goal.contains(delta):
            return k
        action = strategy.action(delta)
        if action is None:
            return cap
        delta = sample_outcome(delta, ACTIONS[action], field, rng).delta
    return cap


def test_ablation_health_estimators(benchmark):
    rng = np.random.default_rng(0)
    degradation = _degraded_chip(rng)
    job = _job()
    rollouts = scaled(40, 200)

    variants = []
    for bits in (2, 3):
        health = np.asarray(quantize_health(degradation, bits=bits))
        variants.append((
            f"mid-bucket b={bits}",
            synthesize(job, health, bits=bits),
        ))
        variants.append((
            f"pessimistic b={bits}",
            synthesize(job, health, bits=bits, pessimistic=True),
        ))
    variants.append((
        "oracle (true D)",
        synthesize_with_field(job, force_field_from_degradation(degradation)),
    ))

    rows = []
    realized = {}
    for label, result in variants:
        assert result.exists, label
        roll_rng = np.random.default_rng(99)
        cycles = [
            _rollout(result.strategy, job, degradation, roll_rng)
            for _ in range(rollouts)
        ]
        realized[label] = float(np.mean(cycles))
        rows.append([
            label,
            f"{result.expected_cycles:.1f}",
            f"{realized[label]:.1f}",
        ])
    emit(
        "ablation_estimator",
        format_table(
            ["estimator", "planned E[cycles]", "realized mean cycles"],
            rows,
            title="Ablation — health estimators vs the true-degradation oracle",
        ),
    )

    # The oracle lower-bounds realized performance (within sampling noise).
    floor = realized["oracle (true D)"]
    for label, value in realized.items():
        assert value >= floor - 3.0, label
    # Sharper sensing helps: 3-bit mid-bucket is at least as good as 2-bit.
    assert realized["mid-bucket b=3"] <= realized["mid-bucket b=2"] + 3.0

    health2 = np.asarray(quantize_health(degradation, bits=2))
    benchmark(lambda: synthesize(job, health2))
