"""Fig. 2 — sensing waveforms of the proposed microelectrode cell.

The paper's HSPICE simulation shows the three Table-I capacitance classes
(healthy 2.375 fF / partially degraded 2.380 fF / completely degraded
2.385 fF) resolved by two DFF clock edges 5 ns apart, yielding the health
codes 11 / 01 / 00.  This bench reproduces the crossing-time separation and
the codes from the analytic RC model, and benchmarks one sensing operation.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.circuits.mc_cell import (
    C_DEGRADED,
    C_HEALTHY,
    C_PARTIAL,
    DFF_CLOCK_SKEW_S,
    HealthSenseConfig,
)

from benchmarks.common import emit


def test_fig2_sensing_codes(benchmark):
    cfg = HealthSenseConfig.calibrated()
    classes = [
        ("healthy", C_HEALTHY),
        ("partially degraded", C_PARTIAL),
        ("completely degraded", C_DEGRADED),
    ]
    rows = []
    for label, capacitance in classes:
        t_cross = cfg.crossing_time(capacitance)
        original, added = cfg.sample_bits(capacitance)
        rows.append([
            label,
            f"{capacitance * 1e15:.3f}",
            f"{t_cross * 1e9:.3f}",
            f"{cfg.t_clk * 1e9:.3f}",
            f"{(cfg.t_clk + cfg.clock_skew) * 1e9:.3f}",
            f"{original}{added}",
        ])
    emit(
        "fig02_sensing",
        format_table(
            ["class", "C (fF)", "t_cross (ns)", "clk1 (ns)", "clk2 (ns)", "code"],
            rows,
            title="Fig. 2 — proposed MC sensing (two DFF edges, 5 ns skew)",
        ),
    )

    # Paper shape: codes 11 / 01 / 00 and one clock skew between classes.
    codes = [r[-1] for r in rows]
    assert codes == ["11", "01", "00"]
    t = [cfg.crossing_time(c) for _, c in classes]
    assert abs((t[1] - t[0]) - DFF_CLOCK_SKEW_S) < 1e-12
    assert abs((t[2] - t[1]) - DFF_CLOCK_SKEW_S) < 1e-12

    benchmark(cfg.sample_bits, C_PARTIAL)
