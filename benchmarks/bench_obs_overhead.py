"""Disabled-mode telemetry overhead smoke: fails if the budget is blown.

The :mod:`repro.obs` instrumentation promises a near-zero no-op fast path:
with no tracer/journal configured, every span site costs one function call
returning a shared null object and every journal site costs one ``None``
check.  This bench verifies the promise two ways:

1. **Primitive microbench** — measures the per-call cost of the disabled
   ``obs.span`` / ``obs.begin_span`` / ``obs.journal_event`` entry points,
   multiplies by a (generous) per-synthesis call count, and compares the
   total against the recorded per-RJ latency in ``BENCH_synthesis.json``.
   This is the *gating* check: it is deterministic enough for CI, unlike
   an end-to-end A/B on shared runners.
2. **End-to-end A/B** (informational) — synthesizes a real routing job
   repeatedly with tracing disabled vs enabled and prints both means.
3. **Snapshot path** (gating) — measures one :class:`TelemetryPump` tick
   (registry export + delta + snapshot + /proc sampling) and one
   OpenMetrics render against a representative registry, and requires a
   tick to cost under ``SNAPSHOT_BUDGET_PCT`` of the default 1 s pump
   interval — streaming telemetry must never become a second workload.

Exits nonzero when the primitive-derived overhead exceeds
``OVERHEAD_BUDGET_PCT`` of the recorded post-optimization mean per-RJ
latency, or when the snapshot path blows its own budget.  Results land in
``BENCH_obs_overhead.json`` at the repo root.

Run with ``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import SCALE, emit, scaled  # noqa: E402

from repro import obs, perf  # noqa: E402
from repro.core.routing_job import RoutingJob  # noqa: E402
from repro.core.synthesis import synthesize  # noqa: E402
from repro.geometry.rect import Rect  # noqa: E402
from repro.obs.journal import RunJournal  # noqa: E402
from repro.obs.metrics import MetricsRegistry, state_delta  # noqa: E402
from repro.obs.openmetrics import render_openmetrics  # noqa: E402
from repro.obs.pump import DEFAULT_INTERVAL_S, TelemetryPump  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_obs_overhead.json"
BASELINE_PATH = REPO_ROOT / "BENCH_synthesis.json"

#: Maximum tolerated disabled-mode overhead, percent of mean per-RJ latency.
OVERHEAD_BUDGET_PCT = 2.0

#: Upper bound on telemetry entry-point calls a single synthesize triggers
#: through router + synthesis + scheduler instrumentation.  Counted from the
#: code: 1 rj.plan span + 2 synthesis spans + ~3 journal events + a handful
#: of route.step/span-set sites; 16 is a 2x safety margin.
CALLS_PER_SYNTHESIS = 16

#: Maximum tolerated pump-tick cost, percent of the default 1 s interval.
SNAPSHOT_BUDGET_PCT = 2.0


def time_per_call_ns(fn, iterations: int) -> float:
    t0 = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - t0) / iterations * 1e9


def primitive_costs(iterations: int) -> dict[str, float]:
    """Per-call cost (ns) of each disabled-mode telemetry entry point."""
    assert not obs.enabled() and obs.journal() is None

    def span_site() -> None:
        with obs.span("bench.site", cycle=1):
            pass

    def begin_end_site() -> None:
        obs.end_span(obs.begin_span("bench.async", mo="x"))

    def journal_site() -> None:
        obs.journal_event("bench.event", cycle=1, droplet=0)

    return {
        "span_ns": time_per_call_ns(span_site, iterations),
        "begin_end_ns": time_per_call_ns(begin_end_site, iterations),
        "journal_event_ns": time_per_call_ns(journal_site, iterations),
    }


def end_to_end_ms(samples: int, tracing: bool) -> float:
    """Mean per-synthesize wall ms on a mid-size job, A/B on tracing."""
    job = RoutingJob(Rect(2, 2, 4, 4), Rect(24, 12, 26, 14),
                     Rect(1, 1, 30, 16))
    health = np.full((30, 16), 3)
    if tracing:
        obs.configure(tracing=True)
    times = []
    for _ in range(samples):
        t0 = time.perf_counter()
        result = synthesize(job, health)
        times.append(time.perf_counter() - t0)
        assert result.exists
    obs.shutdown()
    return float(np.mean(times) * 1e3)


def representative_registry() -> MetricsRegistry:
    """A registry sized like a long pooled run's process-global state."""
    registry = MetricsRegistry()
    for i in range(40):
        registry.incr(f"engine.counter.{i}", i * 7 + 1)
    for i in range(8):
        registry.set_gauge(f"pool.gauge.{i}", float(i))
    rng = np.random.default_rng(0)
    for i in range(6):
        for value in rng.gamma(2.0, 8.0, size=200):
            registry.observe(f"latency.hist_{i}_ms", float(value))
    return registry


def snapshot_path_costs(iterations: int) -> dict[str, float]:
    """Per-call cost (ms) of each streaming-snapshot building block."""
    registry = representative_registry()
    baseline = registry.export_state()
    registry.incr("engine.counter.0")  # make the delta non-trivial
    pump = TelemetryPump(RunJournal(), registry=registry,
                         worker_pids=lambda: [])

    def per_call_ms(fn) -> float:
        t0 = time.perf_counter()
        for _ in range(iterations):
            fn()
        return (time.perf_counter() - t0) / iterations * 1e3

    return {
        "export_state_ms": per_call_ms(registry.export_state),
        "state_delta_ms": per_call_ms(
            lambda: state_delta(baseline, registry.export_state())
        ),
        "snapshot_ms": per_call_ms(registry.snapshot),
        "render_openmetrics_ms": per_call_ms(
            lambda: render_openmetrics(registry)
        ),
        "pump_tick_ms": per_call_ms(pump.tick),
    }


def main() -> int:
    obs.shutdown()
    perf.reset()

    iterations = scaled(200_000, 1_000_000)
    costs = primitive_costs(iterations)
    worst_ns = max(costs.values())
    overhead_ms = worst_ns * CALLS_PER_SYNTHESIS / 1e6

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        per_rj_ms = float(baseline["post"]["mean_ms"])
    else:
        print(f"WARNING: {BASELINE_PATH.name} missing; "
              f"run bench_synthesis.py first — using end-to-end mean",
              file=sys.stderr)
        per_rj_ms = end_to_end_ms(scaled(8, 32), tracing=False)
    overhead_pct = overhead_ms / per_rj_ms * 100.0

    samples = scaled(8, 32)
    disabled_ms = end_to_end_ms(samples, tracing=False)
    enabled_ms = end_to_end_ms(samples, tracing=True)

    snapshot_iterations = scaled(50, 400)
    snapshot_costs = snapshot_path_costs(snapshot_iterations)
    tick_pct = (
        snapshot_costs["pump_tick_ms"] / (DEFAULT_INTERVAL_S * 1e3) * 100.0
    )
    snapshot_ok = tick_pct <= SNAPSHOT_BUDGET_PCT

    ok = overhead_pct <= OVERHEAD_BUDGET_PCT
    lines = [
        f"disabled-mode primitive costs ({iterations} iterations):",
        *(f"  {name:18s} {value:8.1f} ns/call"
          for name, value in costs.items()),
        f"calls per synthesis (bound):  {CALLS_PER_SYNTHESIS}",
        f"derived overhead:             {overhead_ms * 1e3:.2f} us/RJ "
        f"({overhead_pct:.4f}% of {per_rj_ms:.1f} ms mean per-RJ latency)",
        f"budget:                       {OVERHEAD_BUDGET_PCT}%  ->  "
        f"{'PASS' if ok else 'FAIL'}",
        "",
        f"end-to-end A/B ({samples} samples, informational):",
        f"  tracing disabled  {disabled_ms:8.2f} ms/synthesize",
        f"  tracing enabled   {enabled_ms:8.2f} ms/synthesize",
        "",
        f"snapshot path ({snapshot_iterations} iterations, "
        f"40 counters / 8 gauges / 6 histograms):",
        *(f"  {name:22s} {value * 1e3:8.1f} us/call"
          for name, value in snapshot_costs.items()),
        f"pump tick vs {DEFAULT_INTERVAL_S:.0f}s interval: {tick_pct:.4f}% "
        f"(budget {SNAPSHOT_BUDGET_PCT}%)  ->  "
        f"{'PASS' if snapshot_ok else 'FAIL'}",
    ]
    emit("bench_obs_overhead", "\n".join(lines))

    JSON_PATH.write_text(json.dumps({
        "bench": "obs_overhead",
        "scale": SCALE,
        "primitives_ns": costs,
        "calls_per_synthesis": CALLS_PER_SYNTHESIS,
        "overhead_us_per_rj": overhead_ms * 1e3,
        "overhead_pct": overhead_pct,
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "per_rj_baseline_ms": per_rj_ms,
        "end_to_end_disabled_ms": disabled_ms,
        "end_to_end_enabled_ms": enabled_ms,
        "snapshot_path": {
            "costs_ms": snapshot_costs,
            "tick_pct_of_interval": tick_pct,
            "budget_pct": SNAPSHOT_BUDGET_PCT,
            "interval_s": DEFAULT_INTERVAL_S,
            "pass": snapshot_ok,
        },
        "pass": ok and snapshot_ok,
    }, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")

    if not ok:
        print(
            f"FAIL: disabled-mode telemetry overhead {overhead_pct:.3f}% "
            f"exceeds the {OVERHEAD_BUDGET_PCT}% budget",
            file=sys.stderr,
        )
    if not snapshot_ok:
        print(
            f"FAIL: pump tick costs {tick_pct:.3f}% of the "
            f"{DEFAULT_INTERVAL_S:.0f}s snapshot interval "
            f"(budget {SNAPSHOT_BUDGET_PCT}%)",
            file=sys.stderr,
        )
    return 0 if ok and snapshot_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
