"""Ablation — hybrid-scheduler resynthesis latency.

The hybrid scheme (Sec. VI-D) resynthesizes asynchronously: the old
strategy keeps driving the droplet while the new one is computed.  This
bench sweeps the modelled resynthesis latency on a fast-degrading chip and
reports execution cycles and the number of syntheses — the trade-off
between reactivity and synthesis load that motivates the hybrid design.

Expected shape: small latencies barely cost cycles but batch health changes
into far fewer syntheses than instant replanning; an effectively-infinite
latency (never replan after the first plan) degenerates toward baseline
behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.bioassay.library import serial_dilution
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.core.baseline import AdaptiveRouter
from repro.core.scheduler import HybridScheduler

from benchmarks.common import CHIP_HEIGHT, CHIP_WIDTH, emit, scaled

LATENCIES = (0, 4, 12, 10_000)


def _run_with_latency(latency: int, runs: int, seed: int):
    graph = plan(serial_dilution(), CHIP_WIDTH, CHIP_HEIGHT)
    chip = MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(seed),
        tau_range=(0.5, 0.7), c_range=(80.0, 160.0),
    )
    router = AdaptiveRouter()
    rng = np.random.default_rng(seed + 1)
    total_cycles = 0
    failures = 0
    resyntheses = 0
    for _ in range(runs):
        scheduler = HybridScheduler(
            graph, router, CHIP_WIDTH, CHIP_HEIGHT,
            resynthesis_latency=latency,
        )
        result = MedaSimulator(chip, rng).run(scheduler, 800)
        total_cycles += result.cycles
        failures += 0 if result.success else 1
        resyntheses += result.resyntheses
    return total_cycles, failures, resyntheses, router.syntheses


def test_ablation_resynthesis_latency(benchmark):
    runs = scaled(4, 8)
    rows = []
    stats = {}
    for latency in LATENCIES:
        cycles, failures, resyntheses, syntheses = _run_with_latency(
            latency, runs, seed=5
        )
        stats[latency] = (cycles, failures, resyntheses, syntheses)
        label = str(latency) if latency < 10_000 else "never"
        rows.append([label, cycles, failures, resyntheses, syntheses])
    emit(
        "ablation_scheduler",
        format_table(
            ["replan latency", "total cycles", "failed runs",
             "replans", "syntheses"],
            rows,
            title=(f"Ablation — resynthesis latency over {runs} serial-dilution "
                   "runs on a fast-degrading chip"),
        ),
    )

    # Batching health changes cuts syntheses without (much) cycle cost.
    instant = stats[0]
    batched = stats[4]
    assert batched[3] <= instant[3]
    assert batched[0] <= instant[0] * 1.25
    # Never replanning loses adaptivity: no resyntheses happen at all.
    assert stats[10_000][2] == 0

    benchmark.pedantic(
        lambda: _run_with_latency(4, 1, seed=11), rounds=1, iterations=1
    )
