"""Serving-core bench: k concurrent clients vs sequential one-at-a-time.

Drives a live :class:`repro.serve.service.ServeService` — real HTTP, real
queue, real worker threads — with a mixed workload of assay jobs (a few
unique (bioassay, seed) specs, each repeated), at client concurrencies
k in {1, 4, 8, 16}.  Per k the bench reports client-observed latency
percentiles (submit -> terminal state) and aggregate throughput, and
compares against the **sequential baseline**: the same workload run solo,
one job at a time, each with its own fresh engine (same worker budget)
and no shared store — i.e. what ``repro run`` in a loop would do.

Two hard gates (exit 1 unless ``--no-enforce``):

* **throughput** — aggregate jobs/s at k=8 must be >= 3x the sequential
  baseline.  On a single-core host this gain comes almost entirely from
  cross-assay amortization (the shared strategy store + memo turning
  repeat synthesis into O(decode) lookups), which is the tentpole claim;
* **trace identity** — every served job's ExecutionTrace must be frame-
  for-frame identical to the solo run of the same spec, at every k.
  Violations raise immediately.

Results land in ``BENCH_serve.json`` at the repository root:

```json
{
  "bench": "serve",
  "workload": {"jobs": 48, "unique_specs": 4, "specs": [...]},
  "sequential": {"total_s": ..., "throughput_jps": ...,
                  "p50_ms": ..., "p99_ms": ...},
  "served": {"8": {"total_s": ..., "throughput_jps": ..., "p50_ms": ...,
                    "p99_ms": ..., "speedup": ..., "trace_identical": true,
                    "store": {...}, "engine": {...}}, ...},
  "gates": {"throughput_k8_over_sequential": {"value": ..., "target": 3.0,
             "pass": true}, "trace_identity": true}
}
```

Run with ``PYTHONPATH=src python benchmarks/bench_serve.py`` (honours
``REPRO_BENCH_SCALE=quick|full``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import SCALE, emit, scaled  # noqa: E402

from repro.serve import AssaySpec, ServeClient, ServeService  # noqa: E402
from repro.serve.runner import execute_assay  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serve.json"

CONCURRENCIES = (1, 4, 8, 16)
GATE_K = 8
GATE_SPEEDUP = 3.0

#: The mixed workload's unique specs: small-chip assays whose solo runs
#: complete well under a second, so the bench stays minutes-scale even at
#: full scale.  Distinct (bioassay, seed) pairs sample distinct chips.
UNIQUE_SPECS = (
    AssaySpec(bioassay="master-mix", width=40, height=24, seed=3,
              max_cycles=400),
    AssaySpec(bioassay="serial-dilution", width=40, height=24, seed=5,
              max_cycles=400),
    AssaySpec(bioassay="covid-rat", width=40, height=24, seed=11,
              max_cycles=800),
    AssaySpec(bioassay="master-mix", width=40, height=24, seed=13,
              max_cycles=400),
)


def spec_key(spec: AssaySpec) -> tuple[str, int]:
    return (spec.bioassay, spec.seed)


def build_workload(repeats: int) -> list[AssaySpec]:
    """``repeats`` interleaved rounds of the unique specs (mixed order)."""
    return [spec for _ in range(repeats) for spec in UNIQUE_SPECS]


def percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def run_sequential(workload: list[AssaySpec], workers: int) -> dict:
    """One job at a time, fresh engine each, no shared store (solo runs)."""
    from repro.engine import SynthesisEngine

    latencies_ms: list[float] = []
    t0 = time.perf_counter()
    for spec in workload:
        engine = (
            SynthesisEngine(workers=workers, admission_floor=True)
            if workers != 1 else None
        )
        t_job = time.perf_counter()
        try:
            outcome = execute_assay(spec, engine=engine)
        finally:
            if engine is not None:
                engine.close()
        if not outcome.result.success:
            raise RuntimeError(
                f"sequential baseline failed: {spec_key(spec)}"
            )
        latencies_ms.append((time.perf_counter() - t_job) * 1e3)
    total_s = time.perf_counter() - t0
    return {
        "total_s": round(total_s, 4),
        "throughput_jps": len(workload) / total_s,
        "p50_ms": round(percentile(latencies_ms, 50), 3),
        "p99_ms": round(percentile(latencies_ms, 99), 3),
    }


def solo_references(workers: int) -> dict:
    """One solo trace per unique spec: the bit-identity reference."""
    references = {}
    for spec in UNIQUE_SPECS:
        references[spec_key(spec)] = execute_assay(spec, engine=None)
    return references


def serve_workers_for(k: int) -> int:
    """Assay worker threads for client concurrency k.

    Capped at the core count (min 2, so concurrency is always genuinely
    exercised): on a small host more concurrent assays only multiply the
    cold-start synthesis running before the shared store warms, which is
    a scheduling mistake a real deployment would not make.
    """
    return min(k, max(2, os.cpu_count() or 1))


def run_served(
    workload: list[AssaySpec], k: int, workers: int, references: dict
) -> dict:
    """k concurrent HTTP clients against a fresh service + fresh store."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        service = ServeService(
            port=0, serve_workers=serve_workers_for(k), engine_workers=workers,
            store_path=Path(tmp) / "store.sqlite", keep_traces=True,
            drain_deadline_s=600.0,
        )
        service.start()
        try:
            base_url = service.url
            latencies_ms: list[float] = []
            latency_lock = threading.Lock()
            errors: list[BaseException] = []
            job_ids: list[str] = []

            def client_loop(client_idx: int) -> None:
                client = ServeClient(base_url, timeout=600.0)
                try:
                    for spec in workload[client_idx::k]:
                        t_job = time.perf_counter()
                        job_id = client.submit(spec)
                        document = client.wait(job_id, timeout=600.0)
                        elapsed_ms = (time.perf_counter() - t_job) * 1e3
                        if document["state"] != "done":
                            raise RuntimeError(
                                f"job {job_id} ended {document['state']}: "
                                f"{document.get('error')}"
                            )
                        with latency_lock:
                            latencies_ms.append(elapsed_ms)
                            job_ids.append(job_id)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)

            t0 = time.perf_counter()
            threads = [
                threading.Thread(target=client_loop, args=(i,))
                for i in range(k)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            total_s = time.perf_counter() - t0
            if errors:
                raise errors[0]

            # Hard gate: every served trace is bit-identical to its solo
            # reference.
            for job_id in job_ids:
                job = service.job(job_id)
                reference = references[spec_key(job.spec)]
                served_trace = service.trace(job_id)
                identical = (
                    job.result["cycles"] == reference.result.cycles
                    and len(served_trace.frames)
                    == len(reference.trace.frames)
                    and all(
                        sf.cycle == rf.cycle
                        and sf.droplets == rf.droplets
                        and sf.moving == rf.moving
                        for rf, sf in zip(
                            reference.trace.frames, served_trace.frames
                        )
                    )
                )
                if not identical:
                    raise RuntimeError(
                        f"trace-identity violation at k={k}: job {job_id} "
                        f"({spec_key(job.spec)}) diverged from its solo run"
                    )

            store = service.engine.store
            store_counters = store.counters() if store is not None else {}
            engine_counters = service.engine.counters()
        finally:
            if not service._stopped:
                service.drain(deadline_s=600.0)

    return {
        "clients": k,
        "serve_workers": serve_workers_for(k),
        "total_s": round(total_s, 4),
        "throughput_jps": len(workload) / total_s,
        "p50_ms": round(percentile(latencies_ms, 50), 3),
        "p99_ms": round(percentile(latencies_ms, 99), 3),
        "trace_identical": True,
        "store": store_counters,
        "engine": engine_counters,
    }


def run_bench(workers: int) -> dict:
    repeats = scaled(12, 24)
    workload = build_workload(repeats)

    # Warm the in-process template/kernel caches once so the sequential
    # baseline is not penalized by first-call effects the served runs
    # would then dodge.
    for spec in UNIQUE_SPECS:
        execute_assay(spec, engine=None)

    references = solo_references(workers)
    sequential = run_sequential(workload, workers)

    served: dict[str, dict] = {}
    for k in CONCURRENCIES:
        result = run_served(workload, k, workers, references)
        result["speedup"] = (
            result["throughput_jps"] / sequential["throughput_jps"]
        )
        served[str(k)] = result

    gate_value = served[str(GATE_K)]["speedup"]
    return {
        "bench": "serve",
        "cores": os.cpu_count(),
        "engine_workers": workers,
        "scale": SCALE,
        "workload": {
            "jobs": len(workload),
            "unique_specs": len(UNIQUE_SPECS),
            "specs": [spec.to_dict() for spec in UNIQUE_SPECS],
        },
        "sequential": sequential,
        "served": served,
        "gates": {
            "throughput_k8_over_sequential": {
                "value": round(gate_value, 3),
                "target": GATE_SPEEDUP,
                "pass": gate_value >= GATE_SPEEDUP,
            },
            "trace_identity": True,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=1,
        help="shared engine worker processes (default 1: synchronous "
             "engine; amortization comes from the shared store)",
    )
    parser.add_argument(
        "--no-enforce", action="store_true",
        help="report gate violations without failing (debugging)",
    )
    args = parser.parse_args(argv)

    report = run_bench(args.workers)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    sequential = report["sequential"]
    lines = [
        f"multi-assay serving: {report['workload']['jobs']} jobs over "
        f"{report['workload']['unique_specs']} unique specs, "
        f"{report['cores']} cores, engine workers="
        f"{report['engine_workers']} (scale={report['scale']})",
        f"  sequential        {sequential['throughput_jps']:6.2f} job/s  "
        f"p50 {sequential['p50_ms']:7.1f} ms  "
        f"p99 {sequential['p99_ms']:7.1f} ms",
    ]
    for k in CONCURRENCIES:
        entry = report["served"][str(k)]
        lines.append(
            f"  served k={k:<2d}       {entry['throughput_jps']:6.2f} job/s  "
            f"p50 {entry['p50_ms']:7.1f} ms  p99 {entry['p99_ms']:7.1f} ms  "
            f"speedup {entry['speedup']:.2f}x"
        )
    gate = report["gates"]["throughput_k8_over_sequential"]
    lines += [
        f"  gate: k={GATE_K} throughput {gate['value']:.2f}x sequential "
        f"(target >= {gate['target']}x) -> "
        f"{'PASS' if gate['pass'] else 'FAIL'}",
        "  gate: trace identity vs solo runs at every k -> PASS",
        f"  wrote {JSON_PATH}",
    ]
    emit("bench_serve", "\n".join(lines))

    if not gate["pass"]:
        print(
            f"{'WARN' if args.no_enforce else 'FAIL'}: k={GATE_K} serving "
            f"throughput {gate['value']:.2f}x sequential < "
            f"{gate['target']}x",
            file=sys.stderr,
        )
        return 0 if args.no_enforce else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
