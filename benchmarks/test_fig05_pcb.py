"""Fig. 5 — PCB electrode degradation: charge trapping vs residual charge.

Reproduces both experiments of Sec. IV-A on the simulated PCB DMFB:
(a) 1 s actuations — capacitance grows linearly with the actuation count;
(b) 5 s actuations — growth is several times faster due to residual charge.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_series, format_table
from repro.degradation.fitting import fit_capacitance_slope
from repro.degradation.pcb import (
    ELECTRODE_SIZES_MM,
    EXCESSIVE_ACTUATION_S,
    NORMAL_ACTUATION_S,
    run_degradation_experiment,
)

from benchmarks.common import emit, scaled


def _run(duration_s: float, seed: int):
    return run_degradation_experiment(
        np.random.default_rng(seed),
        duration_s=duration_s,
        total_actuations=scaled(400, 800),
        measure_every=50,
        electrodes_per_size=scaled(4, 8),
    )


def test_fig5_capacitance_growth(benchmark):
    normal = _run(NORMAL_ACTUATION_S, seed=10)
    excessive = _run(EXCESSIVE_ACTUATION_S, seed=11)

    blocks = []
    for label, curves in (("(a) charge trapping, 1 s", normal),
                          ("(b) residual charge, 5 s", excessive)):
        series = {
            f"{size}mm C (pF)": [f"{c * 1e12:.4f}" for c in curves[size].capacitance_f]
            for size in ELECTRODE_SIZES_MM
        }
        blocks.append(format_series(
            "n", [int(n) for n in curves[2].actuations], series,
            title=f"Fig. 5{label}",
        ))

    rows = []
    for size in ELECTRODE_SIZES_MM:
        slope_n, r2_n = fit_capacitance_slope(
            normal[size].actuations, normal[size].capacitance_f)
        slope_e, r2_e = fit_capacitance_slope(
            excessive[size].actuations, excessive[size].capacitance_f)
        rows.append([
            f"{size}x{size} mm", f"{slope_n * 1e15:.3f}", f"{r2_n:.4f}",
            f"{slope_e * 1e15:.3f}", f"{r2_e:.4f}",
            f"{slope_e / slope_n:.2f}x",
        ])
    blocks.append(format_table(
        ["electrode", "slope 1s (fF/act)", "R2 1s",
         "slope 5s (fF/act)", "R2 5s", "speedup"],
        rows,
        title="Fig. 5 — linear-growth fits",
    ))
    emit("fig05_pcb", "\n\n".join(blocks))

    # Paper shape: linear growth and much faster growth under excessive
    # actuation.  (At quick scale the 1 s experiment averages only a few
    # electrodes against ~1% scope noise, so the linearity bar is looser.)
    r2_floor = 0.85 if scaled(0, 1) == 0 else 0.95
    for size in ELECTRODE_SIZES_MM:
        _, r2 = fit_capacitance_slope(normal[size].actuations,
                                      normal[size].capacitance_f)
        assert r2 > r2_floor
        slope_n, _ = fit_capacitance_slope(normal[size].actuations,
                                           normal[size].capacitance_f)
        slope_e, _ = fit_capacitance_slope(excessive[size].actuations,
                                           excessive[size].capacitance_f)
        assert slope_e > 3 * slope_n

    benchmark.pedantic(
        lambda: _run(NORMAL_ACTUATION_S, seed=12), rounds=1, iterations=1
    )
