"""Ablation — proactive synthesis vs reactive error recovery vs baseline.

Sec. II-C frames prior reliability work as *reactive* error recovery
(detect an error, then correct it), while the paper's contribution is
*proactive* (avoid degraded microelectrodes before errors occur).  This
bench makes that comparison concrete on fault-injected chips:

* **baseline** — shortest paths, no health information ever;
* **reactive** — shortest paths plus a reroute corrective action when a
  droplet stops making progress (Sec. II-C's retrial class);
* **adaptive** — the paper's proactive framework.

Also reports the wear-distribution Gini coefficient: the proactive router
spreads actuations instead of hammering one corridor.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.analysis.wear import wear_concentration, wear_gini
from repro.bioassay.library import covid_pcr
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.core.baseline import AdaptiveRouter, BaselineRouter, ReactiveRouter
from repro.core.scheduler import HybridScheduler
from repro.degradation.faults import FaultInjector, FaultMode

from benchmarks.common import CHIP_HEIGHT, CHIP_WIDTH, emit, scaled


def _run_router(kind: str, runs: int, seed: int):
    graph = plan(covid_pcr(), CHIP_WIDTH, CHIP_HEIGHT)
    # 5x5 dead patches (>= the droplet width) create hard roadblocks a
    # blind shortest path cannot cross — the error the reactive router
    # exists to recover from.
    injector = FaultInjector(FaultMode.CLUSTERED, fraction=0.10,
                             fail_range=(1, 12), cluster_size=5)
    rng = np.random.default_rng(seed)
    chip = MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, rng,
        tau_range=(0.5, 0.9), c_range=(150.0, 350.0),
        fault_plan=injector.inject(CHIP_WIDTH, CHIP_HEIGHT, rng),
    )
    router = {
        "baseline": lambda: BaselineRouter(CHIP_WIDTH, CHIP_HEIGHT),
        "reactive": lambda: ReactiveRouter(CHIP_WIDTH, CHIP_HEIGHT),
        "adaptive": lambda: AdaptiveRouter(),
    }[kind]()
    sim_rng = np.random.default_rng(seed + 1)
    cycles = 0
    failures = 0
    recoveries = 0
    for _ in range(runs):
        scheduler = HybridScheduler(graph, router, CHIP_WIDTH, CHIP_HEIGHT,
                                    stall_recovery_threshold=10)
        result = MedaSimulator(chip, sim_rng).run(scheduler, 400)
        cycles += result.cycles
        failures += 0 if result.success else 1
        recoveries += scheduler.recoveries
    gini = wear_gini(chip.actuations, active_only=True)
    top10 = wear_concentration(chip.actuations, q=0.1)
    return cycles, failures, recoveries, gini, top10


def test_ablation_error_recovery(benchmark):
    runs = scaled(5, 10)
    seeds = range(scaled(2, 5))
    rows = []
    totals: dict[str, tuple[int, int, int, float]] = {}
    for kind in ("baseline", "reactive", "adaptive"):
        cycles = failures = recoveries = 0
        ginis = []
        tops = []
        for seed in seeds:
            c, f, r, g, t = _run_router(kind, runs, seed=70 + seed)
            cycles += c
            failures += f
            recoveries += r
            ginis.append(g)
            tops.append(t)
        totals[kind] = (cycles, failures, recoveries, float(np.mean(ginis)))
        rows.append([
            kind, cycles, failures, recoveries,
            f"{np.mean(ginis):.3f}", f"{np.mean(tops):.3f}",
        ])
    emit(
        "ablation_recovery",
        format_table(
            ["router", "total cycles", "failed runs", "recoveries",
             "wear Gini (active)", "top-10% wear share"],
            rows,
            title=(f"Ablation — proactive vs reactive vs baseline, covid-pcr x "
                   f"{runs} runs x {len(list(seeds))} faulty chips"),
        ),
    )

    # Proactive completes at least as reliably and cheaply as reactive,
    # which in turn beats the blind baseline.
    assert totals["adaptive"][1] <= totals["reactive"][1]
    assert totals["reactive"][1] <= totals["baseline"][1]
    assert totals["adaptive"][0] <= totals["reactive"][0] * 1.05
    # Reactive recovery actually fires on these chips; the proactive
    # framework never needs it.
    assert totals["reactive"][2] > 0
    assert totals["adaptive"][2] == 0

    benchmark.pedantic(
        lambda: _run_router("reactive", 1, seed=99), rounds=1, iterations=1
    )
