"""Fig. 3 — actuation correlation vs Manhattan distance.

Executes the three degradation-pattern bioassays (ChIP, multiplex in-vitro,
gene expression) on a 60x30 chip for droplet sizes 3x3 through 6x6,
recording every cycle's actuation matrix, then reports the mean pairwise
correlation coefficient of MC actuation vectors at Manhattan distances 1-5.

Paper shape: correlation falls with distance, rises with droplet size, and
is largely insensitive to which bioassay produced it — actuation happens in
droplet-sized clusters, so wear-induced faults cluster too.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import correlation_vs_distance
from repro.analysis.tables import format_table
from repro.bioassay.library import PATTERN_BIOASSAYS, with_dispense_size
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.biochip.recorder import ActuationRecorder
from repro.biochip.simulator import MedaSimulator
from repro.core.baseline import AdaptiveRouter
from repro.core.scheduler import HybridScheduler

from benchmarks.common import CHIP_HEIGHT, CHIP_WIDTH, emit, scaled

DISTANCES = [1, 2, 3, 4, 5]


def _record_execution(bioassay_name: str, size: int, seed: int) -> np.ndarray:
    graph = with_dispense_size(
        PATTERN_BIOASSAYS[bioassay_name](), (size, size)
    )
    graph = plan(graph, CHIP_WIDTH, CHIP_HEIGHT)
    chip = MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(seed),
        tau_range=(0.95, 0.99), c_range=(5000, 9000),
    )
    recorder = ActuationRecorder(CHIP_WIDTH, CHIP_HEIGHT)
    scheduler = HybridScheduler(graph, AdaptiveRouter(), CHIP_WIDTH, CHIP_HEIGHT)
    sim = MedaSimulator(chip, np.random.default_rng(seed + 1), recorder=recorder)
    result = sim.run(scheduler, max_cycles=1500)
    assert result.success, f"{bioassay_name} ({size}x{size}): {result.failure_reason}"
    return recorder.vectors()


def test_fig3_correlation_vs_distance(benchmark):
    sizes = [3, 4, 5, 6]
    names = sorted(PATTERN_BIOASSAYS)
    if scaled(0, 1) == 0:
        names = names[: scaled(2, 3)]
    rng = np.random.default_rng(0)

    curves: dict[tuple[str, int], np.ndarray] = {}
    for name in names:
        for size in sizes:
            vectors = _record_execution(name, size, seed=31 + size)
            curve = correlation_vs_distance(
                vectors, DISTANCES, rng=rng, max_pairs_per_distance=2500
            )
            curves[(name, size)] = curve.mean_correlation

    rows = []
    for size in sizes:
        per_bioassay = np.array([curves[(n, size)] for n in names])
        mean_curve = np.nanmean(per_bioassay, axis=0)
        rows.append(
            [f"{size}x{size}"] + [f"{v:.3f}" for v in mean_curve]
        )
    emit(
        "fig03_correlation",
        format_table(
            ["droplet"] + [f"d={d}" for d in DISTANCES],
            rows,
            title=(
                "Fig. 3 — mean actuation correlation vs Manhattan distance "
                f"(bioassays: {', '.join(names)})"
            ),
        ),
    )

    # Paper shape 1: inverse relationship with distance for every size.
    for size in sizes:
        mean_curve = np.nanmean(
            np.array([curves[(n, size)] for n in names]), axis=0
        )
        assert mean_curve[0] > mean_curve[-1], f"size {size} not decreasing"
    # Paper shape 2: larger droplets keep correlations higher at short range.
    small = np.nanmean(np.array([curves[(n, 3)] for n in names]), axis=0)
    large = np.nanmean(np.array([curves[(n, 6)] for n in names]), axis=0)
    assert large[:3].mean() > small[:3].mean()

    benchmark.pedantic(
        lambda: correlation_vs_distance(
            _record_execution(names[0], 4, seed=77), DISTANCES, rng=rng
        ),
        rounds=1, iterations=1,
    )
