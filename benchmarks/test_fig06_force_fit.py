"""Fig. 6 — measured vs fitted relative EWOD force.

The paper fits ``F(n) = tau^(2n/c)`` to the measured force curves of the
three electrode sizes and reports (tau2, c2) = (0.556, 822.7),
(tau3, c3) = (0.543, 805.5), (tau4, c4) = (0.530, 788.4), all with
R2_adj > 0.94.  Only the decay rate ``-2 ln(tau)/c`` is identifiable, so the
comparison column reports it alongside the (ridge-anchored) constants.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.degradation.fitting import fit_force_curve
from repro.degradation.model import PAPER_FITTED_CONSTANTS
from repro.degradation.pcb import ELECTRODE_SIZES_MM, run_degradation_experiment

from benchmarks.common import emit, scaled


def test_fig6_force_decay_fit(benchmark):
    curves = run_degradation_experiment(
        np.random.default_rng(6),
        total_actuations=scaled(800, 1600),
        measure_every=50,
        electrodes_per_size=scaled(6, 12),
        force_noise=0.02,
    )
    rows = []
    for size in ELECTRODE_SIZES_MM:
        curve = curves[size]
        fit = fit_force_curve(curve.actuations, curve.relative_force)
        tau_p, c_p = PAPER_FITTED_CONSTANTS[size]
        paper_rate = -2 * np.log(tau_p) / c_p
        rows.append([
            f"{size}x{size} mm",
            f"{fit.tau:.3f}", f"{fit.c:.1f}", f"{fit.r2_adjusted:.4f}",
            f"{fit.decay_rate * 1e3:.4f}",
            f"{tau_p:.3f}", f"{c_p:.1f}", f"{paper_rate * 1e3:.4f}",
        ])
        # Paper shape: R2_adj > 0.94 and the identifiable decay rate matches.
        assert fit.r2_adjusted > 0.94
        assert abs(fit.decay_rate - paper_rate) / paper_rate < 0.15
    emit(
        "fig06_force_fit",
        format_table(
            ["electrode", "tau (fit)", "c (fit)", "R2_adj",
             "rate x1e3 (fit)", "tau (paper)", "c (paper)", "rate x1e3 (paper)"],
            rows,
            title="Fig. 6 — relative EWOD force decay fits vs paper constants",
        ),
    )

    curve = curves[2]
    benchmark(fit_force_curve, curve.actuations, curve.relative_force)
