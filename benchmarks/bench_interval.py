"""Plain VI vs certified interval VI: what do sound bounds cost?

The interval pipeline (qualitative precomputation + two-sided iteration,
see ``repro.modelcheck.interval``) replaces the legacy one-sided sweep
loop whose ``delta < epsilon`` stop proves nothing about the true error —
and diverges outright on goal-dodging end components.  This bench measures
the price of the certificate on the 60x30 evaluation chip: identical
routing models are solved by both paths (``certified=False`` vs the
default) and the per-RJ solve times are compared, together with the gap
the interval solver actually certifies.

The acceptance gate is *soft*: a mean per-RJ slowdown beyond 5% prints a
warning but does not fail the bench (the certificate is mandatory; the
gate exists to surface regressions, not to trade soundness for speed).
The certified-gap bound, by contrast, is hard: every solve must close its
interval to ``epsilon``.

Results go to stdout, ``benchmarks/out/bench_interval.txt``, and
``BENCH_interval.json``:

```json
{
  "bench": "interval",
  "chip": {"width": 60, "height": 30},
  "plain":    {"solve_mean_ms": ..., "solve_p95_ms": ..., "iters_mean": ...},
  "interval": {"solve_mean_ms": ..., "solve_p95_ms": ..., "iters_mean": ...,
               "gap_max": ..., "gap_mean": ...},
  "slowdown_mean": 1.03,
  "soft_gate_ok": true
}
```

Run with ``PYTHONPATH=src python benchmarks/bench_interval.py`` (honours
``REPRO_BENCH_SCALE=quick|full``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import CHIP_HEIGHT, CHIP_WIDTH, SCALE, emit, scaled  # noqa: E402

from repro import perf  # noqa: E402
from repro.core.fastmdp import build_routing_model_fast  # noqa: E402
from repro.core.routing_job import RoutingJob  # noqa: E402
from repro.core.synthesis import (  # noqa: E402
    SYNTHESIS_EPSILON,
    force_field_from_health,
)
from repro.geometry.rect import Rect  # noqa: E402
from repro.modelcheck.compiled import solve_reach_avoid_reward  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_interval.json"

#: Soft gate: mean per-RJ slowdown of interval vs plain solving.
SOFT_SLOWDOWN_LIMIT = 1.05


def workload_jobs() -> list[RoutingJob]:
    """Same mixed-distance jobs as ``bench_synthesis`` (comparability)."""
    W, H = CHIP_WIDTH, CHIP_HEIGHT
    full = Rect(1, 1, W, H)
    return [
        RoutingJob(Rect(2, 2, 4, 4), Rect(50, 25, 52, 27), full),
        RoutingJob(Rect(55, 3, 57, 5), Rect(5, 24, 7, 26), full),
        RoutingJob(Rect(28, 2, 30, 4), Rect(30, 26, 32, 28),
                   Rect(20, 1, 40, H)),
        RoutingJob(Rect(3, 14, 5, 16), Rect(54, 14, 56, 16),
                   Rect(1, 8, W, 22)),
    ]


def health_sequence(rng: np.random.Generator, steps: int) -> list[np.ndarray]:
    h = np.full((CHIP_WIDTH, CHIP_HEIGHT), 3, dtype=int)
    seq = [h.copy()]
    for _ in range(steps - 1):
        drop = rng.random(h.shape) < 0.01
        h = np.where(drop, np.maximum(h - 1, 1), h)
        seq.append(h.copy())
    return seq


def run_bench() -> dict:
    rng = np.random.default_rng(20210201)
    jobs = workload_jobs()
    steps = scaled(3, 8)
    healths = health_sequence(rng, steps)

    # Build every model once up front so both solver configurations see
    # the exact same compiled MDPs and only solve time is measured.
    models = []
    for health in healths:
        forces = force_field_from_health(health).forces
        for job in jobs:
            models.append(build_routing_model_fast(job, forces).compiled)

    results: dict[str, dict] = {}
    for name, certified in (("plain", False), ("interval", True)):
        perf.reset()
        solve_ms, iters = [], []
        for cm in models:
            # Best of three: scheduler noise on a shared runner easily
            # exceeds the few-percent differences the soft gate watches.
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                res = solve_reach_avoid_reward(
                    cm, epsilon=SYNTHESIS_EPSILON, certified=certified
                )
                best = min(best, time.perf_counter() - t0)
            solve_ms.append(best * 1e3)
            iters.append(res.iterations)
        counters = perf.snapshot()
        arr = np.asarray(solve_ms)
        entry = {
            "solve_mean_ms": float(arr.mean()),
            "solve_p50_ms": float(np.percentile(arr, 50)),
            "solve_p95_ms": float(np.percentile(arr, 95)),
            "iters_mean": float(np.mean(iters)),
            "iters_max": int(np.max(iters)),
        }
        if certified:
            entry["gap_max"] = counters.get("vi.interval.gap.max", float("nan"))
            entry["gap_mean"] = counters.get("vi.interval.gap.mean", float("nan"))
            entry["precompute_seconds"] = counters.get(
                "vi.precompute.seconds", 0.0
            )
        results[name] = entry

    slowdown = (
        results["interval"]["solve_mean_ms"] / results["plain"]["solve_mean_ms"]
    )
    return {
        "bench": "interval",
        "chip": {"width": CHIP_WIDTH, "height": CHIP_HEIGHT},
        "scale": SCALE,
        "epsilon": SYNTHESIS_EPSILON,
        "models": len(models),
        "plain": results["plain"],
        "interval": results["interval"],
        "slowdown_mean": slowdown,
        "soft_gate_ok": slowdown <= SOFT_SLOWDOWN_LIMIT,
    }


def main() -> int:
    report = run_bench()
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    plain, ivl = report["plain"], report["interval"]
    lines = [
        f"plain vs interval solve, {report['chip']['width']}x"
        f"{report['chip']['height']} chip, {report['models']} models "
        f"(scale={report['scale']}, epsilon={report['epsilon']:.0e})",
        f"  plain    (uncertified): mean {plain['solve_mean_ms']:7.1f} ms"
        f"  p95 {plain['solve_p95_ms']:7.1f}  iters_mean {plain['iters_mean']:.0f}",
        f"  interval (certified):   mean {ivl['solve_mean_ms']:7.1f} ms"
        f"  p95 {ivl['solve_p95_ms']:7.1f}  iters_mean {ivl['iters_mean']:.0f}",
        f"  certified gap: max {ivl['gap_max']:.2e}  mean {ivl['gap_mean']:.2e}",
        f"  slowdown (mean solve): {report['slowdown_mean']:.2f}x"
        f"  (soft limit {SOFT_SLOWDOWN_LIMIT:.2f}x)",
        f"  wrote {JSON_PATH}",
    ]
    emit("bench_interval", "\n".join(lines))
    if not ivl["gap_max"] <= report["epsilon"]:
        print("FAIL: certified interval gap exceeds epsilon "
              f"(max {ivl['gap_max']!r} > {report['epsilon']!r})",
              file=sys.stderr)
        return 1
    if not report["soft_gate_ok"]:
        print(
            f"WARN: mean interval slowdown {report['slowdown_mean']:.2f}x "
            f"exceeds the {SOFT_SLOWDOWN_LIMIT:.2f}x soft gate",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
