"""Reconfiguration bench: assay survival on dying silicon, with and
without placement remapping.

Runs the master-mix evaluation bioassay on a 60x30 chip through two
deterministic fault families, each derived from the *actual placement*
(the dead region is aimed at the first mixer's module slot so every
droplet pattern the module could form is dead, plus a margin):

* **clustered-fault** — an 8x8 dead block centered on the mixer slot
  (the Fig. 3 correlated-wear failure mode, scaled to roadblock size);
* **dead-column** — a 6-column dead stripe through the slot's columns
  over the chip's middle rows (a failed column-driver bank), leaving
  routing corridors along the north and south edges.

Each family is swept across chip lifetime: the faulty MCs all trip at
the same actuation count, and the chip is pre-worn to a sweep of
actuation levels below and above it.  At each lifetime point the assay
runs twice — remap-free baseline vs. ``ReconfigPolicy`` remapping — and
the bench records completion, cycles, and remap counts.

Hard gates (always enforced, they are the PR's contract):

1. **remap completion probability 1.0** — the remap-enabled scheduler
   completes every scenario at every lifetime point;
2. **baseline fails on dead silicon** — at every lifetime point past the
   failure threshold, the remap-free baseline does *not* complete (if it
   did, the scenario would exercise nothing);
3. **healthy-chip identity** — on a fault-free chip, the remap-enabled
   scheduler's execution trace is bit-identical to the remap-free one
   (reconfiguration must be a strict no-op until quarantine triggers).

A wear-leveling section reruns the assay back-to-back with and without
wear-biased re-placement and reports the peak per-MC actuation count
(soft, informational).  Results land in ``BENCH_reconfig.json`` at the
repo root; the journal (``reconfig.quarantine`` / ``reconfig.remap``
events included) goes to ``benchmarks/out/bench_reconfig.journal.jsonl``
for artifact upload.  Honours ``REPRO_BENCH_SCALE=quick|full``.

Run with ``PYTHONPATH=src python benchmarks/bench_reconfig.py``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import CHIP_HEIGHT, CHIP_WIDTH, OUT_DIR, SCALE, emit, scaled  # noqa: E402

from repro import obs  # noqa: E402
from repro.bioassay.library import ALL_BIOASSAYS  # noqa: E402
from repro.bioassay.ops import MOType  # noqa: E402
from repro.bioassay.planner import plan  # noqa: E402
from repro.biochip.chip import MedaChip  # noqa: E402
from repro.biochip.simulator import MedaSimulator  # noqa: E402
from repro.biochip.trace import ExecutionTrace  # noqa: E402
from repro.core.baseline import AdaptiveRouter  # noqa: E402
from repro.core.scheduler import HybridScheduler  # noqa: E402
from repro.degradation.faults import (  # noqa: E402
    FaultPlan,
    dead_cluster_plan,
    dead_column_plan,
    no_faults,
)
from repro.reconfig import ReconfigPolicy  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_reconfig.json"
JOURNAL_PATH = OUT_DIR / "bench_reconfig.journal.jsonl"

BIOASSAY = "master-mix"
CHIP_SEED = 0
SIM_SEED = 7
MAX_CYCLES = 1200

#: Actuation count at which every scenario MC dies.  The lifetime sweep
#: pre-wears the chip below and above this threshold; one assay adds well
#: under 200 actuations per MC, so points at least that far below the
#: threshold never trip mid-run.
FAIL_AT = 1000.0


def sample_chip(fault_plan: FaultPlan, prewear: float) -> MedaChip:
    # Slow-degrading recipe: health stays near-perfect except where the
    # scenario's sudden faults strike, so outcomes isolate the fault
    # response rather than gradual wear.
    chip = MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(CHIP_SEED),
        tau_range=(0.95, 0.99), c_range=(5000.0, 9000.0),
        fault_plan=fault_plan,
    )
    chip.actuations += prewear
    return chip


def trace_digest(trace: ExecutionTrace) -> str:
    """A stable digest of the routed frames (position-exact identity)."""
    hasher = hashlib.sha256()
    for frame in trace.frames:
        hasher.update(
            repr((frame.cycle, frame.droplets, frame.moving)).encode()
        )
    return hasher.hexdigest()[:16]


def build_scenarios() -> dict[str, FaultPlan]:
    """Fault families aimed at the placed bioassay's first mixer slot."""
    graph = plan(ALL_BIOASSAYS[BIOASSAY](), CHIP_WIDTH, CHIP_HEIGHT)
    mixer = next(mo for mo in graph.mos if mo.type is MOType.MIX)
    slot = mixer.locs[0]
    return {
        "clustered-fault": dead_cluster_plan(
            CHIP_WIDTH, CHIP_HEIGHT, [slot], fail_at=FAIL_AT
        ),
        "dead-column": dead_column_plan(
            CHIP_WIDTH, CHIP_HEIGHT, column=int(slot[0]) - 2,
            fail_at=FAIL_AT,
        ),
    }


def execute(fault_plan: FaultPlan, prewear: float, reconfig: bool) -> dict:
    graph = plan(ALL_BIOASSAYS[BIOASSAY](), CHIP_WIDTH, CHIP_HEIGHT)
    chip = sample_chip(fault_plan, prewear)
    policy = ReconfigPolicy(CHIP_WIDTH, CHIP_HEIGHT) if reconfig else None
    scheduler = HybridScheduler(
        graph, AdaptiveRouter(), CHIP_WIDTH, CHIP_HEIGHT, reconfig=policy
    )
    trace = ExecutionTrace()
    sim = MedaSimulator(chip, np.random.default_rng(SIM_SEED), trace=trace)
    t0 = time.perf_counter()
    result = sim.run(scheduler, max_cycles=MAX_CYCLES)
    return {
        "success": bool(result.success),
        "failure": None if result.success else result.failure,
        "cycles": int(result.cycles),
        "remaps": int(scheduler.remaps),
        "wall_s": round(time.perf_counter() - t0, 4),
        "digest": trace_digest(trace),
    }


def wear_level_section(runs: int) -> dict:
    """Back-to-back runs on one healthy chip, with and without wear-biased
    re-placement; reports how the actuation load spreads."""
    section: dict[str, dict] = {}
    for mode in ("fixed", "wear-leveled"):
        chip = sample_chip(no_faults(CHIP_WIDTH, CHIP_HEIGHT), 0.0)
        base = ALL_BIOASSAYS[BIOASSAY]()
        graph = plan(base, CHIP_WIDTH, CHIP_HEIGHT)
        outcomes = []
        for run in range(runs):
            if mode == "wear-leveled" and run:
                graph = plan(base, CHIP_WIDTH, CHIP_HEIGHT,
                             wear=chip.actuations.copy())
            scheduler = HybridScheduler(
                graph, AdaptiveRouter(), CHIP_WIDTH, CHIP_HEIGHT
            )
            sim = MedaSimulator(chip, np.random.default_rng(SIM_SEED + run))
            result = sim.run(scheduler, max_cycles=MAX_CYCLES)
            outcomes.append(bool(result.success))
        section[mode] = {
            "runs": runs,
            "all_succeeded": all(outcomes),
            "peak_actuations": float(chip.actuations.max()),
            "mean_actuations": round(float(chip.actuations.mean()), 2),
        }
    return section


def run_bench() -> dict:
    prewear_points = (
        [0.0, FAIL_AT + 100.0] if SCALE == "quick"
        else [0.0, 400.0, 800.0, FAIL_AT + 100.0]
    )
    scenarios = build_scenarios()

    # Healthy-chip identity: reconfiguration enabled but never triggered
    # must be byte-for-byte the pre-existing scheduler.
    healthy = no_faults(CHIP_WIDTH, CHIP_HEIGHT)
    identity = {
        "baseline": execute(healthy, 0.0, reconfig=False),
        "reconfig": execute(healthy, 0.0, reconfig=True),
    }
    identity["ok"] = (
        identity["baseline"]["digest"] == identity["reconfig"]["digest"]
        and identity["baseline"]["success"]
        and identity["reconfig"]["success"]
        and identity["reconfig"]["remaps"] == 0
    )

    results: dict[str, dict] = {}
    for name, fault_plan in scenarios.items():
        obs.journal_event("bench.scenario", name=name, fail_at=FAIL_AT)
        points = []
        for prewear in prewear_points:
            points.append({
                "prewear": prewear,
                "faults_active": prewear >= FAIL_AT,
                "baseline": execute(fault_plan, prewear, reconfig=False),
                "reconfig": execute(fault_plan, prewear, reconfig=True),
            })
        results[name] = {
            "dead_cells": int(fault_plan.faulty.sum()),
            "lifetime": points,
        }

    remap_attempted = remap_completed = 0
    baseline_dead_failures = []
    for name, scenario in results.items():
        for point in scenario["lifetime"]:
            remap_attempted += 1
            remap_completed += int(point["reconfig"]["success"])
            if point["faults_active"] and point["baseline"]["success"]:
                baseline_dead_failures.append(
                    f"{name} @ prewear {point['prewear']:.0f}: remap-free "
                    f"baseline completed on dead silicon"
                )
    return {
        "bench": "reconfig",
        "bioassay": BIOASSAY,
        "chip": {"width": CHIP_WIDTH, "height": CHIP_HEIGHT},
        "max_cycles": MAX_CYCLES,
        "scale": SCALE,
        "fail_at": FAIL_AT,
        "prewear_points": prewear_points,
        "identity": identity,
        "scenarios": results,
        "wear_leveling": wear_level_section(scaled(2, 4)),
        "remap_completion_probability": (
            remap_completed / remap_attempted if remap_attempted else 0.0
        ),
        "baseline_dead_failures": baseline_dead_failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)

    OUT_DIR.mkdir(exist_ok=True)
    obs.configure(journal=JOURNAL_PATH)
    try:
        report = run_bench()
    finally:
        obs.shutdown()
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"reconfiguration survival, {report['bioassay']} on "
        f"{CHIP_WIDTH}x{CHIP_HEIGHT}, fail_at={report['fail_at']:.0f} "
        f"(scale={report['scale']})",
    ]
    for name, scenario in report["scenarios"].items():
        lines.append(f"  {name} ({scenario['dead_cells']} dead MCs):")
        for point in scenario["lifetime"]:
            base, reco = point["baseline"], point["reconfig"]
            lines.append(
                f"    prewear {point['prewear']:6.0f}"
                f" [{'dead' if point['faults_active'] else 'live'}]"
                f"  baseline={'ok' if base['success'] else base['failure']}"
                f"/{base['cycles']}cy"
                f"  remap={'ok' if reco['success'] else reco['failure']}"
                f"/{reco['cycles']}cy"
                f" remaps={reco['remaps']}"
            )
    wear = report["wear_leveling"]
    lines += [
        f"  healthy-chip identity:  "
        f"{'ok' if report['identity']['ok'] else 'VIOLATED'}",
        f"  remap completion probability: "
        f"{report['remap_completion_probability']:.2f} (gate: 1.00)",
        f"  wear-level peak actuations: "
        f"fixed={wear['fixed']['peak_actuations']:.0f} "
        f"leveled={wear['wear-leveled']['peak_actuations']:.0f}",
        f"  wrote {JSON_PATH}",
        f"  journal {JOURNAL_PATH}",
    ]
    emit("bench_reconfig", "\n".join(lines))

    hard_failures = []
    if report["remap_completion_probability"] != 1.0:
        hard_failures.append(
            f"remap completion probability "
            f"{report['remap_completion_probability']:.2f} != 1.0"
        )
    hard_failures.extend(report["baseline_dead_failures"])
    if not report["identity"]["ok"]:
        hard_failures.append(
            "healthy-chip trace identity violated (reconfig-on run diverged "
            "from the remap-free scheduler)"
        )
    for message in hard_failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if hard_failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
