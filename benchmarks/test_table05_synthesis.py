"""Table V — synthesis model sizes and runtimes.

Sweeps routing-job areas (10x10, 20x20, 30x30) and droplet sizes (3x3..6x6)
with a worst-case health matrix (no zeros), reporting the induced MDP's
states / transitions / choices and the construction / synthesis / total
times — the paper's Table V columns.

The paper's state counts are "droplet placements + 3"; with the single
hazard-sink reduction ours are "placements + 1" (65/50/37/26 for the 10x10
column vs the paper's 67/52/39/28), and the same trends must hold: smaller
droplets mean larger models, model construction dominates the runtime, and
the 30x30 jobs are an order of magnitude slower than 10x10.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.routing_job import RoutingJob
from repro.core.synthesis import synthesize
from repro.geometry.rect import Rect

from benchmarks.common import emit

#: Paper Table V state counts, keyed by (area, droplet).
PAPER_STATES = {
    (10, 3): 67, (10, 4): 52, (10, 5): 39, (10, 6): 28,
    (20, 3): 327, (20, 4): 292, (20, 5): 259, (20, 6): 228,
    (30, 3): 787, (30, 4): 732, (30, 5): 679, (30, 6): 628,
}

#: Morphing disabled across 3x3..6x6 (see DESIGN.md): reproduces the paper's
#: positions-only state spaces.
MAX_ASPECT = 4 / 3


def _job(area: int, droplet: int) -> RoutingJob:
    start = Rect(1, 1, droplet, droplet)
    goal = Rect(area - droplet + 1, area - droplet + 1, area, area)
    return RoutingJob(start, goal, Rect(1, 1, area, area))


def test_table5_synthesis_runtime(benchmark):
    health = np.full((40, 40), 3)
    rows = []
    results = {}
    for area in (10, 20, 30):
        for droplet in (3, 4, 5, 6):
            result = synthesize(
                _job(area, droplet), health, max_aspect=MAX_ASPECT
            )
            results[(area, droplet)] = result
            model = result.model
            rows.append([
                f"{area}x{area}", f"{droplet}x{droplet}",
                model.num_states, model.num_transitions, model.num_choices,
                f"{result.construction_time:.3f}",
                f"{result.solve_time:.3f}",
                f"{result.total_time:.3f}",
                PAPER_STATES[(area, droplet)],
            ])
    emit(
        "table05_synthesis",
        format_table(
            ["RJ area", "droplet", "#states", "#transitions", "#choices",
             "construct (s)", "solve (s)", "total (s)", "paper #states"],
            rows,
            title="Table V — model sizes and synthesis runtimes",
        ),
    )

    for area in (10, 20, 30):
        states = [results[(area, d)].model.num_states for d in (3, 4, 5, 6)]
        # Paper trend: models shrink as droplets grow; counts match the
        # paper's placements-plus-sinks structure within the sink-count
        # convention (ours +1, PRISM's +3).
        assert states == sorted(states, reverse=True)
        for d in (3, 4, 5, 6):
            placements = (area - d + 1) ** 2
            assert results[(area, d)].model.num_states == placements + 1
            assert abs(PAPER_STATES[(area, d)] - placements) <= 3
    # Paper trend: construction dominates total synthesis time.
    big = results[(30, 3)]
    assert big.construction_time > big.solve_time
    # Paper trend: every strategy exists under the worst-case healthy matrix.
    assert all(r.exists for r in results.values())

    benchmark.pedantic(
        lambda: synthesize(_job(20, 4), health, max_aspect=MAX_ASPECT),
        rounds=3, iterations=1,
    )
