"""Parallel synthesis engine bench: serial vs pooled vs warm-store execution.

Executes whole bioassays on the 60x30 evaluation chip under four
configurations of the synthesis engine:

* **serial** — no engine; synthesis happens synchronously at MO activation
  (the pre-engine scheduler, byte-identical behaviour);
* **pooled** — a worker pool with start-of-run pre-synthesis only
  (``HybridScheduler.presynthesize``; per-cycle prefetch off);
* **pooled+prefetch** — pre-synthesis plus the scheduler's per-cycle
  speculative prefetch of soon-to-activate MOs;
* **warm-store** — pooled+prefetch plus a persistent strategy store that a
  priming pass has already filled, so (almost) every synthesis is a store
  hit.

All configurations run the same chips and simulation seeds; speculation
changes latency only, so routed cycles must agree — the bench asserts it.

Results are printed, appended to ``benchmarks/out/bench_parallel.txt``, and
written as ``BENCH_parallel.json`` at the repository root:

```json
{
  "bench": "parallel",
  "chip": {"width": 60, "height": 30},
  "cores": 8, "workers": 8, "scale": "quick",
  "bioassays": ["master-mix", "cep"],
  "configs": {
    "serial": {"mean_s": ..., "runs": [...], "cycles": [...]},
    "pooled": {..., "engine": {...}},
    "pooled_prefetch": {...},
    "warm_store": {...}
  },
  "batched": {"speedup": 5.1, "per_rj_throughput": ...,
               "batched_throughput": ..., "certified_gap_max": ...,
               "trace_identical": true, "counters": {...}},
  "speedup_pooled_prefetch": 1.7,
  "speedup_warm_store": 6.2
}
```

The ``batched`` section is the batched-solver-core microbench: a cep
resynthesis storm solved once through the pre-batch per-RJ loop and once
through per-epoch ``synthesize_batch`` calls.  Bit-identity of every
result, trace identity of a batched-presynthesis execution, and the
certified interval gap are *always* asserted (hard failures); the >= 5x
throughput target is gated under ``--enforce`` at full scale.

The ISSUE's 1.5x pooled+prefetch target assumes a >= 4-core runner; on
fewer cores the pool cannot beat the serial path and the gate is reported
but only *enforced* with ``--enforce`` (CI keeps it soft).  The warm-store
target (5x) holds on any core count because store hits skip synthesis
entirely.

Run with ``PYTHONPATH=src python benchmarks/bench_parallel.py`` (honours
``REPRO_BENCH_SCALE=quick|full``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import CHIP_HEIGHT, CHIP_WIDTH, SCALE, emit, scaled  # noqa: E402

from repro import perf  # noqa: E402
from repro.bioassay.library import EVALUATION_BIOASSAYS  # noqa: E402
from repro.bioassay.planner import plan  # noqa: E402
from repro.biochip.chip import MedaChip  # noqa: E402
from repro.biochip.simulator import MedaSimulator  # noqa: E402
from repro.biochip.trace import ExecutionTrace  # noqa: E402
from repro.core.baseline import AdaptiveRouter  # noqa: E402
from repro.core.fastmdp import clear_build_template_cache  # noqa: E402
from repro.core.scheduler import HybridScheduler  # noqa: E402
from repro.core.synthesis import (  # noqa: E402
    SYNTHESIS_EPSILON,
    BatchRequest,
    clear_batch_value_memo,
    force_field_from_health,
    synthesize_batch,
    synthesize_with_field,
)
from repro.engine import StrategyStore, SynthesisEngine  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_parallel.json"

BIOASSAYS = ("master-mix", "cep")
MAX_CYCLES = 1200


def sample_chip(seed: int) -> MedaChip:
    # Fast-degrading chips: zone health keeps crossing quantization levels
    # mid-run, so the scheduler resynthesizes repeatedly — the synthesis-
    # dominated regime the engine is built for.
    return MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(seed),
        tau_range=(0.75, 0.90), c_range=(300.0, 800.0),
    )


def execute(graph, chip_seed: int, engine: SynthesisEngine | None,
            presynth: bool) -> tuple[float, int]:
    """One bioassay execution; returns (wall seconds, routed cycles)."""
    chip = sample_chip(chip_seed)
    router = AdaptiveRouter(engine=engine)
    scheduler = HybridScheduler(graph, router, CHIP_WIDTH, CHIP_HEIGHT)
    sim = MedaSimulator(chip, np.random.default_rng(chip_seed + 1))
    t0 = time.perf_counter()
    if presynth and engine is not None and engine.pooled:
        scheduler.presynthesize(chip.health())
    result = sim.run(scheduler, max_cycles=MAX_CYCLES)
    elapsed = time.perf_counter() - t0
    if not result.success:
        raise RuntimeError(
            f"bench execution failed ({result.failure_reason}); "
            f"chip_seed={chip_seed}"
        )
    return elapsed, result.cycles


def run_config(graphs, repeats: int, make_engine, presynth: bool,
               prefetch: bool) -> dict:
    """Run every (bioassay, repeat) under one engine configuration."""
    runs, cycles = [], []
    engine_counters: dict[str, int] = {}
    for rep in range(repeats):
        for idx, graph in enumerate(graphs):
            engine = make_engine()
            if engine is not None:
                engine.prefetch_enabled = prefetch
            try:
                elapsed, routed = execute(
                    graph, chip_seed=100 + idx * 17 + rep, engine=engine,
                    presynth=presynth,
                )
            finally:
                if engine is not None:
                    engine.close()
                    for key, value in engine.counters().items():
                        engine_counters[key] = (
                            engine_counters.get(key, 0) + value
                        )
            runs.append(elapsed)
            cycles.append(routed)
    out = {
        "mean_s": float(np.mean(runs)),
        "total_s": float(np.sum(runs)),
        "runs": [round(r, 4) for r in runs],
        "cycles": cycles,
    }
    if engine_counters:
        out["engine"] = engine_counters
    return out


def _static_jobs(graph) -> list:
    """The statically decomposed routing jobs of a planned bioassay."""
    scheduler = HybridScheduler(
        graph, AdaptiveRouter(), CHIP_WIDTH, CHIP_HEIGHT
    )
    return [
        job
        for name in scheduler._order
        for job in scheduler._states[name].decomposed.jobs
        if not job.is_dispense
    ]


def _storm_healths(epochs: int) -> list[np.ndarray]:
    """Sensed health snapshots at the scheduler's resynthesis cadence.

    One actuation step between sensings, keeping only the snapshots where
    the health actually changed — exactly when the hybrid scheduler
    resynthesizes.  This cadence matters: consecutive epochs share most of
    their per-job force windows, which is the redundancy the batch
    kernel's dedup/memo exploits (and a real storm exhibits).
    """
    chip = sample_chip(107)
    healths: list[np.ndarray] = []
    prev: np.ndarray | None = None
    while len(healths) < epochs:
        chip.apply_actuation(np.ones((CHIP_WIDTH, CHIP_HEIGHT)))
        h = chip.health()
        if prev is None or not np.array_equal(h, prev):
            healths.append(h.copy())
            prev = h.copy()
    return healths


def run_batched(graphs) -> dict:
    """Presynthesis throughput: per-RJ path vs the batched solver core.

    Replays a resynthesis storm — every static RJ of the cep assay
    re-solved at each health epoch — through (a) the pre-batch per-RJ
    loop (independent ``synthesize_with_field`` calls with a cold template
    cache, the cost the engine's per-job submission paid) and (b) one
    ``synthesize_batch`` call per epoch (what a batched presynthesis wave
    runs).  Asserts the two produce bit-identical strategies and values,
    and that every certified interval gap stays within epsilon; the >= 5x
    throughput target is reported and gated by ``--enforce`` at full
    scale.
    """
    jobs = _static_jobs(graphs[BIOASSAYS.index("cep")])
    epochs = scaled(8, 32)
    healths = _storm_healths(epochs)
    n = epochs * len(jobs)

    # -- per-RJ baseline: independent solves, cold template cache ------------
    clear_build_template_cache()
    clear_batch_value_memo()
    t0 = time.perf_counter()
    solo: list[list] = []
    for health in healths:
        field = force_field_from_health(health)
        row = []
        for job in jobs:
            clear_build_template_cache()
            row.append(synthesize_with_field(job, field))
        solo.append(row)
    solo_s = time.perf_counter() - t0

    # -- batched: one synthesize_batch call per epoch ------------------------
    clear_build_template_cache()
    clear_batch_value_memo()
    perf.reset()
    t0 = time.perf_counter()
    batched: list[list] = []
    for health in healths:
        field = force_field_from_health(health)
        batched.append(
            synthesize_batch([BatchRequest(job, field) for job in jobs])
        )
    batched_s = time.perf_counter() - t0
    counters = perf.snapshot()

    for row_b, row_s in zip(batched, solo):
        for rb, rs in zip(row_b, row_s):
            identical = (
                rb.expected_cycles == rs.expected_cycles
                and (rb.strategy is None) == (rs.strategy is None)
                and (
                    rb.strategy is None
                    or (
                        rb.strategy.decisions == rs.strategy.decisions
                        and rb.strategy.values == rs.strategy.values
                    )
                )
            )
            if not identical:
                raise RuntimeError(
                    "batched result differs from the per-RJ path "
                    "(bit-identity violation)"
                )

    gap_max = counters.get("vi.interval.gap.max", float("nan"))
    if not gap_max <= SYNTHESIS_EPSILON:
        raise RuntimeError(
            f"certified interval gap {gap_max!r} exceeds epsilon "
            f"{SYNTHESIS_EPSILON!r} in the batched storm"
        )

    return {
        "bioassay": "cep",
        "epochs": epochs,
        "rjs": len(jobs),
        "solves": n,
        "per_rj_s": round(solo_s, 4),
        "batched_s": round(batched_s, 4),
        "per_rj_throughput": n / solo_s,
        "batched_throughput": n / batched_s,
        "speedup": solo_s / batched_s,
        "certified_gap_max": gap_max,
        "counters": {
            key: counters.get(key, 0.0)
            for key in (
                "vi.batch.solves", "vi.batch.models", "vi.batch.dedup",
                "vi.batch.memo.hits", "vi.batch.memo.misses",
                "vi.batch.precompute.hits", "vi.batch.precompute.misses",
                "fastmdp.template.hits",
            )
        },
    }


def assert_batched_trace_identity(graph) -> None:
    """Serial vs batched-presynthesis execution: traces must be identical.

    The batched run uses a pool-less engine, so presynthesis runs the
    batched kernel *in-process* — the trace comparison is deterministic on
    any core count and directly exercises the satellite-6 sync fallback.
    """

    def run(engine, presynth: bool):
        chip = sample_chip(113)
        router = AdaptiveRouter(engine=engine)
        scheduler = HybridScheduler(graph, router, CHIP_WIDTH, CHIP_HEIGHT)
        trace = ExecutionTrace()
        sim = MedaSimulator(chip, np.random.default_rng(114), trace=trace)
        if presynth:
            scheduler.presynthesize(chip.health())
        result = sim.run(scheduler, max_cycles=MAX_CYCLES)
        return result, trace

    serial_result, serial_trace = run(None, presynth=False)
    engine = SynthesisEngine(workers=1)
    try:
        batched_result, batched_trace = run(engine, presynth=True)
    finally:
        engine.close()
    identical = (
        batched_result.cycles == serial_result.cycles
        and len(batched_trace.frames) == len(serial_trace.frames)
        and all(
            pf.cycle == sf.cycle
            and pf.droplets == sf.droplets
            and pf.moving == sf.moving
            for sf, pf in zip(serial_trace.frames, batched_trace.frames)
        )
    )
    if not identical:
        raise RuntimeError(
            "batched presynthesis changed the execution trace "
            "(determinism violation)"
        )


def run_bench(workers: int) -> dict:
    repeats = scaled(1, 3)
    graphs = [
        plan(EVALUATION_BIOASSAYS[name](), CHIP_WIDTH, CHIP_HEIGHT)
        for name in BIOASSAYS
    ]

    configs: dict[str, dict] = {}
    configs["serial"] = run_config(
        graphs, repeats, lambda: None, presynth=False, prefetch=False
    )
    # admission_floor matches the CLI/serve engines: a lone assay on a
    # single-core host skips speculation it cannot overlap, so the pooled
    # configs can never lose to serial by paying for useless IPC.
    configs["pooled"] = run_config(
        graphs, repeats,
        lambda: SynthesisEngine(workers=workers, admission_floor=True),
        presynth=True, prefetch=False,
    )
    configs["pooled_prefetch"] = run_config(
        graphs, repeats,
        lambda: SynthesisEngine(workers=workers, admission_floor=True),
        presynth=True, prefetch=True,
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store_path = Path(tmp) / "strategies.sqlite"

        def warm_engine() -> SynthesisEngine:
            return SynthesisEngine(
                workers=workers, store=StrategyStore(store_path),
                admission_floor=True,
            )

        # Priming pass fills the store; only the second (fully warm) pass
        # is measured — the cross-run sweep scenario of EXPERIMENTS.md.
        run_config(graphs, repeats, warm_engine, presynth=True, prefetch=True)
        configs["warm_store"] = run_config(
            graphs, repeats, warm_engine, presynth=True, prefetch=True
        )

    for name, cfg in configs.items():
        if cfg["cycles"] != configs["serial"]["cycles"]:
            raise RuntimeError(
                f"determinism violation: config {name!r} routed "
                f"{cfg['cycles']} vs serial {configs['serial']['cycles']}"
            )

    batched = run_batched(graphs)
    assert_batched_trace_identity(graphs[BIOASSAYS.index("cep")])
    batched["trace_identical"] = True

    serial_mean = configs["serial"]["mean_s"]
    return {
        "bench": "parallel",
        "chip": {"width": CHIP_WIDTH, "height": CHIP_HEIGHT},
        "cores": os.cpu_count(),
        "workers": workers,
        "scale": SCALE,
        "bioassays": list(BIOASSAYS),
        "repeats": repeats,
        "max_cycles": MAX_CYCLES,
        "configs": configs,
        "batched": batched,
        "speedup_pooled": serial_mean / configs["pooled"]["mean_s"],
        "speedup_pooled_prefetch":
            serial_mean / configs["pooled_prefetch"]["mean_s"],
        "speedup_warm_store": serial_mean / configs["warm_store"]["mean_s"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=0,
        help="pool size for the pooled configs (0 = one per core)",
    )
    parser.add_argument(
        "--enforce", action="store_true",
        help="fail (exit 1) when the speedup targets are missed instead of "
             "just reporting them",
    )
    args = parser.parse_args(argv)

    report = run_bench(args.workers)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"whole-bioassay execution wall time, "
        f"{report['chip']['width']}x{report['chip']['height']} chip, "
        f"{'+'.join(report['bioassays'])}, {report['cores']} cores, "
        f"{report['workers'] or 'auto'} workers (scale={report['scale']})",
    ]
    for name in ("serial", "pooled", "pooled_prefetch", "warm_store"):
        cfg = report["configs"][name]
        lines.append(f"  {name:16s} mean {cfg['mean_s']:7.2f} s"
                     f"  total {cfg['total_s']:7.2f} s")
    batched = report["batched"]
    lines += [
        f"  speedup pooled:          {report['speedup_pooled']:.2f}x",
        f"  speedup pooled+prefetch: {report['speedup_pooled_prefetch']:.2f}x"
        f"  (target 1.5x on >=4 cores)",
        f"  speedup warm store:      {report['speedup_warm_store']:.2f}x"
        f"  (target 5x)",
        f"  batched presynthesis ({batched['bioassay']}, "
        f"{batched['epochs']} epochs x {batched['rjs']} RJs): "
        f"per-RJ {batched['per_rj_throughput']:.1f} RJ/s vs batched "
        f"{batched['batched_throughput']:.1f} RJ/s = "
        f"{batched['speedup']:.2f}x  (target 5x at full scale; "
        f"gap_max {batched['certified_gap_max']:.2e}, bit-identical, "
        f"trace-identical)",
        f"  wrote {JSON_PATH}",
    ]
    emit("bench_parallel", "\n".join(lines))

    cores = report["cores"] or 1
    failed = []
    # Soft regression guard (never enforced): with the admission floor the
    # pooled config must be roughly serial-speed even on one core — a
    # clear loss means speculation is being admitted with nothing to
    # overlap it.
    if report["speedup_pooled"] < 0.90:
        print(
            f"WARN: pooled speedup {report['speedup_pooled']:.2f}x < 0.90x "
            f"— single-assay pooled regression (admission floor "
            f"ineffective?)",
            file=sys.stderr,
        )
    if cores >= 4 and report["speedup_pooled_prefetch"] < 1.5:
        failed.append(
            f"pooled+prefetch speedup "
            f"{report['speedup_pooled_prefetch']:.2f}x < 1.5x on "
            f"{cores} cores"
        )
    if report["speedup_warm_store"] < 5.0:
        failed.append(
            f"warm-store speedup {report['speedup_warm_store']:.2f}x < 5x"
        )
    # The batched-kernel throughput target assumes the full-scale storm
    # (32 epochs); the quick storm is too short to amortize the first
    # epoch's cold builds, so it is reported but not gated.
    if SCALE == "full" and batched["speedup"] < 5.0:
        failed.append(
            f"batched presynthesis speedup {batched['speedup']:.2f}x < 5x"
        )
    for message in failed:
        print(f"{'FAIL' if args.enforce else 'WARN'}: {message}",
              file=sys.stderr)
    return 1 if (failed and args.enforce) else 0


if __name__ == "__main__":
    raise SystemExit(main())
