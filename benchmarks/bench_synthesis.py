"""Per-RJ synthesis latency bench: pre-PR pipeline vs the fast path.

Measures the distribution of per-RJ synthesis wall time (model construction
plus value-iteration solve) on the 60x30 evaluation chip under a monotone
degrading health sequence — the hot loop the hybrid scheduler pays every
time zone health changes (Table V's construction/solve split).

Two pipelines are compared on identical workloads:

* **pre**  — the scalar reference builder (``build_routing_model_scalar``,
  the pre-optimization ``build_routing_model_fast``) followed by a
  cold-started ``Rmin`` solve;
* **post** — the vectorized builder with the process-global action-spec
  memo, plus warm-started value iteration seeded from the previous
  fixpoint of the same job (what ``AdaptiveRouter`` does on a library
  miss).

Results are printed, appended to ``benchmarks/out/bench_synthesis.txt``,
and written as ``BENCH_synthesis.json`` at the repository root:

```json
{
  "bench": "synthesis",
  "chip": {"width": 60, "height": 30},
  "scale": "quick",
  "jobs": 4, "health_steps": 4, "samples": 16,
  "pre":  {"mean_ms": ..., "p50_ms": ..., "p95_ms": ...,
            "construct_mean_ms": ..., "solve_mean_ms": ...},
  "post": {... same keys ...},
  "batched": {"solves": ..., "per_rj_throughput": ...,
               "batched_throughput": ..., "speedup": ...},
  "speedup_mean": 2.7,
  "perf_counters": {"fastmdp.shape_memo.hit": ..., ...}
}
```

Run with ``PYTHONPATH=src python benchmarks/bench_synthesis.py`` (honours
``REPRO_BENCH_SCALE=quick|full``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import CHIP_HEIGHT, CHIP_WIDTH, SCALE, emit, scaled  # noqa: E402

from repro import perf  # noqa: E402
from repro.core.fastmdp import (  # noqa: E402
    build_routing_model_scalar,
    clear_build_template_cache,
    clear_shape_action_memo,
)
from repro.core.routing_job import RoutingJob  # noqa: E402
from repro.core.synthesis import (  # noqa: E402
    SYNTHESIS_EPSILON,
    BatchRequest,
    clear_batch_value_memo,
    force_field_from_health,
    synthesize_batch,
    synthesize_with_field,
)
from repro.geometry.rect import Rect  # noqa: E402
from repro.modelcheck.compiled import solve_reach_avoid_reward  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_synthesis.json"


def workload_jobs() -> list[RoutingJob]:
    """Routing jobs spread across the evaluation chip (mixed distances)."""
    W, H = CHIP_WIDTH, CHIP_HEIGHT
    full = Rect(1, 1, W, H)
    return [
        RoutingJob(Rect(2, 2, 4, 4), Rect(50, 25, 52, 27), full),
        RoutingJob(Rect(55, 3, 57, 5), Rect(5, 24, 7, 26), full),
        RoutingJob(Rect(28, 2, 30, 4), Rect(30, 26, 32, 28),
                   Rect(20, 1, 40, H)),
        RoutingJob(Rect(3, 14, 5, 16), Rect(54, 14, 56, 16),
                   Rect(1, 8, W, 22)),
    ]


def health_sequence(rng: np.random.Generator, steps: int) -> list[np.ndarray]:
    """A monotone non-increasing 2-bit health trajectory (fresh chip first)."""
    h = np.full((CHIP_WIDTH, CHIP_HEIGHT), 3, dtype=int)
    seq = [h.copy()]
    for _ in range(steps - 1):
        drop = rng.random(h.shape) < 0.01
        h = np.where(drop, np.maximum(h - 1, 1), h)
        seq.append(h.copy())
    return seq


def _stats(samples_ms: list[float]) -> dict[str, float]:
    arr = np.asarray(samples_ms)
    return {
        "mean_ms": float(arr.mean()),
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
    }


def run_bench() -> dict:
    rng = np.random.default_rng(20210201)  # DATE'21 vintage
    jobs = workload_jobs()
    steps = scaled(4, 10)
    healths = health_sequence(rng, steps)

    pre_total, pre_construct, pre_solve = [], [], []
    post_total, post_construct, post_solve = [], [], []

    # -- pre-PR pipeline: scalar builder + cold solve ------------------------
    for health in healths:
        forces = force_field_from_health(health).forces
        for job in jobs:
            t0 = time.perf_counter()
            model = build_routing_model_scalar(job, forces)
            t1 = time.perf_counter()
            solve_reach_avoid_reward(model.compiled)
            t2 = time.perf_counter()
            pre_construct.append((t1 - t0) * 1e3)
            pre_solve.append((t2 - t1) * 1e3)
            pre_total.append((t2 - t0) * 1e3)

    # -- post-PR pipeline: vectorized builder + memo + warm-started VI -------
    clear_shape_action_memo()
    perf.reset()
    warm: dict[tuple, dict] = {}
    for health in healths:
        field = force_field_from_health(health)
        for job in jobs:
            result = synthesize_with_field(
                job, field, warm_values=warm.get(job.key())
            )
            post_construct.append(result.construction_time * 1e3)
            post_solve.append(result.solve_time * 1e3)
            post_total.append(result.total_time * 1e3)
            if result.strategy is not None:
                warm[job.key()] = result.strategy.values
    counters = perf.snapshot()

    # -- batched pipeline: one synthesize_batch call per health epoch --------
    # Solve-throughput comparison (RJ/s): the same workload through the
    # batched solver core, cold caches, asserting bit-identity with the
    # cold per-RJ path it replaces.
    clear_build_template_cache()
    clear_batch_value_memo()
    solo_results = []
    t0 = time.perf_counter()
    for health in healths:
        field = force_field_from_health(health)
        for job in jobs:
            clear_build_template_cache()
            solo_results.append(synthesize_with_field(job, field))
    solo_elapsed = time.perf_counter() - t0
    clear_build_template_cache()
    clear_batch_value_memo()
    batched_results = []
    t0 = time.perf_counter()
    for health in healths:
        field = force_field_from_health(health)
        batched_results.extend(
            synthesize_batch([BatchRequest(job, field) for job in jobs])
        )
    batched_elapsed = time.perf_counter() - t0
    for rb, rs in zip(batched_results, solo_results):
        if rb.expected_cycles != rs.expected_cycles or (
            rb.strategy is not None
            and (
                rb.strategy.decisions != rs.strategy.decisions
                or rb.strategy.values != rs.strategy.values
            )
        ):
            raise RuntimeError(
                "synthesize_batch diverged from synthesize_with_field"
            )
    solves = len(jobs) * len(healths)
    batched = {
        "solves": solves,
        "per_rj_s": round(solo_elapsed, 4),
        "batched_s": round(batched_elapsed, 4),
        "per_rj_throughput": solves / solo_elapsed,
        "batched_throughput": solves / batched_elapsed,
        "speedup": solo_elapsed / batched_elapsed,
    }

    pre = _stats(pre_total)
    pre["construct_mean_ms"] = float(np.mean(pre_construct))
    pre["solve_mean_ms"] = float(np.mean(pre_solve))
    post = _stats(post_total)
    post["construct_mean_ms"] = float(np.mean(post_construct))
    post["solve_mean_ms"] = float(np.mean(post_solve))

    # Certified-bound quality over every post-pipeline solve: the interval
    # solver records each result's max bound width in the vi.interval.gap
    # histogram, so the bench can assert soundness, not just speed.
    certified = {
        "epsilon": SYNTHESIS_EPSILON,
        "solves": counters.get("vi.interval.gap.count", 0.0),
        "gap_max": counters.get("vi.interval.gap.max", float("nan")),
        "gap_mean": counters.get("vi.interval.gap.mean", float("nan")),
        "gap_p99": counters.get("vi.interval.gap.p99", float("nan")),
    }

    return {
        "bench": "synthesis",
        "chip": {"width": CHIP_WIDTH, "height": CHIP_HEIGHT},
        "scale": SCALE,
        "jobs": len(jobs),
        "health_steps": steps,
        "samples": len(pre_total),
        "pre": pre,
        "post": post,
        "batched": batched,
        "certified": certified,
        "speedup_mean": pre["mean_ms"] / post["mean_ms"],
        "perf_counters": {k: counters[k] for k in sorted(counters)},
    }


def main() -> int:
    report = run_bench()
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    lines = [
        f"per-RJ synthesis latency, {report['chip']['width']}x"
        f"{report['chip']['height']} chip, {report['samples']} samples "
        f"(scale={report['scale']})",
        f"  pre  (scalar build + cold VI):     mean {report['pre']['mean_ms']:8.1f} ms"
        f"  p50 {report['pre']['p50_ms']:8.1f}  p95 {report['pre']['p95_ms']:8.1f}",
        f"  post (vectorized build + warm VI): mean {report['post']['mean_ms']:8.1f} ms"
        f"  p50 {report['post']['p50_ms']:8.1f}  p95 {report['post']['p95_ms']:8.1f}",
        f"  speedup (mean total): {report['speedup_mean']:.2f}x",
        f"  batched solver core:  "
        f"{report['batched']['per_rj_throughput']:.1f} RJ/s per-RJ vs "
        f"{report['batched']['batched_throughput']:.1f} RJ/s batched "
        f"({report['batched']['speedup']:.2f}x, bit-identical)",
        f"  certified gaps over {int(report['certified']['solves'])} solves:"
        f"  max {report['certified']['gap_max']:.2e}"
        f"  mean {report['certified']['gap_mean']:.2e}"
        f"  (epsilon {report['certified']['epsilon']:.0e})",
        f"  wrote {JSON_PATH}",
    ]
    emit("bench_synthesis", "\n".join(lines))
    cert = report["certified"]
    if not cert["solves"] or not cert["gap_max"] <= cert["epsilon"]:
        print("FAIL: certified interval gap exceeds epsilon "
              f"(max {cert['gap_max']!r} > {cert['epsilon']!r})",
              file=sys.stderr)
        return 1
    if report["speedup_mean"] < 1.5:
        print("FAIL: speedup below the 1.5x acceptance threshold",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
