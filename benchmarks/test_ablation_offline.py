"""Ablation — offline strategy-library pre-population (Sec. VI-D).

The hybrid scheme's motivation: on-demand synthesis delays microfluidic
operations, while an offline library built against a pristine chip absorbs
the synthesis cost before the bioassay starts.  This bench measures, per
bioassay, the offline precomputation time and the *online* synthesis calls
of a first execution with a cold vs a warmed library.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import run_execution
from repro.analysis.tables import format_table
from repro.bioassay.library import EVALUATION_BIOASSAYS
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.core.baseline import AdaptiveRouter
from repro.core.offline import precompute_library

from benchmarks.common import CHIP_HEIGHT, CHIP_WIDTH, emit


def _fresh_chip(seed: int) -> MedaChip:
    return MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(seed),
        tau_range=(0.95, 0.99), c_range=(5000, 9000),
    )


def test_ablation_offline_library(benchmark):
    rows = []
    improvements = []
    for name in sorted(EVALUATION_BIOASSAYS):
        graph = plan(EVALUATION_BIOASSAYS[name](), CHIP_WIDTH, CHIP_HEIGHT)

        cold = AdaptiveRouter()
        result = run_execution(graph, _fresh_chip(1), cold,
                               np.random.default_rng(2), 1200)
        assert result.success
        cold_syntheses = cold.syntheses

        warm = AdaptiveRouter()
        report = precompute_library(graph, warm, CHIP_WIDTH, CHIP_HEIGHT)
        offline = warm.syntheses
        result = run_execution(graph, _fresh_chip(1), warm,
                               np.random.default_rng(2), 1200)
        assert result.success
        online = warm.syntheses - offline

        improvements.append(cold_syntheses - online)
        rows.append([
            name, report.jobs, f"{report.seconds:.2f}",
            cold_syntheses, online,
        ])
    emit(
        "ablation_offline",
        format_table(
            ["bioassay", "routing jobs", "offline (s)",
             "online syntheses (cold)", "online syntheses (warm)"],
            rows,
            title="Ablation — offline library pre-population (pristine chip)",
        ),
    )

    # Warming the library absorbs synthesis work for every bioassay.
    assert all(delta >= 0 for delta in improvements)
    assert sum(improvements) > 0

    graph = plan(EVALUATION_BIOASSAYS["covid-rat"](), CHIP_WIDTH, CHIP_HEIGHT)
    benchmark.pedantic(
        lambda: precompute_library(
            graph, AdaptiveRouter(), CHIP_WIDTH, CHIP_HEIGHT
        ),
        rounds=2, iterations=1,
    )
