"""Table IV — MO-to-RJ conversion for the Fig. 12 example bioassay.

Runs the RJ helper on the four-MO sequence graph (two dispenses, a mix, a
magnetic-sensing op) on a 60x30 chip and checks every derived quantity the
paper tabulates: droplet sizes, size errors, start/goal locations and hazard
bounds.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.bioassay.ops import MO, MOType
from repro.core.droplet import OFF_CHIP
from repro.core.routing_job import RJHelper
from repro.geometry.rect import Rect

from benchmarks.common import emit

W, H = 60, 30


def fig12_mos() -> list[MO]:
    return [
        MO("M1", MOType.DIS, locs=((17.5, 2.5),), size=(4, 4)),
        MO("M2", MOType.DIS, locs=((17.5, 28.5),), size=(4, 4)),
        MO("M3", MOType.MIX, pre=("M1", "M2"), locs=((10.5, 15.5),)),
        MO("M4", MOType.MAG, pre=("M3",), locs=((40.5, 15.5),)),
    ]


#: The paper's Table IV rows: (MO, RJ, start, goal, hazard).
PAPER_ROWS = [
    ("M1", "RJ1.0", OFF_CHIP, Rect(16, 1, 19, 4), Rect(13, 1, 22, 7)),
    ("M2", "RJ2.0", OFF_CHIP, Rect(16, 27, 19, 30), Rect(13, 24, 22, 30)),
    ("M3", "RJ3.0", Rect(16, 1, 19, 4), Rect(9, 14, 12, 17), Rect(6, 1, 22, 20)),
    ("M3", "RJ3.1", Rect(16, 27, 19, 30), Rect(9, 14, 12, 17), Rect(6, 11, 22, 30)),
    ("M4", "RJ4.0", Rect(8, 14, 13, 18), Rect(38, 14, 43, 18), Rect(5, 11, 46, 21)),
]


def test_table4_rj_helper(benchmark):
    helper = RJHelper(W, H)
    decomposed = {mo.name: helper.decompose(mo) for mo in fig12_mos()}

    produced = []
    for name, dec in decomposed.items():
        for i, job in enumerate(dec.jobs):
            produced.append((name, f"RJ{name[1]}.{i}", job))

    rows = []
    for (mo_name, rj_name, job), (p_mo, p_rj, p_start, p_goal, p_hazard) in zip(
        produced, PAPER_ROWS
    ):
        match = (job.start, job.goal, job.hazard) == (p_start, p_goal, p_hazard)
        rows.append([
            mo_name, rj_name,
            str(job.start), str(job.goal), str(job.hazard),
            "ok" if match else "MISMATCH",
        ])
        assert mo_name == p_mo and rj_name == p_rj
        assert job.start == p_start, f"{rj_name} start"
        assert job.goal == p_goal, f"{rj_name} goal"
        assert job.hazard == p_hazard, f"{rj_name} hazard"

    # Size arithmetic of the mix product (Table IV's Size column for M4).
    merged = decomposed["M3"].output_patterns[0]
    assert (merged.width, merged.height) == (6, 5)
    assert decomposed["M3"].size_errors[0] == 0.0625

    emit(
        "table04_rj_helper",
        format_table(
            ["MO", "RJ", "start", "goal", "hazard", "vs paper"],
            rows,
            title="Table IV — MO-to-RJ decomposition (60x30 chip)",
        ),
    )

    def decompose_all():
        h = RJHelper(W, H)
        return [h.decompose(mo) for mo in fig12_mos()]

    benchmark(decompose_all)
