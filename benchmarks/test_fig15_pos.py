"""Fig. 15 — probability of successful completion vs the time budget k_max.

Reproduces the Sec. VII-B experiment: each chip (c ~ U(150, 350),
tau ~ U(0.5, 0.9)) is reused for several consecutive executions of the same
bioassay; the PoS at a budget ``k_max`` is the fraction of executions that
completed within it.  The baseline's fixed shortest paths re-wear the same
microelectrodes run after run, so its completion times inflate quickly;
adaptive routing spreads the wear and keeps the PoS high.

(The paper's chips use c ~ U(200, 500) over somewhat longer protocols; the
slightly faster trapping compensates for our compressed sequencing graphs —
see EXPERIMENTS.md.)

Paper shape: adaptive PoS dominates baseline PoS at every budget, with the
largest gaps on the long bioassays (serial dilution, NuIP).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import (
    chip_factory_for,
    probability_of_success,
    run_execution,
)
from repro.analysis.tables import format_table
from repro.bioassay.library import EVALUATION_BIOASSAYS
from repro.bioassay.planner import plan
from repro.core.baseline import AdaptiveRouter, BaselineRouter

from benchmarks.common import CHIP_HEIGHT, CHIP_WIDTH, emit, scaled

BUDGET_FACTORS = (1.05, 1.15, 1.3, 1.5, 1.75, 2.0, 2.5)
TAU_RANGE = (0.5, 0.9)
C_RANGE = (150.0, 350.0)


def _healthy_cycles(graph) -> int:
    """Cycles of one execution on a pristine chip (sets the budget scale)."""
    chip_factory = chip_factory_for(
        CHIP_WIDTH, CHIP_HEIGHT, tau_range=(0.95, 0.99), c_range=(5000, 9000)
    )
    chip = chip_factory(np.random.default_rng(0))
    result = run_execution(
        graph, chip, BaselineRouter(CHIP_WIDTH, CHIP_HEIGHT),
        np.random.default_rng(1), max_cycles=2000,
    )
    assert result.success
    return result.cycles


def test_fig15_probability_of_success(benchmark):
    n_chips = scaled(3, 10)
    runs_per_chip = scaled(8, 10)
    chip_factory = chip_factory_for(
        CHIP_WIDTH, CHIP_HEIGHT, tau_range=TAU_RANGE, c_range=C_RANGE
    )

    blocks = []
    curves: dict[str, tuple] = {}
    for name in sorted(EVALUATION_BIOASSAYS):
        graph = plan(EVALUATION_BIOASSAYS[name](), CHIP_WIDTH, CHIP_HEIGHT)
        c0 = _healthy_cycles(graph)
        k_grid = sorted({max(int(round(c0 * f)), c0 + 1) for f in BUDGET_FACTORS})
        adaptive = probability_of_success(
            graph, chip_factory, lambda w, h: AdaptiveRouter(),
            k_max_values=k_grid, n_chips=n_chips,
            runs_per_chip=runs_per_chip, seed=15,
        )
        baseline = probability_of_success(
            graph, chip_factory, lambda w, h: BaselineRouter(w, h),
            k_max_values=k_grid, n_chips=n_chips,
            runs_per_chip=runs_per_chip, seed=15,
        )
        curves[name] = (adaptive, baseline)
        rows = [
            [k, f"{pa:.2f}", f"{pb:.2f}"]
            for k, pa, pb in zip(k_grid, adaptive.probability,
                                 baseline.probability)
        ]
        blocks.append(format_table(
            ["k_max", "PoS adaptive", "PoS baseline"],
            rows,
            title=(f"Fig. 15 — {name} (healthy run = {c0} cycles, "
                   f"{adaptive.executions} executions per curve)"),
        ))
    emit("fig15_pos", "\n\n".join(blocks))

    # Paper shape 1: the adaptive curve dominates the baseline curve.
    for name, (adaptive, baseline) in curves.items():
        assert (adaptive.probability >= baseline.probability - 0.05).all(), name
    # Paper shape 2: a clear gap opens on the longer bioassays at mid budget.
    gaps = []
    for name in ("serial-dilution", "nuip"):
        adaptive, baseline = curves[name]
        gaps.append(float(np.max(adaptive.probability - baseline.probability)))
    assert max(gaps) >= 0.15, f"mid-budget gaps too small: {gaps}"

    graph = plan(EVALUATION_BIOASSAYS["covid-rat"](), CHIP_WIDTH, CHIP_HEIGHT)
    benchmark.pedantic(
        lambda: probability_of_success(
            graph, chip_factory, lambda w, h: AdaptiveRouter(),
            k_max_values=[400], n_chips=1, runs_per_chip=2, seed=99,
        ),
        rounds=1, iterations=1,
    )
