"""Live telemetry plane smoke: pooled run + /metrics scrape + merged trace.

CI-facing end-to-end check of the observability stack under a real
2-worker pool:

1. runs the ``cep`` evaluation bioassay with tracing, a journal, metrics,
   and a live :class:`~repro.obs.monitor.MonitorServer` on an ephemeral
   port;
2. a scraper thread hits ``/metrics`` throughout the run and every scrape
   must parse as OpenMetrics;
3. after the engine closes (salvaging worker-side telemetry), the final
   scrape must show non-zero worker-side counters
   (``repro_worker_solves_total``) next to the engine/scheduler counters;
4. the journal must contain ``worker.synthesis`` events stamped with
   worker pids;
5. the merged Chrome/Perfetto trace exported to ``obs-artifacts/`` must
   contain ``worker.solve`` spans parented under the engine's
   ``engine.submit`` / ``engine.batch.submit`` spans, on worker pids.

Exits nonzero on any violated expectation.  Run with
``PYTHONPATH=src python benchmarks/smoke_telemetry.py``.
"""

from __future__ import annotations

import sys
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT_DIR = REPO_ROOT / "obs-artifacts"

from repro import obs, perf  # noqa: E402
from repro.bioassay.library import ALL_BIOASSAYS  # noqa: E402
from repro.bioassay.planner import plan  # noqa: E402
from repro.biochip.chip import MedaChip  # noqa: E402
from repro.biochip.simulator import MedaSimulator  # noqa: E402
from repro.core.baseline import AdaptiveRouter  # noqa: E402
from repro.core.scheduler import HybridScheduler  # noqa: E402
from repro.engine import SynthesisEngine  # noqa: E402
from repro.obs.journal import read_journal  # noqa: E402
from repro.obs.monitor import MonitorServer  # noqa: E402
from repro.obs.openmetrics import parse_openmetrics  # noqa: E402

W, H = 60, 30
WORKERS = 2
MAX_CYCLES = 2000
SETTLE_TIMEOUT_S = 120.0


class Scraper(threading.Thread):
    """Polls /metrics for the whole run; every response must parse."""

    def __init__(self, url: str) -> None:
        super().__init__(name="smoke-scraper", daemon=True)
        self.url = url
        self.stop_event = threading.Event()
        self.scrapes = 0
        self.last_samples: dict[str, float] = {}
        self.error: "str | None" = None

    def scrape_once(self) -> dict[str, float]:
        with urllib.request.urlopen(f"{self.url}/metrics", timeout=10) as r:
            body = r.read().decode()
        samples = parse_openmetrics(body)
        self.scrapes += 1
        self.last_samples = samples
        return samples

    def run(self) -> None:
        while not self.stop_event.wait(0.05):
            try:
                self.scrape_once()
            except Exception as exc:  # noqa: BLE001 - report, don't die
                self.error = f"scrape #{self.scrapes + 1} failed: {exc}"
                return


def settle_engine(engine: SynthesisEngine) -> None:
    """Wait for in-flight worker futures so close() can salvage them all."""
    deadline = time.monotonic() + SETTLE_TIMEOUT_S
    pending = [s.future for s in engine._pending.values()]
    pending += [s.future for s in engine._zombies]
    for future in pending:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            future.exception(timeout=remaining)
        except Exception:  # noqa: BLE001 - settled either way
            pass


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    journal_path = ARTIFACT_DIR / "smoke_telemetry.journal.jsonl"
    trace_path = ARTIFACT_DIR / "smoke_telemetry.trace.json"

    obs.shutdown()
    perf.reset()
    tracer, _ = obs.configure(tracing=True, journal=journal_path,
                              metrics=True)
    graph = plan(ALL_BIOASSAYS["cep"](), W, H)
    chip = MedaChip.sample(W, H, np.random.default_rng(0))
    engine = SynthesisEngine(workers=WORKERS)
    router = AdaptiveRouter(engine=engine)

    monitor = MonitorServer(port=0)
    monitor.start()
    scraper = Scraper(monitor.url)
    scraper.start()
    print(f"monitor: {monitor.url}/metrics")

    try:
        scheduler = HybridScheduler(graph, router, W, H)
        scheduler.presynthesize(chip.health())
        sim = MedaSimulator(chip, np.random.default_rng(1))
        result = sim.run(scheduler, max_cycles=MAX_CYCLES)
        if not result.success:
            return fail(f"cep run failed: {result.failure}")
        print(f"run: ok, {result.cycles} cycles, "
              f"{result.resyntheses} resyntheses")

        # Let in-flight speculation futures finish, then close: the engine
        # salvages every completed worker's telemetry bundle on the way out.
        settle_engine(engine)
    finally:
        engine.close()

    try:
        scraper.stop_event.set()
        scraper.join(timeout=10)
        if scraper.error is not None:
            return fail(scraper.error)
        if scraper.scrapes == 0:
            return fail("scraper never completed a scrape during the run")
        # Final scrape after engine close: worker telemetry is merged now.
        samples = scraper.scrape_once()
        print(f"scrapes: {scraper.scrapes}, "
              f"{len(samples)} series in the final scrape")

        worker_solves = samples.get("repro_worker_solves_total", 0)
        if worker_solves <= 0:
            return fail("repro_worker_solves_total is zero: worker-side "
                        "metric deltas never merged back")
        engine_series = [k for k in samples if k.startswith("repro_engine_")]
        scheduler_series = [k for k in samples
                            if k.startswith("repro_scheduler_")]
        if not engine_series or not scheduler_series:
            return fail("expected engine+scheduler counter families, got "
                        f"{len(engine_series)}/{len(scheduler_series)}")
        print(f"worker solves merged: {worker_solves:.0f}")
    finally:
        monitor.stop()
        tracer.export_chrome(str(trace_path))
        obs.shutdown()

    records = read_journal(journal_path)
    worker_events = [r for r in records if r["event"] == "worker.synthesis"]
    if not worker_events:
        return fail("journal has no worker.synthesis events")
    pids = {r.get("worker_pid") for r in worker_events}
    if pids == {None}:
        return fail("worker.synthesis events lack worker_pid stamps")
    print(f"journal: {len(records)} events, {len(worker_events)} "
          f"worker.synthesis from pids {sorted(p for p in pids if p)}")

    solves = tracer.find("worker.solve")
    if not solves:
        return fail("merged trace has no worker.solve spans")
    parent_ids = {s.span_id for s in tracer.find("engine.submit")}
    parent_ids |= {s.span_id for s in tracer.find("engine.batch.submit")}
    orphans = [s for s in solves if s.parent_id not in parent_ids]
    if orphans:
        return fail(f"{len(orphans)}/{len(solves)} worker.solve spans are "
                    "not parented under engine submit spans")
    import os

    if all(s.pid in (None, os.getpid()) for s in solves):
        return fail("worker.solve spans carry no worker pids")
    print(f"trace: {len(solves)} worker.solve spans correlated to engine "
          f"submit spans -> {trace_path}")

    print("PASS: live telemetry smoke")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
