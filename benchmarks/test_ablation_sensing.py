"""Ablation — sensing wear and selective sensing (ref. [32]).

The MEDA operational cycle senses every microelectrode every cycle; the
charge/discharge of the sense path traps charge just like (weaker)
actuation, so full-array scanning consumes chip lifetime uniformly.  The
paper's companion work (Liang et al., TCAD'20 — its ref. [32]) extends
lifetime by sensing selectively.  This bench quantifies that on top of the
adaptive router: consecutive serial-dilution runs under no / selective /
full sensing wear, reporting cycles, failures and chip-wide stress.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.bioassay.library import serial_dilution
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.core.baseline import AdaptiveRouter
from repro.core.scheduler import HybridScheduler

from benchmarks.common import CHIP_HEIGHT, CHIP_WIDTH, emit, scaled

POLICIES = (None, "selective", "full")
SENSING_WEIGHT = 0.25


def _run(policy: str | None, runs: int, seed: int):
    graph = plan(serial_dilution(), CHIP_WIDTH, CHIP_HEIGHT)
    chip = MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(seed),
        tau_range=(0.5, 0.8), c_range=(120.0, 260.0),
    )
    router = AdaptiveRouter()
    rng = np.random.default_rng(seed + 1)
    cycles = 0
    failures = 0
    for _ in range(runs):
        scheduler = HybridScheduler(graph, router, CHIP_WIDTH, CHIP_HEIGHT)
        sim = MedaSimulator(chip, rng, sensing_policy=policy,
                            sensing_weight=SENSING_WEIGHT)
        result = sim.run(scheduler, 700)
        cycles += result.cycles
        failures += 0 if result.success else 1
    mean_health = float(chip.health().mean())
    total_stress = float(chip.actuations.sum())
    return cycles, failures, mean_health, total_stress


def test_ablation_selective_sensing(benchmark):
    runs = scaled(5, 10)
    rows = []
    stats = {}
    for policy in POLICIES:
        cycles, failures, mean_health, stress = _run(policy, runs, seed=21)
        stats[policy] = (cycles, failures, mean_health, stress)
        rows.append([
            policy or "none", cycles, failures,
            f"{mean_health:.2f}", f"{stress:.0f}",
        ])
    emit(
        "ablation_sensing",
        format_table(
            ["sensing wear", "total cycles", "failed runs",
             "mean health after", "total stress"],
            rows,
            title=(f"Ablation — sensing wear policies, serial-dilution x "
                   f"{runs} runs (adaptive router, sensing weight "
                   f"{SENSING_WEIGHT})"),
        ),
    )

    # Full-array scanning stresses the chip strictly more than selective
    # scanning, which stresses it more than ignoring sensing wear.
    assert stats["full"][3] > stats["selective"][3] > stats[None][3]
    # ...and leaves the chip in worse average health.
    assert stats["full"][2] <= stats["selective"][2] + 1e-9
    # Selective sensing preserves completion behaviour vs full scanning.
    assert stats["selective"][1] <= stats["full"][1]
    assert stats["selective"][0] <= stats["full"][0] * 1.1

    benchmark.pedantic(
        lambda: _run("selective", 1, seed=31), rounds=1, iterations=1
    )
