"""Ablation — runtime MO-ordering policies (the paper's stated future work).

The conclusion of the paper proposes "a scheduler that can optimize the
order in which the microfluidic operations are executed in runtime".  This
bench compares three activation-order policies on a wearing chip:

* ``program`` — the fixed Algorithm-3 list order;
* ``healthiest-first`` — prefer ready MOs whose routing zones currently
  have the highest mean sensed health;
* ``shortest-first`` — prefer ready MOs with the smallest zone footprint
  (frees fenced zones sooner).

Reported: total cycles and failures over repeated executions per policy.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.bioassay.library import nuip
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.core.baseline import AdaptiveRouter
from repro.core.scheduler import HybridScheduler

from benchmarks.common import CHIP_HEIGHT, CHIP_WIDTH, emit, scaled

POLICIES = ("program", "healthiest-first", "shortest-first")


def _run_policy(policy: str, runs: int, seed: int) -> tuple[int, int]:
    graph = plan(nuip(), CHIP_WIDTH, CHIP_HEIGHT)
    chip = MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(seed),
        tau_range=(0.5, 0.8), c_range=(120.0, 260.0),
    )
    router = AdaptiveRouter()
    rng = np.random.default_rng(seed + 1)
    cycles = 0
    failures = 0
    for _ in range(runs):
        scheduler = HybridScheduler(
            graph, router, CHIP_WIDTH, CHIP_HEIGHT, activation_order=policy
        )
        result = MedaSimulator(chip, rng).run(scheduler, 700)
        cycles += result.cycles
        failures += 0 if result.success else 1
    return cycles, failures


def test_ablation_mo_ordering(benchmark):
    runs = scaled(4, 8)
    seeds = range(scaled(2, 5))
    rows = []
    totals = {}
    for policy in POLICIES:
        cycles = 0
        failures = 0
        for seed in seeds:
            c, f = _run_policy(policy, runs, seed=40 + seed)
            cycles += c
            failures += f
        totals[policy] = (cycles, failures)
        rows.append([policy, cycles, failures])
    emit(
        "ablation_ordering",
        format_table(
            ["activation order", "total cycles", "failed runs"],
            rows,
            title=(f"Ablation — MO activation order, NuIP x {runs} runs x "
                   f"{len(list(seeds))} chips (adaptive router)"),
        ),
    )

    # All policies must complete the workload; ordering is a second-order
    # effect, so we assert sanity (within 25% of each other) rather than a
    # winner — the interesting output is the measured ranking itself.
    reference = totals["program"][0]
    for policy, (cycles, failures) in totals.items():
        assert failures <= len(list(seeds)) * runs // 2, policy
        assert cycles <= reference * 1.25, policy

    benchmark.pedantic(
        lambda: _run_policy("healthiest-first", 1, seed=99),
        rounds=1, iterations=1,
    )
