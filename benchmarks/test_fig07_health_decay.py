"""Fig. 7 — actual degradation D(n) vs observed health H(n).

Sweeps the number of actuations for several (tau, c) configurations and
health-code widths, showing the exponential decay of D and its staircase
quantization H = floor(2^b D) — the information the proposed MC exposes to
the synthesizer.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_series
from repro.degradation.model import DegradationParams, quantize_health

from benchmarks.common import emit

CONFIGS = [
    (0.5, 300.0, 2),
    (0.7, 300.0, 2),
    (0.9, 300.0, 2),
    (0.7, 300.0, 3),
]


def test_fig7_degradation_vs_health(benchmark):
    ns = np.arange(0, 2001, 100)
    series: dict[str, list[str]] = {}
    for tau, c, bits in CONFIGS:
        params = DegradationParams(tau=tau, c=c)
        d = np.asarray(params.degradation(ns))
        h = np.asarray(quantize_health(d, bits=bits))
        key = f"tau={tau},c={int(c)},b={bits}"
        series[f"D {key}"] = [f"{v:.3f}" for v in d]
        series[f"H {key}"] = [str(int(v)) for v in h]

        # Paper shape: D decays monotonically; H is a non-increasing
        # staircase bounded by its bit width.
        assert (np.diff(d) < 0).all()
        assert (np.diff(h) <= 0).all()
        assert h.max() == (1 << bits) - 1 and h.min() >= 0
    emit(
        "fig07_health_decay",
        format_series(
            "n", [int(n) for n in ns], series,
            title="Fig. 7 — degradation D(n) and observed health H(n)",
        ),
    )

    params = DegradationParams(tau=0.7, c=300.0)
    benchmark(lambda: quantize_health(np.asarray(params.degradation(ns)), 2))
