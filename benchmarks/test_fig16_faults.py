"""Fig. 16 — cycles to repeatedly execute each bioassay under fault injection.

Reproduces the Sec. VII-C experiment: microelectrodes are split into normal
and faulty groups; faulty MCs suffer sudden complete failure at a random
actuation count, placed either uniformly or as 2x2 clusters.  A *trial*
repeats the bioassay on one chip until five successful executions or a
cumulative cap of 1,000 cycles (abort), and the mean (±SD) trial cycles are
reported per routing method and fault mode.

Paper shape: the adaptive method consistently needs fewer cycles; the gap
widens under clustered faults (clusters act as roadblocks); the baseline
fails earlier (executions-to-first-failure).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import chip_factory_for, trial_cycles
from repro.analysis.tables import format_table
from repro.bioassay.library import EVALUATION_BIOASSAYS
from repro.bioassay.planner import plan
from repro.core.baseline import AdaptiveRouter, BaselineRouter
from repro.degradation.faults import FaultInjector, FaultMode

from benchmarks.common import CHIP_HEIGHT, CHIP_WIDTH, emit, scaled

TAU_RANGE = (0.5, 0.9)
C_RANGE = (150.0, 350.0)
FAULT_FRACTION = 0.08
FAIL_RANGE = (10, 150)
K_MAX_TOTAL = 1200
TARGET_SUCCESSES = 5
#: An execution counts as failed when it exceeds this multiple of the
#: healthy-chip execution time (the paper's time-sensitive-bioassay
#: requirement; without a per-execution deadline, failures only show up as
#: slowdowns).
EXECUTION_DEADLINE_FACTOR = 2.0


def _factory(mode: FaultMode):
    injector = FaultInjector(mode, fraction=FAULT_FRACTION,
                             fail_range=FAIL_RANGE)
    return chip_factory_for(
        CHIP_WIDTH, CHIP_HEIGHT, tau_range=TAU_RANGE, c_range=C_RANGE,
        fault_plan_factory=lambda rng: injector.inject(
            CHIP_WIDTH, CHIP_HEIGHT, rng
        ),
    )


def _healthy_cycles(graph) -> int:
    from repro.analysis.metrics import run_execution

    chip_factory = chip_factory_for(
        CHIP_WIDTH, CHIP_HEIGHT, tau_range=(0.95, 0.99), c_range=(5000, 9000)
    )
    chip = chip_factory(np.random.default_rng(0))
    result = run_execution(
        graph, chip, BaselineRouter(CHIP_WIDTH, CHIP_HEIGHT),
        np.random.default_rng(1), max_cycles=2000,
    )
    assert result.success
    return result.cycles


def test_fig16_fault_injection(benchmark):
    n_trials = scaled(3, 10)
    rows = []
    results: dict[tuple[str, str, str], object] = {}
    for name in sorted(EVALUATION_BIOASSAYS):
        graph = plan(EVALUATION_BIOASSAYS[name](), CHIP_WIDTH, CHIP_HEIGHT)
        deadline = int(EXECUTION_DEADLINE_FACTOR * _healthy_cycles(graph))
        for mode in (FaultMode.UNIFORM, FaultMode.CLUSTERED):
            for router_name, factory in (
                ("adaptive", lambda w, h: AdaptiveRouter()),
                ("baseline", lambda w, h: BaselineRouter(w, h)),
            ):
                res = trial_cycles(
                    graph, _factory(mode), factory,
                    n_trials=n_trials, target_successes=TARGET_SUCCESSES,
                    k_max_total=K_MAX_TOTAL, seed=16,
                    per_execution_cap=deadline,
                )
                results[(name, mode.value, router_name)] = res
                rows.append([
                    name, mode.value, router_name,
                    f"{res.mean_cycles:.0f}", f"{res.std_cycles:.0f}",
                    f"{res.mean_executions_to_first_failure:.1f}",
                    f"{res.aborted_trials}/{res.trials}",
                ])
    emit(
        "fig16_faults",
        format_table(
            ["bioassay", "faults", "router", "mean k", "SD",
             "execs to 1st failure", "aborted"],
            rows,
            title=(f"Fig. 16 — trial cycles ({TARGET_SUCCESSES} successes or "
                   f"{K_MAX_TOTAL}-cycle abort, {n_trials} trials/cell)"),
        ),
    )

    # Paper shape 1: aggregated over the suite, adaptive needs fewer cycles
    # than baseline under both fault modes.
    for mode in ("uniform", "clustered"):
        adaptive_total = sum(
            results[(n, mode, "adaptive")].mean_cycles
            for n in EVALUATION_BIOASSAYS
        )
        baseline_total = sum(
            results[(n, mode, "baseline")].mean_cycles
            for n in EVALUATION_BIOASSAYS
        )
        assert adaptive_total < baseline_total, mode
    # Paper shape 2: clustered faults hurt the baseline more than uniform
    # ones (clusters obstruct droplet movement).
    base_uniform = sum(
        results[(n, "uniform", "baseline")].mean_cycles
        for n in EVALUATION_BIOASSAYS
    )
    base_clustered = sum(
        results[(n, "clustered", "baseline")].mean_cycles
        for n in EVALUATION_BIOASSAYS
    )
    assert base_clustered >= base_uniform * 0.98
    # Paper shape 3: the adaptive method never fails before the baseline
    # does (aggregate executions to first failure).
    for mode in ("uniform", "clustered"):
        adaptive_e2ff = np.mean([
            results[(n, mode, "adaptive")].mean_executions_to_first_failure
            for n in EVALUATION_BIOASSAYS
        ])
        baseline_e2ff = np.mean([
            results[(n, mode, "baseline")].mean_executions_to_first_failure
            for n in EVALUATION_BIOASSAYS
        ])
        assert adaptive_e2ff >= baseline_e2ff - 0.5

    graph = plan(EVALUATION_BIOASSAYS["master-mix"](), CHIP_WIDTH, CHIP_HEIGHT)
    benchmark.pedantic(
        lambda: trial_cycles(
            graph, _factory(FaultMode.UNIFORM),
            lambda w, h: AdaptiveRouter(),
            n_trials=1, target_successes=2, k_max_total=300, seed=99,
        ),
        rounds=1, iterations=1,
    )
