"""Ablation — which microfluidic action families earn their keep?

Synthesizes the same routing job with progressively richer action sets
(cardinal only → + ordinal → + double-step → + morphing) and reports the
expected completion cycles and model sizes.  This quantifies the design
choice behind the paper's 20-action repertoire (Sec. V-B): ordinal moves
buy diagonal progress, double steps speed long straights for large
droplets, and morphing lets droplets squeeze past degraded regions.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.actions import ActionClass
from repro.core.routing_job import RoutingJob
from repro.core.synthesis import force_field_from_health, synthesize_with_field
from repro.geometry.rect import Rect

from benchmarks.common import emit

FAMILY_SETS = [
    ("cardinal", (ActionClass.CARDINAL,)),
    ("+ordinal", (ActionClass.CARDINAL, ActionClass.ORDINAL)),
    ("+double", (ActionClass.CARDINAL, ActionClass.ORDINAL, ActionClass.DOUBLE)),
    ("+morphing", None),  # all five families
]

W, H = 40, 30


def _diagonal_job() -> RoutingJob:
    return RoutingJob(Rect(2, 2, 5, 5), Rect(32, 22, 35, 25), Rect(1, 1, 38, 28))


def _narrow_gap_case() -> tuple[RoutingJob, np.ndarray]:
    """A 5-wide dead wall with a 2-MC gap.

    A 4x4 droplet can only drag 2 of its 4 frontier cells through the gap
    (halving every crossing step's success probability for five columns);
    reshaping to 5x3 aligns more frontier with the healthy rows, so morphing
    buys a measurably faster route.
    """
    health = np.full((W, H), 3)
    health[18:23, :] = 0
    health[18:23, 10:12] = 3  # 2-cell gap at y = 11..12
    job = RoutingJob(Rect(2, 9, 5, 12), Rect(32, 9, 35, 12), Rect(1, 1, 38, 28))
    return job, health


def test_ablation_action_families(benchmark):
    health_full = np.full((W, H), 3)
    rows = []
    diag_cycles = {}
    for label, families in FAMILY_SETS:
        result = synthesize_with_field(
            _diagonal_job(), force_field_from_health(health_full),
            families=families,
        )
        diag_cycles[label] = result.expected_cycles
        rows.append([
            "diagonal 30x20", label,
            f"{result.expected_cycles:.2f}" if result.exists else "no route",
            result.model.num_states, result.model.num_choices,
        ])

    gap_job, gap_health = _narrow_gap_case()
    gap_cycles = {}
    for label, families in FAMILY_SETS:
        result = synthesize_with_field(
            gap_job, force_field_from_health(gap_health), families=families,
        )
        gap_cycles[label] = result.expected_cycles
        rows.append([
            "2-cell wall gap", label,
            f"{result.expected_cycles:.2f}" if result.exists else "no route",
            result.model.num_states, result.model.num_choices,
        ])
    emit(
        "ablation_actions",
        format_table(
            ["scenario", "action set", "E[cycles]", "#states", "#choices"],
            rows,
            title="Ablation — action families (full-health estimate field)",
        ),
    )

    # Ordinal moves dominate cardinal-only on diagonal routes.
    assert diag_cycles["+ordinal"] < diag_cycles["cardinal"] * 0.8
    # Double steps help once the droplet is long enough (w = 4 here).
    assert diag_cycles["+double"] <= diag_cycles["+ordinal"] + 1e-6
    # Morphing strictly improves the narrow-gap crossing (the droplet
    # reshapes to align its frontier with the healthy rows).
    assert gap_cycles["+morphing"] < gap_cycles["+double"] - 0.5

    benchmark(
        lambda: synthesize_with_field(
            _diagonal_job(), force_field_from_health(health_full),
            families=(ActionClass.CARDINAL, ActionClass.ORDINAL),
        )
    )
