"""Execution replay: trace a bioassay and inspect what happened.

Runs the CEP bioassay with tracing enabled, prints the MO timeline, the
droplet stall statistics (the observable cost of degraded microelectrodes)
and a few chip snapshots with droplets overlaid on the health map.

Run with:  python examples/execution_replay.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_health
from repro.bioassay import cep, plan
from repro.biochip import ExecutionTrace, MedaChip, MedaSimulator
from repro.core import AdaptiveRouter, HybridScheduler

CHIP_WIDTH, CHIP_HEIGHT = 60, 30


def main() -> None:
    graph = plan(cep(), CHIP_WIDTH, CHIP_HEIGHT)
    chip = MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(11),
        tau_range=(0.45, 0.65), c_range=(50.0, 110.0),
    )
    trace = ExecutionTrace()
    scheduler = HybridScheduler(graph, AdaptiveRouter(), CHIP_WIDTH, CHIP_HEIGHT)
    sim = MedaSimulator(chip, np.random.default_rng(12), trace=trace)
    result = sim.run(scheduler, max_cycles=800)

    print(f"execution {'succeeded' if result.success else 'failed'} "
          f"in {result.cycles} cycles "
          f"({result.total_actuations} actuations, "
          f"{result.resyntheses} health-triggered replans)\n")

    print(trace.timeline())
    print(f"\npeak droplet concurrency: {trace.max_concurrent_droplets()}")

    # Stall statistics per droplet that appears in the trace.
    droplet_ids = sorted({d for f in trace.frames for d in f.droplets})
    stalls = {d: trace.stall_cycles(d) for d in droplet_ids}
    worst = sorted(stalls.items(), key=lambda kv: -kv[1])[:5]
    print("most-stalled droplets (degraded frontiers cost cycles):")
    for did, count in worst:
        print(f"  droplet {did}: {count} stalled cycles")

    # Snapshot the chip at three points of the execution.
    for fraction in (0.25, 0.6, 0.95):
        frame = trace.frames[int(fraction * (len(trace.frames) - 1))]
        print(f"\n--- cycle {frame.cycle} "
              f"({len(frame.droplets)} droplets on chip) ---")
        # Recompute health from the final chip state for rendering; the
        # droplet overlay comes from the traced frame.
        print(render_health(chip.health(), frame.droplets))


if __name__ == "__main__":
    main()
