"""Quickstart: run one bioassay on a simulated MEDA biochip.

Builds a small sequencing graph (two reagents, a mix, a magnetic sensing
step, an output), places it with the planner, and executes it on a sampled
60x30 chip with the adaptive routing framework.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.bioassay import MO, MOType, SequencingGraph, plan
from repro.biochip import MedaChip, MedaSimulator
from repro.core import AdaptiveRouter, HybridScheduler

CHIP_WIDTH, CHIP_HEIGHT = 60, 30


def build_bioassay() -> SequencingGraph:
    """A minimal immunoassay-shaped protocol."""
    return SequencingGraph(
        "quickstart",
        [
            MO("sample", MOType.DIS, size=(4, 4)),
            MO("reagent", MOType.DIS, size=(4, 4)),
            MO("react", MOType.MIX, pre=("sample", "reagent"), hold_cycles=4),
            MO("sense", MOType.MAG, pre=("react",), hold_cycles=8),
            MO("collect", MOType.OUT, pre=("sense",)),
        ],
    )


def main() -> None:
    # 1. Place the bioassay's operations on the chip.
    graph = plan(build_bioassay(), CHIP_WIDTH, CHIP_HEIGHT)
    print("Placed microfluidic operations:")
    for mo in graph.topological():
        locs = ", ".join(f"({x:.1f}, {y:.1f})" for x, y in mo.locs)
        print(f"  {mo.name:10s} {mo.type.value:4s} at {locs}")

    # 2. Sample a chip with per-microelectrode degradation constants
    #    (c ~ U(200, 500), tau ~ U(0.5, 0.9) — the paper's Sec. VII-B setup).
    chip = MedaChip.sample(CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(1))

    # 3. Execute with the adaptive routing framework: strategies are
    #    synthesized from the sensed 2-bit health matrix and re-synthesized
    #    whenever health inside a route's hazard zone changes.
    router = AdaptiveRouter()
    scheduler = HybridScheduler(graph, router, CHIP_WIDTH, CHIP_HEIGHT)
    simulator = MedaSimulator(chip, np.random.default_rng(2))
    result = simulator.run(scheduler, max_cycles=500)

    print()
    print(f"Execution {'succeeded' if result.success else 'FAILED'} "
          f"in {result.cycles} operational cycles")
    print(f"  microelectrode actuations: {result.total_actuations}")
    print(f"  strategies synthesized:    {router.syntheses}")
    print(f"  health-triggered replans:  {result.resyntheses}")


if __name__ == "__main__":
    main()
