"""Strategy-synthesis playground: watch a route detour around dead cells.

Builds a single routing job on a 26x14 zone, kills a wall of microelectrodes
with one gap, synthesizes the Rmin strategy from the 2-bit health view, and
renders the prescribed route as an ASCII map.

Run with:  python examples/synthesis_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ACTIONS, RoutingJob, apply_action, synthesize, zone
from repro.geometry import Rect

CHIP_WIDTH, CHIP_HEIGHT = 30, 16


def build_health() -> np.ndarray:
    """Full health except a dead vertical wall at x = 15 with a gap."""
    health = np.full((CHIP_WIDTH, CHIP_HEIGHT), 3)
    health[14, :] = 0       # dead column (1-based x = 15)
    health[14, 10:14] = 3   # gap at y = 11..14
    return health


def render(job: RoutingJob, health: np.ndarray, route: list[Rect]) -> str:
    grid = [["."] * CHIP_WIDTH for _ in range(CHIP_HEIGHT)]
    for i in range(CHIP_WIDTH):
        for j in range(CHIP_HEIGHT):
            if health[i, j] == 0:
                grid[j][i] = "#"
    for cell in job.goal.cells():
        grid[cell[1] - 1][cell[0] - 1] = "G"
    for step, delta in enumerate(route):
        mark = "S" if step == 0 else "o"
        for (i, j) in delta.cells():
            if grid[j - 1][i - 1] in (".", "o"):
                grid[j - 1][i - 1] = mark
    # y grows north, so print top row first
    return "\n".join("".join(row) for row in reversed(grid))


def main() -> None:
    start = Rect(3, 3, 5, 5)
    goal = Rect(25, 3, 27, 5)
    # The ZONE margin would fence the droplet below the wall's gap, so this
    # demo grants the whole chip as hazard bounds (a scheduler would instead
    # re-plan the module placement).
    full_chip = Rect(1, 1, CHIP_WIDTH, CHIP_HEIGHT)
    job = RoutingJob(start, goal, full_chip)
    health = build_health()

    result = synthesize(job, health, max_aspect=1.5)
    if not result.exists:
        print("no strategy exists for this health matrix")
        return

    print(f"synthesized in {result.total_time:.2f}s "
          f"({result.model.num_states} states, "
          f"{result.model.num_transitions} transitions)")
    print(f"expected completion: {result.expected_cycles:.1f} cycles\n")

    # Greedy walk of intended outcomes (the simulator would add stalls).
    route = [start]
    delta = start
    for _ in range(200):
        if job.goal.contains(delta):
            break
        action = result.strategy.action(delta)
        assert action is not None, "strategy gap"
        delta = apply_action(delta, ACTIONS[action])
        route.append(delta)

    print(render(job, health, route))
    print("\nS = start, G = goal, o = route, # = dead microelectrodes")
    print(f"route length: {len(route) - 1} moves "
          f"(the wall gap forces the detour north)")


if __name__ == "__main__":
    main()
