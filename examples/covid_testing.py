"""COVID-19 testing on a reused MEDA biochip: adaptive vs baseline routing.

The paper's motivating scenario (Sec. I, VII): a CMOS MEDA biochip is too
expensive to discard, so a clinic runs a panel of diagnostic tests — here
alternating rapid-antigen and PCR protocols — on the same device.  Every
actuation traps charge, microelectrodes degrade, and the degradation-unaware
shortest-path router keeps hammering the same corridor until droplets crawl.

Run with:  python examples/covid_testing.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.bioassay import covid_pcr, covid_rat, plan
from repro.biochip import MedaChip, MedaSimulator
from repro.core import AdaptiveRouter, BaselineRouter, HybridScheduler, Router

CHIP_WIDTH, CHIP_HEIGHT = 60, 30
PANEL_ROUNDS = 4  # each round = one rapid antigen test + one PCR test
MAX_CYCLES = 700


def run_panel(router: Router, seed: int) -> list[tuple[str, bool, int]]:
    """Run the alternating test panel on one chip; returns per-test results."""
    chip = MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(seed),
        tau_range=(0.5, 0.9), c_range=(150.0, 350.0),
    )
    rat = plan(covid_rat(), CHIP_WIDTH, CHIP_HEIGHT)
    pcr = plan(covid_pcr(), CHIP_WIDTH, CHIP_HEIGHT)
    rng = np.random.default_rng(seed + 1)
    outcomes = []
    for round_idx in range(PANEL_ROUNDS):
        for graph in (rat, pcr):
            scheduler = HybridScheduler(graph, router, CHIP_WIDTH, CHIP_HEIGHT)
            result = MedaSimulator(chip, rng).run(scheduler, MAX_CYCLES)
            outcomes.append((f"{graph.name} #{round_idx + 1}",
                             result.success, result.cycles))
    return outcomes


def main() -> None:
    seed = 7
    adaptive = run_panel(AdaptiveRouter(), seed)
    baseline = run_panel(BaselineRouter(CHIP_WIDTH, CHIP_HEIGHT), seed)

    rows = []
    for (test, ok_a, k_a), (_, ok_b, k_b) in zip(adaptive, baseline):
        rows.append([
            test,
            f"{k_a}" if ok_a else "FAILED",
            f"{k_b}" if ok_b else "FAILED",
        ])
    print(format_table(
        ["test", "adaptive (cycles)", "baseline (cycles)"],
        rows,
        title=f"COVID test panel on one reused chip ({PANEL_ROUNDS} rounds)",
    ))

    total_a = sum(k for _, ok, k in adaptive if ok)
    total_b = sum(k for _, ok, k in baseline if ok)
    fails_a = sum(not ok for _, ok, _ in adaptive)
    fails_b = sum(not ok for _, ok, _ in baseline)
    print()
    print(f"adaptive:  {fails_a} failed tests, {total_a} cycles on successes")
    print(f"baseline:  {fails_b} failed tests, {total_b} cycles on successes")


if __name__ == "__main__":
    main()
