"""Chip-lifetime study: how many bioassays can one biochip deliver?

Repeatedly executes the serial-dilution benchmark on the same chip until an
execution fails or exceeds its cycle budget, once per routing method.  The
adaptive framework spreads wear away from degraded microelectrodes and keeps
the chip serviceable for more runs — the economic argument of Sec. VII-B.

Run with:  python examples/chip_lifetime.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.bioassay import plan, serial_dilution
from repro.biochip import MedaChip, MedaSimulator
from repro.core import AdaptiveRouter, BaselineRouter, HybridScheduler, Router

CHIP_WIDTH, CHIP_HEIGHT = 60, 30
CYCLE_BUDGET = 400  # per-execution time-to-result requirement
MAX_RUNS = 15


def lifetime(router: Router, seed: int) -> list[int]:
    """Cycles per execution until the first failure (or MAX_RUNS)."""
    chip = MedaChip.sample(
        CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(seed),
        tau_range=(0.5, 0.9), c_range=(150.0, 350.0),
    )
    graph = plan(serial_dilution(), CHIP_WIDTH, CHIP_HEIGHT)
    rng = np.random.default_rng(seed + 1)
    cycles: list[int] = []
    for _ in range(MAX_RUNS):
        scheduler = HybridScheduler(graph, router, CHIP_WIDTH, CHIP_HEIGHT)
        result = MedaSimulator(chip, rng).run(scheduler, CYCLE_BUDGET)
        if not result.success:
            break
        cycles.append(result.cycles)
    return cycles


def main() -> None:
    seed = 3
    adaptive = lifetime(AdaptiveRouter(), seed)
    baseline = lifetime(BaselineRouter(CHIP_WIDTH, CHIP_HEIGHT), seed)

    rows = []
    for run in range(max(len(adaptive), len(baseline))):
        rows.append([
            run + 1,
            adaptive[run] if run < len(adaptive) else "chip retired",
            baseline[run] if run < len(baseline) else "chip retired",
        ])
    print(format_table(
        ["run", "adaptive (cycles)", "baseline (cycles)"],
        rows,
        title=(
            f"Serial dilution on one chip, {CYCLE_BUDGET}-cycle budget "
            "per run"
        ),
    ))
    print()
    print(f"adaptive delivered {len(adaptive)} runs, "
          f"baseline {len(baseline)} runs before retirement")


if __name__ == "__main__":
    main()
