"""Dilution ladder: concentrations, volumes and chip wear of a serial dilution.

Serial dilution is the canonical DMFB protocol (and the paper's longest
benchmark): each stage mixes the running sample with fresh buffer and splits
the product, halving the analyte concentration.  The scheduler tracks every
droplet's volume and concentration through the mix/split algebra, so the
ladder can be verified digitally: stage ``k`` must output ``1 / 2^k``.

Run with:  python examples/dilution_ladder.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, wear_concentration, wear_gini
from repro.bioassay import plan, serial_dilution
from repro.biochip import MedaChip, MedaSimulator
from repro.core import AdaptiveRouter, HybridScheduler

CHIP_WIDTH, CHIP_HEIGHT = 60, 30
STAGES = 5


def main() -> None:
    graph = plan(serial_dilution(STAGES), CHIP_WIDTH, CHIP_HEIGHT)
    chip = MedaChip.sample(CHIP_WIDTH, CHIP_HEIGHT, np.random.default_rng(4))
    scheduler = HybridScheduler(graph, AdaptiveRouter(), CHIP_WIDTH, CHIP_HEIGHT)
    result = MedaSimulator(chip, np.random.default_rng(5)).run(
        scheduler, max_cycles=900
    )
    if not result.success:
        print(f"execution failed: {result.failure_reason}")
        return

    rows = []
    for name, volume, conc in scheduler.collected:
        expected = None
        if name == "collect":
            expected = 0.5**STAGES
        elif name.startswith("waste"):
            expected = 0.5 ** (int(name.removeprefix("waste")) + 1)
        rows.append([
            name,
            f"{volume:.1f}",
            f"{conc:.6f}",
            f"{expected:.6f}" if expected is not None else "-",
        ])
    print(format_table(
        ["collected droplet", "volume (MC units)", "measured conc.",
         "expected conc."],
        rows,
        title=f"{STAGES}-stage serial dilution in {result.cycles} cycles",
    ))

    print()
    print(f"chip wear after the run: Gini {wear_gini(chip.actuations, active_only=True):.3f} "
          f"(active cells), top-10% share "
          f"{wear_concentration(chip.actuations, 0.1):.3f}")


if __name__ == "__main__":
    main()
