"""Degradation pipeline walk-through: circuit -> experiment -> model -> sensor.

Follows the paper's Sec. III-IV chain end to end:

1. the proposed MC cell resolves three capacitance classes with two skewed
   DFF clock edges (Fig. 2);
2. the simulated PCB experiment measures capacitance growth and force decay
   under repeated actuation (Fig. 5);
3. the exponential model F = tau^(2n/c) is fitted to the measured forces
   (Fig. 6);
4. the fitted model predicts what the 2-bit on-chip health sensor would
   report over a microelectrode's lifetime (Fig. 7).

Run with:  python examples/degradation_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_series, format_table
from repro.circuits import (
    C_DEGRADED,
    C_HEALTHY,
    C_PARTIAL,
    HealthSenseConfig,
)
from repro.degradation import (
    DegradationParams,
    fit_force_curve,
    quantize_health,
    run_degradation_experiment,
)


def step1_circuit() -> None:
    cfg = HealthSenseConfig.calibrated()
    rows = []
    for label, cap in (("healthy", C_HEALTHY), ("partial", C_PARTIAL),
                       ("degraded", C_DEGRADED)):
        bits = cfg.sample_bits(cap)
        rows.append([label, f"{cap * 1e15:.3f} fF",
                     f"{cfg.crossing_time(cap) * 1e9:.2f} ns",
                     f"{bits[0]}{bits[1]}"])
    print(format_table(
        ["class", "capacitance", "threshold crossing", "2-bit code"],
        rows, title="1. Proposed MC cell: dual-DFF health sensing",
    ))
    print()


def step2_and_3_experiment() -> DegradationParams:
    curves = run_degradation_experiment(
        np.random.default_rng(42), total_actuations=800, measure_every=100,
    )
    curve = curves[3]  # the 3x3 mm electrode bank
    fit = fit_force_curve(curve.actuations, curve.relative_force)
    print(format_series(
        "n",
        [int(n) for n in curve.actuations],
        {
            "capacitance (pF)": [f"{c * 1e12:.4f}" for c in curve.capacitance_f],
            "relative force": [f"{f:.3f}" for f in curve.relative_force],
            "fitted force": [f"{v:.3f}" for v in fit.predict(curve.actuations)],
        },
        title="2-3. PCB experiment (3 mm electrodes) and model fit",
    ))
    print(f"\n   fitted (tau, c) = ({fit.tau:.3f}, {fit.c:.1f}), "
          f"R2_adj = {fit.r2_adjusted:.4f}")
    print()
    return DegradationParams(tau=fit.tau, c=fit.c)


def step4_sensor_view(params: DegradationParams) -> None:
    ns = np.arange(0, 1601, 200)
    d = np.asarray(params.degradation(ns))
    print(format_series(
        "n",
        [int(n) for n in ns],
        {
            "true degradation D": [f"{v:.3f}" for v in d],
            "sensed health H (b=2)": [str(int(v))
                                      for v in np.asarray(quantize_health(d, 2))],
            "sensed health H (b=3)": [str(int(v))
                                      for v in np.asarray(quantize_health(d, 3))],
        },
        title="4. What the on-chip health sensor reports over the lifetime",
    ))


def main() -> None:
    step1_circuit()
    params = step2_and_3_experiment()
    step4_sensor_view(params)


if __name__ == "__main__":
    main()
