"""Shim for legacy editable installs on environments without the wheel
package (pip's PEP-517 editable path needs bdist_wheel)."""

from setuptools import setup

setup()
