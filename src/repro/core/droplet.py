"""Droplet model (Sec. V-A).

A droplet is identified with its actuation pattern: a fully-filled rectangle
``delta = (xa, ya, xb, yb)`` of actuated microelectrodes.  Restricting the
state space to rectangular patterns is the paper's key scalability move —
droplet size, shape and location are tightly coupled with the pattern, and
free-roaming / under- / over-actuation are never useful.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.rect import Rect

#: The paper's off-chip sentinel for droplets that have not been dispensed
#: yet (Algorithm 1 uses start location (0, 0, 0, 0) for dispensing MOs).
#: On-chip coordinates are 1-based, so this rectangle never collides with a
#: real droplet.
OFF_CHIP = Rect(0, 0, 0, 0)


def is_off_chip(delta: Rect) -> bool:
    """Whether ``delta`` is the off-chip sentinel."""
    return delta == OFF_CHIP


def within_chip(delta: Rect, width: int, height: int) -> bool:
    """Whether the droplet lies entirely on a ``width x height`` chip.

    Chip cells are 1-based: ``1 <= x <= width``, ``1 <= y <= height``
    (Table III/IV use ``loc in [1, W] x [1, H]``).
    """
    return 1 <= delta.xa and 1 <= delta.ya and delta.xb <= width and delta.yb <= height


def actuation_matrix(
    droplets: list[Rect], width: int, height: int
) -> np.ndarray:
    """The biochip actuation matrix ``U`` for a set of droplet patterns.

    ``U[i-1, j-1] = 1`` exactly when some droplet covers cell ``(i, j)``
    (Example 1).  Off-chip sentinels contribute nothing.
    """
    u = np.zeros((width, height), dtype=np.uint8)
    for delta in droplets:
        if is_off_chip(delta):
            continue
        if not within_chip(delta, width, height):
            raise ValueError(f"droplet {delta} does not fit a {width}x{height} chip")
        u[delta.xa - 1 : delta.xb, delta.ya - 1 : delta.yb] = 1
    return u


def fit_droplet_shape(area: float, max_side_difference: int = 1) -> tuple[int, int]:
    """Pick the ``w x h`` rectangle best matching a target droplet area.

    The RJ helper (Sec. VI-B) computes droplet sizes for derived droplets
    (e.g. a mix output has the sum of its inputs' areas) by choosing the
    width/height pair that minimizes the area error subject to
    ``|w - h| <= 1``.  Ties prefer the wider shape, matching the paper's
    Table IV example where area 32 becomes ``6 x 5``.
    """
    if area <= 0:
        raise ValueError(f"droplet area must be positive, got {area}")
    if max_side_difference < 0:
        raise ValueError("side difference bound cannot be negative")
    best_key: tuple[float, int, int] | None = None
    best_shape: tuple[int, int] = (1, 1)
    side = int(np.ceil(np.sqrt(area))) + max_side_difference + 1
    for h in range(1, side + 1):
        for w in range(h, min(h + max_side_difference, side) + 1):
            err = abs(w * h - area)
            # Prefer smaller error; among ties prefer the larger (wider)
            # pattern so the droplet is never under-actuated.
            key = (err, -(w * h), -w)
            if best_key is None or key < best_key:
                best_key, best_shape = key, (w, h)
    return best_shape


def size_error(shape: tuple[int, int], area: float) -> float:
    """Relative area error of a fitted shape (the Table IV "Size Error")."""
    w, h = shape
    if area <= 0:
        raise ValueError("area must be positive")
    return abs(w * h - area) / area
