"""Routing strategies and the offline strategy library (Sec. VI-D).

The hybrid scheduling scheme keeps a library of synthesized strategies keyed
by routing job and by the health information inside the job's hazard zone.
At runtime the scheduler first consults the library; a miss triggers
(re-)synthesis and the result is cached.  Because MC health is monotone
non-increasing, cached entries never need invalidation — a changed ``H``
simply keys a different entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import perf
from repro.core.routing_job import RoutingJob
from repro.core.synthesis import SynthesisResult
from repro.geometry.rect import Rect
from repro.modelcheck.strategy import MemorylessStrategy


@dataclass(frozen=True)
class RoutingStrategy:
    """A droplet routing strategy ``pi: patterns -> action names``.

    Wraps the model checker's memoryless strategy with the routing job it
    solves and the value achieved (expected cycles or success probability).
    """

    job: RoutingJob
    policy: MemorylessStrategy
    expected_cycles: float

    def action(self, delta: Rect) -> str | None:
        """The prescribed action for the current droplet pattern.

        ``None`` when the pattern satisfies the goal (nothing left to do) or
        when the strategy is undefined there (the pattern was unreachable
        under the synthesis model — the scheduler treats that as a miss and
        resynthesizes from the new pattern).
        """
        return self.policy.action(delta)

    def covers(self, delta: Rect) -> bool:
        """Whether the strategy prescribes an action at ``delta``."""
        return self.policy.action(delta) is not None

    def to_payload(self) -> dict:
        """A JSON/pickle-safe dict form (job + policy + value).

        This is the wire format of the synthesis engine: worker processes
        and the persistent strategy store both ship strategies as these
        compact dicts instead of pickled model objects.
        """
        return {
            "job": job_to_payload(self.job),
            "policy": self.policy.to_payload(),
            "expected_cycles": self.expected_cycles,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RoutingStrategy":
        """Rehydrate a strategy from :meth:`to_payload` output."""
        return cls(
            job=job_from_payload(payload["job"]),
            policy=MemorylessStrategy.from_payload(payload["policy"]),
            expected_cycles=float(payload["expected_cycles"]),
        )


def job_to_payload(job: RoutingJob) -> dict:
    """JSON-safe encoding of a routing job (inverse: :func:`job_from_payload`)."""
    return {
        "start": list(job.start.as_tuple()),
        "goal": list(job.goal.as_tuple()),
        "hazard": list(job.hazard.as_tuple()),
        "obstacles": [list(o.as_tuple()) for o in job.obstacles],
    }


def job_from_payload(payload: dict) -> RoutingJob:
    """Rebuild a routing job from :func:`job_to_payload` output."""
    return RoutingJob(
        start=Rect(*(int(v) for v in payload["start"])),
        goal=Rect(*(int(v) for v in payload["goal"])),
        hazard=Rect(*(int(v) for v in payload["hazard"])),
        obstacles=tuple(
            Rect(*(int(v) for v in o)) for o in payload["obstacles"]
        ),
    )


def health_fingerprint(health: np.ndarray, zone: Rect) -> bytes:
    """A hashable digest of the health values inside a hazard zone.

    Only the zone's cells can influence the synthesized strategy, so the
    library keys on exactly those values (1-based inclusive rectangle).
    """
    sub = health[zone.xa - 1 : zone.xb, zone.ya - 1 : zone.yb]
    return np.ascontiguousarray(sub).tobytes()


def fingerprint_digest(fingerprint: bytes | None) -> str | None:
    """A short stable hex digest of a health fingerprint, for telemetry.

    Raw fingerprints are zone-sized byte blobs; journal records and span
    attributes carry this 12-hex-char digest instead so "did the health
    change" stays answerable without bloating the logs.
    """
    if fingerprint is None:
        return None
    import hashlib

    return hashlib.sha1(fingerprint).hexdigest()[:12]


@dataclass
class StrategyLibrary:
    """The offline/online strategy cache of the hybrid scheduler.

    Pure-offline synthesis for all possible ``H`` values is intractable (the
    paper notes ``|S| > 10^77`` for a modest chip), so the library is
    populated lazily: entries are added as jobs are synthesized, including
    the degradation-free pre-synthesis pass the hybrid scheme starts from.
    """

    entries: dict[tuple[tuple[int, ...], bytes], RoutingStrategy] = field(
        default_factory=dict
    )
    #: Last solved value vector per job key (health-independent), used to
    #: warm-start value iteration on the next resynthesis of the same job.
    warm_values: dict[tuple[int, ...], dict] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def _key(
        self, job: RoutingJob, health: np.ndarray
    ) -> tuple[tuple[int, ...], bytes]:
        return (job.key(), health_fingerprint(health, job.hazard))

    def contains(self, job: RoutingJob, health: np.ndarray) -> bool:
        """Membership check that does not touch the hit/miss counters.

        Used by speculative machinery (prefetch submission) that must not
        pollute the cache statistics with lookups no plan ever asked for.
        """
        return self._key(job, health) in self.entries

    def get(self, job: RoutingJob, health: np.ndarray) -> RoutingStrategy | None:
        """Look up a strategy for ``job`` under the current health matrix."""
        entry = self.entries.get(self._key(job, health))
        if entry is None:
            self.misses += 1
            perf.incr("library.misses")
        else:
            self.hits += 1
            perf.incr("library.hits")
        return entry

    def put(
        self, job: RoutingJob, health: np.ndarray, strategy: RoutingStrategy
    ) -> None:
        """Cache a synthesized strategy and retain its values for warm-start.

        MC health is monotone non-increasing, so when the same job is
        resynthesized under degraded health the previous ``Rmin`` fixpoint
        is a natural seed: the new values dominate the old ones pointwise
        and the stochastic-shortest-path iteration converges from any
        nonnegative start, so seeding is sound and typically saves most of
        the iterations.
        """
        self.entries[self._key(job, health)] = strategy
        self.warm_values[job.key()] = strategy.policy.values

    def warm_start(self, job: RoutingJob) -> dict | None:
        """The last solved ``{pattern: value}`` map for ``job``, if any."""
        return self.warm_values.get(job.key())

    def __len__(self) -> int:
        return len(self.entries)


def strategy_from_synthesis(
    job: RoutingJob, result: SynthesisResult
) -> RoutingStrategy | None:
    """Wrap a synthesis result, or ``None`` when synthesis failed."""
    if result.strategy is None:
        return None
    return RoutingStrategy(
        job=job,
        policy=result.strategy,
        expected_cycles=result.expected_cycles,
    )
