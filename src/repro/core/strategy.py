"""Routing strategies and the offline strategy library (Sec. VI-D).

The hybrid scheduling scheme keeps a library of synthesized strategies keyed
by routing job and by the health information inside the job's hazard zone.
At runtime the scheduler first consults the library; a miss triggers
(re-)synthesis and the result is cached.  Because MC health is monotone
non-increasing, cached entries never need invalidation — a changed ``H``
simply keys a different entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import perf
from repro.core.routing_job import RoutingJob
from repro.core.synthesis import SynthesisResult
from repro.geometry.rect import Rect
from repro.modelcheck.strategy import MemorylessStrategy


@dataclass(frozen=True)
class RoutingStrategy:
    """A droplet routing strategy ``pi: patterns -> action names``.

    Wraps the model checker's memoryless strategy with the routing job it
    solves and the value achieved (expected cycles or success probability).
    """

    job: RoutingJob
    policy: MemorylessStrategy
    expected_cycles: float

    def action(self, delta: Rect) -> str | None:
        """The prescribed action for the current droplet pattern.

        ``None`` when the pattern satisfies the goal (nothing left to do) or
        when the strategy is undefined there (the pattern was unreachable
        under the synthesis model — the scheduler treats that as a miss and
        resynthesizes from the new pattern).
        """
        return self.policy.action(delta)

    def covers(self, delta: Rect) -> bool:
        """Whether the strategy prescribes an action at ``delta``."""
        return self.policy.action(delta) is not None


def health_fingerprint(health: np.ndarray, zone: Rect) -> bytes:
    """A hashable digest of the health values inside a hazard zone.

    Only the zone's cells can influence the synthesized strategy, so the
    library keys on exactly those values (1-based inclusive rectangle).
    """
    sub = health[zone.xa - 1 : zone.xb, zone.ya - 1 : zone.yb]
    return np.ascontiguousarray(sub).tobytes()


def fingerprint_digest(fingerprint: bytes | None) -> str | None:
    """A short stable hex digest of a health fingerprint, for telemetry.

    Raw fingerprints are zone-sized byte blobs; journal records and span
    attributes carry this 12-hex-char digest instead so "did the health
    change" stays answerable without bloating the logs.
    """
    if fingerprint is None:
        return None
    import hashlib

    return hashlib.sha1(fingerprint).hexdigest()[:12]


@dataclass
class StrategyLibrary:
    """The offline/online strategy cache of the hybrid scheduler.

    Pure-offline synthesis for all possible ``H`` values is intractable (the
    paper notes ``|S| > 10^77`` for a modest chip), so the library is
    populated lazily: entries are added as jobs are synthesized, including
    the degradation-free pre-synthesis pass the hybrid scheme starts from.
    """

    entries: dict[tuple[tuple[int, ...], bytes], RoutingStrategy] = field(
        default_factory=dict
    )
    #: Last solved value vector per job key (health-independent), used to
    #: warm-start value iteration on the next resynthesis of the same job.
    warm_values: dict[tuple[int, ...], dict] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def _key(
        self, job: RoutingJob, health: np.ndarray
    ) -> tuple[tuple[int, ...], bytes]:
        return (job.key(), health_fingerprint(health, job.hazard))

    def get(self, job: RoutingJob, health: np.ndarray) -> RoutingStrategy | None:
        """Look up a strategy for ``job`` under the current health matrix."""
        entry = self.entries.get(self._key(job, health))
        if entry is None:
            self.misses += 1
            perf.incr("library.misses")
        else:
            self.hits += 1
            perf.incr("library.hits")
        return entry

    def put(
        self, job: RoutingJob, health: np.ndarray, strategy: RoutingStrategy
    ) -> None:
        """Cache a synthesized strategy and retain its values for warm-start.

        MC health is monotone non-increasing, so when the same job is
        resynthesized under degraded health the previous ``Rmin`` fixpoint
        is a natural seed: the new values dominate the old ones pointwise
        and the stochastic-shortest-path iteration converges from any
        nonnegative start, so seeding is sound and typically saves most of
        the iterations.
        """
        self.entries[self._key(job, health)] = strategy
        self.warm_values[job.key()] = strategy.policy.values

    def warm_start(self, job: RoutingJob) -> dict | None:
        """The last solved ``{pattern: value}`` map for ``job``, if any."""
        return self.warm_values.get(job.key())

    def __len__(self) -> int:
        return len(self.entries)


def strategy_from_synthesis(
    job: RoutingJob, result: SynthesisResult
) -> RoutingStrategy | None:
    """Wrap a synthesis result, or ``None`` when synthesis failed."""
    if result.strategy is None:
        return None
    return RoutingStrategy(
        job=job,
        policy=result.strategy,
        expected_cycles=result.expected_cycles,
    )
