"""Routers: the proposed adaptive synthesizer and the shortest-path baseline.

The evaluation (Sec. VII-A) compares two routing algorithms:

* the **baseline** is unaware of degradation and produces the shortest-path
  strategy, minimizing the distance traveled by each droplet;
* the **adaptive** router follows the synthesis framework: it plans against
  the sensed health matrix and is re-invoked by the scheduler whenever the
  health inside the job's hazard zone changes.

Both are expressed through the same synthesis machinery: the baseline is
simply synthesis against a uniform full-force field (with full force,
``Rmin`` is exactly the shortest path in cycles), so any performance gap in
the experiments comes from *information*, not implementation differences.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro import obs, perf
from repro.core.actions import DEFAULT_MAX_ASPECT
from repro.core.routing_job import RoutingJob
from repro.core.strategy import (
    RoutingStrategy,
    StrategyLibrary,
    fingerprint_digest,
    health_fingerprint,
    strategy_from_synthesis,
)
from repro.core.synthesis import (
    SYNTHESIS_EPSILON,
    baseline_field,
    synthesize,
    synthesize_with_field,
)
from repro.modelcheck.properties import Query


class Router(Protocol):
    """What the scheduler needs from a routing algorithm."""

    #: Whether the scheduler should re-plan when zone health changes.
    adaptive: bool

    def plan(self, job: RoutingJob, health: np.ndarray) -> RoutingStrategy | None:
        """A strategy for ``job`` under the sensed health (None = no route)."""
        ...  # pragma: no cover - protocol


class AdaptiveRouter:
    """The paper's adaptive router (Algorithm 2 + the hybrid library).

    Strategies are cached in a :class:`StrategyLibrary` keyed by the health
    inside the hazard zone, so repeated executions on a slowly degrading
    chip mostly hit the cache; a health change triggers a miss and a fresh
    synthesis — the hybrid scheduling scheme of Sec. VI-D.
    """

    adaptive = True

    def __init__(
        self,
        bits: int = 2,
        query: Query | None = None,
        max_aspect: float = DEFAULT_MAX_ASPECT,
        pessimistic: bool = False,
        epsilon: float = SYNTHESIS_EPSILON,
        library: StrategyLibrary | None = None,
        engine: "object | None" = None,
    ) -> None:
        """``engine`` is an optional :class:`repro.engine.SynthesisEngine`.

        When present, plans are served in priority order: in-memory library,
        completed speculation from the worker pool, persistent store, and
        finally synchronous synthesis.  Speculation and store only ever
        supply strategies that synchronous synthesis would have produced
        for the same (job, health), so the routing decisions are identical
        with and without an engine.
        """
        self.bits = bits
        self.query = query
        self.max_aspect = max_aspect
        self.pessimistic = pessimistic
        self.epsilon = epsilon
        self.library = library if library is not None else StrategyLibrary()
        self.engine = engine
        self.syntheses = 0
        self.synthesis_seconds = 0.0

    def prefetch(self, job: RoutingJob, health: np.ndarray) -> bool:
        """Speculatively submit ``(job, health)`` to the engine pool.

        Skips jobs the library already covers; warm-start values are
        captured now, exactly as a synchronous plan at this moment would.
        """
        if self.engine is None or not self.engine.pooled:
            return False
        if self.library.contains(job, health):
            return False
        return self.engine.submit(
            job, health, warm_values=self.library.warm_start(job)
        )

    def prefetch_batch(
        self, jobs: "list[RoutingJob]", health: np.ndarray
    ) -> int:
        """Speculatively submit a wave of jobs as one batched engine task.

        The batch counterpart of :meth:`prefetch`: library-covered jobs
        are filtered out, warm-start values are captured per job exactly
        as a synchronous plan at this moment would, and the rest ship via
        :meth:`~repro.engine.SynthesisEngine.presynthesize_batch` — one
        pool task for the whole wave (or an in-process batched solve when
        the engine has no pool).  Returns the number of jobs submitted.
        """
        if self.engine is None:
            return 0
        items = [
            (job, self.library.warm_start(job))
            for job in jobs
            if not self.library.contains(job, health)
        ]
        if not items:
            return 0
        return self.engine.presynthesize_batch(items, health)

    def plan(self, job: RoutingJob, health: np.ndarray) -> RoutingStrategy | None:
        with obs.span("rj.plan", job=job.key()) as rj_span:
            cached = self.library.get(job, health)
            if cached is not None:
                rj_span.set(cache="hit")
                return cached
            # A library miss on a previously solved job means the zone health
            # changed; seed value iteration from the last fixpoint (sound for
            # the default Rmin query — synthesize ignores the seed otherwise).
            warm_values = self.library.warm_start(job)
            rj_span.set(
                cache="miss",
                warm=warm_values is not None,
                health_fp=fingerprint_digest(
                    health_fingerprint(health, job.hazard)
                ),
            )
            if self.engine is not None:
                status, speculated = self.engine.take(job, health)
                rj_span.set(engine=status)
                if status in ("hit", "no-plan"):
                    # A completed speculation is a definitive answer for this
                    # exact (job, health fingerprint) pair.
                    perf.incr("engine.presynthesized")
                    if speculated is not None:
                        self.library.put(job, health, speculated)
                        self.engine.store_put(job, health, speculated)
                    return speculated
                stored = self.engine.store_get(job, health)
                if stored is not None:
                    # library.put also installs the stored values as the
                    # job's warm-start seed for future resyntheses.
                    rj_span.set(store="hit")
                    self.library.put(job, health, stored)
                    return stored
            result = synthesize(
                job,
                health,
                bits=self.bits,
                query=self.query,
                max_aspect=self.max_aspect,
                pessimistic=self.pessimistic,
                epsilon=self.epsilon,
                warm_values=warm_values,
            )
            self.syntheses += 1
            self.synthesis_seconds += result.total_time
            perf.incr("router.adaptive.syntheses")
            perf.add_time("router.adaptive.synthesis_seconds", result.total_time)
            obs.journal_event(
                "synthesis",
                router="adaptive",
                job=job.key(),
                ms=result.total_time * 1e3,
                construct_ms=result.construction_time * 1e3,
                solve_ms=result.solve_time * 1e3,
                warm=warm_values is not None,
                exists=result.exists,
            )
            strategy = strategy_from_synthesis(job, result)
            if strategy is not None:
                self.library.put(job, health, strategy)
                if self.engine is not None:
                    self.engine.store_put(job, health, strategy)
            return strategy


class BaselineRouter:
    """The degradation-unaware shortest-path router.

    Plans once per routing job against a uniform full-force field and never
    looks at the health matrix again; with all success probabilities equal
    to one, ``Rmin`` reduces to the minimum number of cycles, i.e. the
    shortest path over the action set.
    """

    adaptive = False

    def __init__(
        self,
        width: int,
        height: int,
        max_aspect: float = DEFAULT_MAX_ASPECT,
        epsilon: float = SYNTHESIS_EPSILON,
    ) -> None:
        self.width = width
        self.height = height
        self.max_aspect = max_aspect
        self.epsilon = epsilon
        self._cache: dict[tuple[int, ...], RoutingStrategy | None] = {}
        self.syntheses = 0
        self.synthesis_seconds = 0.0

    def plan(self, job: RoutingJob, health: np.ndarray) -> RoutingStrategy | None:
        key = job.key()
        if key in self._cache:
            return self._cache[key]
        with obs.span("rj.plan", job=key, cache="miss"):
            result = synthesize_with_field(
                job,
                baseline_field(self.width, self.height),
                max_aspect=self.max_aspect,
                epsilon=self.epsilon,
            )
        self.syntheses += 1
        self.synthesis_seconds += result.total_time
        perf.incr("router.baseline.syntheses")
        obs.journal_event(
            "synthesis",
            router="baseline",
            job=key,
            ms=result.total_time * 1e3,
            construct_ms=result.construction_time * 1e3,
            solve_ms=result.solve_time * 1e3,
            warm=False,
            exists=result.exists,
        )
        strategy = strategy_from_synthesis(job, result)
        self._cache[key] = strategy
        return strategy


class ReactiveRouter:
    """The baseline plus reactive, retrial-style error recovery (Sec. II-C).

    Routes like the degradation-unaware baseline (shortest paths against a
    uniform full-force field).  When the scheduler detects that a droplet
    has stopped making progress — the observable symptom of a degraded or
    failed frontier — :meth:`recover` re-plans from the droplet's current
    pattern using the *current* health matrix: a reroute corrective action.

    This is the reactive counterpoint to the paper's proactive framework:
    it only consults health information after an error manifests, so it
    pays the stall cycles the adaptive router avoids, but it does not die
    on dead corridors the way the pure baseline does.
    """

    adaptive = False
    reactive = True

    def __init__(
        self,
        width: int,
        height: int,
        bits: int = 2,
        max_aspect: float = DEFAULT_MAX_ASPECT,
        epsilon: float = SYNTHESIS_EPSILON,
    ) -> None:
        self.width = width
        self.height = height
        self.bits = bits
        self.max_aspect = max_aspect
        self.epsilon = epsilon
        self._baseline = BaselineRouter(width, height, max_aspect=max_aspect,
                                        epsilon=epsilon)
        self.recoveries = 0

    @property
    def syntheses(self) -> int:
        return self._baseline.syntheses + self.recoveries

    @property
    def synthesis_seconds(self) -> float:
        return self._baseline.synthesis_seconds + self._recovery_seconds

    _recovery_seconds = 0.0

    def plan(self, job: RoutingJob, health: np.ndarray) -> RoutingStrategy | None:
        return self._baseline.plan(job, health)

    def recover(self, job: RoutingJob, health: np.ndarray) -> RoutingStrategy | None:
        """Retrial corrective action: replan around the observed blockage.

        First replans within the job's hazard bounds; if the blockage seals
        the whole zone, retries with the zone widened to the full chip — a
        reroute may legitimately take any free path, whereas the proactive
        framework would have fenced a feasible zone to begin with.
        """
        self.recoveries += 1
        perf.incr("router.reactive.recoveries")
        with obs.span("rj.recover", job=job.key()):
            result = synthesize(
                job, health, bits=self.bits, max_aspect=self.max_aspect,
                epsilon=self.epsilon,
            )
        self._recovery_seconds += result.total_time
        obs.journal_event(
            "synthesis",
            router="reactive-recover",
            job=job.key(),
            ms=result.total_time * 1e3,
            construct_ms=result.construction_time * 1e3,
            solve_ms=result.solve_time * 1e3,
            warm=False,
            exists=result.exists,
        )
        strategy = strategy_from_synthesis(job, result)
        if strategy is not None:
            return strategy
        from repro.geometry.rect import Rect

        widened = RoutingJob(
            job.start, job.goal, Rect(1, 1, self.width, self.height),
            job.obstacles,
        )
        result = synthesize(
            widened, health, bits=self.bits, max_aspect=self.max_aspect,
            epsilon=self.epsilon,
        )
        self._recovery_seconds += result.total_time
        return strategy_from_synthesis(widened, result)


class OracleRouter:
    """An ablation router that sees the *true* degradation matrix.

    Upper-bounds what any health-sensing scheme can achieve: it plans with
    the exact per-MC forces ``D²`` instead of the quantized estimate.  Used
    by the ablation benches, not by the paper's experiments.
    """

    adaptive = True

    def __init__(
        self,
        max_aspect: float = DEFAULT_MAX_ASPECT,
        epsilon: float = SYNTHESIS_EPSILON,
    ) -> None:
        self.max_aspect = max_aspect
        self.epsilon = epsilon
        self.syntheses = 0
        self.synthesis_seconds = 0.0

    def plan(self, job: RoutingJob, degradation: np.ndarray) -> RoutingStrategy | None:
        from repro.core.synthesis import force_field_from_degradation

        result = synthesize_with_field(
            job,
            force_field_from_degradation(degradation),
            max_aspect=self.max_aspect,
            epsilon=self.epsilon,
        )
        self.syntheses += 1
        self.synthesis_seconds += result.total_time
        return strategy_from_synthesis(job, result)
