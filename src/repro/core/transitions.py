"""Probabilistic outcome kernels for microfluidic actions (Sec. V-B).

The degradation level of the frontier MCs determines the EWOD driving force,
so an action may not produce the intended movement.  With the per-MC relative
force ``f_ij = tau^(2 n_ij / c) = D_ij²`` and all frontier MCs contributing
equally, the per-leg success probability is the *mean* frontier force

    p_leg(delta; a, d) = F(delta; a, d) / |Fr(delta; a, d)|
                       = mean_{(i,j) in Fr} f_ij,

and the outcome distributions are:

* single-step ``a_d``:  success ``d`` w.p. ``p``, stall ``eps`` w.p. ``1-p``;
* double-step ``a_dd``: the second hop is conditioned on the first —
  ``dd`` w.p. ``p1 p2``, ``d`` w.p. ``p1 (1 - p2)``, ``eps`` w.p. ``1 - p1``;
* ordinal ``a_dd'``: the two axes pull independently — ``dd'`` w.p.
  ``p_d p_d'``, ``d`` w.p. ``p_d (1-p_d')``, ``d'`` w.p. ``(1-p_d) p_d'``,
  ``eps`` w.p. ``(1-p_d)(1-p_d')``;
* morphs: a single Bernoulli leg on the pulling frontier.

Frontier cells that fall off the chip have no microelectrode to pull the
droplet, so a force field must return zero force there; movement off the
array then has probability zero without any special-casing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.core.actions import (
    Action,
    ActionClass,
    apply_action,
    frontier,
)
from repro.geometry.rect import Rect


class ForceField(Protocol):
    """Per-microelectrode relative EWOD force, indexed by 1-based cell."""

    def force(self, i: int, j: int) -> float:
        """Relative force of MC ``(i, j)``; zero for cells off the chip."""
        ...  # pragma: no cover - protocol

    def rect_mean(self, rect: Rect) -> float:
        """Mean force over a rectangle (off-chip cells count as zero)."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class MatrixForceField:
    """A force field backed by a ``(W, H)`` matrix of per-MC forces.

    Cells outside the matrix exert zero force (there is no microelectrode
    there), which is exactly what makes off-chip moves impossible.
    """

    forces: np.ndarray

    def __post_init__(self) -> None:
        if self.forces.ndim != 2:
            raise ValueError("force matrix must be two-dimensional")
        if np.any(self.forces < 0.0) or np.any(self.forces > 1.0):
            raise ValueError("relative forces must lie in [0, 1]")

    def force(self, i: int, j: int) -> float:
        width, height = self.forces.shape
        if 1 <= i <= width and 1 <= j <= height:
            return float(self.forces[i - 1, j - 1])
        return 0.0

    def rect_mean(self, rect: Rect) -> float:
        """Mean force over ``rect`` via an array slice (hot path).

        Equivalent to averaging :meth:`force` over ``rect.cells()``; cells
        outside the chip contribute zero force to the mean.
        """
        width, height = self.forces.shape
        xa, ya = max(rect.xa, 1), max(rect.ya, 1)
        xb, yb = min(rect.xb, width), min(rect.yb, height)
        if xb < xa or yb < ya:
            return 0.0
        total = float(self.forces[xa - 1 : xb, ya - 1 : yb].sum())
        return total / rect.area


@dataclass(frozen=True)
class UniformForceField:
    """A constant force everywhere on a ``width x height`` chip."""

    width: int
    height: int
    value: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.value <= 1.0:
            raise ValueError("relative force must lie in [0, 1]")

    def force(self, i: int, j: int) -> float:
        if 1 <= i <= self.width and 1 <= j <= self.height:
            return self.value
        return 0.0

    def rect_mean(self, rect: Rect) -> float:
        """Mean force over ``rect`` (off-chip cells contribute zero)."""
        xa, ya = max(rect.xa, 1), max(rect.ya, 1)
        xb, yb = min(rect.xb, self.width), min(rect.yb, self.height)
        if xb < xa or yb < ya:
            return 0.0
        inside = (xb - xa + 1) * (yb - ya + 1)
        return self.value * inside / rect.area


@dataclass(frozen=True)
class Outcome:
    """One probabilistic outcome of executing an action.

    ``event`` is the paper's event name (``"N"``, ``"NE"``, ``"NN"``,
    ``"morph"`` or ``"eps"``); ``delta`` the resulting droplet pattern.
    """

    event: str
    delta: Rect
    probability: float


def leg_probability(delta: Rect, action: Action, direction: str, field: ForceField) -> float:
    """Mean frontier force — the per-leg success probability.

    Zero when the frontier is empty (a degenerate morph) so callers never
    divide by zero.
    """
    fr = frontier(delta, action, direction)
    if fr is None:
        return 0.0
    rect_mean = getattr(field, "rect_mean", None)
    if rect_mean is not None:
        return rect_mean(fr)
    cells = list(fr.cells())
    total = sum(field.force(i, j) for i, j in cells)
    return total / len(cells)


def outcome_distribution(
    delta: Rect, action: Action, field: ForceField
) -> list[Outcome]:
    """The full outcome distribution of ``action`` on ``delta``.

    Probabilities always sum to one; zero-probability outcomes are pruned.
    Guards are *not* checked here — callers (the MDP builder, the simulator)
    enable actions first.
    """
    klass = action.klass
    if klass is ActionClass.CARDINAL:
        direction = action.vertical or action.horizontal
        assert direction is not None
        p = leg_probability(delta, action, direction, field)
        moved = apply_action(delta, action)
        return _pruned(
            [
                Outcome(direction, moved, p),
                Outcome("eps", delta, 1.0 - p),
            ]
        )

    if klass is ActionClass.DOUBLE:
        direction = action.vertical or action.horizontal
        assert direction is not None
        one_step = _single_step(delta, direction)
        p1 = leg_probability(delta, action, direction, field)
        p2 = leg_probability(one_step, action, direction, field)
        two_steps = apply_action(delta, action)
        return _pruned(
            [
                Outcome(direction * 2, two_steps, p1 * p2),
                Outcome(direction, one_step, p1 * (1.0 - p2)),
                Outcome("eps", delta, 1.0 - p1),
            ]
        )

    if klass is ActionClass.ORDINAL:
        dv, dh = action.vertical, action.horizontal
        assert dv is not None and dh is not None
        pv = leg_probability(delta, action, dv, field)
        ph = leg_probability(delta, action, dh, field)
        return _pruned(
            [
                Outcome(dv + dh, apply_action(delta, action), pv * ph),
                Outcome(dv, _single_step(delta, dv), pv * (1.0 - ph)),
                Outcome(dh, _single_step(delta, dh), (1.0 - pv) * ph),
                Outcome("eps", delta, (1.0 - pv) * (1.0 - ph)),
            ]
        )

    # Morphing: one Bernoulli leg on the pulling frontier.
    direction = action.horizontal if klass is ActionClass.WIDEN else action.vertical
    assert direction is not None
    p = leg_probability(delta, action, direction, field)
    if p == 0.0:
        # Degenerate morph (single-row/-column droplet, or a fully dead /
        # off-chip frontier): the pattern cannot change.
        return [Outcome("eps", delta, 1.0)]
    return _pruned(
        [
            Outcome("morph", apply_action(delta, action), p),
            Outcome("eps", delta, 1.0 - p),
        ]
    )


def _single_step(delta: Rect, direction: str) -> Rect:
    from repro.core.actions import ACTIONS

    return apply_action(delta, ACTIONS[f"a_{direction}"])


def _pruned(outcomes: list[Outcome]) -> list[Outcome]:
    kept = [o for o in outcomes if o.probability > 0.0]
    total = 0.0
    for o in kept:
        total += o.probability
    if abs(total - 1.0) > 1e-9:
        raise AssertionError(f"outcome probabilities sum to {total}, not 1")
    return kept


def sample_outcome(
    delta: Rect, action: Action, field: ForceField, rng: np.random.Generator
) -> Outcome:
    """Sample one outcome — the simulator's droplet-update step (Fig. 14)."""
    outcomes = outcome_distribution(delta, action, field)
    probs = np.array([o.probability for o in outcomes])
    idx = rng.choice(len(outcomes), p=probs / probs.sum())
    return outcomes[int(idx)]
