"""The full MEDA stochastic multiplayer game (Sec. V-C).

Game states are triplets ``(delta, H, player)``: the droplet pattern, the
health matrix, and whose turn it is.  Player 1 (the droplet controller)
chooses microfluidic actions; player 2 (chip degradation) chooses which MCs
to degrade.  The paper uses this model in two ways: to *derive* the per-RJ
MDP by freezing ``H`` (Sec. VI-C — implemented in :mod:`repro.core.mdp`),
and as the simulation model with ``H`` replaced by the hidden ``D``.

Because the joint state space is astronomically large (the paper notes
``|S| > 10^77`` for a 20x20 chip), the explicit game built here is intended
for *small* instances: worst-case analyses, cross-validation of the MDP
reduction, and the adversarial-degradation ablation bench.  The degradation
player's action set is configurable; the default lets it degrade any single
MC inside the hazard zone (or do nothing), a standard abstraction of the
paper's power-set action space that keeps the game finite-branching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.actions import ALL_ACTIONS, DEFAULT_MAX_ASPECT, guard
from repro.core.routing_job import RoutingJob
from repro.core.synthesis import force_field_from_health
from repro.core.transitions import outcome_distribution
from repro.degradation.model import DEFAULT_HEALTH_BITS
from repro.geometry.rect import Rect
from repro.modelcheck.model import PLAYER_CONTROLLER, PLAYER_ENVIRONMENT, SMG

#: Absorbing sentinel for patterns outside the hazard bounds.
HAZARD_STATE = "HAZARD"

HealthKey = tuple[tuple[int, ...], ...]


def _health_key(health: np.ndarray) -> HealthKey:
    return tuple(tuple(int(v) for v in row) for row in health)


def _health_array(key: HealthKey) -> np.ndarray:
    return np.asarray(key, dtype=int)


@dataclass(frozen=True)
class GameState:
    """One SMG state ``s = (delta, H, player)``."""

    delta: Rect | str
    health: HealthKey
    player: int


def build_meda_smg(
    job: RoutingJob,
    initial_health: np.ndarray,
    bits: int = DEFAULT_HEALTH_BITS,
    max_aspect: float = DEFAULT_MAX_ASPECT,
    degradable_cells: Iterable[tuple[int, int]] | None = None,
    max_degradations: int | None = None,
) -> SMG:
    """Build the explicit MEDA SMG for a routing job.

    ``degradable_cells`` restricts which MCs player 2 may degrade (default:
    every cell inside the hazard zone); ``max_degradations`` optionally caps
    the total number of degradation events, bounding the state space for
    tests.  Player 2 always has a "do nothing" move, so it can never be
    forced to act.
    """
    if job.is_dispense:
        raise ValueError("dispense jobs are materialized, not routed")
    if degradable_cells is None:
        degradable_cells = list(job.hazard.cells())
    else:
        degradable_cells = list(degradable_cells)

    game = SMG()
    initial = GameState(job.start, _health_key(initial_health), PLAYER_CONTROLLER)
    game.set_initial(initial)
    budget_left = {initial: max_degradations}

    stack = [initial]
    seen = {initial}
    while stack:
        state = stack.pop()
        if state.delta == HAZARD_STATE:
            game.add_label("hazard", state)
            continue
        assert isinstance(state.delta, Rect)
        if job.goal.contains(state.delta):
            game.add_label("goal", state)
            continue
        game.set_player(state, state.player)
        if state.player == PLAYER_CONTROLLER:
            _expand_controller(game, job, state, max_aspect, bits, stack, seen,
                               budget_left)
        else:
            _expand_environment(game, state, degradable_cells, stack, seen,
                                budget_left)
    game.validate()
    return game


def _expand_controller(
    game: SMG,
    job: RoutingJob,
    state: GameState,
    max_aspect: float,
    bits: int,
    stack: list[GameState],
    seen: set[GameState],
    budget_left: dict[GameState, int | None],
) -> None:
    assert isinstance(state.delta, Rect)
    health = _health_array(state.health)
    field = force_field_from_health(health, bits=bits)
    budget = budget_left.get(state)
    for action in ALL_ACTIONS:
        if not guard(state.delta, action, max_aspect=max_aspect):
            continue
        successors: list[tuple[GameState, float]] = []
        for outcome in outcome_distribution(state.delta, action, field):
            if job.hazard.contains(outcome.delta):
                succ = GameState(outcome.delta, state.health, PLAYER_ENVIRONMENT)
            else:
                succ = GameState(HAZARD_STATE, state.health, PLAYER_ENVIRONMENT)
            successors.append((succ, outcome.probability))
            _visit(succ, stack, seen, budget_left, budget)
        game.add_choice(state, action.name, successors, reward=1.0)


def _expand_environment(
    game: SMG,
    state: GameState,
    degradable_cells: list[tuple[int, int]],
    stack: list[GameState],
    seen: set[GameState],
    budget_left: dict[GameState, int | None],
) -> None:
    budget = budget_left.get(state)
    noop = GameState(state.delta, state.health, PLAYER_CONTROLLER)
    game.add_choice(state, "idle", [(noop, 1.0)])
    _visit(noop, stack, seen, budget_left, budget)
    if budget is not None and budget <= 0:
        return
    health = _health_array(state.health)
    for (i, j) in degradable_cells:
        current = health[i - 1, j - 1]
        if current <= 0:
            continue
        degraded = health.copy()
        degraded[i - 1, j - 1] = current - 1
        succ = GameState(state.delta, _health_key(degraded), PLAYER_CONTROLLER)
        game.add_choice(state, f"degrade_{i}_{j}", [(succ, 1.0)])
        _visit(succ, stack, seen, budget_left,
               None if budget is None else budget - 1)


def _visit(
    state: GameState,
    stack: list[GameState],
    seen: set[GameState],
    budget_left: dict[GameState, int | None],
    budget: int | None,
) -> None:
    if state in seen:
        # Keep the *largest* remaining budget seen for this state so the
        # exploration never under-approximates player 2's power.
        old = budget_left.get(state)
        if old is not None and (budget is None or budget > old):
            budget_left[state] = budget
        return
    seen.add(state)
    budget_left[state] = budget
    stack.append(state)
