"""Routing-strategy synthesis (Sec. VI-C, Algorithm 2).

``synthesize`` is the paper's ``SYNTH(RJ, H)``: build the routing MDP from
the routing job and the current health matrix, pose the reward query
``phi_r: Rmin=? [ [] !hazard && <> goal ]`` (or the probabilistic query
``phi_p: Pmax=? [...]``), hand it to the model checker and return the
optimal strategy together with the expected completion time (or success
probability).  When no strategy exists the result carries
``(pi, k) = (None, inf)``, matching the paper's convention.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs, perf
from repro.core.actions import DEFAULT_MAX_ASPECT, ActionClass
from repro.core.fastmdp import (
    CompiledRoutingModel,
    build_dedup_token,
    build_routing_model_fast,
    extract_fast_strategy,
)
from repro.core.mdp import RoutingModel, build_routing_mdp
from repro.core.routing_job import RoutingJob
from repro.core.transitions import ForceField, MatrixForceField, UniformForceField
from repro.degradation.model import (
    DEFAULT_HEALTH_BITS,
    health_to_degradation_estimate,
)
from repro.modelcheck.batch import (
    solve_reach_avoid_probability_batch,
    solve_reach_avoid_reward_batch,
    structural_key,
)
from repro.modelcheck.compiled import (
    CompiledMDP,
    compile_mdp,
    solve_reach_avoid_probability,
    solve_reach_avoid_reward,
)
from repro.modelcheck.properties import Objective, Query, reward_query
from repro.modelcheck.reachability import ValueResult
from repro.modelcheck.strategy import MemorylessStrategy, extract_strategy

#: Default convergence threshold for synthesis-time value iteration.  The
#: routing decisions are insensitive to value errors far below one cycle, so
#: this is much looser than the model checker's verification default.
SYNTHESIS_EPSILON = 1e-6


def force_field_from_health(
    health: np.ndarray,
    bits: int = DEFAULT_HEALTH_BITS,
    pessimistic: bool = False,
) -> MatrixForceField:
    """The controller's force estimate from the observed health matrix.

    The controller sees only the quantized ``H``; it reconstructs a
    degradation estimate ``D_hat`` per MC (mid-bucket by default,
    bucket-floor with ``pessimistic=True``) and uses ``D_hat²`` as the
    relative force — eq. 2's ``F = D²`` with the estimate substituted.
    """
    d_hat = health_to_degradation_estimate(health, bits=bits, pessimistic=pessimistic)
    return MatrixForceField(np.asarray(d_hat, dtype=float) ** 2)


def force_field_from_degradation(degradation: np.ndarray) -> MatrixForceField:
    """The *true* force field ``F = D²`` — what the simulator rolls dice with."""
    return MatrixForceField(np.asarray(degradation, dtype=float) ** 2)


def _force_matrix(field: ForceField) -> np.ndarray | None:
    """The force matrix behind a field, or None for exotic field objects."""
    if isinstance(field, MatrixForceField):
        return field.forces
    if isinstance(field, UniformForceField):
        return np.full((field.width, field.height), field.value)
    return None


@dataclass(frozen=True)
class SynthesisResult:
    """Output of ``SYNTH``: the strategy, its value, and bookkeeping.

    ``expected_cycles`` is ``E[r_k]`` for reward queries (``inf`` when no
    strategy reaches the goal almost surely); ``success_probability`` is
    filled for probabilistic queries.  ``construction_time`` and
    ``solve_time`` split the runtime the way Table V reports it.
    """

    strategy: MemorylessStrategy | None
    expected_cycles: float
    success_probability: float | None
    model: "RoutingModel | CompiledRoutingModel | None"
    construction_time: float
    solve_time: float

    @property
    def total_time(self) -> float:
        return self.construction_time + self.solve_time

    @property
    def exists(self) -> bool:
        """Whether a usable strategy was synthesized."""
        return self.strategy is not None

    def to_payload(self) -> dict:
        """A compact, JSON/pickle-safe dict of this result.

        The heavyweight ``model`` (state inventory + CSR transitions) is
        deliberately dropped: cross-process consumers only need the policy
        and its value, and shipping the model would dwarf them both.
        """
        return {
            "strategy": None if self.strategy is None
            else self.strategy.to_payload(),
            "expected_cycles": self.expected_cycles,
            "success_probability": self.success_probability,
            "construction_time": self.construction_time,
            "solve_time": self.solve_time,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SynthesisResult":
        """Rehydrate a result from :meth:`to_payload` (``model`` is None)."""
        strategy = payload["strategy"]
        return cls(
            strategy=None if strategy is None
            else MemorylessStrategy.from_payload(strategy),
            expected_cycles=float(payload["expected_cycles"]),
            success_probability=payload["success_probability"],
            model=None,
            construction_time=float(payload["construction_time"]),
            solve_time=float(payload["solve_time"]),
        )


def synthesize(
    job: RoutingJob,
    health: np.ndarray,
    bits: int = DEFAULT_HEALTH_BITS,
    query: Query | None = None,
    max_aspect: float = DEFAULT_MAX_ASPECT,
    pessimistic: bool = False,
    epsilon: float = SYNTHESIS_EPSILON,
    warm_values: "dict | None" = None,
) -> SynthesisResult:
    """Algorithm 2: synthesize an adaptive routing strategy for ``job``.

    ``health`` is the current sensed health matrix ``H`` (shape ``(W, H)``).
    The default query is the paper's ``phi_r`` (minimum expected cycles).
    ``warm_values`` optionally seeds value iteration — see
    :func:`synthesize_with_field`.
    """
    field = force_field_from_health(health, bits=bits, pessimistic=pessimistic)
    return synthesize_with_field(
        job, field, query=query, max_aspect=max_aspect, epsilon=epsilon,
        warm_values=warm_values,
    )


def synthesize_with_field(
    job: RoutingJob,
    field: ForceField,
    query: Query | None = None,
    max_aspect: float = DEFAULT_MAX_ASPECT,
    epsilon: float = SYNTHESIS_EPSILON,
    families: tuple[ActionClass, ...] | None = None,
    warm_values: "dict | None" = None,
) -> SynthesisResult:
    """Synthesize against an explicit force field.

    Used directly by the degradation-unaware baseline (uniform full-health
    field) and by the ablation benches (true-``D`` oracle fields).

    ``warm_values`` is an optional ``{pattern: value}`` map (typically the
    ``values`` of a previously synthesized strategy for the same job) used
    to seed value iteration.  With the certified interval pipeline the seed
    only ever warm-starts the *contracting* side of the bracket, so it is
    safe for every objective; states absent from the map fill with the
    side-neutral value (0 for ``Rmin``/``Pmax``, 1 for ``Pmin``), so
    partial overlap after a health change is fine.  Seeds that fail the
    solver's one-step Bellman validation are silently dropped
    (``vi.warm.rejected``) — a wrong seed can cost the warm start, never
    soundness.
    """
    query = query if query is not None else reward_query()
    perf.incr("synthesis.count")

    t0 = time.perf_counter()
    with obs.span("synthesis.construct", job=job.key()):
        forces = _force_matrix(field)
        if forces is not None:
            model: RoutingModel | CompiledRoutingModel = build_routing_model_fast(
                job, forces, max_aspect=max_aspect, families=families
            )
            compiled = model.compiled
        else:
            model = build_routing_mdp(
                job, field, max_aspect=max_aspect, families=families
            )
            compiled = compile_mdp(model.mdp)
    t1 = time.perf_counter()

    initial_values = _warm_seed(model, compiled, query, warm_values)

    with obs.span("synthesis.solve", states=compiled.num_states,
                  warm=initial_values is not None) as solve_span:
        if query.objective in (Objective.RMIN, Objective.RMAX):
            result = solve_reach_avoid_reward(
                compiled,
                goal=query.formula.goal_label,
                avoid=query.formula.avoid_label,
                minimize=query.objective is Objective.RMIN,
                epsilon=epsilon,
                initial_values=initial_values,
            )
        else:
            result = solve_reach_avoid_probability(
                compiled,
                goal=query.formula.goal_label,
                avoid=query.formula.avoid_label,
                maximize=query.objective is Objective.PMAX,
                epsilon=epsilon,
                initial_values=initial_values,
            )
        solve_span.set(iterations=result.iterations)
    t2 = time.perf_counter()
    perf.add_time("synthesis.construct_seconds", t1 - t0)
    perf.add_time("synthesis.solve_seconds", t2 - t1)
    perf.observe("synthesis.construct_ms", (t1 - t0) * 1e3)
    perf.observe("synthesis.solve_ms", (t2 - t1) * 1e3)
    perf.observe("synthesis.total_ms", (t2 - t0) * 1e3)
    perf.observe("synthesis.vi_iterations", result.iterations,
                 bounds=perf.DEFAULT_COUNT_BUCKETS)
    return _finalize(job, query, model, compiled, result, t1 - t0, t2 - t1)


def _warm_seed(
    model: "RoutingModel | CompiledRoutingModel",
    compiled: CompiledMDP,
    query: Query,
    warm_values: "dict | None",
) -> np.ndarray | None:
    """Map a ``{pattern: value}`` warm-start onto a model's state indexing.

    Mapped by state identity, not index: a health change alters state
    discovery, so the same pattern can sit at a different index.  Absent
    states fill with the side-neutral value for the seeded bound: 1 for
    the Pmin upper iterate, 0 everywhere else.
    """
    if not warm_values or not isinstance(model, CompiledRoutingModel):
        return None
    fill = 1.0 if query.objective is Objective.PMIN else 0.0
    seed = np.fromiter(
        (warm_values.get(s, fill) for s in model.states),
        dtype=float,
        count=compiled.num_states,
    )
    perf.incr("synthesis.warm_seeded")
    return seed


def _finalize(
    job: RoutingJob,
    query: Query,
    model: "RoutingModel | CompiledRoutingModel",
    compiled: CompiledMDP,
    result: "ValueResult",
    construction_time: float,
    solve_time: float,
) -> SynthesisResult:
    """Package a solved model into a :class:`SynthesisResult`.

    Shared by the solo and batched synthesis paths, so strategy extraction
    and the no-plan/start-coverage gating cannot diverge between them.
    """
    if query.objective in (Objective.RMIN, Objective.RMAX):
        expected = float(result.values[compiled.initial])
        probability: float | None = None
    else:
        probability = float(result.values[compiled.initial])
        expected = float("inf") if probability == 0.0 else float("nan")
    if isinstance(model, CompiledRoutingModel):
        strategy: MemorylessStrategy | None = extract_fast_strategy(model, result)
    else:
        strategy = extract_strategy(model.mdp, result)
    no_plan = (
        query.objective in (Objective.RMIN, Objective.RMAX)
        and not np.isfinite(expected)
    ) or (probability is not None and probability <= 0.0)
    # A strategy is usable only when the start pattern already satisfies the
    # goal (nothing to do) or the policy prescribes an action there.  The
    # checks are guarded on ``strategy`` so a missing policy can never be
    # dereferenced.
    start_covered = job.goal.contains(job.start) or (
        strategy is not None and strategy.action(job.start) is not None
    )
    if no_plan or not start_covered:
        strategy = None
    return SynthesisResult(
        strategy=strategy,
        expected_cycles=expected,
        success_probability=probability,
        model=model,
        construction_time=construction_time,
        solve_time=solve_time,
    )


@dataclass(frozen=True)
class BatchRequest:
    """One synthesis problem in a :func:`synthesize_batch` call."""

    job: RoutingJob
    field: ForceField
    warm_values: "dict | None" = None


#: Cross-call memo of batch results keyed by the exact inputs the solve is
#: a pure function of: ``(job key, force-window bytes, query, max_aspect,
#: epsilon, families)``.  Synthesis is deterministic, so serving a memoized
#: result is bit-identical to re-solving; only cold (``warm_values=None``)
#: requests participate, which is the presynthesis/resynthesis-storm shape
#: the batch API exists for.
_BATCH_VALUE_MEMO: "dict[tuple, SynthesisResult]" = {}
_BATCH_VALUE_MEMO_MAX = 512


def clear_batch_value_memo() -> None:
    """Drop the cross-call batch result memo (benches model cold runs)."""
    _BATCH_VALUE_MEMO.clear()


def synthesize_batch(
    requests: "list[BatchRequest]",
    query: Query | None = None,
    max_aspect: float = DEFAULT_MAX_ASPECT,
    epsilon: float = SYNTHESIS_EPSILON,
    families: tuple[ActionClass, ...] | None = None,
) -> "list[SynthesisResult]":
    """Synthesize a family of routing jobs through the batched solver core.

    Models are built per request (template-cached construction), grouped
    into shape buckets by :func:`repro.modelcheck.batch.structural_key`,
    and each bucket is solved in one batched interval pass.  Every result
    is bit-identical to the corresponding :func:`synthesize_with_field`
    call — the batch kernel guarantees identical ``ValueResult`` bounds and
    the extraction/gating tail is literally shared code — so callers (the
    engine's presynthesis, the scheduler's degraded sync path) can swap the
    per-RJ loop for this without disturbing trace identity.

    Requests whose field has no backing matrix fall back to the solo path.
    Per-item ``solve_time`` is the bucket's wall-clock share (the batch
    solves models jointly, so individual attribution is necessarily
    amortized).
    """
    query = query if query is not None else reward_query()
    n = len(requests)
    results: "list[SynthesisResult | None]" = [None] * n
    models: "list[CompiledRoutingModel | None]" = [None] * n
    seeds: "list[np.ndarray | None]" = [None] * n
    construct: "list[float]" = [0.0] * n
    buckets: "dict[str, list[int]]" = {}
    # Requests whose (job, force-window, warm seed) coincide with an
    # earlier one get the earlier result verbatim: the model build is a
    # pure function of the window bytes (see fastmdp.build_dedup_token),
    # so the solo path would reproduce the exact same floats anyway.
    dup_of: "dict[int, int]" = {}
    seen: "dict[tuple, list[int]]" = {}
    memo_key: "dict[int, tuple]" = {}

    def _memo_key(job: RoutingJob, token: bytes) -> tuple:
        return (job.key(), token, query, float(max_aspect), float(epsilon),
                families if families is None else tuple(families))

    with obs.span("synthesis.batch", jobs=n) as batch_span:
        for i, req in enumerate(requests):
            forces = _force_matrix(req.field)
            if forces is None:
                results[i] = synthesize_with_field(
                    req.job, req.field, query=query, max_aspect=max_aspect,
                    epsilon=epsilon, families=families,
                    warm_values=req.warm_values,
                )
                continue
            token = build_dedup_token(req.job, forces, max_aspect, families)
            if token is not None:
                dkey = (req.job.key(), token)
                for j in seen.get(dkey, ()):
                    if requests[j].warm_values == req.warm_values:
                        dup_of[i] = j
                        perf.incr("vi.batch.dedup")
                        break
                if i in dup_of:
                    continue
                if req.warm_values is None:
                    hit = _BATCH_VALUE_MEMO.get(_memo_key(req.job, token))
                    if hit is not None:
                        results[i] = hit
                        seen.setdefault(dkey, []).append(i)
                        perf.incr("vi.batch.memo.hits")
                        continue
                    perf.incr("vi.batch.memo.misses")
            perf.incr("synthesis.count")
            t0 = time.perf_counter()
            with obs.span("synthesis.construct", job=req.job.key()):
                model = build_routing_model_fast(
                    req.job, forces, max_aspect=max_aspect, families=families
                )
            construct[i] = time.perf_counter() - t0
            perf.add_time("synthesis.construct_seconds", construct[i])
            perf.observe("synthesis.construct_ms", construct[i] * 1e3)
            models[i] = model
            seeds[i] = _warm_seed(model, model.compiled, query, req.warm_values)
            key = structural_key(model.compiled)
            buckets.setdefault(key, []).append(i)
            if token is None:  # first build for this geometry: window known now
                token = build_dedup_token(req.job, forces, max_aspect, families)
            if token is not None:
                seen.setdefault((req.job.key(), token), []).append(i)
                if req.warm_values is None:
                    memo_key[i] = _memo_key(req.job, token)
        batch_span.set(buckets=len(buckets), dedup=len(dup_of))

        for idxs in buckets.values():
            cms = [models[i].compiled for i in idxs]
            ivs = [seeds[i] for i in idxs]
            t0 = time.perf_counter()
            with obs.span("synthesis.solve", states=cms[0].num_states,
                          models=len(idxs),
                          warm=any(s is not None for s in ivs)) as solve_span:
                if query.objective in (Objective.RMIN, Objective.RMAX):
                    value_results = solve_reach_avoid_reward_batch(
                        cms,
                        goal=query.formula.goal_label,
                        avoid=query.formula.avoid_label,
                        minimize=query.objective is Objective.RMIN,
                        epsilon=epsilon,
                        initial_values=ivs,
                    )
                else:
                    value_results = solve_reach_avoid_probability_batch(
                        cms,
                        goal=query.formula.goal_label,
                        avoid=query.formula.avoid_label,
                        maximize=query.objective is Objective.PMAX,
                        epsilon=epsilon,
                        initial_values=ivs,
                    )
                solve_span.set(
                    iterations=max(r.iterations for r in value_results)
                )
            share = (time.perf_counter() - t0) / len(idxs)
            for i, vr in zip(idxs, value_results):
                perf.add_time("synthesis.solve_seconds", share)
                perf.observe("synthesis.solve_ms", share * 1e3)
                perf.observe("synthesis.total_ms", (construct[i] + share) * 1e3)
                perf.observe("synthesis.vi_iterations", vr.iterations,
                             bounds=perf.DEFAULT_COUNT_BUCKETS)
                results[i] = _finalize(
                    requests[i].job, query, models[i], models[i].compiled,
                    vr, construct[i], share,
                )
        for i, j in dup_of.items():
            results[i] = results[j]
        for i, mkey in memo_key.items():
            if results[i] is not None:
                if len(_BATCH_VALUE_MEMO) >= _BATCH_VALUE_MEMO_MAX:
                    _BATCH_VALUE_MEMO.pop(next(iter(_BATCH_VALUE_MEMO)))
                _BATCH_VALUE_MEMO[mkey] = results[i]
    return results


def baseline_field(width: int, height: int) -> UniformForceField:
    """The degradation-unaware router's world view: full force everywhere."""
    return UniformForceField(width=width, height=height, value=1.0)
