"""Per-routing-job MDP induction (Sec. VI-C, partial-order reduction).

Within one routing job the health matrix barely changes, so the paper fixes
``H`` at its current value, rendering the degradation player's move order
irrelevant; the SMG collapses to an MDP over droplet patterns.  Two further
reductions keep the model small:

* the state space is restricted to patterns inside the hazard bounds
  ``delta_h`` (droplet locations outside are all equivalently *lost*, so a
  single absorbing ``HAZARD`` sentinel represents them);
* states are enumerated by forward reachability from the start pattern.

Goal states (patterns contained in ``delta_g``) are absorbing — the routing
job is over.  Every enabled action carries reward 1 (the paper's cycle
reward ``r_k``), so ``Rmin`` queries yield expected cycles-to-goal.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.actions import ALL_ACTIONS, DEFAULT_MAX_ASPECT, ActionClass, guard
from repro.core.routing_job import RoutingJob
from repro.core.transitions import ForceField, outcome_distribution
from repro.geometry.rect import Rect
from repro.modelcheck.model import MDP

#: The absorbing sentinel representing every pattern outside the hazard
#: bounds.  Collapsing them keeps the state count at "positions + a few
#: sinks", matching the Table V model sizes.
HAZARD_STATE = "HAZARD"

#: Reward assigned to every microfluidic action: one operational cycle.
CYCLE_REWARD = 1.0


@dataclass(frozen=True)
class RoutingModel:
    """The induced MDP plus the labels the queries use."""

    mdp: MDP
    job: RoutingJob

    @property
    def num_states(self) -> int:
        return self.mdp.num_states

    @property
    def num_choices(self) -> int:
        return self.mdp.num_choices

    @property
    def num_transitions(self) -> int:
        return self.mdp.num_transitions


def build_routing_mdp(
    job: RoutingJob,
    field: ForceField,
    max_aspect: float = DEFAULT_MAX_ASPECT,
    families: tuple[ActionClass, ...] | None = None,
) -> RoutingModel:
    """Induce the routing MDP ``G_RJ`` for a routing job under a force field.

    ``field`` encodes the frozen health information: the synthesizer passes
    the controller's force estimate derived from ``H``; validation passes
    the true forces derived from ``D``.  ``families`` optionally restricts
    the action set to the given classes (the action-set ablation bench);
    ``None`` enables all five families.  Off-chip dispensing jobs are not
    routable (Algorithm 1 handles them separately) and are rejected.
    """
    if job.is_dispense:
        raise ValueError("dispense jobs are materialized, not routed")
    mdp = MDP()
    mdp.set_initial(job.start)
    mdp.add_state(HAZARD_STATE)
    mdp.add_label("hazard", HAZARD_STATE)

    seen: set[Rect] = {job.start}
    queue: deque[Rect] = deque([job.start])
    while queue:
        delta = queue.popleft()
        if job.goal.contains(delta):
            mdp.add_label("goal", delta)
            continue  # goal states are absorbing
        for action in ALL_ACTIONS:
            if families is not None and action.klass not in families:
                continue
            if not guard(delta, action, max_aspect=max_aspect):
                continue
            outcomes = outcome_distribution(delta, action, field)
            successors: list[tuple[object, float]] = []
            for outcome in outcomes:
                landing = outcome.delta
                safe = job.hazard.contains(landing) and (
                    landing == job.start or not job.blocked(landing)
                )
                if safe:
                    successors.append((landing, outcome.probability))
                    if landing not in seen:
                        seen.add(landing)
                        queue.append(landing)
                else:
                    successors.append((HAZARD_STATE, outcome.probability))
            mdp.add_choice(delta, action.name, successors, reward=CYCLE_REWARD)

    return RoutingModel(mdp=mdp, job=job)
