"""Array-first construction of the per-RJ routing MDP.

Semantically identical to :func:`repro.core.mdp.build_routing_mdp` followed
by :func:`repro.modelcheck.compiled.compile_mdp` — the unit tests check the
two pipelines produce the same model statistics and the same synthesis
values — but built for the synthesis hot loop:

* droplet patterns are plain ``(xa, ya, xb, yb)`` int tuples;
* per-(shape, action) metadata (guards, frontier rectangles, successor
  patterns) is compiled once per *process* into a global memo keyed by
  ``(w, h, max_aspect, families)`` and shifted per state;
* frontier means come from a 2-D prefix sum of the force matrix, so every
  leg probability is O(1);
* state expansion is *vectorized over BFS wavefronts*: every state of a
  wave with the same droplet shape is expanded with numpy array ops (leg
  probabilities, outcome products, hazard/obstacle checks, successor
  dedup through a per-shape id grid) instead of a per-state Python loop;
* transitions are emitted into chunked numpy buffers and assembled into
  CSR form directly, skipping the explicit model objects entirely.

:func:`build_routing_model_scalar` keeps the original per-state Python
expansion.  It is the pre-fast-path pipeline: the differential tests check
the vectorized builder against it (and against the reference explicit
builder), and ``benchmarks/bench_synthesis.py`` measures the speedup of
the fast path over it.

Only matrix-backed force fields are supported (the synthesizer's health
estimates and the baseline's uniform field both are); exotic fields fall
back to the explicit builder in :mod:`repro.core.synthesis`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro import perf
from repro.core.actions import (
    ALL_ACTIONS,
    DEFAULT_MAX_ASPECT,
    Action,
    ActionClass,
    apply_action,
    frontier,
    frontier_directions,
    guard,
)
from repro.core.mdp import CYCLE_REWARD
from repro.core.routing_job import RoutingJob
from repro.geometry.rect import Rect
from repro.modelcheck.compiled import CompiledMDP
from repro.modelcheck.reachability import ValueResult
from repro.modelcheck.strategy import MemorylessStrategy

IntRect = tuple[int, int, int, int]

#: Index of the absorbing hazard sink in every compiled routing model.
HAZARD_INDEX = 0


@dataclass(frozen=True)
class _LegSpec:
    """A frontier rectangle as offsets from the droplet's (xa, ya)."""

    dxa: int
    dya: int
    dxb: int
    dyb: int


@dataclass(frozen=True)
class _ActionSpec:
    """Precompiled semantics of one action for one droplet shape.

    ``legs`` holds the offset frontiers whose means are the leg success
    probabilities; ``outcomes`` maps tuples of leg-success booleans to the
    successor-pattern offsets ``(dxa, dya, w, h)`` (``None`` = stay put).
    """

    name: str
    klass: ActionClass
    legs: tuple[_LegSpec, ...]
    outcomes: tuple[tuple[tuple[bool, ...], tuple[int, int, int, int] | None], ...]


def _offset(base: Rect, rect: Rect) -> _LegSpec:
    return _LegSpec(
        rect.xa - base.xa, rect.ya - base.ya, rect.xb - base.xa, rect.yb - base.ya
    )


def _succ_offset(base: Rect, rect: Rect) -> tuple[int, int, int, int]:
    return (rect.xa - base.xa, rect.ya - base.ya, rect.width, rect.height)


def _compile_shape_actions(
    w: int, h: int, max_aspect: float,
    families: tuple[ActionClass, ...] | None = None,
) -> list[_ActionSpec]:
    """Per-shape action metadata, derived from the reference implementation."""
    base = Rect(100, 100, 100 + w - 1, 100 + h - 1)
    specs: list[_ActionSpec] = []
    for action in ALL_ACTIONS:
        if families is not None and action.klass not in families:
            continue
        if not guard(base, action, max_aspect=max_aspect):
            continue
        specs.append(_spec_for(base, action))
    return specs


def _spec_for(base: Rect, action: Action) -> _ActionSpec:
    klass = action.klass
    if klass is ActionClass.CARDINAL:
        (direction,) = frontier_directions(action)
        leg = _offset(base, frontier(base, action, direction))  # type: ignore[arg-type]
        moved = _succ_offset(base, apply_action(base, action))
        return _ActionSpec(
            action.name, klass, (leg,),
            (((True,), moved), ((False,), None)),
        )
    if klass is ActionClass.DOUBLE:
        (direction,) = frontier_directions(action)
        leg1 = _offset(base, frontier(base, action, direction))  # type: ignore[arg-type]
        from repro.core.actions import ACTIONS

        one = apply_action(base, ACTIONS[f"a_{direction}"])
        leg2 = _offset(base, frontier(one, action, direction))  # type: ignore[arg-type]
        return _ActionSpec(
            action.name, klass, (leg1, leg2),
            (
                ((True, True), _succ_offset(base, apply_action(base, action))),
                ((True, False), _succ_offset(base, one)),
                ((False,), None),  # second leg never attempted
            ),
        )
    if klass is ActionClass.ORDINAL:
        dv, dh = action.vertical, action.horizontal
        assert dv is not None and dh is not None
        legv = _offset(base, frontier(base, action, dv))  # type: ignore[arg-type]
        legh = _offset(base, frontier(base, action, dh))  # type: ignore[arg-type]
        from repro.core.actions import ACTIONS

        return _ActionSpec(
            action.name, klass, (legv, legh),
            (
                ((True, True), _succ_offset(base, apply_action(base, action))),
                ((True, False),
                 _succ_offset(base, apply_action(base, ACTIONS[f"a_{dv}"]))),
                ((False, True),
                 _succ_offset(base, apply_action(base, ACTIONS[f"a_{dh}"]))),
                ((False, False), None),
            ),
        )
    # Morphs: one leg; success reshapes the droplet.
    (direction,) = frontier_directions(action)
    fr = frontier(base, action, direction)
    if fr is None:  # degenerate single-row/-column morphs are unguarded only
        raise AssertionError("guarded morph must have a frontier")
    return _ActionSpec(
        action.name, klass, (_offset(base, fr),),
        (((True,), _succ_offset(base, apply_action(base, action))),
         ((False,), None)),
    )


#: Process-global memo of per-shape action semantics.  Key: droplet shape,
#: aspect bound and (normalized) family restriction; value: the compiled
#: specs.  Shape semantics are position-independent, so one compilation
#: serves every model build in the process.
_SHAPE_ACTION_MEMO: dict[
    tuple[int, int, float, tuple[ActionClass, ...] | None],
    tuple[_ActionSpec, ...],
] = {}


def compiled_shape_actions(
    w: int, h: int, max_aspect: float,
    families: tuple[ActionClass, ...] | None = None,
) -> tuple[_ActionSpec, ...]:
    """Memoized per-shape action semantics (see :data:`_SHAPE_ACTION_MEMO`)."""
    key = (w, h, float(max_aspect),
           families if families is None else tuple(families))
    specs = _SHAPE_ACTION_MEMO.get(key)
    if specs is None:
        perf.incr("fastmdp.shape_memo.miss")
        specs = tuple(_compile_shape_actions(w, h, max_aspect,
                                             families=key[3]))
        _SHAPE_ACTION_MEMO[key] = specs
    else:
        perf.incr("fastmdp.shape_memo.hit")
    return specs


def clear_shape_action_memo() -> None:
    """Drop the global action-spec memo (benches use this to model a cold
    process; regular code never needs it — specs are immutable)."""
    _SHAPE_ACTION_MEMO.clear()


@dataclass(frozen=True)
class CompiledRoutingModel:
    """A routing MDP in compiled (array) form plus its state inventory."""

    compiled: CompiledMDP
    states: list[Rect | str]
    choice_labels: list[str]
    job: RoutingJob

    @property
    def num_states(self) -> int:
        return self.compiled.num_states

    @property
    def num_choices(self) -> int:
        return self.compiled.num_choices

    @property
    def num_transitions(self) -> int:
        return int(self.compiled.transitions.nnz)


def build_routing_model_scalar(
    job: RoutingJob,
    forces: np.ndarray,
    max_aspect: float = DEFAULT_MAX_ASPECT,
    families: tuple[ActionClass, ...] | None = None,
) -> CompiledRoutingModel:
    """Per-state (scalar) compiled-model builder — the pre-fast-path pipeline.

    Semantically identical to :func:`build_routing_model_fast` but expands
    one state at a time in pure Python.  Kept as the differential-test
    oracle and as the baseline that ``benchmarks/bench_synthesis.py``
    measures the vectorized fast path against; no production caller uses
    it.
    """
    if job.is_dispense:
        raise ValueError("dispense jobs are materialized, not routed")
    width, height = forces.shape
    prefix = np.zeros((width + 1, height + 1))
    prefix[1:, 1:] = forces.cumsum(axis=0).cumsum(axis=1)

    def rect_mean(xa: int, ya: int, xb: int, yb: int) -> float:
        cxa, cya = max(xa, 1), max(ya, 1)
        cxb, cyb = min(xb, width), min(yb, height)
        if cxb < cxa or cyb < cya:
            return 0.0
        total = (
            prefix[cxb, cyb]
            - prefix[cxa - 1, cyb]
            - prefix[cxb, cya - 1]
            + prefix[cxa - 1, cya - 1]
        )
        return float(total) / ((xb - xa + 1) * (yb - ya + 1))

    hz = job.hazard.as_tuple()
    goal = job.goal.as_tuple()
    obstacles = [o.as_tuple() for o in job.obstacles]
    start = job.start.as_tuple()

    def in_hazard(r: IntRect) -> bool:
        return (
            hz[0] <= r[0] and hz[1] <= r[1] and r[2] <= hz[2] and r[3] <= hz[3]
        )

    def in_goal(r: IntRect) -> bool:
        return (
            goal[0] <= r[0] and goal[1] <= r[1]
            and r[2] <= goal[2] and r[3] <= goal[3]
        )

    def blocked(r: IntRect) -> bool:
        for (oxa, oya, oxb, oyb) in obstacles:
            if (
                r[0] - 2 <= oxb and oxa - 2 <= r[2]
                and r[1] - 2 <= oyb and oya - 2 <= r[3]
            ):
                return True
        return False

    shape_specs: dict[tuple[int, int], list[_ActionSpec]] = {}

    # State 0 is the hazard sink; the start is state 1.
    states: list[IntRect | None] = [None, start]
    index: dict[IntRect, int] = {start: 1}
    goal_indices: list[int] = []

    choice_state: list[int] = []
    choice_labels: list[str] = []
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []

    def state_id(r: IntRect) -> int:
        idx = index.get(r)
        if idx is None:
            idx = len(states)
            states.append(r)
            index[r] = idx
            queue.append(r)
        return idx

    queue: list[IntRect] = [start]
    head = 0
    while head < len(queue):
        r = queue[head]
        head += 1
        s_idx = index[r]
        if in_goal(r):
            goal_indices.append(s_idx)
            continue
        xa, ya = r[0], r[1]
        shape = (r[2] - r[0] + 1, r[3] - r[1] + 1)
        specs = shape_specs.get(shape)
        if specs is None:
            specs = _compile_shape_actions(
                shape[0], shape[1], max_aspect, families=families
            )
            shape_specs[shape] = specs
        for spec in specs:
            probs = [
                rect_mean(xa + leg.dxa, ya + leg.dya, xa + leg.dxb, ya + leg.dyb)
                for leg in spec.legs
            ]
            c_idx = len(choice_state)
            stay_prob = 0.0
            emitted = False
            for pattern, succ in spec.outcomes:
                p = 1.0
                for leg_i, success in enumerate(pattern):
                    p *= probs[leg_i] if success else 1.0 - probs[leg_i]
                if p <= 0.0:
                    continue
                if succ is None:
                    stay_prob += p
                    continue
                dxa, dya, w2, h2 = succ
                nxt = (xa + dxa, ya + dya, xa + dxa + w2 - 1, ya + dya + h2 - 1)
                safe = in_hazard(nxt) and (nxt == start or not blocked(nxt))
                target = state_id(nxt) if safe else HAZARD_INDEX
                rows.append(c_idx)
                cols.append(target)
                vals.append(p)
                emitted = True
            if stay_prob > 0.0:
                rows.append(c_idx)
                cols.append(s_idx)
                vals.append(stay_prob)
                emitted = True
            assert emitted, "every action has at least one outcome"
            choice_state.append(s_idx)
            choice_labels.append(spec.name)

    n = len(states)
    transitions = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(max(len(choice_state), 1), n)
    )
    goal_mask = np.zeros(n, dtype=bool)
    goal_mask[goal_indices] = True
    hazard_mask = np.zeros(n, dtype=bool)
    hazard_mask[HAZARD_INDEX] = True
    compiled = CompiledMDP(
        num_states=n,
        choice_state=np.asarray(choice_state, dtype=np.int64),
        choice_reward=np.full(len(choice_state), CYCLE_REWARD),
        transitions=transitions,
        labels={"goal": goal_mask, "hazard": hazard_mask},
        initial=1,
    )
    from repro.core.mdp import HAZARD_STATE

    state_objects: list[Rect | str] = [HAZARD_STATE] + [
        Rect(*r) for r in states[1:]  # type: ignore[misc]
    ]
    return CompiledRoutingModel(
        compiled=compiled, states=state_objects, choice_labels=choice_labels,
        job=job,
    )


def _gathered_probs(
    pf: np.ndarray, gather: np.ndarray, valid: np.ndarray, area: np.ndarray
) -> np.ndarray:
    """Leg probabilities from a flat force prefix and a gather record.

    ``gather`` holds the four flat prefix indices of each clamped rect
    corner, ``(4, L, k)`` for L legs over a k-position batch; ``valid``
    masks empty-overlap rows and ``area`` is the per-leg rect area.  The
    corner combination runs left-to-right exactly as the recording build's
    2-D indexing did, so the result is bit-identical.
    """
    total = pf[gather[0]] - pf[gather[1]] - pf[gather[2]] + pf[gather[3]]
    return np.where(valid, total / area, 0.0)


def _stack_leg_probs(
    prefix: np.ndarray, width: int, height: int,
    xa: np.ndarray, ya: np.ndarray, legs: "tuple[_LegSpec, ...]",
    ox: int, oy: int,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Vectorized ``rect_mean`` over a position batch for all legs at once.

    Returns ``(probs, gather, valid, area)`` where ``probs`` is ``(L, k)``
    and the rest is the :func:`_gathered_probs` record the revalue path
    replays.  ``prefix`` is a window-local force prefix offset by
    ``(ox, oy)`` force cells from the chip origin (see
    :func:`_read_window`); the clamps stay in global chip coordinates so
    the arithmetic is position-independent.  The clamp/index arithmetic is
    pure geometry — constant across force matrices — which is why it can
    be recorded once and skipped on every revalue.
    """
    k = xa.size
    if not legs:
        return (
            np.zeros((0, k)), np.zeros((4, 0, k), dtype=np.int64),
            np.zeros((0, k), dtype=bool), np.zeros((0, 1)),
        )
    dxa = np.array([leg.dxa for leg in legs], dtype=np.int64)[:, None]
    dya = np.array([leg.dya for leg in legs], dtype=np.int64)[:, None]
    dxb = np.array([leg.dxb for leg in legs], dtype=np.int64)[:, None]
    dyb = np.array([leg.dyb for leg in legs], dtype=np.int64)[:, None]
    cxa = np.maximum(xa[None, :] + dxa, 1)
    cya = np.maximum(ya[None, :] + dya, 1)
    cxb = np.minimum(xa[None, :] + dxb, width)
    cyb = np.minimum(ya[None, :] + dyb, height)
    valid = (cxb >= cxa) & (cyb >= cya)
    # Clamp the lookup indices so invalid (empty-overlap) rows index
    # safely; their values are discarded by the mask.  One-sided clamps
    # suffice: cxb/cyb are already bounded above, cxa/cya below.
    ixb = np.maximum(cxb, 0) - ox
    iyb = np.maximum(cyb, 0) - oy
    ixa = np.minimum(cxa - 1, width) - ox
    iya = np.minimum(cya - 1, height) - oy
    ph = prefix.shape[1]
    gather = np.stack(
        [ixb * ph + iyb, ixa * ph + iyb, ixb * ph + iya, ixa * ph + iya]
    )
    area = ((dxb - dxa + 1) * (dyb - dya + 1)).astype(float)
    return _gathered_probs(prefix.ravel(), gather, valid, area), \
        gather, valid, area


def _force_prefix(forces: np.ndarray) -> np.ndarray:
    width, height = forces.shape
    prefix = np.zeros((width + 1, height + 1))
    prefix[1:, 1:] = forces.cumsum(axis=0).cumsum(axis=1)
    return prefix


def _read_window(
    hz: tuple, hz_w: int, hz_h: int,
    shapes: "list[tuple[int, int]]",
    specs_by_shape: "list[tuple[_ActionSpec, ...]]",
    width: int, height: int,
) -> tuple[int, int, int, int]:
    """The force-cell window ``[x0:x1, y0:y1]`` a build can read.

    Every leg-probability lookup indexes the force prefix at clamped rect
    corners; the clamps are monotone in the anchor coordinate, so the
    extremes over a shape's anchor range bound every lookup.  The build
    sums forces over a prefix *local to this window*, which makes the
    model a pure function of ``forces[x0:x1, y0:y1]`` — the foundation of
    the batch kernel's fingerprint-level dedup (identical window bytes
    imply a bit-identical model).
    """
    x0, x1 = width, 0
    y0, y1 = height, 0
    for si, (w, h) in enumerate(shapes):
        ax_lo, ax_hi = hz[0], hz[0] + (hz_w - w)
        ay_lo, ay_hi = hz[1], hz[1] + (hz_h - h)
        for spec in specs_by_shape[si]:
            for leg in spec.legs:
                x0 = min(x0, min(max(ax_lo + leg.dxa, 1) - 1, width))
                x1 = max(x1, max(min(ax_hi + leg.dxb, width), 0))
                y0 = min(y0, min(max(ay_lo + leg.dya, 1) - 1, height))
                y1 = max(y1, max(min(ay_hi + leg.dyb, height), 0))
    if x1 < x0:  # no legs at all: degenerate empty window at the origin
        x0 = x1 = y0 = y1 = 0
    return x0, x1, y0, y1


@dataclass
class _SpecRecord:
    """Support record of one ``(shape, action)`` pair in a build template.

    ``emits`` holds one boolean mask per *moving* outcome (``succ`` not
    None) in spec order — ``True`` where the outcome had positive
    probability; ``stay_emit`` is the same for the aggregated stay outcome.
    The transition *structure* (targets, reachability, renumbering) depends
    on the force matrix only through these masks, so a revalue is valid
    exactly when they are unchanged.
    """

    spec: _ActionSpec
    emits: list[np.ndarray]
    stay_emit: np.ndarray | None = None
    # Precomputed :func:`_gathered_probs` record — the clamp/index geometry
    # is force-independent, so revalues skip straight to the prefix gathers.
    gather: np.ndarray | None = None
    valid: np.ndarray | None = None
    area: np.ndarray | None = None


@dataclass
class _ShapeRecord:
    xa: np.ndarray
    ya: np.ndarray
    specs: list[_SpecRecord]
    # Shape-level replay tables, built lazily by :func:`_fuse_shape_records`
    # on the first revalue: every spec's gather record concatenated (one
    # prefix gather per shape) plus the outcome products of ALL specs
    # compiled into one ``(outcomes, k)`` matrix computation.  All of it is
    # force-independent geometry, so it is recorded once and replayed.
    fused_gather: np.ndarray | None = None
    fused_valid: np.ndarray | None = None
    fused_area: np.ndarray | None = None
    #: Per outcome and leg position: the ``probs_all`` row the factor comes
    #: from, whether the leg must succeed, and whether the outcome attempts
    #: it at all (a DOUBLE's first-leg failure has a shorter pattern than
    #: its leg count; unused legs multiply by exactly 1.0, a bit-exact
    #: no-op).
    leg_index: np.ndarray | None = None
    leg_success: np.ndarray | None = None
    leg_used: np.ndarray | None = None
    #: Moving outcomes: rows into the outcome-product matrix, and their
    #: recorded support masks stacked for one comparison.
    succ_rows: np.ndarray | None = None
    emit_matrix: np.ndarray | None = None
    #: Staying outcomes, accumulated per spec in appearance order: step ``s``
    #: adds ``P[p_rows]`` into ``S[spec_idx]`` — sequential adds, identical
    #: to the scalar loop's ``stay_p += p``.
    stay_steps: "tuple[tuple[np.ndarray, np.ndarray], ...] | None" = None
    stay_emit_matrix: np.ndarray | None = None
    #: Gather reproducing the build's exact chunk order (per spec: moving
    #: outcomes' positive entries, then the stay outcome's) from the matrix
    #: ``vstack([P[succ_rows], S])``.
    val_rows: np.ndarray | None = None
    val_cols: np.ndarray | None = None


@dataclass
class _BuildTemplate:
    """Everything force-independent about one job's built model.

    A template is recorded on the first (full) build for a job geometry and
    replayed by :func:`_revalue_template` for later builds that differ only
    in the force matrix: the per-outcome probabilities are recomputed, the
    support masks validated against :class:`_SpecRecord`, and the CSR
    transition matrix reassembled through the same scipy calls — producing
    a model bit-identical to a fresh build at a fraction of the cost.
    """

    shapes: list[_ShapeRecord]
    #: Force-cell window ``forces[x0:x1, y0:y1]`` the build reads — the
    #: model is a pure function of this slice (see :func:`_read_window`).
    window: tuple[int, int, int, int] = (0, 0, 0, 0)
    # CSR assembly skeleton (None tmask = the no-transitions edge case).
    tmask: np.ndarray | None = None
    t_order: np.ndarray | None = None
    cols_sorted: np.ndarray | None = None
    indptr: np.ndarray | None = None
    # Canonical-CSR shortcut recorded by probing scipy's own
    # canonicalization (see ``_build_fast``): ``torder2`` permutes the kept
    # values straight into scipy's post-``sort_indices`` order and
    # ``starts`` marks each duplicate run, so a revalue assembles the final
    # matrix with one ``np.add.reduceat`` instead of re-sorting.  ``None``
    # when the one-time probe self-check failed (revalue then falls back to
    # the ``sum_duplicates`` path).
    torder2: np.ndarray | None = None
    starts: np.ndarray | None = None
    final_indices: np.ndarray | None = None
    final_indptr: np.ndarray | None = None
    num_choices: int = 0
    n: int = 0
    # Shared (read-only) model components.
    choice_state: np.ndarray | None = None
    choice_reward: np.ndarray | None = None
    labels: dict | None = None
    states: list | None = None
    choice_labels: list | None = None
    first_choice: np.ndarray | None = None
    digest: str | None = None


#: Process-global LRU of build templates keyed by job geometry
#: ``(job.key(), forces.shape, max_aspect, families)``.
_TEMPLATE_CACHE: "dict[tuple, _BuildTemplate]" = {}
_TEMPLATE_CACHE_MAX = 64

#: Guards cache mutation and the lazy per-template fuse.  The serve layer
#: runs builds on worker threads, and two workers revaluing the same
#: template must not observe a half-published replay table.
_TEMPLATE_LOCK = threading.Lock()


def clear_build_template_cache() -> None:
    """Drop the build-template cache (benches model a cold process with
    this; regular code never needs it — revalues are bit-identical)."""
    with _TEMPLATE_LOCK:
        _TEMPLATE_CACHE.clear()


def _fuse_shape_records(sh: _ShapeRecord, k: int) -> None:
    """Precompute a shape's revalue replay tables (once per template).

    Concatenates the per-spec gather records so one prefix gather serves
    the whole shape, and compiles every spec's outcome list into the
    tables :func:`_revalue_template` replays as a handful of whole-shape
    array operations.  Everything here is force-independent geometry.

    ``fused_gather`` doubles as the "tables are ready" sentinel for
    concurrent revaluers, so it is assigned *last*: a reader that sees it
    non-``None`` is guaranteed every other table was published first.
    """
    fused_gather = (
        np.concatenate([rec.gather for rec in sh.specs], axis=1)
        if sh.specs else np.zeros((4, 0, k), dtype=np.int64)
    )
    sh.fused_valid = (
        np.concatenate([rec.valid for rec in sh.specs])
        if sh.specs else np.zeros((0, k), dtype=bool)
    )
    sh.fused_area = (
        np.concatenate([rec.area for rec in sh.specs])
        if sh.specs else np.zeros((0, 1))
    )
    max_legs = max(
        (rec.gather.shape[1] for rec in sh.specs), default=0
    )
    total = sum(len(rec.spec.outcomes) for rec in sh.specs)
    leg_index = np.zeros((total, max_legs), dtype=np.int64)
    leg_success = np.zeros((total, max_legs), dtype=bool)
    leg_used = np.zeros((total, max_legs), dtype=bool)
    succ_rows: "list[int]" = []
    stay_of_spec: "list[list[int]]" = []  # per spec: P rows, in order
    emit_rows: "list[np.ndarray]" = []
    stay_emits: "list[np.ndarray]" = []
    row = 0
    leg_base = 0
    for rec in sh.specs:
        stay_rows: "list[int]" = []
        for pattern, succ in rec.spec.outcomes:
            for j, success in enumerate(pattern):
                leg_index[row, j] = leg_base + j
                leg_success[row, j] = success
                leg_used[row, j] = True
            (stay_rows if succ is None else succ_rows).append(row)
            row += 1
        stay_of_spec.append(stay_rows)
        emit_rows.extend(rec.emits)
        stay_emits.append(rec.stay_emit)
        leg_base += rec.gather.shape[1]
    sh.leg_index = leg_index
    sh.leg_success = leg_success
    sh.leg_used = leg_used
    sh.succ_rows = np.asarray(succ_rows, dtype=np.int64)
    sh.emit_matrix = (
        np.stack(emit_rows) if emit_rows else np.zeros((0, k), dtype=bool)
    )
    steps = []
    for depth in range(max((len(s) for s in stay_of_spec), default=0)):
        spec_idx = [si for si, s in enumerate(stay_of_spec) if len(s) > depth]
        steps.append((
            np.asarray(spec_idx, dtype=np.int64),
            np.asarray(
                [stay_of_spec[si][depth] for si in spec_idx], dtype=np.int64
            ),
        ))
    sh.stay_steps = tuple(steps)
    sh.stay_emit_matrix = (
        np.stack(stay_emits) if stay_emits
        else np.zeros((0, k), dtype=bool)
    )
    # Chunk-order gather: per spec, its moving outcomes' positive entries
    # (row-major), then its stay outcome's — exactly the order the
    # recording build appended value chunks in.
    n_succ = len(succ_rows)
    rows_list: "list[np.ndarray]" = []
    cols_list: "list[np.ndarray]" = []
    succ_row = 0
    for si, rec in enumerate(sh.specs):
        for emit in rec.emits:
            cols = np.flatnonzero(emit)
            rows_list.append(np.full(cols.size, succ_row, dtype=np.int64))
            cols_list.append(cols)
            succ_row += 1
        cols = np.flatnonzero(rec.stay_emit)
        rows_list.append(np.full(cols.size, n_succ + si, dtype=np.int64))
        cols_list.append(cols)
    sh.val_rows = (
        np.concatenate(rows_list) if rows_list
        else np.zeros(0, dtype=np.int64)
    )
    sh.val_cols = (
        np.concatenate(cols_list) if cols_list
        else np.zeros(0, dtype=np.int64)
    )
    sh.fused_gather = fused_gather


def _revalue_template(
    tpl: _BuildTemplate, job: RoutingJob, forces: np.ndarray
) -> CompiledRoutingModel | None:
    """Rebuild a job's model from its template for a new force matrix.

    Recomputes leg probabilities and outcome products with the exact
    arithmetic of the full build, validates every support mask against the
    template, and reassembles the transitions through the same
    ``csr_matrix`` + ``sum_duplicates`` calls — so the result is
    bit-identical to a fresh :func:`build_routing_model_fast` build.
    Returns ``None`` when any support mask changed (the caller falls back
    to a full rebuild, which re-records the template).
    """
    wx0, wx1, wy0, wy1 = tpl.window
    pf = _force_prefix(forces[wx0:wx1, wy0:wy1]).ravel()
    chunks: list[np.ndarray] = []
    for sh in tpl.shapes:
        k = sh.xa.size
        if sh.fused_gather is None:
            with _TEMPLATE_LOCK:
                if sh.fused_gather is None:
                    _fuse_shape_records(sh, k)
        probs_all = _gathered_probs(
            pf, sh.fused_gather, sh.fused_valid, sh.fused_area
        )
        nprobs_all = 1.0 - probs_all
        # All outcome probabilities of the shape as one (outcomes, k)
        # product, factors applied leg-by-leg left-to-right exactly as the
        # recording build's scalar loop did (an unused leg contributes 1.0,
        # an exact no-op), so every row is bit-identical to the solo path's
        # sequential product.
        outcome_p = np.ones((sh.leg_index.shape[0], k))
        for j in range(sh.leg_index.shape[1]):
            rows = sh.leg_index[:, j]
            factor = np.where(
                sh.leg_success[:, j, None], probs_all[rows], nprobs_all[rows]
            )
            np.multiply(
                outcome_p,
                np.where(sh.leg_used[:, j, None], factor, 1.0),
                out=outcome_p,
            )
        succ_p = outcome_p[sh.succ_rows]
        if not np.array_equal(succ_p > 0.0, sh.emit_matrix):
            return None
        stay_p = np.zeros((sh.stay_emit_matrix.shape[0], k))
        for spec_idx, p_rows in sh.stay_steps:
            stay_p[spec_idx] += outcome_p[p_rows]
        if not np.array_equal(stay_p > 0.0, sh.stay_emit_matrix):
            return None
        stacked = np.concatenate([succ_p, stay_p])
        vals = stacked[sh.val_rows, sh.val_cols]
        if vals.size:
            chunks.append(vals)

    n = tpl.n
    num_choices = tpl.num_choices
    if tpl.tmask is None:
        transitions = sparse.csr_matrix((max(num_choices, 1), n))
    else:
        val_arr = np.concatenate(chunks) if chunks else np.zeros(0)
        vals_f = val_arr[tpl.tmask]
        if tpl.starts is not None:
            # Canonical shortcut: values permuted into scipy's
            # post-sort order, duplicate runs summed left-to-right just
            # like ``sum_duplicates`` would (reduceat segments this short
            # add sequentially) — bit-identical, no per-revalue sort.
            transitions = sparse.csr_matrix(
                (
                    np.add.reduceat(vals_f[tpl.torder2], tpl.starts),
                    tpl.final_indices.copy(),
                    tpl.final_indptr.copy(),
                ),
                shape=(max(num_choices, 1), n),
            )
            transitions.has_canonical_format = True
        else:
            transitions = sparse.csr_matrix(
                (
                    vals_f[tpl.t_order], tpl.cols_sorted.copy(),
                    tpl.indptr.copy(),
                ),
                shape=(max(num_choices, 1), n),
            )
            transitions.sum_duplicates()

    compiled = CompiledMDP(
        num_states=n,
        choice_state=tpl.choice_state,
        choice_reward=tpl.choice_reward,
        transitions=transitions,
        labels=tpl.labels,
        initial=1,
    )
    if tpl.first_choice is not None:
        compiled._first_choice_cache.append(tpl.first_choice)
    if tpl.digest is None:
        from repro.modelcheck.batch import structural_key

        tpl.digest = structural_key(compiled)
    else:
        compiled._digest_cache.append(tpl.digest)
    return CompiledRoutingModel(
        compiled=compiled, states=tpl.states, choice_labels=tpl.choice_labels,
        job=job,
    )


def build_routing_model_fast(
    job: RoutingJob,
    forces: np.ndarray,
    max_aspect: float = DEFAULT_MAX_ASPECT,
    families: tuple[ActionClass, ...] | None = None,
) -> CompiledRoutingModel:
    """Build the per-RJ MDP in compiled form, vectorized and template-cached.

    ``forces`` is the ``(W, H)`` per-MC relative-force matrix; cells outside
    it exert zero force.  ``families`` optionally restricts the action set
    to the given classes (``None`` = all five).

    The first build for a job geometry runs the full vectorized pipeline
    (see :func:`_build_fast`) and records a :class:`_BuildTemplate`; later
    builds for the same geometry — the common case in resynthesis storms,
    where only the health fingerprint changes — replay the template,
    recomputing just the transition probabilities.  Revalued models are
    bit-identical to fresh builds (the differential tests assert this), so
    the cache is transparent to every caller.
    """
    if job.is_dispense:
        raise ValueError("dispense jobs are materialized, not routed")
    key = (
        job.key(), forces.shape, float(max_aspect),
        families if families is None else tuple(families),
    )
    with _TEMPLATE_LOCK:
        tpl = _TEMPLATE_CACHE.get(key)
    if tpl is not None:
        model = _revalue_template(tpl, job, forces)
        if model is not None:
            perf.incr("fastmdp.template.hits")
            return model
        perf.incr("fastmdp.template.rebuilds")
    else:
        perf.incr("fastmdp.template.misses")
    model, tpl = _build_fast(job, forces, max_aspect, families)
    with _TEMPLATE_LOCK:
        if len(_TEMPLATE_CACHE) >= _TEMPLATE_CACHE_MAX:
            _TEMPLATE_CACHE.pop(next(iter(_TEMPLATE_CACHE)))
        _TEMPLATE_CACHE[key] = tpl
    return model


def build_dedup_token(
    job: RoutingJob,
    forces: np.ndarray,
    max_aspect: float = DEFAULT_MAX_ASPECT,
    families: tuple[ActionClass, ...] | None = None,
) -> bytes | None:
    """The bytes of the force window a build of ``(job, forces)`` reads.

    Two builds of the same job whose tokens are equal produce bit-identical
    models (the build is a pure function of the window slice — see
    :func:`_read_window`), so batch callers can solve one and reuse the
    result for the other.  Returns ``None`` when no template is cached for
    the job geometry yet (the window is discovered by the first build).
    """
    key = (
        job.key(), forces.shape, float(max_aspect),
        families if families is None else tuple(families),
    )
    with _TEMPLATE_LOCK:
        tpl = _TEMPLATE_CACHE.get(key)
    if tpl is None:
        return None
    x0, x1, y0, y1 = tpl.window
    return forces[x0:x1, y0:y1].tobytes()


def _build_fast(
    job: RoutingJob,
    forces: np.ndarray,
    max_aspect: float,
    families: tuple[ActionClass, ...] | None,
) -> "tuple[CompiledRoutingModel, _BuildTemplate]":
    """The full vectorized build, recording a revalue template as it goes.

    Instead of expanding states one at a time, the builder enumerates
    *every* in-hazard pattern of every reachable droplet shape up front,
    computes all leg probabilities / outcome transitions with one batch of
    array ops per ``(shape, action)`` pair, and then restricts the model to
    the component reachable from the start with a C-level sparse BFS
    (:func:`scipy.sparse.csgraph.breadth_first_order`).  The arithmetic is
    element-for-element the same as :func:`build_routing_model_scalar`, so
    the two builders produce identical probabilities and (up to state
    ordering) identical models.
    """
    perf.incr("fastmdp.builds")
    width, height = forces.shape
    tpl = _BuildTemplate(shapes=[])

    hz = job.hazard.as_tuple()
    goal = job.goal.as_tuple()
    obstacles = [o.as_tuple() for o in job.obstacles]
    start = job.start.as_tuple()
    hz_w = hz[2] - hz[0] + 1
    hz_h = hz[3] - hz[1] + 1
    # -- shape closure: droplet shapes reachable via morph successors --------
    start_shape = (start[2] - start[0] + 1, start[3] - start[1] + 1)
    shape_index: dict[tuple[int, int], int] = {start_shape: 0}
    shapes: list[tuple[int, int]] = [start_shape]
    specs_by_shape: list[tuple[_ActionSpec, ...]] = []
    si = 0
    while si < len(shapes):
        specs = compiled_shape_actions(
            shapes[si][0], shapes[si][1], max_aspect, families=families
        )
        specs_by_shape.append(specs)
        for spec in specs:
            for _, succ in spec.outcomes:
                if succ is None:
                    continue
                nshape = (succ[2], succ[3])
                if (
                    nshape not in shape_index
                    and nshape[0] <= hz_w and nshape[1] <= hz_h
                ):
                    shape_index[nshape] = len(shapes)
                    shapes.append(nshape)
        si += 1

    # The force prefix is local to the window this job can read: the model
    # becomes a pure function of ``forces[window]``, so the batch kernel
    # can dedup requests whose window bytes coincide.
    tpl.window = _read_window(
        hz, hz_w, hz_h, shapes, specs_by_shape, width, height
    )
    wx0, wx1, wy0, wy1 = tpl.window
    prefix = _force_prefix(forces[wx0:wx1, wy0:wy1])

    # -- provisional pattern ids: 0 = hazard sink, then shape-major blocks ---
    # Patterns of shape (w, h) anchor at xa in [hz.xa, hz.xb - w + 1] and
    # ya in [hz.ya, hz.yb - h + 1]; the id of (xa, ya) is arithmetic, so
    # successor lookups need no hash/grid at all.
    base = np.zeros(len(shapes) + 1, dtype=np.int64)
    for i, (w, h) in enumerate(shapes):
        base[i + 1] = base[i] + (hz_w - w + 1) * (hz_h - h + 1)
    total = int(base[-1])
    start_pid = 1 + int(base[shape_index[start_shape]]) + (
        (start[0] - hz[0]) * (hz_h - start_shape[1] + 1) + (start[1] - hz[1])
    )

    pat_x = np.zeros(total + 1, dtype=np.int64)
    pat_y = np.zeros(total + 1, dtype=np.int64)
    pat_w = np.zeros(total + 1, dtype=np.int64)
    pat_h = np.zeros(total + 1, dtype=np.int64)

    owner_chunks: list[np.ndarray] = []
    label_chunks: list[np.ndarray] = []
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    goal_pids: list[np.ndarray] = []
    num_prov_choices = 0

    for si, (w, h) in enumerate(shapes):
        nx = hz_w - w + 1
        ny = hz_h - h + 1
        xa = np.repeat(np.arange(hz[0], hz[0] + nx, dtype=np.int64), ny)
        ya = np.tile(np.arange(hz[1], hz[1] + ny, dtype=np.int64), nx)
        pids = 1 + int(base[si]) + np.arange(nx * ny, dtype=np.int64)
        pat_x[pids] = xa
        pat_y[pids] = ya
        pat_w[pids] = w
        pat_h[pids] = h
        in_goal = (
            (goal[0] <= xa) & (goal[1] <= ya)
            & (xa + w - 1 <= goal[2]) & (ya + h - 1 <= goal[3])
        )
        if in_goal.any():
            goal_pids.append(pids[in_goal])
        ng = ~in_goal  # goal patterns are absorbing: no choices
        xa_ng, ya_ng, pid_ng = xa[ng], ya[ng], pids[ng]
        k = pid_ng.size
        if k == 0:
            continue
        srecs: list[_SpecRecord] = []
        tpl.shapes.append(_ShapeRecord(xa=xa_ng, ya=ya_ng, specs=srecs))
        for spec in specs_by_shape[si]:
            probs, gather, valid, area = _stack_leg_probs(
                prefix, width, height, xa_ng, ya_ng, spec.legs, wx0, wy0
            )
            rec = _SpecRecord(
                spec=spec, emits=[], gather=gather, valid=valid, area=area
            )
            srecs.append(rec)
            c_prov = num_prov_choices + np.arange(k, dtype=np.int64)
            num_prov_choices += k
            owner_chunks.append(pid_ng)
            label_chunks.append(np.full(k, spec.name, dtype=object))
            nprobs = 1.0 - probs
            stay_p = np.zeros(k)
            for pattern, succ in spec.outcomes:
                p = None
                for leg_i, success in enumerate(pattern):
                    f = probs[leg_i] if success else nprobs[leg_i]
                    p = f if p is None else p * f
                if p is None:
                    p = np.ones(k)
                if succ is None:
                    stay_p += p
                    continue
                dxa, dya, w2, h2 = succ
                nxa, nya = xa_ng + dxa, ya_ng + dya
                emit = p > 0.0
                rec.emits.append(emit)
                if not emit.any():
                    continue
                in_hz = (
                    (hz[0] <= nxa) & (hz[1] <= nya)
                    & (nxa + w2 - 1 <= hz[2]) & (nya + h2 - 1 <= hz[3])
                )
                is_start = (
                    (nxa == start[0]) & (nya == start[1])
                    & (w2 == start_shape[0]) & (h2 == start_shape[1])
                )
                blocked = np.zeros(k, dtype=bool)
                for (oxa, oya, oxb, oyb) in obstacles:
                    blocked |= (
                        (nxa - 2 <= oxb) & (oxa - 2 <= nxa + w2 - 1)
                        & (nya - 2 <= oyb) & (oya - 2 <= nya + h2 - 1)
                    )
                safe = in_hz & (is_start | ~blocked)
                sj = shape_index.get((w2, h2))
                if sj is None:  # shape does not fit the hazard bounds
                    targets = np.zeros(k, dtype=np.int64)
                else:
                    ny2 = hz_h - h2 + 1
                    tpid = 1 + int(base[sj]) + (
                        (nxa - hz[0]) * ny2 + (nya - hz[1])
                    )
                    targets = np.where(safe, tpid, HAZARD_INDEX)
                rows.append(c_prov[emit])
                cols.append(targets[emit])
                vals.append(p[emit])
            stay_emit = stay_p > 0.0
            rec.stay_emit = stay_emit
            if stay_emit.any():
                rows.append(c_prov[stay_emit])
                cols.append(pid_ng[stay_emit])
                vals.append(stay_p[stay_emit])

    row_arr = (np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64))
    col_arr = (np.concatenate(cols) if cols else np.zeros(0, dtype=np.int64))
    val_arr = (np.concatenate(vals) if vals else np.zeros(0))
    owner_arr = (
        np.concatenate(owner_chunks) if owner_chunks
        else np.zeros(0, dtype=np.int64)
    )
    label_arr = (
        np.concatenate(label_chunks) if label_chunks
        else np.zeros(0, dtype=object)
    )

    # -- restrict to the component reachable from the start ------------------
    reach = np.zeros(total + 1, dtype=bool)
    reach[HAZARD_INDEX] = True  # the sink exists even when unreachable
    reach[start_pid] = True
    # State adjacency (owner state -> successor state) from the emitted
    # transitions: transition t belongs to choice row_arr[t], whose owner
    # pattern is owner_arr[row_arr[t]].
    if row_arr.size:
        edge_src = owner_arr[row_arr]
        graph = sparse.csr_matrix(
            (np.ones(edge_src.size, dtype=np.int8), (edge_src, col_arr)),
            shape=(total + 1, total + 1),
        )
        order = sparse.csgraph.breadth_first_order(
            graph, start_pid, directed=True, return_predecessors=False
        )
        reach[order] = True

    reach_pids = np.flatnonzero(reach)
    n = reach_pids.size
    new_id = np.full(total + 1, -1, dtype=np.int64)
    new_id[HAZARD_INDEX] = 0
    new_id[start_pid] = 1
    others = reach_pids[(reach_pids != HAZARD_INDEX) & (reach_pids != start_pid)]
    new_id[others] = 2 + np.arange(others.size, dtype=np.int64)

    keep_choice = np.flatnonzero(reach[owner_arr]) if owner_arr.size else \
        np.zeros(0, dtype=np.int64)
    new_owner = new_id[owner_arr[keep_choice]]
    perm = np.argsort(new_owner, kind="stable")
    final_choices = keep_choice[perm]
    num_choices = final_choices.size
    choice_state = new_owner[perm]
    choice_labels: list[str] = label_arr[final_choices].tolist()
    choice_new = np.full(num_prov_choices, -1, dtype=np.int64)
    choice_new[final_choices] = np.arange(num_choices, dtype=np.int64)

    if row_arr.size:
        rows_f = choice_new[row_arr]
        tmask = rows_f >= 0
        rows_f = rows_f[tmask]
        cols_f = new_id[col_arr[tmask]]
        vals_f = val_arr[tmask]
        counts = np.bincount(rows_f, minlength=num_choices)
        assert (counts > 0).all(), "every action has at least one outcome"
        t_order = np.argsort(rows_f, kind="stable")
        indptr = np.zeros(max(num_choices, 1) + 1, dtype=np.int64)
        indptr[1 : num_choices + 1] = np.cumsum(counts)
        cols_sorted = cols_f[t_order]
        tpl.tmask = tmask
        tpl.t_order = t_order
        tpl.cols_sorted = cols_sorted.copy()
        tpl.indptr = indptr.copy()
        transitions = sparse.csr_matrix(
            (vals_f[t_order], cols_sorted, indptr),
            shape=(max(num_choices, 1), n),
        )
        transitions.sum_duplicates()
        if vals_f.size:
            # One-time probe of scipy's canonicalization: feeding entry
            # ranks as data through ``sort_indices`` recovers the exact
            # permutation it applies, and run boundaries in the sorted
            # (row, col) sequence mark the duplicates ``sum_duplicates``
            # merges.  A revalue can then gather + ``reduceat`` straight
            # into canonical form.  The self-check against the matrix just
            # built guards the recording; on mismatch the revalue path
            # simply keeps re-sorting.
            nnz0 = cols_sorted.size
            probe = sparse.csr_matrix(
                (
                    np.arange(1.0, nnz0 + 1.0), cols_sorted.copy(),
                    indptr.copy(),
                ),
                shape=(max(num_choices, 1), n),
            )
            probe.sort_indices()
            perm2 = probe.data.astype(np.int64) - 1
            cols2 = probe.indices
            rowrep = np.repeat(
                np.arange(probe.shape[0], dtype=np.int64),
                np.diff(probe.indptr),
            )
            new_run = np.ones(nnz0, dtype=bool)
            new_run[1:] = (cols2[1:] != cols2[:-1]) | \
                (rowrep[1:] != rowrep[:-1])
            starts = np.flatnonzero(new_run)
            torder2 = t_order[perm2]
            data = np.add.reduceat(vals_f[torder2], starts)
            if (
                np.array_equal(data, transitions.data)
                and np.array_equal(cols2[starts], transitions.indices)
            ):
                tpl.torder2 = torder2
                tpl.starts = starts
                tpl.final_indices = transitions.indices.copy()
                tpl.final_indptr = transitions.indptr.copy()
    else:
        transitions = sparse.csr_matrix((max(num_choices, 1), n))

    goal_mask = np.zeros(n, dtype=bool)
    if goal_pids:
        goal_new = new_id[np.concatenate(goal_pids)]
        goal_mask[goal_new[goal_new >= 0]] = True
    hazard_mask = np.zeros(n, dtype=bool)
    hazard_mask[HAZARD_INDEX] = True
    labels = {"goal": goal_mask, "hazard": hazard_mask}
    choice_reward = np.full(num_choices, CYCLE_REWARD)
    compiled = CompiledMDP(
        num_states=n,
        choice_state=choice_state,
        choice_reward=choice_reward,
        transitions=transitions,
        labels=labels,
        initial=1,
    )
    from repro.core.mdp import HAZARD_STATE

    inv = np.zeros(n, dtype=np.int64)
    inv[new_id[reach_pids]] = reach_pids
    sx = pat_x[inv[1:]]
    sy = pat_y[inv[1:]]
    sw = pat_w[inv[1:]]
    sh = pat_h[inv[1:]]
    state_objects: list[Rect | str] = [HAZARD_STATE] + [
        Rect(x, y, x + w - 1, y + h - 1)
        for x, y, w, h in zip(
            sx.tolist(), sy.tolist(), sw.tolist(), sh.tolist()
        )
    ]
    tpl.num_choices = num_choices
    tpl.n = n
    tpl.choice_state = choice_state
    tpl.choice_reward = choice_reward
    tpl.labels = labels
    tpl.states = state_objects
    tpl.choice_labels = choice_labels
    tpl.first_choice = compiled.first_choice()
    model = CompiledRoutingModel(
        compiled=compiled, states=state_objects, choice_labels=choice_labels,
        job=job,
    )
    return model, tpl


def extract_fast_strategy(
    model: CompiledRoutingModel, result: ValueResult
) -> MemorylessStrategy:
    """Memoryless strategy from a solved compiled routing model."""
    cm = model.compiled
    first = cm.first_choice()
    has_choice = result.choice >= 0
    global_choice = np.where(has_choice, first + result.choice, -1)
    states = model.states
    labels = model.choice_labels
    values: dict[object, float] = dict(zip(states, result.values.tolist()))
    decided = np.flatnonzero(has_choice)
    picked = global_choice[decided].tolist()
    decisions: dict[object, str] = {
        states[s]: labels[c] for s, c in zip(decided.tolist(), picked)
    }
    return MemorylessStrategy(
        decisions=decisions,
        values=values,
        initial_value=float(result.values[cm.initial]),
    )
