"""Array-first construction of the per-RJ routing MDP.

Semantically identical to :func:`repro.core.mdp.build_routing_mdp` followed
by :func:`repro.modelcheck.compiled.compile_mdp` — the unit tests check the
two pipelines produce the same model statistics and the same synthesis
values — but built for the synthesis hot loop:

* droplet patterns are plain ``(xa, ya, xb, yb)`` int tuples (hashing them
  is several times cheaper than dataclass instances);
* per-(shape, action) metadata (guards, frontier rectangles, successor
  patterns) is precomputed once as coordinate *offsets* and shifted per
  state;
* frontier means come from a 2-D prefix sum of the force matrix, so every
  leg probability is O(1);
* transitions are emitted straight into CSR arrays, skipping the explicit
  model objects entirely.

Only matrix-backed force fields are supported (the synthesizer's health
estimates and the baseline's uniform field both are); exotic fields fall
back to the explicit builder in :mod:`repro.core.synthesis`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.actions import (
    ALL_ACTIONS,
    DEFAULT_MAX_ASPECT,
    Action,
    ActionClass,
    apply_action,
    frontier,
    frontier_directions,
    guard,
)
from repro.core.mdp import CYCLE_REWARD
from repro.core.routing_job import RoutingJob
from repro.geometry.rect import Rect
from repro.modelcheck.compiled import CompiledMDP
from repro.modelcheck.reachability import ValueResult
from repro.modelcheck.strategy import MemorylessStrategy

IntRect = tuple[int, int, int, int]

#: Index of the absorbing hazard sink in every compiled routing model.
HAZARD_INDEX = 0


@dataclass(frozen=True)
class _LegSpec:
    """A frontier rectangle as offsets from the droplet's (xa, ya)."""

    dxa: int
    dya: int
    dxb: int
    dyb: int


@dataclass(frozen=True)
class _ActionSpec:
    """Precompiled semantics of one action for one droplet shape.

    ``legs`` holds the offset frontiers whose means are the leg success
    probabilities; ``outcomes`` maps tuples of leg-success booleans to the
    successor-pattern offsets ``(dxa, dya, w, h)`` (``None`` = stay put).
    """

    name: str
    klass: ActionClass
    legs: tuple[_LegSpec, ...]
    outcomes: tuple[tuple[tuple[bool, ...], tuple[int, int, int, int] | None], ...]


def _offset(base: Rect, rect: Rect) -> _LegSpec:
    return _LegSpec(
        rect.xa - base.xa, rect.ya - base.ya, rect.xb - base.xa, rect.yb - base.ya
    )


def _succ_offset(base: Rect, rect: Rect) -> tuple[int, int, int, int]:
    return (rect.xa - base.xa, rect.ya - base.ya, rect.width, rect.height)


def _compile_shape_actions(
    w: int, h: int, max_aspect: float,
    families: tuple[ActionClass, ...] | None = None,
) -> list[_ActionSpec]:
    """Per-shape action metadata, derived from the reference implementation."""
    base = Rect(100, 100, 100 + w - 1, 100 + h - 1)
    specs: list[_ActionSpec] = []
    for action in ALL_ACTIONS:
        if families is not None and action.klass not in families:
            continue
        if not guard(base, action, max_aspect=max_aspect):
            continue
        specs.append(_spec_for(base, action))
    return specs


def _spec_for(base: Rect, action: Action) -> _ActionSpec:
    klass = action.klass
    if klass is ActionClass.CARDINAL:
        (direction,) = frontier_directions(action)
        leg = _offset(base, frontier(base, action, direction))  # type: ignore[arg-type]
        moved = _succ_offset(base, apply_action(base, action))
        return _ActionSpec(
            action.name, klass, (leg,),
            (((True,), moved), ((False,), None)),
        )
    if klass is ActionClass.DOUBLE:
        (direction,) = frontier_directions(action)
        leg1 = _offset(base, frontier(base, action, direction))  # type: ignore[arg-type]
        from repro.core.actions import ACTIONS

        one = apply_action(base, ACTIONS[f"a_{direction}"])
        leg2 = _offset(base, frontier(one, action, direction))  # type: ignore[arg-type]
        return _ActionSpec(
            action.name, klass, (leg1, leg2),
            (
                ((True, True), _succ_offset(base, apply_action(base, action))),
                ((True, False), _succ_offset(base, one)),
                ((False,), None),  # second leg never attempted
            ),
        )
    if klass is ActionClass.ORDINAL:
        dv, dh = action.vertical, action.horizontal
        assert dv is not None and dh is not None
        legv = _offset(base, frontier(base, action, dv))  # type: ignore[arg-type]
        legh = _offset(base, frontier(base, action, dh))  # type: ignore[arg-type]
        from repro.core.actions import ACTIONS

        return _ActionSpec(
            action.name, klass, (legv, legh),
            (
                ((True, True), _succ_offset(base, apply_action(base, action))),
                ((True, False),
                 _succ_offset(base, apply_action(base, ACTIONS[f"a_{dv}"]))),
                ((False, True),
                 _succ_offset(base, apply_action(base, ACTIONS[f"a_{dh}"]))),
                ((False, False), None),
            ),
        )
    # Morphs: one leg; success reshapes the droplet.
    (direction,) = frontier_directions(action)
    fr = frontier(base, action, direction)
    if fr is None:  # degenerate single-row/-column morphs are unguarded only
        raise AssertionError("guarded morph must have a frontier")
    return _ActionSpec(
        action.name, klass, (_offset(base, fr),),
        (((True,), _succ_offset(base, apply_action(base, action))),
         ((False,), None)),
    )


@dataclass(frozen=True)
class CompiledRoutingModel:
    """A routing MDP in compiled (array) form plus its state inventory."""

    compiled: CompiledMDP
    states: list[Rect | str]
    choice_labels: list[str]
    job: RoutingJob

    @property
    def num_states(self) -> int:
        return self.compiled.num_states

    @property
    def num_choices(self) -> int:
        return self.compiled.num_choices

    @property
    def num_transitions(self) -> int:
        return int(self.compiled.transitions.nnz)


def build_routing_model_fast(
    job: RoutingJob,
    forces: np.ndarray,
    max_aspect: float = DEFAULT_MAX_ASPECT,
    families: tuple[ActionClass, ...] | None = None,
) -> CompiledRoutingModel:
    """Build the per-RJ MDP directly in compiled form.

    ``forces`` is the ``(W, H)`` per-MC relative-force matrix; cells outside
    it exert zero force.  ``families`` optionally restricts the action set
    to the given classes (``None`` = all five).
    """
    if job.is_dispense:
        raise ValueError("dispense jobs are materialized, not routed")
    width, height = forces.shape
    prefix = np.zeros((width + 1, height + 1))
    prefix[1:, 1:] = forces.cumsum(axis=0).cumsum(axis=1)

    def rect_mean(xa: int, ya: int, xb: int, yb: int) -> float:
        cxa, cya = max(xa, 1), max(ya, 1)
        cxb, cyb = min(xb, width), min(yb, height)
        if cxb < cxa or cyb < cya:
            return 0.0
        total = (
            prefix[cxb, cyb]
            - prefix[cxa - 1, cyb]
            - prefix[cxb, cya - 1]
            + prefix[cxa - 1, cya - 1]
        )
        return float(total) / ((xb - xa + 1) * (yb - ya + 1))

    hz = job.hazard.as_tuple()
    goal = job.goal.as_tuple()
    obstacles = [o.as_tuple() for o in job.obstacles]
    start = job.start.as_tuple()

    def in_hazard(r: IntRect) -> bool:
        return (
            hz[0] <= r[0] and hz[1] <= r[1] and r[2] <= hz[2] and r[3] <= hz[3]
        )

    def in_goal(r: IntRect) -> bool:
        return (
            goal[0] <= r[0] and goal[1] <= r[1]
            and r[2] <= goal[2] and r[3] <= goal[3]
        )

    def blocked(r: IntRect) -> bool:
        for (oxa, oya, oxb, oyb) in obstacles:
            if (
                r[0] - 2 <= oxb and oxa - 2 <= r[2]
                and r[1] - 2 <= oyb and oya - 2 <= r[3]
            ):
                return True
        return False

    shape_specs: dict[tuple[int, int], list[_ActionSpec]] = {}

    # State 0 is the hazard sink; the start is state 1.
    states: list[IntRect | None] = [None, start]
    index: dict[IntRect, int] = {start: 1}
    goal_indices: list[int] = []

    choice_state: list[int] = []
    choice_labels: list[str] = []
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []

    def state_id(r: IntRect) -> int:
        idx = index.get(r)
        if idx is None:
            idx = len(states)
            states.append(r)
            index[r] = idx
            queue.append(r)
        return idx

    queue: list[IntRect] = [start]
    head = 0
    while head < len(queue):
        r = queue[head]
        head += 1
        s_idx = index[r]
        if in_goal(r):
            goal_indices.append(s_idx)
            continue
        xa, ya = r[0], r[1]
        shape = (r[2] - r[0] + 1, r[3] - r[1] + 1)
        specs = shape_specs.get(shape)
        if specs is None:
            specs = _compile_shape_actions(
                shape[0], shape[1], max_aspect, families=families
            )
            shape_specs[shape] = specs
        for spec in specs:
            probs = [
                rect_mean(xa + leg.dxa, ya + leg.dya, xa + leg.dxb, ya + leg.dyb)
                for leg in spec.legs
            ]
            c_idx = len(choice_state)
            stay_prob = 0.0
            emitted = False
            for pattern, succ in spec.outcomes:
                p = 1.0
                for leg_i, success in enumerate(pattern):
                    p *= probs[leg_i] if success else 1.0 - probs[leg_i]
                if p <= 0.0:
                    continue
                if succ is None:
                    stay_prob += p
                    continue
                dxa, dya, w2, h2 = succ
                nxt = (xa + dxa, ya + dya, xa + dxa + w2 - 1, ya + dya + h2 - 1)
                safe = in_hazard(nxt) and (nxt == start or not blocked(nxt))
                target = state_id(nxt) if safe else HAZARD_INDEX
                rows.append(c_idx)
                cols.append(target)
                vals.append(p)
                emitted = True
            if stay_prob > 0.0:
                rows.append(c_idx)
                cols.append(s_idx)
                vals.append(stay_prob)
                emitted = True
            assert emitted, "every action has at least one outcome"
            choice_state.append(s_idx)
            choice_labels.append(spec.name)

    n = len(states)
    transitions = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(max(len(choice_state), 1), n)
    )
    goal_mask = np.zeros(n, dtype=bool)
    goal_mask[goal_indices] = True
    hazard_mask = np.zeros(n, dtype=bool)
    hazard_mask[HAZARD_INDEX] = True
    compiled = CompiledMDP(
        num_states=n,
        choice_state=np.asarray(choice_state, dtype=np.int64),
        choice_reward=np.full(len(choice_state), CYCLE_REWARD),
        transitions=transitions,
        labels={"goal": goal_mask, "hazard": hazard_mask},
        initial=1,
    )
    from repro.core.mdp import HAZARD_STATE

    state_objects: list[Rect | str] = [HAZARD_STATE] + [
        Rect(*r) for r in states[1:]  # type: ignore[misc]
    ]
    return CompiledRoutingModel(
        compiled=compiled, states=state_objects, choice_labels=choice_labels,
        job=job,
    )


def extract_fast_strategy(
    model: CompiledRoutingModel, result: ValueResult
) -> MemorylessStrategy:
    """Memoryless strategy from a solved compiled routing model."""
    cm = model.compiled
    counts = np.bincount(cm.choice_state, minlength=cm.num_states)
    first = np.zeros(cm.num_states, dtype=np.int64)
    first[1:] = np.cumsum(counts)[:-1]
    decisions: dict[object, str] = {}
    values: dict[object, float] = {}
    for idx, state in enumerate(model.states):
        values[state] = float(result.values[idx])
        local = int(result.choice[idx])
        if local >= 0:
            decisions[state] = model.choice_labels[first[idx] + local]
    return MemorylessStrategy(
        decisions=decisions,
        values=values,
        initial_value=float(result.values[cm.initial]),
    )
