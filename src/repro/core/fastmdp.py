"""Array-first construction of the per-RJ routing MDP.

Semantically identical to :func:`repro.core.mdp.build_routing_mdp` followed
by :func:`repro.modelcheck.compiled.compile_mdp` — the unit tests check the
two pipelines produce the same model statistics and the same synthesis
values — but built for the synthesis hot loop:

* droplet patterns are plain ``(xa, ya, xb, yb)`` int tuples;
* per-(shape, action) metadata (guards, frontier rectangles, successor
  patterns) is compiled once per *process* into a global memo keyed by
  ``(w, h, max_aspect, families)`` and shifted per state;
* frontier means come from a 2-D prefix sum of the force matrix, so every
  leg probability is O(1);
* state expansion is *vectorized over BFS wavefronts*: every state of a
  wave with the same droplet shape is expanded with numpy array ops (leg
  probabilities, outcome products, hazard/obstacle checks, successor
  dedup through a per-shape id grid) instead of a per-state Python loop;
* transitions are emitted into chunked numpy buffers and assembled into
  CSR form directly, skipping the explicit model objects entirely.

:func:`build_routing_model_scalar` keeps the original per-state Python
expansion.  It is the pre-fast-path pipeline: the differential tests check
the vectorized builder against it (and against the reference explicit
builder), and ``benchmarks/bench_synthesis.py`` measures the speedup of
the fast path over it.

Only matrix-backed force fields are supported (the synthesizer's health
estimates and the baseline's uniform field both are); exotic fields fall
back to the explicit builder in :mod:`repro.core.synthesis`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro import perf
from repro.core.actions import (
    ALL_ACTIONS,
    DEFAULT_MAX_ASPECT,
    Action,
    ActionClass,
    apply_action,
    frontier,
    frontier_directions,
    guard,
)
from repro.core.mdp import CYCLE_REWARD
from repro.core.routing_job import RoutingJob
from repro.geometry.rect import Rect
from repro.modelcheck.compiled import CompiledMDP
from repro.modelcheck.reachability import ValueResult
from repro.modelcheck.strategy import MemorylessStrategy

IntRect = tuple[int, int, int, int]

#: Index of the absorbing hazard sink in every compiled routing model.
HAZARD_INDEX = 0


@dataclass(frozen=True)
class _LegSpec:
    """A frontier rectangle as offsets from the droplet's (xa, ya)."""

    dxa: int
    dya: int
    dxb: int
    dyb: int


@dataclass(frozen=True)
class _ActionSpec:
    """Precompiled semantics of one action for one droplet shape.

    ``legs`` holds the offset frontiers whose means are the leg success
    probabilities; ``outcomes`` maps tuples of leg-success booleans to the
    successor-pattern offsets ``(dxa, dya, w, h)`` (``None`` = stay put).
    """

    name: str
    klass: ActionClass
    legs: tuple[_LegSpec, ...]
    outcomes: tuple[tuple[tuple[bool, ...], tuple[int, int, int, int] | None], ...]


def _offset(base: Rect, rect: Rect) -> _LegSpec:
    return _LegSpec(
        rect.xa - base.xa, rect.ya - base.ya, rect.xb - base.xa, rect.yb - base.ya
    )


def _succ_offset(base: Rect, rect: Rect) -> tuple[int, int, int, int]:
    return (rect.xa - base.xa, rect.ya - base.ya, rect.width, rect.height)


def _compile_shape_actions(
    w: int, h: int, max_aspect: float,
    families: tuple[ActionClass, ...] | None = None,
) -> list[_ActionSpec]:
    """Per-shape action metadata, derived from the reference implementation."""
    base = Rect(100, 100, 100 + w - 1, 100 + h - 1)
    specs: list[_ActionSpec] = []
    for action in ALL_ACTIONS:
        if families is not None and action.klass not in families:
            continue
        if not guard(base, action, max_aspect=max_aspect):
            continue
        specs.append(_spec_for(base, action))
    return specs


def _spec_for(base: Rect, action: Action) -> _ActionSpec:
    klass = action.klass
    if klass is ActionClass.CARDINAL:
        (direction,) = frontier_directions(action)
        leg = _offset(base, frontier(base, action, direction))  # type: ignore[arg-type]
        moved = _succ_offset(base, apply_action(base, action))
        return _ActionSpec(
            action.name, klass, (leg,),
            (((True,), moved), ((False,), None)),
        )
    if klass is ActionClass.DOUBLE:
        (direction,) = frontier_directions(action)
        leg1 = _offset(base, frontier(base, action, direction))  # type: ignore[arg-type]
        from repro.core.actions import ACTIONS

        one = apply_action(base, ACTIONS[f"a_{direction}"])
        leg2 = _offset(base, frontier(one, action, direction))  # type: ignore[arg-type]
        return _ActionSpec(
            action.name, klass, (leg1, leg2),
            (
                ((True, True), _succ_offset(base, apply_action(base, action))),
                ((True, False), _succ_offset(base, one)),
                ((False,), None),  # second leg never attempted
            ),
        )
    if klass is ActionClass.ORDINAL:
        dv, dh = action.vertical, action.horizontal
        assert dv is not None and dh is not None
        legv = _offset(base, frontier(base, action, dv))  # type: ignore[arg-type]
        legh = _offset(base, frontier(base, action, dh))  # type: ignore[arg-type]
        from repro.core.actions import ACTIONS

        return _ActionSpec(
            action.name, klass, (legv, legh),
            (
                ((True, True), _succ_offset(base, apply_action(base, action))),
                ((True, False),
                 _succ_offset(base, apply_action(base, ACTIONS[f"a_{dv}"]))),
                ((False, True),
                 _succ_offset(base, apply_action(base, ACTIONS[f"a_{dh}"]))),
                ((False, False), None),
            ),
        )
    # Morphs: one leg; success reshapes the droplet.
    (direction,) = frontier_directions(action)
    fr = frontier(base, action, direction)
    if fr is None:  # degenerate single-row/-column morphs are unguarded only
        raise AssertionError("guarded morph must have a frontier")
    return _ActionSpec(
        action.name, klass, (_offset(base, fr),),
        (((True,), _succ_offset(base, apply_action(base, action))),
         ((False,), None)),
    )


#: Process-global memo of per-shape action semantics.  Key: droplet shape,
#: aspect bound and (normalized) family restriction; value: the compiled
#: specs.  Shape semantics are position-independent, so one compilation
#: serves every model build in the process.
_SHAPE_ACTION_MEMO: dict[
    tuple[int, int, float, tuple[ActionClass, ...] | None],
    tuple[_ActionSpec, ...],
] = {}


def compiled_shape_actions(
    w: int, h: int, max_aspect: float,
    families: tuple[ActionClass, ...] | None = None,
) -> tuple[_ActionSpec, ...]:
    """Memoized per-shape action semantics (see :data:`_SHAPE_ACTION_MEMO`)."""
    key = (w, h, float(max_aspect),
           families if families is None else tuple(families))
    specs = _SHAPE_ACTION_MEMO.get(key)
    if specs is None:
        perf.incr("fastmdp.shape_memo.miss")
        specs = tuple(_compile_shape_actions(w, h, max_aspect,
                                             families=key[3]))
        _SHAPE_ACTION_MEMO[key] = specs
    else:
        perf.incr("fastmdp.shape_memo.hit")
    return specs


def clear_shape_action_memo() -> None:
    """Drop the global action-spec memo (benches use this to model a cold
    process; regular code never needs it — specs are immutable)."""
    _SHAPE_ACTION_MEMO.clear()


@dataclass(frozen=True)
class CompiledRoutingModel:
    """A routing MDP in compiled (array) form plus its state inventory."""

    compiled: CompiledMDP
    states: list[Rect | str]
    choice_labels: list[str]
    job: RoutingJob

    @property
    def num_states(self) -> int:
        return self.compiled.num_states

    @property
    def num_choices(self) -> int:
        return self.compiled.num_choices

    @property
    def num_transitions(self) -> int:
        return int(self.compiled.transitions.nnz)


def build_routing_model_scalar(
    job: RoutingJob,
    forces: np.ndarray,
    max_aspect: float = DEFAULT_MAX_ASPECT,
    families: tuple[ActionClass, ...] | None = None,
) -> CompiledRoutingModel:
    """Per-state (scalar) compiled-model builder — the pre-fast-path pipeline.

    Semantically identical to :func:`build_routing_model_fast` but expands
    one state at a time in pure Python.  Kept as the differential-test
    oracle and as the baseline that ``benchmarks/bench_synthesis.py``
    measures the vectorized fast path against; no production caller uses
    it.
    """
    if job.is_dispense:
        raise ValueError("dispense jobs are materialized, not routed")
    width, height = forces.shape
    prefix = np.zeros((width + 1, height + 1))
    prefix[1:, 1:] = forces.cumsum(axis=0).cumsum(axis=1)

    def rect_mean(xa: int, ya: int, xb: int, yb: int) -> float:
        cxa, cya = max(xa, 1), max(ya, 1)
        cxb, cyb = min(xb, width), min(yb, height)
        if cxb < cxa or cyb < cya:
            return 0.0
        total = (
            prefix[cxb, cyb]
            - prefix[cxa - 1, cyb]
            - prefix[cxb, cya - 1]
            + prefix[cxa - 1, cya - 1]
        )
        return float(total) / ((xb - xa + 1) * (yb - ya + 1))

    hz = job.hazard.as_tuple()
    goal = job.goal.as_tuple()
    obstacles = [o.as_tuple() for o in job.obstacles]
    start = job.start.as_tuple()

    def in_hazard(r: IntRect) -> bool:
        return (
            hz[0] <= r[0] and hz[1] <= r[1] and r[2] <= hz[2] and r[3] <= hz[3]
        )

    def in_goal(r: IntRect) -> bool:
        return (
            goal[0] <= r[0] and goal[1] <= r[1]
            and r[2] <= goal[2] and r[3] <= goal[3]
        )

    def blocked(r: IntRect) -> bool:
        for (oxa, oya, oxb, oyb) in obstacles:
            if (
                r[0] - 2 <= oxb and oxa - 2 <= r[2]
                and r[1] - 2 <= oyb and oya - 2 <= r[3]
            ):
                return True
        return False

    shape_specs: dict[tuple[int, int], list[_ActionSpec]] = {}

    # State 0 is the hazard sink; the start is state 1.
    states: list[IntRect | None] = [None, start]
    index: dict[IntRect, int] = {start: 1}
    goal_indices: list[int] = []

    choice_state: list[int] = []
    choice_labels: list[str] = []
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []

    def state_id(r: IntRect) -> int:
        idx = index.get(r)
        if idx is None:
            idx = len(states)
            states.append(r)
            index[r] = idx
            queue.append(r)
        return idx

    queue: list[IntRect] = [start]
    head = 0
    while head < len(queue):
        r = queue[head]
        head += 1
        s_idx = index[r]
        if in_goal(r):
            goal_indices.append(s_idx)
            continue
        xa, ya = r[0], r[1]
        shape = (r[2] - r[0] + 1, r[3] - r[1] + 1)
        specs = shape_specs.get(shape)
        if specs is None:
            specs = _compile_shape_actions(
                shape[0], shape[1], max_aspect, families=families
            )
            shape_specs[shape] = specs
        for spec in specs:
            probs = [
                rect_mean(xa + leg.dxa, ya + leg.dya, xa + leg.dxb, ya + leg.dyb)
                for leg in spec.legs
            ]
            c_idx = len(choice_state)
            stay_prob = 0.0
            emitted = False
            for pattern, succ in spec.outcomes:
                p = 1.0
                for leg_i, success in enumerate(pattern):
                    p *= probs[leg_i] if success else 1.0 - probs[leg_i]
                if p <= 0.0:
                    continue
                if succ is None:
                    stay_prob += p
                    continue
                dxa, dya, w2, h2 = succ
                nxt = (xa + dxa, ya + dya, xa + dxa + w2 - 1, ya + dya + h2 - 1)
                safe = in_hazard(nxt) and (nxt == start or not blocked(nxt))
                target = state_id(nxt) if safe else HAZARD_INDEX
                rows.append(c_idx)
                cols.append(target)
                vals.append(p)
                emitted = True
            if stay_prob > 0.0:
                rows.append(c_idx)
                cols.append(s_idx)
                vals.append(stay_prob)
                emitted = True
            assert emitted, "every action has at least one outcome"
            choice_state.append(s_idx)
            choice_labels.append(spec.name)

    n = len(states)
    transitions = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(max(len(choice_state), 1), n)
    )
    goal_mask = np.zeros(n, dtype=bool)
    goal_mask[goal_indices] = True
    hazard_mask = np.zeros(n, dtype=bool)
    hazard_mask[HAZARD_INDEX] = True
    compiled = CompiledMDP(
        num_states=n,
        choice_state=np.asarray(choice_state, dtype=np.int64),
        choice_reward=np.full(len(choice_state), CYCLE_REWARD),
        transitions=transitions,
        labels={"goal": goal_mask, "hazard": hazard_mask},
        initial=1,
    )
    from repro.core.mdp import HAZARD_STATE

    state_objects: list[Rect | str] = [HAZARD_STATE] + [
        Rect(*r) for r in states[1:]  # type: ignore[misc]
    ]
    return CompiledRoutingModel(
        compiled=compiled, states=state_objects, choice_labels=choice_labels,
        job=job,
    )


def build_routing_model_fast(
    job: RoutingJob,
    forces: np.ndarray,
    max_aspect: float = DEFAULT_MAX_ASPECT,
    families: tuple[ActionClass, ...] | None = None,
) -> CompiledRoutingModel:
    """Build the per-RJ MDP directly in compiled form, vectorized.

    ``forces`` is the ``(W, H)`` per-MC relative-force matrix; cells outside
    it exert zero force.  ``families`` optionally restricts the action set
    to the given classes (``None`` = all five).

    Instead of expanding states one at a time, the builder enumerates
    *every* in-hazard pattern of every reachable droplet shape up front,
    computes all leg probabilities / outcome transitions with one batch of
    array ops per ``(shape, action)`` pair, and then restricts the model to
    the component reachable from the start with a C-level sparse BFS
    (:func:`scipy.sparse.csgraph.breadth_first_order`).  The arithmetic is
    element-for-element the same as :func:`build_routing_model_scalar`, so
    the two builders produce identical probabilities and (up to state
    ordering) identical models.
    """
    if job.is_dispense:
        raise ValueError("dispense jobs are materialized, not routed")
    perf.incr("fastmdp.builds")
    width, height = forces.shape
    prefix = np.zeros((width + 1, height + 1))
    prefix[1:, 1:] = forces.cumsum(axis=0).cumsum(axis=1)

    hz = job.hazard.as_tuple()
    goal = job.goal.as_tuple()
    obstacles = [o.as_tuple() for o in job.obstacles]
    start = job.start.as_tuple()
    hz_w = hz[2] - hz[0] + 1
    hz_h = hz[3] - hz[1] + 1

    def leg_probs(xa: np.ndarray, ya: np.ndarray, leg: _LegSpec) -> np.ndarray:
        """Vectorized ``rect_mean`` over a position batch for one leg."""
        cxa = np.maximum(xa + leg.dxa, 1)
        cya = np.maximum(ya + leg.dya, 1)
        cxb = np.minimum(xa + leg.dxb, width)
        cyb = np.minimum(ya + leg.dyb, height)
        valid = (cxb >= cxa) & (cyb >= cya)
        # Clip the lookup indices so invalid (empty-overlap) rows index
        # safely; their values are discarded by the mask.
        ixb = np.clip(cxb, 0, width)
        iyb = np.clip(cyb, 0, height)
        ixa = np.clip(cxa - 1, 0, width)
        iya = np.clip(cya - 1, 0, height)
        total = (
            prefix[ixb, iyb] - prefix[ixa, iyb]
            - prefix[ixb, iya] + prefix[ixa, iya]
        )
        area = (leg.dxb - leg.dxa + 1) * (leg.dyb - leg.dya + 1)
        return np.where(valid, total / area, 0.0)

    # -- shape closure: droplet shapes reachable via morph successors --------
    start_shape = (start[2] - start[0] + 1, start[3] - start[1] + 1)
    shape_index: dict[tuple[int, int], int] = {start_shape: 0}
    shapes: list[tuple[int, int]] = [start_shape]
    specs_by_shape: list[tuple[_ActionSpec, ...]] = []
    si = 0
    while si < len(shapes):
        specs = compiled_shape_actions(
            shapes[si][0], shapes[si][1], max_aspect, families=families
        )
        specs_by_shape.append(specs)
        for spec in specs:
            for _, succ in spec.outcomes:
                if succ is None:
                    continue
                nshape = (succ[2], succ[3])
                if (
                    nshape not in shape_index
                    and nshape[0] <= hz_w and nshape[1] <= hz_h
                ):
                    shape_index[nshape] = len(shapes)
                    shapes.append(nshape)
        si += 1

    # -- provisional pattern ids: 0 = hazard sink, then shape-major blocks ---
    # Patterns of shape (w, h) anchor at xa in [hz.xa, hz.xb - w + 1] and
    # ya in [hz.ya, hz.yb - h + 1]; the id of (xa, ya) is arithmetic, so
    # successor lookups need no hash/grid at all.
    base = np.zeros(len(shapes) + 1, dtype=np.int64)
    for i, (w, h) in enumerate(shapes):
        base[i + 1] = base[i] + (hz_w - w + 1) * (hz_h - h + 1)
    total = int(base[-1])
    start_pid = 1 + int(base[shape_index[start_shape]]) + (
        (start[0] - hz[0]) * (hz_h - start_shape[1] + 1) + (start[1] - hz[1])
    )

    pat_x = np.zeros(total + 1, dtype=np.int64)
    pat_y = np.zeros(total + 1, dtype=np.int64)
    pat_w = np.zeros(total + 1, dtype=np.int64)
    pat_h = np.zeros(total + 1, dtype=np.int64)

    owner_chunks: list[np.ndarray] = []
    label_chunks: list[np.ndarray] = []
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    goal_pids: list[np.ndarray] = []
    num_prov_choices = 0

    for si, (w, h) in enumerate(shapes):
        nx = hz_w - w + 1
        ny = hz_h - h + 1
        xa = np.repeat(np.arange(hz[0], hz[0] + nx, dtype=np.int64), ny)
        ya = np.tile(np.arange(hz[1], hz[1] + ny, dtype=np.int64), nx)
        pids = 1 + int(base[si]) + np.arange(nx * ny, dtype=np.int64)
        pat_x[pids] = xa
        pat_y[pids] = ya
        pat_w[pids] = w
        pat_h[pids] = h
        in_goal = (
            (goal[0] <= xa) & (goal[1] <= ya)
            & (xa + w - 1 <= goal[2]) & (ya + h - 1 <= goal[3])
        )
        if in_goal.any():
            goal_pids.append(pids[in_goal])
        ng = ~in_goal  # goal patterns are absorbing: no choices
        xa_ng, ya_ng, pid_ng = xa[ng], ya[ng], pids[ng]
        k = pid_ng.size
        if k == 0:
            continue
        for spec in specs_by_shape[si]:
            probs = [leg_probs(xa_ng, ya_ng, leg) for leg in spec.legs]
            c_prov = num_prov_choices + np.arange(k, dtype=np.int64)
            num_prov_choices += k
            owner_chunks.append(pid_ng)
            label_chunks.append(np.full(k, spec.name, dtype=object))
            stay_p = np.zeros(k)
            for pattern, succ in spec.outcomes:
                p = np.ones(k)
                for leg_i, success in enumerate(pattern):
                    p = p * (probs[leg_i] if success else 1.0 - probs[leg_i])
                if succ is None:
                    stay_p += p
                    continue
                dxa, dya, w2, h2 = succ
                nxa, nya = xa_ng + dxa, ya_ng + dya
                emit = p > 0.0
                if not emit.any():
                    continue
                in_hz = (
                    (hz[0] <= nxa) & (hz[1] <= nya)
                    & (nxa + w2 - 1 <= hz[2]) & (nya + h2 - 1 <= hz[3])
                )
                is_start = (
                    (nxa == start[0]) & (nya == start[1])
                    & (w2 == start_shape[0]) & (h2 == start_shape[1])
                )
                blocked = np.zeros(k, dtype=bool)
                for (oxa, oya, oxb, oyb) in obstacles:
                    blocked |= (
                        (nxa - 2 <= oxb) & (oxa - 2 <= nxa + w2 - 1)
                        & (nya - 2 <= oyb) & (oya - 2 <= nya + h2 - 1)
                    )
                safe = in_hz & (is_start | ~blocked)
                sj = shape_index.get((w2, h2))
                if sj is None:  # shape does not fit the hazard bounds
                    targets = np.zeros(k, dtype=np.int64)
                else:
                    ny2 = hz_h - h2 + 1
                    tpid = 1 + int(base[sj]) + (
                        (nxa - hz[0]) * ny2 + (nya - hz[1])
                    )
                    targets = np.where(safe, tpid, HAZARD_INDEX)
                rows.append(c_prov[emit])
                cols.append(targets[emit])
                vals.append(p[emit])
            stay_emit = stay_p > 0.0
            if stay_emit.any():
                rows.append(c_prov[stay_emit])
                cols.append(pid_ng[stay_emit])
                vals.append(stay_p[stay_emit])

    row_arr = (np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64))
    col_arr = (np.concatenate(cols) if cols else np.zeros(0, dtype=np.int64))
    val_arr = (np.concatenate(vals) if vals else np.zeros(0))
    owner_arr = (
        np.concatenate(owner_chunks) if owner_chunks
        else np.zeros(0, dtype=np.int64)
    )
    label_arr = (
        np.concatenate(label_chunks) if label_chunks
        else np.zeros(0, dtype=object)
    )

    # -- restrict to the component reachable from the start ------------------
    reach = np.zeros(total + 1, dtype=bool)
    reach[HAZARD_INDEX] = True  # the sink exists even when unreachable
    reach[start_pid] = True
    # State adjacency (owner state -> successor state) from the emitted
    # transitions: transition t belongs to choice row_arr[t], whose owner
    # pattern is owner_arr[row_arr[t]].
    if row_arr.size:
        edge_src = owner_arr[row_arr]
        graph = sparse.csr_matrix(
            (np.ones(edge_src.size, dtype=np.int8), (edge_src, col_arr)),
            shape=(total + 1, total + 1),
        )
        order = sparse.csgraph.breadth_first_order(
            graph, start_pid, directed=True, return_predecessors=False
        )
        reach[order] = True

    reach_pids = np.flatnonzero(reach)
    n = reach_pids.size
    new_id = np.full(total + 1, -1, dtype=np.int64)
    new_id[HAZARD_INDEX] = 0
    new_id[start_pid] = 1
    others = reach_pids[(reach_pids != HAZARD_INDEX) & (reach_pids != start_pid)]
    new_id[others] = 2 + np.arange(others.size, dtype=np.int64)

    keep_choice = np.flatnonzero(reach[owner_arr]) if owner_arr.size else \
        np.zeros(0, dtype=np.int64)
    new_owner = new_id[owner_arr[keep_choice]]
    perm = np.argsort(new_owner, kind="stable")
    final_choices = keep_choice[perm]
    num_choices = final_choices.size
    choice_state = new_owner[perm]
    choice_labels: list[str] = label_arr[final_choices].tolist()
    choice_new = np.full(num_prov_choices, -1, dtype=np.int64)
    choice_new[final_choices] = np.arange(num_choices, dtype=np.int64)

    if row_arr.size:
        rows_f = choice_new[row_arr]
        tmask = rows_f >= 0
        rows_f = rows_f[tmask]
        cols_f = new_id[col_arr[tmask]]
        vals_f = val_arr[tmask]
        counts = np.bincount(rows_f, minlength=num_choices)
        assert (counts > 0).all(), "every action has at least one outcome"
        t_order = np.argsort(rows_f, kind="stable")
        indptr = np.zeros(max(num_choices, 1) + 1, dtype=np.int64)
        indptr[1 : num_choices + 1] = np.cumsum(counts)
        transitions = sparse.csr_matrix(
            (vals_f[t_order], cols_f[t_order], indptr),
            shape=(max(num_choices, 1), n),
        )
        transitions.sum_duplicates()
    else:
        transitions = sparse.csr_matrix((max(num_choices, 1), n))

    goal_mask = np.zeros(n, dtype=bool)
    if goal_pids:
        goal_new = new_id[np.concatenate(goal_pids)]
        goal_mask[goal_new[goal_new >= 0]] = True
    hazard_mask = np.zeros(n, dtype=bool)
    hazard_mask[HAZARD_INDEX] = True
    compiled = CompiledMDP(
        num_states=n,
        choice_state=choice_state,
        choice_reward=np.full(num_choices, CYCLE_REWARD),
        transitions=transitions,
        labels={"goal": goal_mask, "hazard": hazard_mask},
        initial=1,
    )
    from repro.core.mdp import HAZARD_STATE

    inv = np.zeros(n, dtype=np.int64)
    inv[new_id[reach_pids]] = reach_pids
    sx = pat_x[inv[1:]]
    sy = pat_y[inv[1:]]
    sw = pat_w[inv[1:]]
    sh = pat_h[inv[1:]]
    state_objects: list[Rect | str] = [HAZARD_STATE] + [
        Rect(x, y, x + w - 1, y + h - 1)
        for x, y, w, h in zip(
            sx.tolist(), sy.tolist(), sw.tolist(), sh.tolist()
        )
    ]
    return CompiledRoutingModel(
        compiled=compiled, states=state_objects, choice_labels=choice_labels,
        job=job,
    )


def extract_fast_strategy(
    model: CompiledRoutingModel, result: ValueResult
) -> MemorylessStrategy:
    """Memoryless strategy from a solved compiled routing model."""
    cm = model.compiled
    first = cm.first_choice()
    has_choice = result.choice >= 0
    global_choice = np.where(has_choice, first + result.choice, -1)
    decisions: dict[object, str] = {}
    values: dict[object, float] = {}
    value_list = result.values.tolist()
    choice_list = global_choice.tolist()
    labels = model.choice_labels
    for state, value, c_idx in zip(model.states, value_list, choice_list):
        values[state] = value
        if c_idx >= 0:
            decisions[state] = labels[c_idx]
    return MemorylessStrategy(
        decisions=decisions,
        values=values,
        initial_value=float(result.values[cm.initial]),
    )
