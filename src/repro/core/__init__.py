"""The paper's primary contribution: game-based model, synthesis, scheduling.

Layered as Sec. V-VI of the paper: the droplet/actuation model with frontier
sets and probabilistic outcomes, the SMG/MDP formal models, routing-job
decomposition, strategy synthesis via the model checker, and the hybrid
scheduler that adapts routes to real-time health information.
"""

from repro.core.actions import (
    ACTIONS,
    ALL_ACTIONS,
    CARDINAL_ACTIONS,
    DEFAULT_MAX_ASPECT,
    DOUBLE_ACTIONS,
    HEIGHTEN_ACTIONS,
    ORDINAL_ACTIONS,
    WIDEN_ACTIONS,
    Action,
    ActionClass,
    apply_action,
    enabled_actions,
    frontier,
    frontier_directions,
    guard,
)
from repro.core.baseline import (
    AdaptiveRouter,
    BaselineRouter,
    OracleRouter,
    ReactiveRouter,
    Router,
)
from repro.core.droplet import (
    OFF_CHIP,
    actuation_matrix,
    fit_droplet_shape,
    is_off_chip,
    size_error,
    within_chip,
)
from repro.core.fastmdp import (
    CompiledRoutingModel,
    build_routing_model_fast,
    build_routing_model_scalar,
    clear_shape_action_memo,
    compiled_shape_actions,
    extract_fast_strategy,
)
from repro.core.mdp import HAZARD_STATE, RoutingModel, build_routing_mdp
from repro.core.offline import PrecomputeReport, precompute_library, routing_jobs_of
from repro.core.routing_job import (
    ZONE_MARGIN,
    DecomposedMO,
    RJHelper,
    RoutingJob,
    zone,
)
from repro.core.scheduler import CyclePlan, HybridScheduler, MOPhase, RoutingTask
from repro.core.strategy import (
    RoutingStrategy,
    StrategyLibrary,
    health_fingerprint,
    strategy_from_synthesis,
)
from repro.core.synthesis import (
    SynthesisResult,
    baseline_field,
    force_field_from_degradation,
    force_field_from_health,
    synthesize,
    synthesize_with_field,
)
from repro.core.transitions import (
    ForceField,
    MatrixForceField,
    Outcome,
    UniformForceField,
    leg_probability,
    outcome_distribution,
    sample_outcome,
)

__all__ = [
    "ACTIONS",
    "ALL_ACTIONS",
    "AdaptiveRouter",
    "Action",
    "ActionClass",
    "BaselineRouter",
    "CARDINAL_ACTIONS",
    "CompiledRoutingModel",
    "CyclePlan",
    "DEFAULT_MAX_ASPECT",
    "DOUBLE_ACTIONS",
    "DecomposedMO",
    "ForceField",
    "HAZARD_STATE",
    "HEIGHTEN_ACTIONS",
    "HybridScheduler",
    "MOPhase",
    "MatrixForceField",
    "ORDINAL_ACTIONS",
    "OFF_CHIP",
    "OracleRouter",
    "Outcome",
    "PrecomputeReport",
    "RJHelper",
    "ReactiveRouter",
    "Router",
    "RoutingJob",
    "RoutingModel",
    "RoutingStrategy",
    "RoutingTask",
    "StrategyLibrary",
    "SynthesisResult",
    "UniformForceField",
    "WIDEN_ACTIONS",
    "ZONE_MARGIN",
    "actuation_matrix",
    "apply_action",
    "baseline_field",
    "build_routing_mdp",
    "build_routing_model_fast",
    "build_routing_model_scalar",
    "clear_shape_action_memo",
    "compiled_shape_actions",
    "extract_fast_strategy",
    "enabled_actions",
    "fit_droplet_shape",
    "force_field_from_degradation",
    "force_field_from_health",
    "frontier",
    "frontier_directions",
    "guard",
    "health_fingerprint",
    "is_off_chip",
    "leg_probability",
    "outcome_distribution",
    "precompute_library",
    "routing_jobs_of",
    "sample_outcome",
    "size_error",
    "strategy_from_synthesis",
    "synthesize",
    "synthesize_with_field",
    "within_chip",
    "zone",
]
