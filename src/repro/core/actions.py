"""The 20 microfluidic actions, their frontier sets and guards (Sec. V-B).

MEDA biochips support three classes of droplet manipulation — cardinal
movement, ordinal movement and shape morphing — realized here as five action
families:

* ``A_d``   — single-step cardinal moves ``a_N, a_S, a_E, a_W``;
* ``A_dd``  — double-step cardinal moves ``a_NN, a_SS, a_EE, a_WW``;
* ``A_dd'`` — ordinal moves ``a_NE, a_NW, a_SE, a_SW``;
* ``A_down``— width-increasing morphs ``a_vNE, a_vNW, a_vSE, a_vSW``
  (the paper's ``A_↓``: height decreases, width grows toward the named
  ordinal direction);
* ``A_up``  — height-increasing morphs ``a_^NE, a_^NW, a_^SE, a_^SW``
  (the paper's ``A_↑``).

Every action has *frontier sets* — the MCs just beyond the droplet that pull
it in each direction (Table II) — and *guards* — preconditions on the droplet
shape (aspect-ratio bounds for morphs, minimum length for double steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.geometry.rect import Rect


class ActionClass(Enum):
    """The five action families of Sec. V-B."""

    CARDINAL = "cardinal"
    DOUBLE = "double"
    ORDINAL = "ordinal"
    WIDEN = "widen"  # the paper's A_↓ (height decreases, width grows)
    HEIGHTEN = "heighten"  # the paper's A_↑ (width decreases, height grows)


#: Unit displacement of each cardinal direction (x east, y north).
DIRECTION_STEPS: dict[str, tuple[int, int]] = {
    "N": (0, 1),
    "S": (0, -1),
    "E": (1, 0),
    "W": (-1, 0),
}

VERTICAL = ("N", "S")
HORIZONTAL = ("E", "W")

#: Default aspect-ratio bound r: AR is kept within [1/r, r] (Sec. V-B notes
#: droplets should not exceed 2:1 to avoid unintentional splitting).
DEFAULT_MAX_ASPECT = 2.0

#: Minimum droplet length (in the travel axis) for a double-step move: "a
#: droplet can be reliably moved a distance no longer than half its length
#: in one cycle", hence length >= 4 for a two-MC hop.
DOUBLE_STEP_MIN_LENGTH = 4


@dataclass(frozen=True)
class Action:
    """One microfluidic action.

    ``vertical``/``horizontal`` name the cardinal components involved:
    a cardinal/double action has exactly one of them, ordinal and morphing
    actions have both (for morphs they encode the growth corner).
    """

    name: str
    klass: ActionClass
    vertical: str | None = None
    horizontal: str | None = None

    def __post_init__(self) -> None:
        if self.vertical is not None and self.vertical not in VERTICAL:
            raise ValueError(f"bad vertical direction {self.vertical!r}")
        if self.horizontal is not None and self.horizontal not in HORIZONTAL:
            raise ValueError(f"bad horizontal direction {self.horizontal!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _build_registry() -> dict[str, Action]:
    actions: dict[str, Action] = {}
    for d in VERTICAL:
        actions[f"a_{d}"] = Action(f"a_{d}", ActionClass.CARDINAL, vertical=d)
        actions[f"a_{d}{d}"] = Action(f"a_{d}{d}", ActionClass.DOUBLE, vertical=d)
    for d in HORIZONTAL:
        actions[f"a_{d}"] = Action(f"a_{d}", ActionClass.CARDINAL, horizontal=d)
        actions[f"a_{d}{d}"] = Action(f"a_{d}{d}", ActionClass.DOUBLE, horizontal=d)
    for dv in VERTICAL:
        for dh in HORIZONTAL:
            actions[f"a_{dv}{dh}"] = Action(
                f"a_{dv}{dh}", ActionClass.ORDINAL, vertical=dv, horizontal=dh
            )
            actions[f"a_v{dv}{dh}"] = Action(
                f"a_v{dv}{dh}", ActionClass.WIDEN, vertical=dv, horizontal=dh
            )
            actions[f"a_^{dv}{dh}"] = Action(
                f"a_^{dv}{dh}", ActionClass.HEIGHTEN, vertical=dv, horizontal=dh
            )
    return actions


#: Registry of all 20 actions, keyed by name (e.g. ``a_N``, ``a_NN``,
#: ``a_NE``, ``a_vNE``, ``a_^NE``).
ACTIONS: dict[str, Action] = _build_registry()

#: The action families as tuples, mirroring the paper's A_d, A_dd, A_dd',
#: A_↓ and A_↑ sets.
CARDINAL_ACTIONS = tuple(a for a in ACTIONS.values() if a.klass is ActionClass.CARDINAL)
DOUBLE_ACTIONS = tuple(a for a in ACTIONS.values() if a.klass is ActionClass.DOUBLE)
ORDINAL_ACTIONS = tuple(a for a in ACTIONS.values() if a.klass is ActionClass.ORDINAL)
WIDEN_ACTIONS = tuple(a for a in ACTIONS.values() if a.klass is ActionClass.WIDEN)
HEIGHTEN_ACTIONS = tuple(a for a in ACTIONS.values() if a.klass is ActionClass.HEIGHTEN)
ALL_ACTIONS = tuple(ACTIONS.values())


def apply_action(delta: Rect, action: Action) -> Rect:
    """The droplet pattern after *successful* execution of ``action``.

    For probabilistic outcomes (partial success of double/ordinal moves) see
    :mod:`repro.core.transitions`.
    """
    if action.klass is ActionClass.CARDINAL:
        dx, dy = DIRECTION_STEPS[action.vertical or action.horizontal]  # type: ignore[index]
        return delta.translated(dx, dy)
    if action.klass is ActionClass.DOUBLE:
        dx, dy = DIRECTION_STEPS[action.vertical or action.horizontal]  # type: ignore[index]
        return delta.translated(2 * dx, 2 * dy)
    if action.klass is ActionClass.ORDINAL:
        dxv, dyv = DIRECTION_STEPS[action.vertical]  # type: ignore[index]
        dxh, dyh = DIRECTION_STEPS[action.horizontal]  # type: ignore[index]
        return delta.translated(dxv + dxh, dyv + dyh)
    if action.klass is ActionClass.WIDEN:
        if delta.height < 2:
            raise ValueError(f"cannot widen single-row droplet {delta}")
        # Height shrinks by one (the row opposite the growth corner is
        # released), width grows by one toward the horizontal component.
        xa, ya, xb, yb = delta.as_tuple()
        if action.horizontal == "E":
            xb += 1
        else:
            xa -= 1
        if action.vertical == "N":
            ya += 1  # growing toward N releases the bottom row
        else:
            yb -= 1
        return Rect(xa, ya, xb, yb)
    # HEIGHTEN: width shrinks by one, height grows toward the vertical
    # component.
    if delta.width < 2:
        raise ValueError(f"cannot heighten single-column droplet {delta}")
    xa, ya, xb, yb = delta.as_tuple()
    if action.vertical == "N":
        yb += 1
    else:
        ya -= 1
    if action.horizontal == "E":
        xa += 1  # growing toward E releases the west column
    else:
        xb -= 1
    return Rect(xa, ya, xb, yb)


def frontier(delta: Rect, action: Action, direction: str) -> Rect | None:
    """The frontier set ``Fr(delta; a, d)`` of Table II, as a rectangle.

    Returns ``None`` when the frontier in ``direction`` is empty (the table's
    empty-set entries).  ``direction`` must be one of N/S/E/W; frontiers are
    not defined for ordinal directions.
    """
    if direction not in DIRECTION_STEPS:
        raise ValueError(f"unknown direction {direction!r}")
    xa, ya, xb, yb = delta.as_tuple()
    klass = action.klass

    if klass in (ActionClass.CARDINAL, ActionClass.DOUBLE):
        axis_dir = action.vertical or action.horizontal
        if direction != axis_dir:
            return None
        return _cardinal_frontier(delta, direction)

    if klass is ActionClass.ORDINAL:
        # The frontier rows/columns are shifted by the orthogonal component
        # because the successful move lands the droplet one step over in both
        # axes (Table II, Example 2).
        if direction == action.vertical:
            shift = 1 if action.horizontal == "E" else -1
            row = yb + 1 if direction == "N" else ya - 1
            return Rect(xa + shift, row, xb + shift, row)
        if direction == action.horizontal:
            shift = 1 if action.vertical == "N" else -1
            col = xb + 1 if direction == "E" else xa - 1
            return Rect(col, ya + shift, col, yb + shift)
        return None

    if klass is ActionClass.WIDEN:
        if direction != action.horizontal:
            return None
        if delta.height < 2:
            return None  # no remaining rows to pull into the new column
        col = xb + 1 if direction == "E" else xa - 1
        if action.vertical == "N":
            return Rect(col, ya + 1, col, yb)
        return Rect(col, ya, col, yb - 1)

    # HEIGHTEN
    if direction != action.vertical:
        return None
    if delta.width < 2:
        return None
    row = yb + 1 if direction == "N" else ya - 1
    if action.horizontal == "E":
        return Rect(xa + 1, row, xb, row)
    return Rect(xa, row, xb - 1, row)


def _cardinal_frontier(delta: Rect, direction: str) -> Rect:
    xa, ya, xb, yb = delta.as_tuple()
    if direction == "N":
        return Rect(xa, yb + 1, xb, yb + 1)
    if direction == "S":
        return Rect(xa, ya - 1, xb, ya - 1)
    if direction == "E":
        return Rect(xb + 1, ya, xb + 1, yb)
    return Rect(xa - 1, ya, xa - 1, yb)


def frontier_directions(action: Action) -> tuple[str, ...]:
    """The directions in which ``action`` has a non-empty frontier."""
    if action.klass in (ActionClass.CARDINAL, ActionClass.DOUBLE):
        return (action.vertical or action.horizontal,)  # type: ignore[return-value]
    if action.klass is ActionClass.ORDINAL:
        return (action.vertical, action.horizontal)  # type: ignore[return-value]
    if action.klass is ActionClass.WIDEN:
        return (action.horizontal,)  # type: ignore[return-value]
    return (action.vertical,)  # type: ignore[return-value]


def guard(delta: Rect, action: Action, max_aspect: float = DEFAULT_MAX_ASPECT) -> bool:
    """Whether ``action`` is enabled on ``delta`` (Sec. V-B guards).

    * morphs must keep the aspect ratio within ``[1/r, r]``:
      ``g_↑: (yb - ya + 2) / (xb - xa) <= r`` and
      ``g_↓: (xb - xa + 2) / (yb - ya) <= r``;
    * double steps need length >= 4 along the travel axis:
      ``g_NN, g_SS: h >= 4`` and ``g_EE, g_WW: w >= 4``.

    Chip-boundary feasibility is not a guard: an action whose frontier falls
    off the chip simply has zero success probability (no MCs to pull), which
    the transition kernel handles uniformly.
    """
    if max_aspect < 1.0:
        raise ValueError(f"aspect bound must be >= 1, got {max_aspect}")
    if action.klass is ActionClass.DOUBLE:
        if action.vertical is not None:
            return delta.height >= DOUBLE_STEP_MIN_LENGTH
        return delta.width >= DOUBLE_STEP_MIN_LENGTH
    if action.klass is ActionClass.WIDEN:
        if delta.height < 2:
            return False  # cannot shrink a single-row droplet further
        return (delta.width + 1) / (delta.height - 1) <= max_aspect
    if action.klass is ActionClass.HEIGHTEN:
        if delta.width < 2:
            return False
        return (delta.height + 1) / (delta.width - 1) <= max_aspect
    return True


def enabled_actions(
    delta: Rect, max_aspect: float = DEFAULT_MAX_ASPECT
) -> list[Action]:
    """All actions whose guards hold on ``delta``."""
    return [a for a in ALL_ACTIONS if guard(delta, a, max_aspect=max_aspect)]
