"""Routing jobs and the MO-to-RJ helper (Sec. VI-B, Algorithm 1).

A bioassay's microfluidic operations (MOs) are decomposed into single-droplet
*routing jobs*.  An RJ is a tuple ``(delta_s, delta_g, delta_h)``: the start
location, the goal location and the *hazard bounds* — the rectangle the
droplet must never leave while routing.

The hazard bounds are computed by the paper's ``ZONE`` function: the bounding
box of start and goal grown by a 3-MC safety margin (to prevent accidental
merging with concurrent droplets), clipped to the chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bioassay.ops import MO, MOType
from repro.core.droplet import (
    OFF_CHIP,
    fit_droplet_shape,
    is_off_chip,
    size_error,
)
from repro.geometry.rect import Rect, rect_from_center

#: The paper's safety margin around the start-goal bounding box.
ZONE_MARGIN = 3


@dataclass(frozen=True)
class RoutingJob:
    """A single-droplet routing problem ``RJ = (delta_s, delta_g, delta_h)``.

    ``obstacles`` are keep-out rectangles for *other* droplets parked inside
    the hazard zone: any pattern that comes within one MC of an obstacle
    would merge with it, so such patterns are treated as hazard states by
    the induced MDP.  (The paper's ZONE margin fences concurrently *moving*
    droplets; obstacles handle stationary ones sharing the zone.)
    """

    start: Rect
    goal: Rect
    hazard: Rect
    obstacles: tuple[Rect, ...] = ()

    def __post_init__(self) -> None:
        if not self.hazard.contains(self.goal):
            raise ValueError(
                f"goal {self.goal} not inside hazard bounds {self.hazard}"
            )
        if not is_off_chip(self.start) and not self.hazard.contains(self.start):
            raise ValueError(
                f"start {self.start} not inside hazard bounds {self.hazard}"
            )

    @property
    def is_dispense(self) -> bool:
        """Whether the droplet enters from off-chip (Algorithm 1, dis case)."""
        return is_off_chip(self.start)

    def blocked(self, delta: Rect) -> bool:
        """Whether ``delta`` would touch (and merge with) an obstacle."""
        return any(delta.adjacent_or_overlapping(o) for o in self.obstacles)

    def with_obstacles(self, obstacles: tuple[Rect, ...]) -> "RoutingJob":
        """This job with a (possibly different) obstacle set."""
        return RoutingJob(self.start, self.goal, self.hazard, obstacles)

    def key(self) -> tuple[int, ...]:
        """A hashable identity used by the offline strategy library."""
        flat = self.start.as_tuple() + self.goal.as_tuple() + self.hazard.as_tuple()
        for obstacle in sorted(self.obstacles):
            flat += obstacle.as_tuple()
        return flat


def zone(start: Rect, goal: Rect, width: int, height: int,
         margin: int = ZONE_MARGIN) -> Rect:
    """The paper's ``ZONE`` hazard bounds, clipped to a ``W x H`` chip.

    The bounding box of ``start`` and ``goal`` (goal alone for off-chip
    starts) is grown by ``margin`` MCs on each side and clamped to the chip
    rectangle ``[1, W] x [1, H]`` — reproducing the Table IV values.
    """
    if is_off_chip(start):
        bbox = goal
    else:
        bbox = start.union_bbox(goal)
    grown = bbox.expanded(margin)
    return Rect(
        max(grown.xa, 1),
        max(grown.ya, 1),
        min(grown.xb, width),
        min(grown.yb, height),
    )


@dataclass(frozen=True)
class DecomposedMO:
    """The RJs of one MO plus bookkeeping for the scheduler.

    ``output_patterns`` are the droplet rectangles the MO leaves behind when
    it completes (used as the start locations of successor MOs and reported
    in Table IV's "Size" column).  For mix/dilute MOs, ``merged_pattern`` is
    the normalized pattern the two input droplets form once they coalesce
    (the mix product, or the dilute intermediate before splitting).
    """

    mo: MO
    jobs: tuple[RoutingJob, ...]
    output_patterns: tuple[Rect, ...]
    size_errors: tuple[float, ...]
    merged_pattern: Rect | None = None


class RJHelper:
    """The MO-to-RJ helper of Algorithm 1.

    Stateful across an MO list: it tracks each MO's output droplet patterns
    so successor MOs can use them as start locations (the algorithm's
    ``delta_g_pre[i]`` references).
    """

    def __init__(self, width: int, height: int, margin: int = ZONE_MARGIN) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("chip dimensions must be positive")
        self.width = width
        self.height = height
        self.margin = margin
        self._outputs: dict[str, tuple[Rect, ...]] = {}

    def _zone(self, start: Rect, goal: Rect) -> Rect:
        return zone(start, goal, self.width, self.height, margin=self.margin)

    def _placed(self, loc: tuple[float, float], shape: tuple[int, int]) -> Rect:
        """Place a ``w x h`` pattern centered at ``loc``, nudged onto the chip."""
        w, h = shape
        if w > self.width or h > self.height:
            raise ValueError(f"droplet {shape} does not fit a "
                             f"{self.width}x{self.height} chip")
        rect = rect_from_center(loc[0], loc[1], w, h)
        dx = max(0, 1 - rect.xa) - max(0, rect.xb - self.width)
        dy = max(0, 1 - rect.ya) - max(0, rect.yb - self.height)
        return rect.translated(dx, dy)

    def output_of(self, mo_name: str, index: int = 0) -> Rect:
        """The ``index``-th output droplet pattern of a completed MO."""
        return self._outputs[mo_name][index]

    def decompose(self, mo: MO) -> DecomposedMO:
        """Convert one MO into routing jobs (Algorithm 1's switch)."""
        handler = {
            MOType.DIS: self._decompose_dispense,
            MOType.OUT: self._decompose_exit,
            MOType.DSC: self._decompose_exit,
            MOType.MAG: self._decompose_mag,
            MOType.MIX: self._decompose_mix,
            MOType.SPT: self._decompose_split,
            MOType.DLT: self._decompose_dilute,
        }[mo.type]
        decomposed = handler(mo)
        self._outputs[mo.name] = decomposed.output_patterns
        return decomposed

    def decompose_all(self, mos: list[MO]) -> list[DecomposedMO]:
        """Decompose a dependency-ordered MO list."""
        return [self.decompose(mo) for mo in mos]

    def redecompose(self, mo: MO, commit: bool = True) -> DecomposedMO | None:
        """Re-decompose an already-decomposed MO at a new placement.

        Used by the reconfiguration layer to trial-relocate a module slot.
        Returns ``None`` when the relocated placement cannot be decomposed
        (e.g. split halves collide at a chip edge).  With ``commit=False``
        — or on failure — the MO's previously recorded output patterns are
        restored, so dependants see no change until a relocation is
        committed.
        """
        saved = self._outputs.get(mo.name)
        try:
            decomposed = self.decompose(mo)
        except ValueError:
            decomposed = None
        if decomposed is None or not commit:
            if saved is not None:
                self._outputs[mo.name] = saved
            else:
                self._outputs.pop(mo.name, None)
        return decomposed

    # -- per-type cases ------------------------------------------------------

    def _decompose_dispense(self, mo: MO) -> DecomposedMO:
        if mo.size is None:
            raise ValueError(f"dispense MO {mo.name} needs a droplet size")
        goal = self._placed(mo.locs[0], mo.size)
        rj = RoutingJob(OFF_CHIP, goal, self._zone(OFF_CHIP, goal))
        return DecomposedMO(mo, (rj,), (goal,), (0.0,))

    def _pred_pattern(self, mo: MO, index: int) -> Rect:
        pred_name = mo.pre[index]
        outputs = self._outputs.get(pred_name)
        if outputs is None:
            raise ValueError(
                f"MO {mo.name} depends on {pred_name}, which was not decomposed"
            )
        slot = mo.pre_output[index] if mo.pre_output else 0
        return outputs[slot]

    def _decompose_exit(self, mo: MO) -> DecomposedMO:
        start = self._pred_pattern(mo, 0)
        goal = self._placed(mo.locs[0], (start.width, start.height))
        rj = RoutingJob(start, goal, self._zone(start, goal))
        return DecomposedMO(mo, (rj,), (), (0.0,))

    def _decompose_mag(self, mo: MO) -> DecomposedMO:
        start = self._pred_pattern(mo, 0)
        area = start.area
        shape = fit_droplet_shape(area)
        goal = self._placed(mo.locs[0], shape)
        rj = RoutingJob(start, goal, self._zone(start, goal))
        return DecomposedMO(mo, (rj,), (goal,), (size_error(shape, area),))

    def _decompose_mix(self, mo: MO) -> DecomposedMO:
        start0 = self._pred_pattern(mo, 0)
        start1 = self._pred_pattern(mo, 1)
        goal0 = self._placed(mo.locs[0], (start0.width, start0.height))
        goal1 = self._placed(mo.locs[0], (start1.width, start1.height))
        jobs = (
            RoutingJob(start0, goal0, self._zone(start0, goal0)),
            RoutingJob(start1, goal1, self._zone(start1, goal1)),
        )
        merged_area = start0.area + start1.area
        merged_shape = fit_droplet_shape(merged_area)
        merged = self._placed(mo.locs[0], merged_shape)
        return DecomposedMO(
            mo,
            jobs,
            (merged,),
            (size_error(merged_shape, merged_area),) * 2,
            merged_pattern=merged,
        )

    def _split_halves(
        self,
        around: Rect,
        shape: tuple[int, int],
        toward: tuple[float, float],
    ) -> tuple[Rect, Rect]:
        """Initial placements of the two halves of a split droplet.

        The halves sit side by side with a 2-MC gap, centered where the
        parent droplet was, aligned with the dominant axis toward ``toward``
        (the second output's destination) so the departing half starts on
        its way.  Both placements are nudged onto the chip.
        """
        cx, cy = around.center
        w, h = shape
        dx, dy = toward[0] - cx, toward[1] - cy
        horizontal = abs(dx) >= abs(dy)
        if horizontal:
            offset = (w + 2) / 2 + 0.5
            sign = 1.0 if dx >= 0 else -1.0
            c0 = (cx - sign * offset, cy)
            c1 = (cx + sign * offset, cy)
        else:
            offset = (h + 2) / 2 + 0.5
            sign = 1.0 if dy >= 0 else -1.0
            c0 = (cx, cy - sign * offset)
            c1 = (cx, cy + sign * offset)
        half0 = self._placed(c0, shape)
        half1 = self._placed(c1, shape)
        if half0.adjacent_or_overlapping(half1):
            # Edge nudging squeezed the halves together; re-place the second
            # half beyond the first with an explicit 2-MC gap.
            if horizontal:
                c1 = (half0.center[0] + w + 2, half0.center[1])
            else:
                c1 = (half0.center[0], half0.center[1] + h + 2)
            half1 = self._placed(c1, shape)
        if half0.adjacent_or_overlapping(half1):
            # Still colliding: try separating along the other axis.
            if horizontal:
                c1 = (half0.center[0], half0.center[1] + h + 2)
            else:
                c1 = (half0.center[0] + w + 2, half0.center[1])
            half1 = self._placed(c1, shape)
        if half0.adjacent_or_overlapping(half1):
            raise ValueError(
                f"split halves {half0} / {half1} collide; chip too small "
                f"around {around}"
            )
        return half0, half1

    def _decompose_split(self, mo: MO) -> DecomposedMO:
        start = self._pred_pattern(mo, 0)
        half_area = start.area / 2
        shape = fit_droplet_shape(half_area)
        goal0 = self._placed(mo.locs[0], shape)
        goal1 = self._placed(mo.locs[1], shape)
        half0, half1 = self._split_halves(start, shape, mo.locs[1])
        jobs = (
            RoutingJob(half0, goal0, self._zone(half0, goal0)),
            RoutingJob(half1, goal1, self._zone(half1, goal1)),
        )
        err = size_error(shape, half_area)
        return DecomposedMO(mo, jobs, (goal0, goal1), (err, err))

    def _decompose_dilute(self, mo: MO) -> DecomposedMO:
        """Dilution = mix at loc[0], then split to loc[0] and loc[1].

        Algorithm 1 emits four RJs: the two inputs route to the mix point
        (jobs 0-1), then the two split halves route to the output locations
        (jobs 2-3; job 2 is usually a near-identity move since the first
        product stays at the dilution site).
        """
        start0 = self._pred_pattern(mo, 0)
        start1 = self._pred_pattern(mo, 1)
        goal_in0 = self._placed(mo.locs[0], (start0.width, start0.height))
        goal_in1 = self._placed(mo.locs[0], (start1.width, start1.height))
        merged_area = start0.area + start1.area
        half_shape = fit_droplet_shape(merged_area / 2)
        merged = self._placed(mo.locs[0], fit_droplet_shape(merged_area))
        out0 = self._placed(mo.locs[0], half_shape)
        out1 = self._placed(mo.locs[1], half_shape)
        half0, half1 = self._split_halves(merged, half_shape, mo.locs[1])
        jobs = (
            RoutingJob(start0, goal_in0, self._zone(start0, goal_in0)),
            RoutingJob(start1, goal_in1, self._zone(start1, goal_in1)),
            RoutingJob(half0, out0, self._zone(half0, out0)),
            RoutingJob(half1, out1, self._zone(half1, out1)),
        )
        err = size_error(half_shape, merged_area / 2)
        return DecomposedMO(
            mo, jobs, (out0, out1), (err, err, err, err), merged_pattern=merged
        )
