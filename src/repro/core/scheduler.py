"""The hybrid scheduler (Sec. VI-D, Algorithm 3).

Drives a placed bioassay through its microfluidic operations:

* MOs whose predecessors are done are *activated* (subject to a spatial
  fencing check so concurrent MOs cannot collide);
* active MOs route their droplets using strategies obtained from the
  router — consulting the strategy library first, resynthesizing when the
  sensed health inside a job's hazard zone changes (the hybrid scheme);
* operate phases (mixing time, split actuation, magnetic holds, dispensing
  latency) hold droplets in place, wearing the MCs beneath them;
* mix/dilute input droplets coalesce when their patterns touch; splits
  replace a droplet with two offset halves.

The scheduler is deliberately ignorant of the *true* degradation state: it
sees only the health matrix ``H`` each cycle and reports, per droplet, the
intended actuation pattern.  The simulator owns the dice
(:mod:`repro.biochip.simulator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro import obs, perf
from repro.bioassay.ops import MOType
from repro.bioassay.seqgraph import SequencingGraph
from repro.core.actions import ACTIONS, apply_action
from repro.core.baseline import Router
from repro.core.droplet import fit_droplet_shape, is_off_chip
from repro.core.routing_job import DecomposedMO, RJHelper, RoutingJob, zone
from repro.core.strategy import (
    RoutingStrategy,
    fingerprint_digest,
    health_fingerprint,
)
from repro.geometry.rect import Rect, rect_from_center


class MOPhase(Enum):
    """Algorithm 3's per-MO state (init / active / done), with the active
    state split into routing and operating sub-phases."""

    INIT = "init"
    ROUTING = "routing"
    OPERATING = "operating"
    DONE = "done"


@dataclass
class RoutingTask:
    """One droplet being routed for an MO.

    ``stalled_until`` implements a retry backoff when the job is temporarily
    unroutable because parked droplets block every path: the droplet holds
    in place and synthesis is retried a few cycles later.
    """

    droplet_id: int
    job: RoutingJob
    strategy: RoutingStrategy | None = None
    fingerprint: bytes | None = None
    arrived: bool = False
    stalled_until: int = 0
    replan_at: int | None = None
    last_rect: Rect | None = None
    stagnant: int = 0
    created_cycle: int = 0
    span: "obs.Span | None" = None


@dataclass(frozen=True)
class MOEvent:
    """A scheduler lifecycle event (for traces and debugging)."""

    cycle: int
    mo: str
    kind: str  # "activated" | "done" | "merged" | "split" | "stalled" | "remapped"


@dataclass(frozen=True)
class CyclePlan:
    """The scheduler's output for one operational cycle.

    ``targets`` maps droplet ids to the actuation pattern asserted for them
    this cycle (the moving droplets' intended next pattern, everyone else's
    current pattern — Algorithm 3's ``U(a(delta)) <- 1``).  ``moves`` maps
    the moving droplets to the chosen action name so the simulator can
    sample the probabilistic outcome.
    """

    targets: dict[int, Rect]
    moves: dict[int, str]
    failure: str | None = None
    complete: bool = False


@dataclass
class _MOState:
    decomposed: DecomposedMO
    phase: MOPhase = MOPhase.INIT
    stage: str = ""
    tasks: list[RoutingTask] = field(default_factory=list)
    hold_remaining: int = 0
    dispense_remaining: int = 0
    activated_cycle: int = -1
    done_cycle: int = -1
    span: "obs.Span | None" = None
    #: Quarantine-map version this MO's placement was last checked against.
    remap_version: int = 0


class HybridScheduler:
    """Algorithm 3 over a placed sequencing graph.

    ``router`` supplies strategies (adaptive synthesis or the baseline);
    the scheduler owns droplet lifecycles and MO phase transitions.
    """

    def __init__(
        self,
        graph: SequencingGraph,
        router: Router,
        width: int,
        height: int,
        resynthesis_latency: int = 4,
        activation_order: str = "program",
        stall_recovery_threshold: int = 12,
        engine: "object | None" = None,
        prefetch_horizon: int = 8,
        reconfig: "object | None" = None,
    ) -> None:
        """``resynthesis_latency`` models the hybrid scheme's *asynchronous*
        resynthesis (Sec. VI-D): when zone health changes, the old strategy
        keeps driving the droplet while the new one is computed, and further
        health changes within the window fold into the same resynthesis.

        ``activation_order`` explores the paper's stated future work (a
        scheduler that optimizes the runtime order of MOs).  Among the MOs
        that are dependency-ready in a cycle:

        * ``"program"`` — list order (the paper's Algorithm 3);
        * ``"healthiest-first"`` — prefer MOs whose routing zones currently
          have the highest mean sensed health (route through good regions
          while they last);
        * ``"shortest-first"`` — prefer MOs with the smallest zone area
          (a shortest-job-first heuristic that frees fenced zones sooner).

        ``stall_recovery_threshold``: when the router exposes a ``recover``
        method (reactive error recovery, Sec. II-C) and a droplet makes no
        progress for this many planning cycles, the scheduler invokes it —
        a reroute-style retrial corrective action.

        ``engine`` is an optional :class:`repro.engine.SynthesisEngine`
        shared with the router.  With a pooled engine the scheduler
        *speculatively prefetches*: each cycle it predicts the routing jobs
        of MOs whose predecessors are within ``prefetch_horizon`` cycles of
        completion and submits them to the worker pool, so the strategies
        are (often) already solved when the MO activates.  Mispredictions
        are harmless — the activation-time job key simply misses and the
        router synthesizes synchronously.  With ``engine=None`` (or when
        ``router`` has no ``prefetch``) the scheduler behaves exactly as
        before.

        ``reconfig`` is an optional
        :class:`repro.reconfig.ReconfigPolicy`.  When set, the scheduler
        maintains a quarantine map of non-viable silicon each cycle,
        relocates a ready MO's module slots *before* activation (and hence
        before any synthesis) when its placement is quarantined, and
        injects quarantined regions as routing obstacles.  On a chip where
        nothing is ever quarantined the policy never fires and execution
        traces are bit-identical to ``reconfig=None``.
        """
        if not graph.is_placed():
            raise ValueError("scheduler needs a placed sequencing graph")
        if resynthesis_latency < 0:
            raise ValueError("resynthesis latency cannot be negative")
        if activation_order not in ("program", "healthiest-first",
                                    "shortest-first"):
            raise ValueError(f"unknown activation order {activation_order!r}")
        self.graph = graph
        self.router = router
        self.width = width
        self.height = height
        self.resynthesis_latency = resynthesis_latency
        # Retained: the reconfiguration layer re-decomposes remapped MOs
        # through the same helper so successor MOs see updated outputs.
        self._helper = RJHelper(width, height)
        self._order = [mo.name for mo in graph.topological()]
        self._states: dict[str, _MOState] = {}
        for mo in graph.topological():
            self._states[mo.name] = _MOState(decomposed=self._helper.decompose(mo))
        self.droplets: dict[int, Rect] = {}
        self._owner: dict[int, str] = {}
        self._parked: dict[tuple[str, int], int] = {}
        self._next_droplet = 0
        self.activation_order = activation_order
        self.stall_recovery_threshold = stall_recovery_threshold
        self.engine = engine if engine is not None else getattr(
            router, "engine", None
        )
        if prefetch_horizon < 0:
            raise ValueError("prefetch horizon cannot be negative")
        self.prefetch_horizon = prefetch_horizon
        self.prefetches = 0
        #: Set once the engine reports permanent degradation (pool gone):
        #: the scheduler keeps planning on the synchronous path unchanged.
        self.engine_degraded_observed = False
        self._reconfig = reconfig
        self._qmap = None
        self.remaps = 0
        if reconfig is not None:
            seed = getattr(reconfig, "seed_placement", None)
            if seed is not None:
                seed(graph.mos)
        self.failure: str | None = None
        self.cycle = 0
        self.resyntheses = 0
        self.recoveries = 0
        self.events: list[MOEvent] = []
        #: droplet id -> (volume in MC-units, analyte concentration)
        self._chemistry: dict[int, tuple[float, float]] = {}
        #: (mo name, volume, concentration) of every droplet that exited
        #: through an out/dsc operation, in exit order
        self.collected: list[tuple[str, float, float]] = []

    # -- public API ----------------------------------------------------------

    @property
    def complete(self) -> bool:
        return all(s.phase is MOPhase.DONE for s in self._states.values())

    def plan_cycle(self, health: np.ndarray) -> CyclePlan:
        """Plan one operational cycle against the sensed health matrix."""
        self.cycle += 1
        perf.incr("scheduler.cycles")
        with obs.span("scheduler.cycle", cycle=self.cycle):
            return self._plan_cycle(health)

    def _plan_cycle(self, health: np.ndarray) -> CyclePlan:
        if self.failure or self.complete:
            return CyclePlan({}, {}, failure=self.failure, complete=self.complete)
        if self._reconfig is not None:
            self._qmap = self._reconfig.update(health, cycle=self.cycle)
        self._activate_ready(health)
        if not self.failure:
            self._prefetch(health)
        targets: dict[int, Rect] = {}
        moves: dict[int, str] = {}
        for name in self._order:
            if self.failure:
                break
            state = self._states[name]
            if state.phase is MOPhase.ROUTING:
                self._plan_routing(name, state, health, targets, moves)
            elif state.phase is MOPhase.OPERATING:
                self._plan_operating(name, state, targets)
        # Parked droplets (outputs awaiting their consumer) are held in place.
        for did in self._parked.values():
            if did in self.droplets and did not in targets:
                targets[did] = self.droplets[did]
        return CyclePlan(
            targets=targets,
            moves=moves,
            failure=self.failure,
            complete=self.complete,
        )

    # -- speculative prefetch ------------------------------------------------

    def presynthesize(self, health: np.ndarray) -> int:
        """Submit every statically decomposed routing job to the engine pool.

        The speculative counterpart of the paper's offline pre-synthesis
        pass: before the first cycle, all the jobs the decomposition already
        knows about are solved — as one batched engine task when the router
        supports ``prefetch_batch`` (one pool task for the wave; without a
        pool the engine runs the batched kernel in-process), per job
        otherwise — concurrently with the assay starting to execute.  Jobs
        whose activation-time form differs (rebased starts, routing
        obstacles) simply miss and fall back to synchronous synthesis.
        Returns the number of jobs submitted.
        """
        prefetch_batch = getattr(self.router, "prefetch_batch", None)
        prefetch = getattr(self.router, "prefetch", None)
        if self.engine is None or (prefetch_batch is None and (
            not self.engine.pooled or prefetch is None
        )):
            return 0
        jobs = [
            job
            for name in self._order
            for job in self._states[name].decomposed.jobs
            if not job.is_dispense
        ]
        with obs.span("scheduler.presynthesize"):
            if prefetch_batch is not None:
                # One batched engine task for the whole wave — and, unlike
                # the per-job path, this also works without a pool (the
                # engine solves the batch in-process).
                submitted = prefetch_batch(jobs, health)
            else:
                submitted = sum(
                    1 for job in jobs if prefetch(job, health)
                )
        self.prefetches += submitted
        return submitted

    def _note_engine_degrade(self) -> None:
        """Record (once) that the engine fell back to the synchronous path.

        Purely observational: routing already degrades transparently (a
        dead pool means every plan misses and synthesizes synchronously),
        and the note stays out of :attr:`events` so execution traces remain
        bit-identical to a no-pool run.
        """
        if self.engine_degraded_observed or not getattr(
            self.engine, "degraded", False
        ):
            return
        self.engine_degraded_observed = True
        perf.incr("scheduler.engine_degraded")
        obs.journal_event(
            "engine.degraded.observed",
            cycle=self.cycle,
            rebuilds=getattr(self.engine, "rebuilds", 0),
        )

    def _prefetch(self, health: np.ndarray) -> None:
        """Prefetch strategies for MOs that are about to activate."""
        prefetch = getattr(self.router, "prefetch", None)
        if self.engine is not None:
            self._note_engine_degrade()
        if (
            self.engine is None
            or not self.engine.pooled
            or not self.engine.prefetch_enabled
            or prefetch is None
        ):
            return
        for name in self._order:
            state = self._states[name]
            if state.phase is MOPhase.INIT:
                if not all(
                    self._near_done(p.name)
                    for p in self.graph.predecessors(name)
                ):
                    continue
                jobs = self._predict_activation_jobs(name)
            elif (
                state.phase is MOPhase.OPERATING
                and state.stage == "splitting"
                and state.hold_remaining <= self.prefetch_horizon
            ):
                # A split's route-out jobs start exactly at the decomposed
                # patterns, so this prediction is usually exact.
                mo = self.graph.mo(name)
                indices = (0, 1) if mo.type is MOType.SPT else (2, 3)
                jobs = [
                    self._with_obstacles(state.decomposed.jobs[i], name)
                    for i in indices
                ]
            else:
                continue
            for job in jobs:
                if prefetch(job, health):
                    self.prefetches += 1

    def _near_done(self, name: str) -> bool:
        """Whether an MO should finish within the prefetch horizon."""
        state = self._states[name]
        if state.phase is MOPhase.DONE:
            return True
        horizon = self.prefetch_horizon
        mo = self.graph.mo(name)
        if state.phase is MOPhase.OPERATING:
            if mo.type is MOType.DIS:
                return state.dispense_remaining <= horizon
            if mo.type in (MOType.SPT, MOType.DLT):
                return False  # the split's route-out phase still follows
            return state.hold_remaining <= horizon
        if state.phase is MOPhase.ROUTING and state.stage == "route_out":
            return all(
                task.droplet_id in self.droplets
                and self._goal_gap(
                    self.droplets[task.droplet_id], task.job.goal
                ) <= horizon
                for task in state.tasks
            )
        return False

    @staticmethod
    def _goal_gap(rect: Rect, goal: Rect) -> int:
        """Chebyshev gap between a droplet pattern and its goal region."""
        dx = max(0, goal.xa - rect.xb, rect.xa - goal.xb)
        dy = max(0, goal.ya - rect.yb, rect.ya - goal.yb)
        return max(dx, dy)

    def _predict_activation_jobs(self, name: str) -> list[RoutingJob]:
        """The routing jobs :meth:`_activate` would build for ``name`` now.

        Mirrors the activation paths without consuming parked droplets:
        inputs already parked are rebased exactly as activation will; inputs
        still in flight fall back to the decomposed pattern (a best-effort
        guess — a mismatch is just a wasted speculation).
        """
        mo = self.graph.mo(name)
        dec = self._states[name].decomposed
        if mo.type is MOType.DIS or mo.type is MOType.SPT:
            return []  # no routing on activation (dispense / hold-then-split)
        if mo.type in (MOType.MIX, MOType.DLT):
            indices = (0, 1)
        else:  # OUT, DSC, MAG
            indices = (0,)
        jobs: list[RoutingJob] = []
        for idx in indices:
            pred = mo.pre[idx]
            slot = mo.pre_output[idx] if mo.pre_output else 0
            did = self._parked.get((pred, slot))
            job = dec.jobs[idx]
            if did is not None and did in self.droplets:
                job = self._fit_job(job, self.droplets[did])
            jobs.append(self._with_obstacles(job, name))
        return jobs

    def sensing_mask(self) -> np.ndarray:
        """The MCs a *selective* scan must cover this cycle.

        Selective sensing (the paper's ref. [32]) scans only where the
        controller needs information: the hazard zones of active routing
        tasks (health adaptation + droplet tracking) and the cells around
        every droplet (position verification).  Everything else is skipped,
        sparing those MCs the per-cycle sensing stress.
        """
        mask = np.zeros((self.width, self.height), dtype=bool)
        for state in self._states.values():
            if state.phase in (MOPhase.ROUTING, MOPhase.OPERATING):
                for task in state.tasks:
                    hz = task.job.hazard
                    mask[hz.xa - 1 : hz.xb, hz.ya - 1 : hz.yb] = True
        for rect in self.droplets.values():
            xa, ya = max(rect.xa - 1, 1), max(rect.ya - 1, 1)
            xb = min(rect.xb + 1, self.width)
            yb = min(rect.yb + 1, self.height)
            mask[xa - 1 : xb, ya - 1 : yb] = True
        return mask

    def apply_outcomes(self, moved: dict[int, Rect]) -> None:
        """Commit the sampled droplet movements and resolve merges."""
        for did, rect in moved.items():
            if did not in self.droplets:
                raise KeyError(f"unknown droplet {did}")
            self.droplets[did] = rect
        self._resolve_intended_merges()
        self._check_unintended_merges()

    # -- telemetry -----------------------------------------------------------

    def _event(self, kind: str, mo: str, **fields) -> None:
        """Record an MO lifecycle event (trace list + run journal)."""
        self.events.append(MOEvent(self.cycle, mo, kind))
        obs.journal_event(f"mo.{kind}", cycle=self.cycle, mo=mo, **fields)

    def _new_task(
        self, did: int, job: RoutingJob, state: _MOState
    ) -> RoutingTask:
        """Create a routing task, opening its RJ span under the MO span."""
        task = RoutingTask(did, job, created_cycle=self.cycle)
        task.span = obs.begin_span(
            "rj", parent=state.span, droplet=did, job=job.key(),
            start_cycle=self.cycle,
        )
        return task

    def _task_arrived(self, task: RoutingTask) -> None:
        """First arrival at the goal: close the RJ span, record the length."""
        task.arrived = True
        perf.observe("scheduler.route_cycles",
                     self.cycle - task.created_cycle,
                     bounds=perf.DEFAULT_COUNT_BUCKETS)
        if task.span is not None:
            obs.end_span(task.span, end_cycle=self.cycle)
            task.span = None

    # -- droplet bookkeeping ---------------------------------------------------

    def _new_droplet(
        self,
        rect: Rect,
        owner: str,
        volume: float | None = None,
        concentration: float = 0.0,
    ) -> int:
        did = self._next_droplet
        self._next_droplet += 1
        self.droplets[did] = rect
        self._owner[did] = owner
        self._chemistry[did] = (
            float(rect.area) if volume is None else volume,
            concentration,
        )
        return did

    def droplet_chemistry(self, did: int) -> tuple[float, float]:
        """The (volume, analyte concentration) of a live droplet."""
        return self._chemistry[did]

    def _remove_droplet(self, did: int) -> None:
        self.droplets.pop(did, None)
        self._owner.pop(did, None)
        self._chemistry.pop(did, None)

    def _park(self, name: str, slot: int, did: int) -> None:
        self._parked[(name, slot)] = did

    def _consume(self, name: str, mo_name: str, index: int) -> int:
        """Claim input ``index`` of MO ``mo_name`` from its producer."""
        mo = self.graph.mo(mo_name)
        pred = mo.pre[index]
        slot = mo.pre_output[index] if mo.pre_output else 0
        did = self._parked.pop((pred, slot), None)
        if did is None:
            raise RuntimeError(
                f"MO {mo_name} activated but input {index} (output {slot} of "
                f"{pred}) is not parked"
            )
        self._owner[did] = name
        return did

    # -- activation --------------------------------------------------------------

    def _preds_done(self, name: str) -> bool:
        return all(
            self._states[p.name].phase is MOPhase.DONE
            for p in self.graph.predecessors(name)
        )

    def _active_zones(self) -> list[Rect]:
        zones: list[Rect] = []
        for state in self._states.values():
            if state.phase in (MOPhase.ROUTING, MOPhase.OPERATING):
                zones.extend(t.job.hazard for t in state.tasks)
                if not state.tasks:
                    # Operating without routing tasks (e.g. dispensing):
                    # fence the decomposed jobs' zones.
                    zones.extend(j.hazard for j in state.decomposed.jobs)
        return zones

    def _conflicts(self, name: str) -> bool:
        """Whether activating ``name`` would violate spatial safety.

        Two rules:

        * concurrently *active* MOs must keep a gap of at least 2 MCs
          between their hazard zones so droplets confined to their own
          zones can never touch;
        * the MO's goal sites must not be occupied by foreign *parked*
          droplets — activating anyway would stall the MO until the
          blocker's consumer runs, which rule one may forbid (a scheduling
          deadlock).  Parked droplets merely *near* the zone are fine; they
          become routing obstacles.
        """
        state = self._states[name]
        zones = [j.hazard for j in state.decomposed.jobs]
        for az in self._active_zones():
            if any(z.expanded(1).overlaps(az) for z in zones):
                return True
        own_inputs = self._input_droplets(name)
        targets = [j.goal for j in state.decomposed.jobs]
        if state.decomposed.merged_pattern is not None:
            targets.append(state.decomposed.merged_pattern)
        for did in self._parked.values():
            if did in own_inputs or did not in self.droplets:
                continue
            rect = self.droplets[did]
            if any(rect.adjacent_or_overlapping(goal) for goal in targets):
                return True
        return False

    def _input_droplets(self, name: str) -> set[int]:
        """Parked droplet ids this MO will consume when it activates."""
        mo = self.graph.mo(name)
        inputs = set()
        for idx, pred in enumerate(mo.pre):
            slot = mo.pre_output[idx] if mo.pre_output else 0
            did = self._parked.get((pred, slot))
            if did is not None:
                inputs.add(did)
        return inputs

    def _dispense_ready(self, name: str) -> bool:
        """Just-in-time dispensing: hold a reagent in its reservoir until its
        consumer's non-dispense inputs are done.

        Dispensing reagents eagerly parks droplets on the array for long
        stretches — wearing the MCs beneath them and, worse, blocking other
        MOs' goal regions (a parked droplet adjacent to a goal makes the
        goal unreachable, deadlocking the bioassay).  A dispense therefore
        waits until every other, non-dispense predecessor of its consumer is
        complete.
        """
        consumers = self.graph.successors(name)
        for consumer in consumers:
            for pred_name in consumer.pre:
                if pred_name == name:
                    continue
                pred = self.graph.mo(pred_name)
                if pred.type is MOType.DIS:
                    continue
                if self._states[pred_name].phase is not MOPhase.DONE:
                    return False
        return True

    def _ready_mos(self) -> list[str]:
        ready = []
        for name in self._order:
            state = self._states[name]
            if state.phase is not MOPhase.INIT or not self._preds_done(name):
                continue
            mo = self.graph.mo(name)
            if mo.type is MOType.DIS and not self._dispense_ready(name):
                continue
            ready.append(name)
        return ready

    def _activation_key(self, name: str, health: np.ndarray):
        zones = [j.hazard for j in self._states[name].decomposed.jobs]
        if self.activation_order == "shortest-first":
            return min(z.area for z in zones)
        # healthiest-first: negate so higher mean health sorts first
        means = []
        for z in zones:
            sub = health[z.xa - 1 : z.xb, z.ya - 1 : z.yb]
            means.append(float(sub.mean()))
        return -min(means)

    def _activate_ready(self, health: np.ndarray) -> None:
        ready = self._ready_mos()
        if self.activation_order != "program":
            ready.sort(key=lambda name: self._activation_key(name, health))
        for name in ready:
            if self._reconfig is not None:
                # Remap fires before the fencing check and before any
                # synthesis, so conflicts and routing jobs are evaluated
                # against the relocated placement.
                self._maybe_remap(name, self._states[name], health)
            if self._conflicts(name):
                continue
            self._activate(name, self._states[name], health)
            if self.failure:
                return

    #: MO types occupying interior module slots (remappable placements).
    _SLOT_TYPES = (MOType.MIX, MOType.DLT, MOType.SPT, MOType.MAG)

    def _maybe_remap(self, name: str, state: _MOState, health: np.ndarray) -> None:
        """Relocate a ready MO's module slots if its zone is quarantined.

        Runs at most once per quarantine-map version per MO.  A successful
        remap swaps in the re-decomposed MO (successors rebase onto the new
        outputs automatically via ``_fit_job``) and invalidates any
        in-flight engine speculations for the retired jobs — their keys can
        never be requested again.  Strategy-store entries need no action:
        they are keyed by job geometry, so retired keys are simply never
        looked up.
        """
        qmap = self._qmap
        if qmap is None or not qmap.cells or state.remap_version == qmap.version:
            return
        state.remap_version = qmap.version
        mo = state.decomposed.mo
        if mo.type not in self._SLOT_TYPES:
            return
        if not self._reconfig.placement_tainted(state.decomposed):
            return
        old = state.decomposed
        new = self._reconfig.remap(
            mo, self._remap_centroid(mo), health, self._helper
        )
        if new is None:
            obs.journal_event(
                "reconfig.remap", cycle=self.cycle, mo=name, success=False,
                from_locs=[list(loc) for loc in mo.locs],
                version=qmap.version,
            )
            return
        state.decomposed = new
        self.remaps += 1
        perf.incr("scheduler.remaps")
        self.events.append(MOEvent(self.cycle, name, "remapped"))
        obs.journal_event(
            "reconfig.remap", cycle=self.cycle, mo=name, success=True,
            from_locs=[list(loc) for loc in mo.locs],
            to_locs=[list(loc) for loc in new.mo.locs],
            version=qmap.version,
        )
        invalidate = getattr(self.engine, "invalidate", None)
        if invalidate is not None:
            for job in old.jobs:
                if not job.is_dispense:
                    invalidate(job)

    def _remap_centroid(self, mo) -> tuple[float, float]:
        """Where the MO's inputs actually are (parked droplets when known,
        decomposed predecessor outputs otherwise)."""
        coords = []
        for idx, pred in enumerate(mo.pre):
            slot = mo.pre_output[idx] if mo.pre_output else 0
            did = self._parked.get((pred, slot))
            if did is not None and did in self.droplets:
                coords.append(self.droplets[did].center)
                continue
            outputs = self._states[pred].decomposed.output_patterns
            if slot < len(outputs):
                coords.append(outputs[slot].center)
        if not coords:
            return mo.locs[0]
        return (
            sum(c[0] for c in coords) / len(coords),
            sum(c[1] for c in coords) / len(coords),
        )

    def _activate(self, name: str, state: _MOState, health: np.ndarray) -> None:
        mo = self.graph.mo(name)
        state.activated_cycle = self.cycle
        state.span = obs.begin_span(
            f"mo:{name}", mo=name, type=mo.type.name.lower(),
            start_cycle=self.cycle,
        )
        self._event("activated", name, type=mo.type.name.lower())
        dec = state.decomposed
        if mo.type is MOType.DIS:
            state.phase = MOPhase.OPERATING
            state.stage = "dispensing"
            state.dispense_remaining = self._dispense_latency(dec.jobs[0].goal)
            return
        if mo.type in (MOType.OUT, MOType.DSC, MOType.MAG):
            did = self._consume(name, name, 0)
            job = self._with_obstacles(
                self._fit_job(dec.jobs[0], self.droplets[did]), name
            )
            state.tasks = [self._new_task(did, job, state)]
            state.stage = "route_in"
            state.phase = MOPhase.ROUTING
            return
        if mo.type in (MOType.MIX, MOType.DLT):
            did0 = self._consume(name, name, 0)
            did1 = self._consume(name, name, 1)
            state.tasks = [
                self._new_task(did0, self._with_obstacles(
                    self._fit_job(dec.jobs[0], self.droplets[did0]), name),
                    state),
                self._new_task(did1, self._with_obstacles(
                    self._fit_job(dec.jobs[1], self.droplets[did1]), name),
                    state),
            ]
            state.stage = "route_in"
            state.phase = MOPhase.ROUTING
            return
        if mo.type is MOType.SPT:
            did = self._consume(name, name, 0)
            state.tasks = [RoutingTask(did, self._hold_job(self.droplets[did]),
                                       created_cycle=self.cycle)]
            state.tasks[0].arrived = True
            state.stage = "splitting"
            state.phase = MOPhase.OPERATING
            state.hold_remaining = max(mo.hold_cycles, 1)
            return
        raise AssertionError(f"unhandled MO type {mo.type}")

    def _dispense_latency(self, goal: Rect) -> int:
        """Cycles for a dispensed droplet to travel in from the nearest edge."""
        edge_distance = min(
            goal.xa - 1, goal.ya - 1, self.width - goal.xb, self.height - goal.yb
        )
        return max(2, edge_distance + 2)

    def _fit_job(self, job: RoutingJob, rect: Rect) -> RoutingJob:
        """Rebase a decomposed job onto the droplet's actual pattern."""
        if job.start == rect:
            return job
        if job.hazard.contains(rect):
            return RoutingJob(rect, job.goal, job.hazard, job.obstacles)
        return RoutingJob(
            rect, job.goal, zone(rect, job.goal, self.width, self.height),
            job.obstacles,
        )

    def _with_obstacles(self, job: RoutingJob, owner: str) -> RoutingJob:
        """Attach the keep-out set: foreign droplets near the hazard zone,
        plus (when reconfiguration is active) quarantined silicon.

        A quarantine keep-out can swallow most of a tight hazard zone and
        leave no in-zone corridor around it, so whenever one attaches, the
        zone is widened to clear the keep-out by a full droplet span plus
        clearance on every side (clamped to the chip) — the detour the
        obstacle forces must lie inside the modelled region.
        """
        hazard = job.hazard
        qmap = self._qmap
        extra: list[Rect] = []
        if qmap is not None and qmap.cells:
            # Quarantine rectangles become keep-outs, except ones touching
            # the job's endpoints — those would make the job unroutable,
            # and the endpoints' viability is the remapper's concern.
            extra = [
                qr for qr in qmap.rects()
                if qr.overlaps(hazard)
                and not qr.adjacent_or_overlapping(job.goal)
                and (is_off_chip(job.start)
                     or not qr.adjacent_or_overlapping(job.start))
            ]
            if extra:
                span = max(job.goal.width, job.goal.height) + 2
                for qr in extra:
                    grown = qr.expanded(span)
                    hazard = Rect(
                        max(1, min(hazard.xa, grown.xa)),
                        max(1, min(hazard.ya, grown.ya)),
                        min(self.width, max(hazard.xb, grown.xb)),
                        min(self.height, max(hazard.yb, grown.yb)),
                    )
        obstacles = sorted(
            rect
            for did, rect in self.droplets.items()
            if self._owner.get(did) != owner
            and rect.expanded(2).overlaps(hazard)
        )
        if extra:
            obstacles = sorted(obstacles + extra)
        if hazard == job.hazard:
            return job.with_obstacles(tuple(obstacles))
        return RoutingJob(job.start, job.goal, hazard, tuple(obstacles))

    def _hold_job(self, rect: Rect) -> RoutingJob:
        """A degenerate stay-where-you-are job (used for operate phases)."""
        hz = zone(rect, rect, self.width, self.height)
        return RoutingJob(rect, rect, hz)

    # -- routing phase -------------------------------------------------------------

    #: Cycles to wait before retrying synthesis for an obstacle-stalled task.
    STALL_RETRY_CYCLES = 8

    def _plan_task(
        self, task: RoutingTask, health: np.ndarray, rect: Rect,
        mo: str | None = None,
    ) -> bool:
        """Plan or replan a task's strategy; returns False when stalled.

        A job that is unroutable only because of its obstacles (every path
        is blocked by a parked droplet) stalls with a retry backoff rather
        than failing; a job unroutable even without obstacles means the
        chip has degraded past use — the paper's ``(pi, k) = (0, inf)``
        outcome — and aborts the bioassay.
        """
        strategy = self.router.plan(task.job, health)
        if strategy is not None and strategy.action(rect) is None and not task.job.goal.contains(rect):
            # The cached/synthesized strategy does not cover the droplet's
            # current pattern (it drifted off the modelled region): replan
            # from here.
            retargeted = self._fit_job(task.job, rect)
            strategy = self.router.plan(retargeted, health)
            if strategy is not None:
                task.job = retargeted
        if strategy is None:
            if task.job.obstacles:
                unblocked = self._fit_job(
                    task.job.with_obstacles(()), rect
                )
                if self.router.plan(unblocked, health) is not None:
                    task.strategy = None
                    task.stalled_until = self.cycle + self.STALL_RETRY_CYCLES
                    perf.incr("scheduler.stalls")
                    obs.journal_event(
                        "droplet.stall", cycle=self.cycle, mo=mo,
                        droplet=task.droplet_id,
                        retry_at=task.stalled_until,
                        reason="obstacle-blocked",
                    )
                    return False
            self.failure = "no-route"
            return False
        task.strategy = strategy
        task.fingerprint = health_fingerprint(health, task.job.hazard)
        return True

    def _plan_routing(
        self,
        name: str,
        state: _MOState,
        health: np.ndarray,
        targets: dict[int, Rect],
        moves: dict[int, str],
    ) -> None:
        with obs.under(state.span):
            for task in state.tasks:
                if task.droplet_id not in self.droplets:
                    continue
                rect = self.droplets[task.droplet_id]
                if task.arrived or task.job.goal.contains(rect):
                    if not task.arrived:
                        self._task_arrived(task)
                    targets[task.droplet_id] = rect
                    continue
                if task.strategy is None and self.cycle < task.stalled_until:
                    targets[task.droplet_id] = rect  # hold; retry later
                    continue
                if rect == task.last_rect:
                    task.stagnant += 1
                else:
                    task.last_rect = rect
                    task.stagnant = 0
                recover = getattr(self.router, "recover", None)
                if (
                    recover is not None
                    and task.stagnant >= self.stall_recovery_threshold
                ):
                    task.stagnant = 0
                    retargeted = self._with_obstacles(
                        self._fit_job(task.job, rect), name
                    )
                    recovered = recover(retargeted, health)
                    if recovered is not None and recovered.action(rect) is not None:
                        task.job = recovered.job  # the recovery may widen the zone
                        task.strategy = recovered
                        task.fingerprint = health_fingerprint(
                            health, retargeted.hazard
                        )
                        self.recoveries += 1
                        perf.incr("scheduler.recoveries")
                        self._event("recovered", name,
                                    droplet=task.droplet_id)
                if self.router.adaptive and task.strategy is not None:
                    fp = health_fingerprint(health, task.job.hazard)
                    if fp != task.fingerprint and task.replan_at is None:
                        task.replan_at = self.cycle + self.resynthesis_latency
                    if task.replan_at is not None and self.cycle >= task.replan_at:
                        task.replan_at = None
                        self.resyntheses += 1
                        perf.incr("scheduler.resyntheses")
                        fp_before = task.fingerprint
                        replanned = self._plan_task(task, health, rect, mo=name)
                        obs.journal_event(
                            "resynthesis", cycle=self.cycle, mo=name,
                            droplet=task.droplet_id,
                            fp_before=fingerprint_digest(fp_before),
                            fp_after=fingerprint_digest(task.fingerprint),
                            latency_cycles=self.resynthesis_latency,
                            success=replanned,
                        )
                        if not replanned:
                            targets[task.droplet_id] = rect
                            if self.failure:
                                return
                            continue
                if task.strategy is None:
                    if not self._plan_task(task, health, rect, mo=name):
                        targets[task.droplet_id] = rect
                        if self.failure:
                            return
                        continue
                assert task.strategy is not None
                action_name = task.strategy.action(rect)
                if action_name is None:
                    if not self._plan_task(task, health, rect, mo=name):
                        targets[task.droplet_id] = rect
                        if self.failure:
                            return
                        continue
                    assert task.strategy is not None
                    action_name = task.strategy.action(rect)
                    if action_name is None:
                        self.failure = "no-route"
                        return
                moves[task.droplet_id] = action_name
                targets[task.droplet_id] = apply_action(rect, ACTIONS[action_name])
                if obs.enabled():
                    with obs.span("route.step", parent=task.span,
                                  droplet=task.droplet_id,
                                  action=action_name, cycle=self.cycle):
                        pass
        self._maybe_advance_routing(name, state)

    def _maybe_advance_routing(self, name: str, state: _MOState) -> None:
        alive = [t for t in state.tasks if t.droplet_id in self.droplets]
        if not alive or not all(t.arrived for t in alive):
            return
        mo = self.graph.mo(name)
        if mo.type in (MOType.OUT, MOType.DSC):
            for task in alive:
                volume, conc = self._chemistry.get(task.droplet_id, (0.0, 0.0))
                self.collected.append((name, volume, conc))
                self._remove_droplet(task.droplet_id)
            self._finish(name, state, outputs=())
            return
        if mo.type is MOType.MAG and state.stage == "route_in":
            state.stage = "holding"
            state.phase = MOPhase.OPERATING
            state.hold_remaining = max(mo.hold_cycles, 1)
            return
        if mo.type in (MOType.MIX, MOType.DLT):
            if state.stage == "route_in":
                # Both inputs inside their (overlapping) goals but the merge
                # has not been detected yet — the adjacency check in
                # apply_outcomes will coalesce them next cycle.
                return
            if state.stage == "route_merged":
                state.stage = "holding"
                state.phase = MOPhase.OPERATING
                state.hold_remaining = max(mo.hold_cycles, 1)
                return
            if state.stage == "route_out":
                outputs = tuple(t.droplet_id for t in alive)
                self._finish(name, state, outputs=outputs)
                return
        if mo.type is MOType.SPT and state.stage == "route_out":
            outputs = tuple(t.droplet_id for t in alive)
            self._finish(name, state, outputs=outputs)

    def _finish(self, name: str, state: _MOState, outputs: tuple[int, ...]) -> None:
        for slot, did in enumerate(outputs):
            self._park(name, slot, did)
        for task in state.tasks:
            if task.span is not None:
                obs.end_span(task.span, end_cycle=self.cycle)
                task.span = None
        state.tasks = []
        state.phase = MOPhase.DONE
        state.done_cycle = self.cycle
        self._event("done", name,
                    cycles=self.cycle - state.activated_cycle)
        if state.span is not None:
            obs.end_span(state.span, end_cycle=self.cycle)
            state.span = None

    # -- operate phase ---------------------------------------------------------------

    def _plan_operating(
        self, name: str, state: _MOState, targets: dict[int, Rect]
    ) -> None:
        mo = self.graph.mo(name)
        if mo.type is MOType.DIS:
            state.dispense_remaining -= 1
            if state.dispense_remaining <= 0:
                self._materialize_dispense(name, state)
            return
        for task in state.tasks:
            if task.droplet_id in self.droplets:
                targets[task.droplet_id] = self.droplets[task.droplet_id]
        state.hold_remaining -= 1
        if state.hold_remaining > 0:
            return
        if mo.type is MOType.MAG:
            task = state.tasks[0]
            self._finish(name, state, outputs=(task.droplet_id,))
            return
        if mo.type is MOType.MIX:
            task = state.tasks[0]
            self._finish(name, state, outputs=(task.droplet_id,))
            return
        if mo.type is MOType.SPT:
            self._perform_split(name, state, job_indices=(0, 1))
            return
        if mo.type is MOType.DLT:
            self._perform_split(name, state, job_indices=(2, 3))
            return
        raise AssertionError(f"unhandled operating MO type {mo.type}")

    def _materialize_dispense(self, name: str, state: _MOState) -> None:
        goal = state.decomposed.jobs[0].goal
        fence = goal.expanded(1)
        for did, rect in self.droplets.items():
            if fence.overlaps(rect):
                return  # port blocked; retry next cycle
        did = self._new_droplet(
            goal, name, concentration=self.graph.mo(name).concentration
        )
        self._finish(name, state, outputs=(did,))

    def _perform_split(
        self, name: str, state: _MOState, job_indices: tuple[int, int]
    ) -> None:
        parent = state.tasks[0].droplet_id
        volume, concentration = self._chemistry.get(parent, (0.0, 0.0))
        self._remove_droplet(parent)
        dec = state.decomposed
        tasks = []
        for job_index in job_indices:
            job = dec.jobs[job_index]
            did = self._new_droplet(job.start, name, volume=volume / 2,
                                    concentration=concentration)
            tasks.append(self._new_task(
                did, self._with_obstacles(job, name), state
            ))
        state.tasks = tasks
        state.stage = "route_out"
        state.phase = MOPhase.ROUTING
        self._event("split", name, droplets=[t.droplet_id for t in tasks])

    # -- merge resolution ------------------------------------------------------------

    def _resolve_intended_merges(self) -> None:
        for name in self._order:
            state = self._states[name]
            if state.phase is not MOPhase.ROUTING or state.stage != "route_in":
                continue
            mo = self.graph.mo(name)
            if mo.type not in (MOType.MIX, MOType.DLT):
                continue
            alive = [t for t in state.tasks if t.droplet_id in self.droplets]
            if len(alive) != 2:
                continue
            r0 = self.droplets[alive[0].droplet_id]
            r1 = self.droplets[alive[1].droplet_id]
            if not r0.adjacent_or_overlapping(r1):
                continue
            self._merge_inputs(name, state, alive, r0, r1)

    def _merge_inputs(
        self,
        name: str,
        state: _MOState,
        tasks: list[RoutingTask],
        r0: Rect,
        r1: Rect,
    ) -> None:
        mo = self.graph.mo(name)
        dec = state.decomposed
        shape = fit_droplet_shape(r0.area + r1.area)
        bbox = r0.union_bbox(r1)
        cx, cy = bbox.center
        merged = self._place_on_chip(cx, cy, shape)
        v0, c0 = self._chemistry.get(tasks[0].droplet_id, (float(r0.area), 0.0))
        v1, c1 = self._chemistry.get(tasks[1].droplet_id, (float(r1.area), 0.0))
        volume = v0 + v1
        concentration = (v0 * c0 + v1 * c1) / volume if volume else 0.0
        for task in tasks:
            self._remove_droplet(task.droplet_id)
            if task.span is not None:
                obs.end_span(task.span, end_cycle=self.cycle)
                task.span = None
        did = self._new_droplet(merged, name, volume=volume,
                                concentration=concentration)
        self._event("merged", name, droplet=did)
        if mo.type is MOType.MIX:
            goal = dec.output_patterns[0]
        else:
            assert dec.merged_pattern is not None
            goal = dec.merged_pattern
        job = self._with_obstacles(
            RoutingJob(merged, goal, zone(merged, goal, self.width, self.height)),
            name,
        )
        state.tasks = [self._new_task(did, job, state)]
        state.stage = "route_merged"

    def _place_on_chip(self, cx: float, cy: float, shape: tuple[int, int]) -> Rect:
        rect = rect_from_center(cx, cy, shape[0], shape[1])
        dx = max(0, 1 - rect.xa) - max(0, rect.xb - self.width)
        dy = max(0, 1 - rect.ya) - max(0, rect.yb - self.height)
        return rect.translated(dx, dy)

    def _check_unintended_merges(self) -> None:
        if self.failure:
            return
        alive = list(self.droplets.items())
        for i, (did0, r0) in enumerate(alive):
            for did1, r1 in alive[i + 1 :]:
                if self._owner.get(did0) == self._owner.get(did1):
                    continue  # same-MO pairs are managed by the MO itself
                if r0.adjacent_or_overlapping(r1):
                    self.failure = "unintended-merge"
                    obs.journal_event(
                        "failure", cycle=self.cycle,
                        reason="unintended-merge", droplets=[did0, did1],
                    )
                    return

    # -- statistics ---------------------------------------------------------------

    def mo_phase(self, name: str) -> MOPhase:
        return self._states[name].phase

    def mo_cycles(self, name: str) -> tuple[int, int]:
        """(activated, done) cycle numbers of an MO (-1 if not reached)."""
        state = self._states[name]
        return state.activated_cycle, state.done_cycle
