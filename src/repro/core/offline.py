"""Offline strategy-library pre-population (Sec. VI-D).

The hybrid scheduling scheme "first creates a library of pre-synthesized
strategies offline for a range of droplet sizes and assuming no
degradation"; at runtime the scheduler retrieves pre-synthesized strategies
instead of paying the synthesis delay, and only health *changes* trigger
fresh synthesis.

:func:`precompute_library` runs that offline stage for a placed bioassay:
it decomposes every MO into routing jobs and synthesizes each against a
pristine health matrix, warming the router's library so the first execution
on a fresh chip incurs no on-line synthesis at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bioassay.ops import MOType
from repro.bioassay.seqgraph import SequencingGraph
from repro.core.baseline import AdaptiveRouter
from repro.core.routing_job import RJHelper, RoutingJob
from repro.degradation.model import DEFAULT_HEALTH_BITS


@dataclass(frozen=True)
class PrecomputeReport:
    """What the offline stage synthesized."""

    jobs: int
    synthesized: int
    skipped_trivial: int
    seconds: float


def routing_jobs_of(
    graph: SequencingGraph, width: int, height: int
) -> list[RoutingJob]:
    """Every non-dispense routing job a placed bioassay will issue."""
    if not graph.is_placed():
        raise ValueError("precomputation needs a placed sequencing graph")
    helper = RJHelper(width, height)
    jobs: list[RoutingJob] = []
    for mo in graph.topological():
        decomposed = helper.decompose(mo)
        if mo.type is MOType.DIS:
            continue  # dispensing is materialized, not routed
        jobs.extend(decomposed.jobs)
    return jobs


def precompute_library(
    graph: SequencingGraph,
    router: AdaptiveRouter,
    width: int,
    height: int,
    bits: int = DEFAULT_HEALTH_BITS,
) -> PrecomputeReport:
    """Warm ``router``'s strategy library for a pristine chip.

    Synthesizes a strategy for every routing job of ``graph`` under the
    all-healthy matrix.  Jobs whose start already satisfies the goal are
    trivially complete and skipped.  Returns a report with counts and the
    total offline time.
    """
    import time

    pristine = np.full((width, height), (1 << bits) - 1)
    t0 = time.perf_counter()
    synthesized = 0
    trivial = 0
    jobs = routing_jobs_of(graph, width, height)
    for job in jobs:
        if job.goal.contains(job.start):
            trivial += 1
            continue
        strategy = router.plan(job, pristine)
        if strategy is None:  # pragma: no cover - pristine chips always route
            raise RuntimeError(f"no strategy for {job} on a pristine chip")
        synthesized += 1
    return PrecomputeReport(
        jobs=len(jobs),
        synthesized=synthesized,
        skipped_trivial=trivial,
        seconds=time.perf_counter() - t0,
    )
