"""Span tracing: the hierarchical execution record of a bioassay run.

A *span* is a named interval with attributes; spans form a tree — the
instrumented layers produce::

    assay                        (one per MedaSimulator.run)
      scheduler.cycle            (one per plan_cycle call)
        rj.plan                  (router consultation, cache hit or miss)
          synthesis.construct    (model build)
          synthesis.solve        (value iteration)
        route.step               (one per moving droplet per cycle)
      simulator.step             (actuation + outcome sampling)
      mo:<name>                  (async: activation -> done, overlapping)

Two span kinds exist because MO lifetimes cross cycle boundaries:

* **sync** spans are opened/closed in LIFO order via the :meth:`Tracer.span`
  context manager; their parent is the innermost open sync span;
* **async** spans (:meth:`Tracer.begin` / :meth:`Tracer.end`) may overlap
  arbitrarily; their parent defaults to the *outermost* open sync span
  (the run-level ``assay`` span) so concurrent MOs sit side by side under
  the run.

Exports:

* :meth:`Tracer.export_jsonl` — one JSON object per span (id, parent,
  start/duration in microseconds, attributes);
* :meth:`Tracer.export_chrome` — Chrome ``trace_event`` JSON (sync spans as
  complete ``"X"`` events, async spans as ``"b"``/``"e"`` pairs), loadable
  in Perfetto / ``chrome://tracing``.

Tracing is *disabled by default*: :func:`repro.obs.span` returns a shared
no-op context manager when no tracer is configured, so instrumented code
pays one function call and no allocation per span site.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from time import perf_counter, time_ns
from typing import Any, Iterable, Iterator


def jsonable(value: Any) -> Any:
    """Coerce an attribute value into something ``json.dump`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return str(value)


class Span:
    """One named interval in the trace tree."""

    __slots__ = ("name", "span_id", "parent_id", "start_us", "end_us",
                 "attrs", "kind", "pid")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start_us: float,
        kind: str,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_us = start_us
        self.end_us: float | None = None
        self.attrs = attrs
        self.kind = kind  # "sync" | "async"
        #: Origin process for spans adopted from a worker (None = this
        #: process); drives the Perfetto track the span renders on.
        self.pid: int | None = None

    def set(self, **attrs: Any) -> None:
        """Attach attributes after the span was opened (e.g. a cache verdict
        known only mid-span)."""
        self.attrs.update(attrs)

    @property
    def duration_us(self) -> float | None:
        if self.end_us is None:
            return None
        return self.end_us - self.start_us

    def to_record(self) -> dict[str, Any]:
        record = {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "start_us": round(self.start_us, 3),
            "dur_us": None if self.end_us is None
            else round(self.end_us - self.start_us, 3),
            "attrs": {k: jsonable(v) for k, v in self.attrs.items()},
        }
        if self.pid is not None:
            record["pid"] = self.pid
        return record


class NullSpan:
    """The shared disabled-mode span: enter/exit/set are all no-ops."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


NULL_SPAN = NullSpan()


class Tracer:
    """Collects spans for one tracing session (typically one CLI run)."""

    def __init__(self) -> None:
        self._epoch = perf_counter()
        #: Wall-clock time (ns) at tracer-relative t=0.  Two tracers on the
        #: same machine (parent + pool worker) align their timelines by
        #: comparing epochs; ``perf_counter`` offsets are process-local and
        #: cannot be compared directly.
        self.wall_epoch_ns = time_ns()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 1
        self._local = threading.local()

    # -- internals -----------------------------------------------------------

    def _now_us(self) -> float:
        return (perf_counter() - self._epoch) * 1e6

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_span(
        self, name: str, parent_id: int | None, kind: str,
        attrs: dict[str, Any],
    ) -> Span:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(name, span_id, parent_id, self._now_us(), kind, attrs)
            self._spans.append(span)
        return span

    # -- sync spans ----------------------------------------------------------

    @contextmanager
    def span(
        self, name: str, parent: Span | None = None, **attrs: Any
    ) -> Iterator[Span]:
        """Open a sync span for the duration of the ``with`` body."""
        stack = self._stack()
        parent_id = parent.span_id if parent is not None else (
            stack[-1].span_id if stack else None
        )
        span = self._new_span(name, parent_id, "sync", attrs)
        stack.append(span)
        try:
            yield span
        finally:
            span.end_us = self._now_us()
            stack.pop()

    @contextmanager
    def under(self, span: Span | None) -> Iterator[None]:
        """Make ``span`` the ambient parent for sync spans in the body.

        Used to parent a cycle's RJ spans to the long-lived MO span that
        owns them even though the MO span is async.
        """
        if span is None:
            yield
            return
        stack = self._stack()
        stack.append(span)
        try:
            yield
        finally:
            stack.pop()

    # -- async spans (cross-cycle lifetimes) ---------------------------------

    def begin(
        self, name: str, parent: Span | None = None, **attrs: Any
    ) -> Span:
        """Open an async span; close it later with :meth:`end`."""
        stack = self._stack()
        parent_id = parent.span_id if parent is not None else (
            stack[0].span_id if stack else None
        )
        return self._new_span(name, parent_id, "async", attrs)

    def end(self, span: Span, **attrs: Any) -> None:
        if attrs:
            span.attrs.update(attrs)
        span.end_us = self._now_us()

    # -- cross-process adoption ----------------------------------------------

    def adopt(
        self,
        records: Iterable[dict[str, Any]],
        parent_id: int | None = None,
        pid: int | None = None,
        wall_epoch_ns: int | None = None,
    ) -> int:
        """Graft span records exported by another process's tracer.

        ``records`` are :meth:`Span.to_record` dicts (the wire format pool
        workers piggyback on result payloads).  Span ids are re-allocated in
        this tracer's id space with the internal parent/child structure
        preserved; spans whose parent is not in the batch (the worker-side
        roots) are reparented under ``parent_id`` — typically the
        ``engine.submit`` span that launched the work.  ``wall_epoch_ns``
        (the worker tracer's :attr:`wall_epoch_ns`) shifts the worker
        timeline onto this tracer's, so the merged Perfetto export shows
        the worker solve at the wall-clock moment it actually ran.
        Returns the number of spans adopted.
        """
        records = list(records)
        if not records:
            return 0
        offset_us = (
            0.0 if wall_epoch_ns is None
            else (wall_epoch_ns - self.wall_epoch_ns) / 1e3
        )
        with self._lock:
            id_map: dict[int, int] = {}
            for record in records:
                id_map[record["id"]] = self._next_id
                self._next_id += 1
            for record in records:
                old_parent = record.get("parent")
                span = Span(
                    record["name"],
                    id_map[record["id"]],
                    id_map.get(old_parent, parent_id),
                    float(record["start_us"]) + offset_us,
                    record.get("kind", "sync"),
                    dict(record.get("attrs") or {}),
                )
                if record.get("dur_us") is not None:
                    span.end_us = span.start_us + float(record["dur_us"])
                span.pid = pid if pid is not None else record.get("pid")
                self._spans.append(span)
        return len(records)

    # -- introspection / export ----------------------------------------------

    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def export_jsonl(self, path: str) -> None:
        """One JSON span record per line (open spans get ``dur_us: null``)."""
        with open(path, "w", encoding="utf-8") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_record()) + "\n")

    def chrome_events(self) -> list[dict[str, Any]]:
        """The spans as Chrome ``trace_event`` dicts.

        Spans adopted from pool workers carry their origin pid and render
        on their own Perfetto process track (named ``repro worker <pid>``)
        next to the parent process's track, giving the end-to-end
        ``engine.submit -> worker.solve -> take`` picture.
        """
        now = self._now_us()
        spans = self.spans
        events: list[dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
            "args": {"name": "repro"},
        }]
        for pid in sorted({s.pid for s in spans if s.pid is not None}):
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": pid,
                "args": {"name": f"repro worker {pid}"},
            })
        for span in spans:
            end = span.end_us if span.end_us is not None else now
            args = {k: jsonable(v) for k, v in span.attrs.items()}
            pid = span.pid if span.pid is not None else 1
            if span.kind == "sync":
                events.append({
                    "name": span.name, "cat": "repro", "ph": "X",
                    "ts": round(span.start_us, 3),
                    "dur": round(max(end - span.start_us, 0.0), 3),
                    "pid": pid, "tid": pid, "args": args,
                })
            else:
                ident = f"0x{span.span_id:x}"
                events.append({
                    "name": span.name, "cat": "repro.async", "ph": "b",
                    "ts": round(span.start_us, 3), "pid": pid, "tid": pid,
                    "id": ident, "args": args,
                })
                events.append({
                    "name": span.name, "cat": "repro.async", "ph": "e",
                    "ts": round(end, 3), "pid": pid, "tid": pid, "id": ident,
                })
        return events

    def export_chrome(self, path: str) -> None:
        """Write Chrome ``trace_event`` JSON for Perfetto/chrome://tracing."""
        payload = {"traceEvents": self.chrome_events(),
                   "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
