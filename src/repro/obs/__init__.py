"""``repro.obs`` — structured run telemetry (tracing, metrics, journal).

Three pillars, all disabled by default and near-free when off:

* **span tracing** (:mod:`repro.obs.tracing`) — hierarchical span tree of a
  run (``assay -> mo -> rj.plan -> construct/solve`` plus per-cycle spans),
  exported as JSONL or Chrome ``trace_event`` JSON;
* **metrics** (:mod:`repro.obs.metrics`) — typed instruments behind
  :mod:`repro.perf` (counters, gauges, fixed-bucket histograms with
  p50/p90/p99);
* **run journal** (:mod:`repro.obs.journal`) — a JSONL event log of MO
  lifecycles, resynthesis triggers, stalls/recoveries, transport failures
  and degradation crossings, summarized by ``python -m repro report``.

Usage::

    from repro import obs
    tracer, journal = obs.configure(tracing=True, journal="run.jsonl")
    ...  # run the bioassay
    tracer.export_chrome("run.trace.json")
    obs.shutdown()

Instrumented code calls :func:`span` / :func:`begin_span` /
:func:`journal_event`; with nothing configured those are a function call
returning a shared no-op object (regression-tested to stay under the
disabled-overhead budget in ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import functools
from pathlib import Path
from typing import Any, Callable, Iterator, TextIO

from repro.obs.journal import (
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    iter_events,
    journal_scope,
    read_journal,
    validate_event,
)
from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    state_delta,
)
from repro.obs.tracing import NULL_SPAN, NullSpan, Span, Tracer

__all__ = [
    "configure", "shutdown", "enabled", "metrics_enabled", "tracer",
    "journal", "span", "begin_span", "end_span", "under", "traced",
    "journal_event", "journal_scope",
    "Tracer", "Span", "NullSpan", "NULL_SPAN", "RunJournal",
    "read_journal", "iter_events", "validate_event",
    "JOURNAL_SCHEMA_VERSION",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "state_delta",
    "DEFAULT_LATENCY_BUCKETS_MS", "DEFAULT_COUNT_BUCKETS",
]

_tracer: Tracer | None = None
_journal: RunJournal | None = None
_metrics = False


class _NullContext:
    """Shared no-op context manager for :func:`under` when disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


def configure(
    tracing: bool = False,
    journal: "RunJournal | str | Path | TextIO | Callable[[dict], None] | None" = None,
    metrics: bool | None = None,
) -> tuple[Tracer | None, RunJournal | None]:
    """Enable telemetry for this process; returns ``(tracer, journal)``.

    ``tracing=True`` installs a fresh :class:`Tracer` (replacing any
    previous one).  ``journal`` accepts an existing :class:`RunJournal` or
    any sink the journal constructor takes (path, stream, callable);
    ``None`` leaves the current journal untouched.  ``metrics=True`` marks
    metric *propagation* as wanted — the perf registry is always live, but
    pool workers only ship their per-task metric deltas back when the
    parent has some telemetry switched on (see
    :mod:`repro.obs.propagate`); the flag requests that shipping even when
    neither tracing nor a journal is configured (e.g. a bare ``/metrics``
    monitor endpoint).  ``None`` leaves the flag untouched.
    """
    global _tracer, _journal, _metrics
    if tracing:
        _tracer = Tracer()
    if journal is not None:
        _journal = journal if isinstance(journal, RunJournal) else RunJournal(journal)
    if metrics is not None:
        _metrics = bool(metrics)
    return _tracer, _journal


def shutdown() -> None:
    """Disable telemetry: drop the tracer, close and drop the journal."""
    global _tracer, _journal, _metrics
    if _journal is not None:
        _journal.close()
    _tracer = None
    _journal = None
    _metrics = False


def enabled() -> bool:
    """Whether span tracing is currently active."""
    return _tracer is not None


def metrics_enabled() -> bool:
    """Whether cross-process metric propagation was explicitly requested."""
    return _metrics


def tracer() -> Tracer | None:
    return _tracer


def journal() -> RunJournal | None:
    return _journal


# -- instrumentation entry points (hot paths; keep the disabled branch first)


def span(name: str, parent: Span | None = None, **attrs: Any):
    """A sync span context manager, or the shared no-op when disabled."""
    t = _tracer
    if t is None:
        return NULL_SPAN
    return t.span(name, parent=parent, **attrs)


def begin_span(
    name: str, parent: Span | None = None, **attrs: Any
) -> Span | None:
    """Open an async (cross-cycle) span; ``None`` when tracing is off."""
    t = _tracer
    if t is None:
        return None
    return t.begin(name, parent=parent, **attrs)


def end_span(span_obj: Span | None, **attrs: Any) -> None:
    """Close an async span from :func:`begin_span` (no-op on ``None``)."""
    t = _tracer
    if t is None or span_obj is None:
        return
    t.end(span_obj, **attrs)


def under(span_obj: Span | None):
    """Ambient-parent context: sync spans in the body nest below ``span_obj``."""
    t = _tracer
    if t is None or span_obj is None:
        return _NULL_CONTEXT
    return t.under(span_obj)


def traced(name: str | None = None, **attrs: Any):
    """Decorator form of :func:`span` (span named after the function)."""

    def decorate(fn):
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            t = _tracer
            if t is None:
                return fn(*args, **kwargs)
            with t.span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def journal_event(event: str, cycle: int | None = None, **fields: Any) -> None:
    """Emit a journal record if a journal is configured (else no-op)."""
    j = _journal
    if j is None:
        return
    j.emit(event, cycle=cycle, **fields)
