"""Declarative service-level objectives evaluated from metric snapshots.

An SLO here is one comparison over the flat metric snapshot the registry
(and the journal's ``telemetry.snapshot`` events) already produce::

    p99(synthesis.total_ms) < 50       # histogram statistic
    completion_probability == 1.0      # derived scalar
    engine.prefetch.hits >= 1          # plain counter
    p99(synthesis.total_ms) < 50 @ 0.95  # budgeted: 95% of windows comply

The function-call form ``stat(metric)`` resolves against the
``<metric>.<stat>`` keys of a flat snapshot (``p50``/``p90``/``p99``/
``mean``/``min``/``max``/``count``/``sum``); a bare name resolves
verbatim.  The optional ``@ target`` suffix sets the compliance target for
windowed evaluation (default ``1.0`` — every window must comply), giving
the classic error budget: budget ``= 1 - target``, burn ``= violating
windows / windows``, remaining ``= 1 - burn / budget``.

Two evaluation styles:

* :func:`evaluate` — one-shot, against a single snapshot (the CLI
  ``run --slo`` gate, ``repro report --slo``);
* :class:`SloTracker` — windowed, fed one snapshot per
  :class:`~repro.obs.pump.TelemetryPump` tick, with error-budget
  accounting per objective.

A metric missing from the snapshot is a *violation* (reason
``"missing"``), never a silent pass — an SLO that cannot be measured is
not being met.
"""

from __future__ import annotations

import math
import operator
import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

_STATS = ("p50", "p90", "p99", "mean", "min", "max", "count", "sum")

_SPEC_RE = re.compile(
    r"^\s*"
    r"(?:(?P<stat>[a-zA-Z]\w*)\s*\(\s*(?P<metric>[\w.\-]+)\s*\)"
    r"|(?P<bare>[\w.\-]+))"
    r"\s*(?P<op><=|>=|==|!=|<|>)\s*"
    r"(?P<threshold>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)"
    r"(?:\s*@\s*(?P<target>0?\.\d+|1(?:\.0*)?))?"
    r"\s*$"
)


@dataclass(frozen=True)
class SloSpec:
    """One parsed objective: ``stat(metric) op threshold [@ target]``."""

    metric: str
    op: str
    threshold: float
    stat: "str | None" = None
    target: float = 1.0

    @property
    def key(self) -> str:
        """The flat-snapshot key this objective reads."""
        return self.metric if self.stat is None else f"{self.metric}.{self.stat}"

    def __str__(self) -> str:
        head = self.metric if self.stat is None else f"{self.stat}({self.metric})"
        suffix = "" if self.target >= 1.0 else f" @ {self.target:g}"
        return f"{head} {self.op} {self.threshold:g}{suffix}"

    def check(self, value: "float | None") -> bool:
        """Whether ``value`` complies (missing/NaN never complies)."""
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return False
        return bool(_OPS[self.op](value, self.threshold))


@dataclass
class SloResult:
    """One objective evaluated against one snapshot window."""

    spec: SloSpec
    value: "float | None"
    ok: bool
    reason: "str | None" = None

    def to_record(self) -> dict[str, Any]:
        return {
            "slo": str(self.spec),
            "metric": self.spec.key,
            "value": self.value,
            "ok": self.ok,
            **({"reason": self.reason} if self.reason else {}),
        }


def parse_slo(text: str) -> SloSpec:
    """Parse one objective; raises ``ValueError`` with the offending text."""
    match = _SPEC_RE.match(text)
    if match is None:
        raise ValueError(
            f"cannot parse SLO {text!r} (expected 'stat(metric) OP value' or "
            f"'metric OP value', optionally '@ target')"
        )
    stat = match.group("stat")
    if stat is not None and stat not in _STATS:
        raise ValueError(
            f"unknown SLO statistic {stat!r} in {text!r} "
            f"(supported: {', '.join(_STATS)})"
        )
    return SloSpec(
        metric=match.group("metric") or match.group("bare"),
        op=match.group("op"),
        threshold=float(match.group("threshold")),
        stat=stat,
        target=float(match.group("target")) if match.group("target") else 1.0,
    )


def evaluate(
    specs: Iterable[SloSpec], snapshot: Mapping[str, float]
) -> list[SloResult]:
    """One-shot evaluation of every objective against a flat snapshot."""
    results = []
    for spec in specs:
        if spec.key not in snapshot:
            results.append(SloResult(spec, None, False, reason="missing"))
            continue
        value = snapshot[spec.key]
        ok = spec.check(value)
        results.append(SloResult(
            spec, value, ok,
            reason=None if ok else "violated",
        ))
    return results


@dataclass
class _Budget:
    windows: int = 0
    violations: int = 0
    last_value: "float | None" = None


class SloTracker:
    """Windowed SLO evaluation with per-objective error budgets.

    Feed one flat snapshot per window (:meth:`observe`); each objective
    accumulates compliant/violating windows.  The error budget of an
    objective with target ``t`` is the fraction ``1 - t`` of windows
    allowed to violate; :meth:`summary` reports the burn and the remaining
    budget, and :meth:`ok` is the gate: every objective within budget.
    """

    def __init__(self, specs: Iterable[SloSpec]) -> None:
        self.specs = list(specs)
        self._budgets: dict[SloSpec, _Budget] = {
            spec: _Budget() for spec in self.specs
        }

    def observe(self, snapshot: Mapping[str, float]) -> list[SloResult]:
        """Evaluate one window; returns the per-objective results."""
        results = evaluate(self.specs, snapshot)
        for result in results:
            budget = self._budgets[result.spec]
            budget.windows += 1
            budget.last_value = result.value
            if not result.ok:
                budget.violations += 1
        return results

    def summary(self) -> list[dict[str, Any]]:
        """Per-objective accounting: windows, violations, budget state."""
        out = []
        for spec in self.specs:
            budget = self._budgets[spec]
            burn = (
                budget.violations / budget.windows if budget.windows else 0.0
            )
            allowed = 1.0 - spec.target
            if allowed > 0:
                remaining = 1.0 - burn / allowed
            else:
                remaining = 1.0 if budget.violations == 0 else 0.0
            out.append({
                "slo": str(spec),
                "metric": spec.key,
                "windows": budget.windows,
                "violations": budget.violations,
                "compliance": 1.0 - burn,
                "target": spec.target,
                "budget_remaining": remaining,
                "last_value": budget.last_value,
                "ok": remaining >= 0.0 and (
                    budget.violations == 0 or allowed > 0
                ) and burn <= allowed,
            })
        return out

    def ok(self) -> bool:
        """Whether every objective is currently within its error budget."""
        return all(entry["ok"] for entry in self.summary())


def format_results(results: "Iterable[SloResult] | Iterable[dict]") -> str:
    """Terminal rendering of one-shot results or tracker summaries."""
    lines = []
    for item in results:
        if isinstance(item, SloResult):
            status = "ok " if item.ok else "VIOLATED"
            shown = "-" if item.value is None else f"{item.value:g}"
            suffix = f" ({item.reason})" if item.reason == "missing" else ""
            lines.append(f"  {status:8s} {item.spec}  [observed {shown}]{suffix}")
        else:
            status = "ok " if item["ok"] else "VIOLATED"
            lines.append(
                f"  {status:8s} {item['slo']}  "
                f"[{item['violations']}/{item['windows']} windows violated, "
                f"budget remaining {item['budget_remaining']:.0%}]"
            )
    return "\n".join(lines)
