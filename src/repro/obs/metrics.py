"""Typed metric instruments: counters, gauges, fixed-bucket histograms.

:mod:`repro.perf` grew out of a flat ``dict`` of sums; that is enough for
"how much total solve time", but adaptivity questions (Sec. VI-D) need
*distributions*: is the p99 per-RJ synthesis latency inside the cycle
budget, how many VI iterations does a warm-started resynthesis really take,
how long are routed paths.  This module supplies the three instrument types
and the registry that :mod:`repro.perf` now fronts:

* :class:`Counter` — a monotone event count (``incr``);
* :class:`Gauge` — a last-write-wins level (``set``);
* :class:`Histogram` — fixed upper-bound buckets with count/sum/min/max and
  interpolated quantiles (``observe``).

Instruments are cheap enough to stay enabled everywhere (an ``observe`` is
a bisect plus a few scalar updates); they carry no wall-clock state and are
process-global like the old counter dict.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterable

#: Default bucket upper bounds for latency histograms, in milliseconds.
#: Roughly exponential from 50us to 10s — per-RJ synthesis on the
#: evaluation chip sits in the 1-100ms decades (Table V).
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Default buckets for small nonnegative integer quantities (iteration
#: counts, route lengths in cycles).
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)


class Counter:
    """A monotone event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def add(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins level (queue depths, library sizes, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram with interpolated quantiles.

    ``bounds`` are the inclusive upper bounds of the finite buckets; one
    implicit overflow bucket catches everything above ``bounds[-1]``.
    Quantiles are estimated by linear interpolation inside the bucket that
    holds the target rank (the Prometheus ``histogram_quantile`` scheme)
    and then clamped to the observed ``[min, max]`` — so a histogram with a
    single observation reports that exact value at every quantile, and the
    overflow bucket reports the observed maximum rather than infinity.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, bounds: Iterable[float]) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        # One slot per finite bucket plus the overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """The interpolated ``q``-quantile (``0 <= q <= 1``) of the data.

        Returns NaN for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cum = 0.0
        lo = 0.0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            if bucket_count and cum + bucket_count >= rank:
                frac = max(rank - cum, 0.0) / bucket_count
                value = lo + (bound - lo) * frac
                return min(max(value, self.min), self.max)
            cum += bucket_count
            lo = bound
        return self.max  # rank falls in the overflow bucket

    def percentiles(self, qs: Iterable[float] = (0.5, 0.9, 0.99)) -> dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` for the given quantiles."""
        return {f"p{round(q * 100)}": self.quantile(q) for q in qs}

    def state(self) -> dict:
        """The histogram's full mergeable state (see ``merge_state``)."""
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Used to merge worker-side deltas into the parent registry; both
        sides observe through the shared bucket constants, so mismatched
        bounds are a wiring bug and raise instead of silently mis-binning.
        """
        if tuple(float(b) for b in state["bounds"]) != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        for i, c in enumerate(state["bucket_counts"]):
            self.bucket_counts[i] += c
        self.count += state["count"]
        self.sum += state["sum"]
        if state["min"] is not None and state["min"] < self.min:
            self.min = float(state["min"])
        if state["max"] is not None and state["max"] > self.max:
            self.max = float(state["max"])

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean plus p50/p90/p99, for reports and JSON."""
        out: dict[str, float] = {
            "count": float(self.count),
            "sum": self.sum,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "mean": self.mean,
        }
        out.update(self.percentiles())
        return out


class MetricsRegistry:
    """A process-global, lock-guarded set of named instruments.

    Names are namespaced per instrument type: registering ``foo`` as both a
    counter and a histogram is an error (it would make ``snapshot`` output
    ambiguous).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (("counter", self._counters),
                                  ("gauge", self._gauges),
                                  ("histogram", self._histograms)):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, "counter")
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, "gauge")
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, bounds: Iterable[float] | None = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, "histogram")
                instrument = self._histograms[name] = Histogram(
                    name, bounds if bounds is not None
                    else DEFAULT_LATENCY_BUCKETS_MS
                )
            return instrument

    # -- bulk operations (hold the lock once) --------------------------------

    def incr(self, name: str, amount: float = 1) -> None:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_free(name, "counter")
                instrument = self._counters[name] = Counter(name)
            instrument.add(amount)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_free(name, "gauge")
                instrument = self._gauges[name] = Gauge(name)
            instrument.set(value)

    def observe(
        self, name: str, value: float,
        bounds: Iterable[float] | None = None,
    ) -> None:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_free(name, "histogram")
                instrument = self._histograms[name] = Histogram(
                    name, bounds if bounds is not None
                    else DEFAULT_LATENCY_BUCKETS_MS
                )
            instrument.observe(value)

    # -- introspection --------------------------------------------------------

    def get(self, name: str, default: float = 0) -> float:
        with self._lock:
            if name in self._counters:
                return self._counters[name].value
            if name in self._gauges:
                return self._gauges[name].value
            return default

    def snapshot(self) -> dict[str, float]:
        """Counters and gauges flat; histograms as ``name.p50``-style keys."""
        with self._lock:
            out: dict[str, float] = {
                name: c.value for name, c in self._counters.items()
            }
            out.update((name, g.value) for name, g in self._gauges.items())
            for name, hist in self._histograms.items():
                for key, value in hist.summary().items():
                    out[f"{name}.{key}"] = value
            return out

    def histogram_summaries(self) -> dict[str, dict[str, float]]:
        with self._lock:
            return {name: h.summary() for name, h in self._histograms.items()}

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- streaming state: export / delta / merge ------------------------------

    def export_state(self) -> dict:
        """A consistent, JSON/pickle-safe copy of every instrument's state.

        Unlike :meth:`snapshot` (which pre-digests histograms into
        quantiles), the exported state is *mergeable*: bucket counts travel
        raw, so two states can be subtracted (:func:`state_delta`) or folded
        into another registry (:meth:`merge`) without losing distribution
        information.  Taken under the registry lock, so concurrent updates
        never produce a torn state.
        """
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {
                    n: h.state() for n, h in self._histograms.items()
                },
            }

    def delta_since(self, baseline: "dict | None") -> dict:
        """The change in every instrument since ``baseline`` (an earlier
        :meth:`export_state`); ``None`` means "since empty"."""
        return state_delta(baseline, self.export_state())

    def merge(self, state: dict) -> None:
        """Fold an exported state (typically a worker-side delta) in.

        Counters and histogram contents are additive; gauges are
        last-write-wins (the incoming level overwrites).  Histograms are
        created with the incoming bounds when absent locally.
        """
        for name, value in state.get("counters", {}).items():
            self.incr(name, value)
        for name, value in state.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, hist_state in state.get("histograms", {}).items():
            self.histogram(name, hist_state["bounds"]).merge_state(hist_state)


def state_delta(old: "dict | None", new: dict) -> dict:
    """``new - old`` over two :meth:`MetricsRegistry.export_state` dicts.

    Counters subtract (instruments absent from ``old`` count from zero);
    gauges carry the new level verbatim (a level has no meaningful delta);
    histogram bucket counts, count and sum subtract, while min/max come
    from the new state (a fixed-bucket histogram cannot un-observe — the
    bounds keep merged quantiles correct regardless).  Instruments whose
    counts did not change are omitted, so a quiet interval deltas to ``{}``
    and periodic snapshot events stay small.
    """
    old = old or {}
    old_counters = old.get("counters", {})
    counters = {
        name: value - old_counters.get(name, 0.0)
        for name, value in new.get("counters", {}).items()
        if value != old_counters.get(name, 0.0)
    }
    old_gauges = old.get("gauges", {})
    gauges = {
        name: value
        for name, value in new.get("gauges", {}).items()
        if name not in old_gauges or value != old_gauges[name]
    }
    histograms: dict[str, dict] = {}
    old_hists = old.get("histograms", {})
    for name, state in new.get("histograms", {}).items():
        prev = old_hists.get(name)
        if prev is None:
            if state["count"]:
                histograms[name] = state
            continue
        if state["count"] == prev["count"]:
            continue
        histograms[name] = {
            "bounds": state["bounds"],
            "bucket_counts": [
                c - p for c, p in zip(state["bucket_counts"],
                                      prev["bucket_counts"])
            ],
            "count": state["count"] - prev["count"],
            "sum": state["sum"] - prev["sum"],
            "min": state["min"],
            "max": state["max"],
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
