"""OpenMetrics / Prometheus text rendering of the metrics registry.

Turns a :class:`~repro.obs.metrics.MetricsRegistry` into the OpenMetrics
text exposition format — the lingua franca every scraping stack
(Prometheus, Grafana Agent, VictoriaMetrics) ingests — so a running assay
process can be watched with stock tooling instead of bespoke scripts.
Served live by :mod:`repro.obs.monitor`; also usable offline to convert a
final registry state into a textfile-collector drop.

Mapping:

* dotted repro metric names sanitize to underscores under a ``repro_``
  prefix (``engine.prefetch.hits`` -> ``repro_engine_prefetch_hits``);
* counters render as ``<name>_total`` with ``# TYPE ... counter``;
* gauges render verbatim with ``# TYPE ... gauge``;
* histograms render cumulative ``_bucket{le="..."}`` series (including the
  mandatory ``le="+Inf"``), plus ``_sum`` and ``_count``;
* the exposition ends with the mandatory ``# EOF`` marker.
"""

from __future__ import annotations

import math
import re

from repro import perf
from repro.obs.metrics import MetricsRegistry

#: The content type OpenMetrics scrapers negotiate.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: Prefix for every exported metric family.
METRIC_PREFIX = "repro"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = METRIC_PREFIX) -> str:
    """The OpenMetrics family name for a dotted repro metric name."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _fmt(value: float) -> str:
    """A float in OpenMetrics syntax (no inf/nan ever reaches here)."""
    if value == math.floor(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_openmetrics(
    registry: "MetricsRegistry | None" = None, prefix: str = METRIC_PREFIX
) -> str:
    """The registry's full state as OpenMetrics exposition text.

    ``registry`` defaults to the live process-global perf registry.  The
    export is taken from one consistent
    :meth:`~repro.obs.metrics.MetricsRegistry.export_state`, so a scrape
    concurrent with updates never sees a torn histogram.
    """
    state = (registry if registry is not None else perf.registry()).export_state()
    lines: list[str] = []

    for name in sorted(state["counters"]):
        family = metric_name(name, prefix)
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family}_total {_fmt(state['counters'][name])}")

    for name in sorted(state["gauges"]):
        family = metric_name(name, prefix)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_fmt(state['gauges'][name])}")

    for name in sorted(state["histograms"]):
        hist = state["histograms"][name]
        family = metric_name(name, prefix)
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["bucket_counts"]):
            cumulative += count
            lines.append(
                f'{family}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
            )
        lines.append(f'{family}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{family}_sum {_fmt(hist['sum'])}")
        lines.append(f"{family}_count {hist['count']}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> dict[str, float]:
    """A minimal sample parser: ``{series-with-labels: value}``.

    Not a general scraper — just enough structure checking for the CI
    smoke test and unit tests: every non-comment line must be
    ``<name>[{labels}] <number>``, and the exposition must end with
    ``# EOF``.  Raises ``ValueError`` otherwise.
    """
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        raise ValueError("OpenMetrics exposition must end with '# EOF'")
    samples: dict[str, float] = {}
    for line_no, line in enumerate(lines[:-1], start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = re.fullmatch(
            r'([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?)\s+(\S+)', line
        )
        if match is None:
            raise ValueError(f"line {line_no}: not an OpenMetrics sample: {line!r}")
        samples[match.group(1)] = float(match.group(2))
    return samples
