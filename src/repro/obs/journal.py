"""The run journal: a structured JSONL event log of one bioassay execution.

Where spans answer "where did the time go", the journal answers "what
happened": MO lifecycle transitions, resynthesis triggers with the health
fingerprints before/after, droplet stalls and recoveries, transport
failures, degradation-bucket crossings.  Each record is one JSON object
per line::

    {"seq": 17, "event": "resynthesis", "cycle": 42, "mo": "mix1", ...}

``seq`` is a journal-wide monotone sequence number (events without a cycle
— e.g. synthesis latencies reported by the router — still order totally);
``cycle`` is the scheduler's operational cycle when known.

Sinks are pluggable: a filesystem path (JSONL file, flushed per event so a
crashed run still leaves a readable journal), any writable text stream, a
callable receiving each record dict, or ``None`` for an in-memory journal
(the default; inspect via :attr:`RunJournal.records`).

:func:`journal_scope` stamps correlation fields (e.g. a serving job id)
into every record emitted from the current thread while the scope is
active — the per-job correlation mechanism of the ``repro.serve`` layer,
where N assay-worker threads share one process-global journal.
"""

from __future__ import annotations

import json
import threading
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, TextIO

from repro.obs.tracing import jsonable

#: Version stamped into every emitted record as ``schema_version``.  Bump
#: when the meaning of a shared field changes (not when events are added —
#: the journal stays schema-free at the event level).  Version history:
#:
#: * **1** — initial versioned schema: ``seq`` (journal-wide monotone),
#:   optional ``cycle``, free-form event fields; adds the cross-process
#:   ``worker_pid``/``corr`` correlation fields and the ``telemetry.*``
#:   streaming-snapshot events.
JOURNAL_SCHEMA_VERSION = 1

#: Versions :func:`validate_event` accepts.  ``0`` stands for pre-version
#: journals (no ``schema_version`` field), which remain readable.
SUPPORTED_SCHEMA_VERSIONS = (0, JOURNAL_SCHEMA_VERSION)

#: Event names the synthesis engine's fault-tolerance layer emits.  The
#: journal itself is schema-free — any event name is accepted — but these
#: are documented here so report tooling and tests agree on the spelling:
#:
#: * ``engine.fault`` — one classified worker failure
#:   (``kind`` in ``pool``/``transient``/``payload``, ``job``, ``detail``);
#: * ``engine.rebuild`` — the worker pool was rebuilt after a breakage
#:   (``attempt``, ``backoff_ms``);
#: * ``engine.deadline`` — an in-flight speculation exceeded its deadline
#:   and was reaped (``job``, ``deadline_ms``, ``hung``);
#: * ``engine.degraded`` — the rebuild budget ran out; the engine fell
#:   back to the synchronous path permanently (``reason``, ``rebuilds``);
#: * ``engine.degraded.observed`` — the scheduler noticed the degraded
#:   engine (``cycle``, ``rebuilds``).
ENGINE_EVENTS = (
    "engine.fault",
    "engine.rebuild",
    "engine.deadline",
    "engine.degraded",
    "engine.degraded.observed",
)

#: Event names the reconfiguration layer (``repro.reconfig``) emits:
#:
#: * ``reconfig.quarantine`` — the quarantine map changed (``cycle``,
#:   ``version``, ``cells``, ``rects`` — up to the first 8 rectangles as
#:   1-based inclusive ``(xa, ya, xb, yb)`` tuples);
#: * ``reconfig.remap`` — a module placement was (or failed to be)
#:   relocated off quarantined silicon (``cycle``, ``mo``, ``success``;
#:   on success also ``from_locs``, ``to_locs`` and the quarantine-map
#:   ``version`` that triggered the remap).
RECONFIG_EVENTS = (
    "reconfig.quarantine",
    "reconfig.remap",
)


#: Thread-local stack of correlation-field dicts (see :func:`journal_scope`).
_scope_local = threading.local()


def scope_fields() -> dict[str, Any]:
    """The merged correlation fields of the current thread's active scopes.

    Inner scopes win on key collisions.  Empty when no scope is active —
    the common (non-serving) case costs one ``getattr``.
    """
    stack = getattr(_scope_local, "stack", None)
    if not stack:
        return {}
    merged: dict[str, Any] = {}
    for fields in stack:
        merged.update(fields)
    return merged


@contextmanager
def journal_scope(**fields: Any) -> Iterator[None]:
    """Stamp ``fields`` into every record this thread emits while active.

    Scopes nest (inner wins per key) and are strictly thread-local: an
    assay-worker thread wrapping a run in ``journal_scope(job_id=...)``
    correlates that job's events without touching records emitted by
    sibling threads sharing the same journal.  Explicit ``emit`` fields
    always win over scope fields.
    """
    stack = getattr(_scope_local, "stack", None)
    if stack is None:
        stack = []
        _scope_local.stack = stack
    stack.append(dict(fields))
    try:
        yield
    finally:
        stack.pop()


class RunJournal:
    """An append-only, sink-pluggable event log."""

    def __init__(
        self,
        sink: "str | Path | TextIO | Callable[[dict], None] | None" = None,
    ) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._records: list[dict[str, Any]] = []
        self._fh: TextIO | None = None
        self._owns_fh = False
        self._callback: Callable[[dict], None] | None = None
        if sink is None:
            pass  # in-memory only
        elif callable(sink):
            self._callback = sink
        elif isinstance(sink, (str, Path)):
            self._fh = open(sink, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = sink

    def emit(self, event: str, cycle: int | None = None, **fields: Any) -> None:
        """Append one event record and forward it to the sink."""
        scoped = scope_fields()
        with self._lock:
            self._seq += 1
            record: dict[str, Any] = {
                "seq": self._seq,
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "event": event,
            }
            if cycle is not None:
                record["cycle"] = int(cycle)
            for key, value in fields.items():
                record[key] = jsonable(value)
            for key, value in scoped.items():
                record.setdefault(key, jsonable(value))
            self._records.append(record)
            if self._fh is not None:
                self._fh.write(json.dumps(record) + "\n")
                self._fh.flush()
            elif self._callback is not None:
                self._callback(record)

    @property
    def records(self) -> list[dict[str, Any]]:
        """Every record emitted so far (kept even with a file sink)."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return self._seq

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and self._owns_fh:
                self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def validate_event(record: Any) -> dict[str, Any]:
    """Check one journal record against the shared-field schema.

    Raises ``ValueError`` naming the first problem; returns the record
    unchanged when valid so the call composes (``validate_event(rec)``).
    Event-specific fields are intentionally not constrained — the journal
    is schema-free at that level — only the fields every consumer relies
    on: ``seq`` (positive int), ``event`` (non-empty str), ``cycle``
    (non-negative int when present) and a supported ``schema_version``.
    """
    if not isinstance(record, dict):
        raise ValueError(f"journal record must be a dict, got {type(record).__name__}")
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        raise ValueError(f"journal record needs a positive int 'seq', got {seq!r}")
    event = record.get("event")
    if not isinstance(event, str) or not event:
        raise ValueError(f"journal record needs a non-empty 'event', got {event!r}")
    version = record.get("schema_version", 0)
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"unsupported journal schema_version {version!r} "
            f"(supported: {SUPPORTED_SCHEMA_VERSIONS})"
        )
    cycle = record.get("cycle")
    if cycle is not None and (
        not isinstance(cycle, int) or isinstance(cycle, bool) or cycle < 0
    ):
        raise ValueError(f"journal 'cycle' must be a non-negative int, got {cycle!r}")
    return record


def read_journal(
    path: "str | Path", strict: bool = False
) -> list[dict[str, Any]]:
    """Parse a JSONL journal file back into record dicts.

    A run that crashed (or was SIGKILLed) mid-``write`` leaves a partial
    final line; that is expected wreckage, so by default it is dropped
    with a ``RuntimeWarning`` naming the line instead of raising — the
    intact prefix is exactly what post-mortem tooling needs.  Garbage
    *before* the last line means the file is not a journal (or was
    corrupted at rest) and still raises ``ValueError``; ``strict=True``
    restores raising for the trailing line too.
    """
    records = []
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    last_content_line = 0
    for line_no, line in enumerate(lines, start=1):
        if line.strip():
            last_content_line = line_no
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if line_no == last_content_line and not strict:
                warnings.warn(
                    f"{path}:{line_no}: dropping partial trailing record "
                    f"(crashed run?): {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            raise ValueError(
                f"{path}:{line_no}: not a JSON record: {exc}"
            ) from exc
    return records


def iter_events(
    records: Iterable[dict[str, Any]], event: str
) -> list[dict[str, Any]]:
    """The subset of ``records`` with the given event name."""
    return [r for r in records if r.get("event") == event]
