"""A live ``/metrics`` + ``/healthz`` endpoint on the stdlib HTTP server.

Opt-in observability substrate for a running assay process: while a run is
in flight, ``GET /metrics`` returns the OpenMetrics rendering of the live
perf registry (engine/store/vi counters, latency histograms — including
worker-side metrics merged back by :mod:`repro.obs.propagate`), and
``GET /healthz`` returns a small JSON liveness document the caller can
enrich with run state.  This is the surface the planned ``repro.serve``
job layer will scrape; until then, ``python -m repro monitor`` (or
``run --monitor-port``) exposes it for any single run.

Implementation notes: a ``ThreadingHTTPServer`` on a daemon thread, so a
hung scrape can never wedge the scheduler loop, and binding port ``0``
picks an ephemeral port (tests; parallel runs on one host).  No external
dependencies — the stdlib server is entirely adequate for a scrape
endpoint that serves one small text document.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro import perf
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import CONTENT_TYPE, render_openmetrics

DEFAULT_PORT = 9178


class _MonitorHandler(BaseHTTPRequestHandler):
    server_version = "repro-monitor/1.0"

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _dispatch(self, method: str) -> bool:
        """Offer the request to the pluggable routes callback.

        Returns ``True`` when the callback claimed the request (it returned
        a ``(status, content_type, body)`` triple); ``False`` lets the
        built-in ``/metrics``/``/healthz`` handling (or the 404) proceed.
        The callback receives the *raw* path (query string intact) plus the
        request body, so route owners can parse ``?since=N`` style params.
        """
        routes = getattr(self.server, "monitor_routes", None)
        if routes is None:
            return False
        body = b""
        length = int(self.headers.get("Content-Length") or 0)
        if length > 0:
            body = self.rfile.read(length)
        result = routes(method, self.path, body)
        if result is None:
            return False
        status, content_type, payload = result
        self._respond(status, content_type, payload)
        return True

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
        try:
            if not self._dispatch("POST"):
                self._respond(404, "text/plain; charset=utf-8",
                              f"not found: {self.path}\n")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if self._dispatch("GET"):
                return
            if path == "/metrics":
                self._respond(
                    200, CONTENT_TYPE,
                    render_openmetrics(self.server.monitor_registry),
                )
            elif path == "/healthz":
                health = self.server.monitor_health
                document = {"status": "ok"}
                if health is not None:
                    document.update(health())
                self._respond(
                    200, "application/json; charset=utf-8",
                    json.dumps(document),
                )
            elif path == "/":
                self._respond(
                    200, "text/plain; charset=utf-8",
                    "repro monitor\n\n/metrics  OpenMetrics exposition\n"
                    "/healthz  JSON liveness\n",
                )
            else:
                self._respond(404, "text/plain; charset=utf-8",
                              f"not found: {path}\n")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (scrapes come every second)."""


class MonitorServer:
    """The opt-in scrape endpoint: start / stop around a run.

    ``registry`` defaults to the live perf registry at scrape time;
    ``health`` is an optional callable whose dict return is merged into
    the ``/healthz`` document (run progress, degraded-engine flags, ...).
    ``routes`` mounts extra endpoints on the same server: a callable
    ``(method, raw_path, body) -> (status, content_type, body) | None``
    consulted before the built-ins for every GET/POST — return ``None``
    to decline.  This is how :mod:`repro.serve` grafts its job API onto
    the monitor without a second listener.
    """

    def __init__(
        self,
        port: int = DEFAULT_PORT,
        host: str = "127.0.0.1",
        registry: "MetricsRegistry | None" = None,
        health: "Callable[[], dict[str, Any]] | None" = None,
        routes: "Callable[[str, str, bytes], tuple[int, str, str] | None] | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.registry = registry
        self.health = health
        self.routes = routes
        self._server: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._server is not None:
            raise RuntimeError("monitor server already started")
        server = ThreadingHTTPServer((self.host, self.port), _MonitorHandler)
        server.daemon_threads = True
        # Handler context: resolve the registry lazily so a scrape always
        # sees the current process-global registry, even after perf.reset.
        server.monitor_registry = self.registry
        server.monitor_health = self.health
        server.monitor_routes = self.routes
        self._server = server
        self.port = server.server_port
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-monitor", daemon=True
        )
        self._thread.start()
        perf.incr("obs.monitor.started")
        return self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MonitorServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
