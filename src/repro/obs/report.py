"""Summarize a run journal: ``python -m repro report <journal.jsonl>``.

Turns the raw event stream back into the questions the hybrid scheduler's
adaptivity raises (Sec. VI-D): which MOs consumed the cycle budget, which
routing jobs resynthesized and why (health fingerprint before/after), and
what the per-synthesis latency distribution looked like.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.obs.journal import iter_events


def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact linear-interpolation percentile over raw samples."""
    if not sorted_values:
        return math.nan
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def summarize_journal(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Reduce journal records to a structured run summary.

    Returns a plain dict (JSON-friendly) with keys:

    * ``runs`` — list of ``{"cycles", "success", "failure", "resyntheses"}``
      from run.start/run.end pairs;
    * ``mos`` — per-MO ``{"activated", "done", "cycles", "resyntheses"}``;
    * ``resyntheses`` — the resynthesis table (cycle, mo, droplet,
      fingerprints, latency);
    * ``synthesis_ms`` — ``{"count", "p50", "p90", "p99", "mean", "max"}``
      over per-synthesis wall milliseconds;
    * ``stalls`` / ``recoveries`` / ``transport_failures`` /
      ``degradation_crossings`` — event counts;
    * ``solves`` — where synthesis actually ran: ``{"router", "worker",
      "worker_pids"}`` (worker-side solves are the ``worker.synthesis``
      events merged back from pool workers, stamped with their origin
      pid);
    * ``telemetry`` — streaming-telemetry activity from the
      :class:`~repro.obs.pump.TelemetryPump`: ``{"snapshots",
      "resource_samples", "peak_rss_kb", "workers_alive",
      "last_metrics"}`` (zeros/None without a pump);
    * ``engine`` — fault-tolerance activity of the synthesis engine:
      ``{"faults": {kind: count}, "rebuilds", "deadline_reaps",
      "degraded", "batch"}`` (all zero/False for a run without a worker
      pool); ``batch`` counts the batched presynthesis waves
      (``{"waves", "jobs", "sync_waves"}``).
    """
    records = list(records)

    runs = []
    for end in iter_events(records, "run.end"):
        runs.append({
            "cycles": end.get("cycles"),
            "success": end.get("success"),
            "failure": end.get("failure"),
            "resyntheses": end.get("resyntheses"),
        })

    mos: dict[str, dict[str, Any]] = {}
    for rec in records:
        event = rec.get("event", "")
        if not event.startswith("mo.") and event != "resynthesis":
            continue
        name = rec.get("mo")
        if name is None:
            continue
        entry = mos.setdefault(name, {
            "activated": None, "done": None, "cycles": None,
            "resyntheses": 0,
        })
        if event == "mo.activated":
            entry["activated"] = rec.get("cycle")
        elif event == "mo.done":
            entry["done"] = rec.get("cycle")
            if entry["activated"] is not None and entry["done"] is not None:
                entry["cycles"] = entry["done"] - entry["activated"]
        elif event == "resynthesis":
            entry["resyntheses"] += 1

    resyntheses = [
        {
            "cycle": rec.get("cycle"),
            "mo": rec.get("mo"),
            "droplet": rec.get("droplet"),
            "fp_before": rec.get("fp_before"),
            "fp_after": rec.get("fp_after"),
            "latency_cycles": rec.get("latency_cycles"),
        }
        for rec in iter_events(records, "resynthesis")
    ]

    # Synthesis latencies regardless of where the solve ran: router-side
    # "synthesis" events plus worker-side "worker.synthesis" events merged
    # back from the pool (batch members carry per-wave batch_ms, not a
    # per-member ms, and are excluded from the wall distribution).
    router_events = iter_events(records, "synthesis")
    worker_events = iter_events(records, "worker.synthesis")
    latencies = sorted(
        float(rec["ms"])
        for rec in router_events + worker_events
        if rec.get("ms") is not None
    )
    synthesis_ms = {
        "count": len(latencies),
        "p50": _percentile(latencies, 0.50),
        "p90": _percentile(latencies, 0.90),
        "p99": _percentile(latencies, 0.99),
        "mean": (sum(latencies) / len(latencies)) if latencies else math.nan,
        "max": latencies[-1] if latencies else math.nan,
    }

    fault_kinds: dict[str, int] = {}
    for rec in iter_events(records, "engine.fault"):
        kind = str(rec.get("kind", "unknown"))
        fault_kinds[kind] = fault_kinds.get(kind, 0) + 1
    batch_events = iter_events(records, "engine.batch.submit")
    engine = {
        "faults": fault_kinds,
        "rebuilds": len(iter_events(records, "engine.rebuild")),
        "deadline_reaps": len(iter_events(records, "engine.deadline")),
        "degraded": bool(iter_events(records, "engine.degraded")),
        # Batched presynthesis waves: one event per
        # SynthesisEngine.presynthesize_batch call that accepted jobs;
        # ``pooled: false`` marks the in-process (no-pool) fallback.
        "batch": {
            "waves": len(batch_events),
            "jobs": sum(int(rec.get("jobs", 0)) for rec in batch_events),
            "sync_waves": sum(
                1 for rec in batch_events if not rec.get("pooled", True)
            ),
        },
    }

    solves = {
        "router": len(router_events),
        "worker": len(worker_events),
        "worker_pids": sorted({
            rec["worker_pid"]
            for rec in worker_events
            if rec.get("worker_pid") is not None
        }),
    }

    snapshots = iter_events(records, "telemetry.snapshot")
    resource_samples = iter_events(records, "telemetry.resources")
    rss_values = [
        rec["process"]["rss_kb"]
        for rec in resource_samples
        if isinstance(rec.get("process"), dict)
        and rec["process"].get("rss_kb") is not None
    ]
    alive_values = [
        rec["workers_alive"]
        for rec in resource_samples
        if rec.get("workers_alive") is not None
    ]
    telemetry = {
        "snapshots": len(snapshots),
        "resource_samples": len(resource_samples),
        "peak_rss_kb": max(rss_values) if rss_values else None,
        "workers_alive": alive_values[-1] if alive_values else None,
        "last_metrics": snapshots[-1].get("metrics") if snapshots else None,
    }

    return {
        "events": len(records),
        "runs": runs,
        "mos": mos,
        "resyntheses": resyntheses,
        "synthesis_ms": synthesis_ms,
        "solves": solves,
        "telemetry": telemetry,
        "stalls": len(iter_events(records, "droplet.stall")),
        "recoveries": len(iter_events(records, "mo.recovered")),
        "transport_failures": len(iter_events(records, "transport.failure")),
        "degradation_crossings": sum(
            int(rec.get("cells", 1))
            for rec in iter_events(records, "degradation.crossing")
        ),
        "engine": engine,
    }


def _fmt_ms(value: float) -> str:
    return "-" if value is None or math.isnan(value) else f"{value:.2f}"


def sanitize_summary(value: Any) -> Any:
    """A JSON-safe deep copy: NaN / infinity become ``None``.

    ``json.dumps`` would happily emit bare ``NaN`` (invalid JSON that many
    parsers reject); the ``--json`` report path round-trips through this
    instead.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: sanitize_summary(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_summary(v) for v in value]
    return value


def format_report(summary: dict[str, Any]) -> str:
    """Render a :func:`summarize_journal` summary for the terminal."""
    if not summary.get("events"):
        return "journal is empty: no events recorded"
    lines: list[str] = []
    runs = summary["runs"]
    if runs:
        for idx, run in enumerate(runs, start=1):
            status = "ok" if run["success"] else (
                f"FAILED ({run['failure']})"
            )
            lines.append(
                f"run {idx}: {status}  cycles={run['cycles']} "
                f"resyntheses={run['resyntheses']}"
            )
    else:
        lines.append("(journal has no completed run.end record)")
    lines.append(f"journal events: {summary['events']}")

    mos = summary["mos"]
    if mos:
        lines.append("")
        lines.append("per-MO cycle budget:")
        lines.append(f"  {'mo':16s} {'activated':>9s} {'done':>6s} "
                     f"{'cycles':>7s} {'resyn':>6s}")
        for name, entry in sorted(
            mos.items(),
            key=lambda kv: (kv[1]["activated"] is None,
                            kv[1]["activated"] or 0),
        ):
            act = "-" if entry["activated"] is None else str(entry["activated"])
            done = "-" if entry["done"] is None else str(entry["done"])
            cyc = "-" if entry["cycles"] is None else str(entry["cycles"])
            lines.append(f"  {name:16s} {act:>9s} {done:>6s} {cyc:>7s} "
                         f"{entry['resyntheses']:6d}")

    resyn = summary["resyntheses"]
    lines.append("")
    if resyn:
        lines.append(f"resyntheses ({len(resyn)}):")
        lines.append(f"  {'cycle':>5s}  {'mo':16s} {'droplet':>7s}  "
                     f"fingerprint before -> after")
        for row in resyn:
            lines.append(
                f"  {row['cycle'] if row['cycle'] is not None else '-':>5}  "
                f"{(row['mo'] or '?'):16s} "
                f"{row['droplet'] if row['droplet'] is not None else '-':>7}  "
                f"{row['fp_before'] or '?'} -> {row['fp_after'] or '?'}"
            )
    else:
        lines.append("resyntheses: none")

    s = summary["synthesis_ms"]
    lines.append("")
    lines.append(
        f"synthesis latency: n={s['count']} p50={_fmt_ms(s['p50'])}ms "
        f"p90={_fmt_ms(s['p90'])}ms p99={_fmt_ms(s['p99'])}ms "
        f"mean={_fmt_ms(s['mean'])}ms max={_fmt_ms(s['max'])}ms"
    )
    solves = summary.get("solves") or {}
    if solves.get("worker"):
        pids = solves.get("worker_pids") or []
        lines.append(
            f"solves: router={solves.get('router', 0)} "
            f"worker={solves['worker']} "
            f"across {len(pids)} worker process(es)"
        )
    lines.append(
        f"stalls={summary['stalls']} recoveries={summary['recoveries']} "
        f"transport failures={summary['transport_failures']} "
        f"degradation crossings={summary['degradation_crossings']} cells"
    )
    telemetry = summary.get("telemetry") or {}
    if telemetry.get("snapshots") or telemetry.get("resource_samples"):
        peak = telemetry.get("peak_rss_kb")
        alive = telemetry.get("workers_alive")
        lines.append(
            f"telemetry: {telemetry.get('snapshots', 0)} snapshot(s), "
            f"{telemetry.get('resource_samples', 0)} resource sample(s)"
            + (f", peak rss {peak / 1024:.1f} MiB" if peak else "")
            + (f", workers alive {alive}" if alive is not None else "")
        )
    engine = summary.get("engine") or {}
    batch = engine.get("batch") or {}
    if batch.get("waves"):
        lines.append(
            f"batched presynthesis: {batch['waves']} wave(s), "
            f"{batch['jobs']} jobs"
            + (
                f" ({batch['sync_waves']} in-process)"
                if batch.get("sync_waves")
                else ""
            )
        )
    if (
        engine.get("faults")
        or engine.get("rebuilds")
        or engine.get("deadline_reaps")
        or engine.get("degraded")
    ):
        faults = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(engine["faults"].items())
        ) or "none"
        lines.append(
            f"engine faults: {faults}  rebuilds={engine['rebuilds']} "
            f"deadline reaps={engine['deadline_reaps']} "
            f"degraded={'yes' if engine['degraded'] else 'no'}"
        )
    return "\n".join(lines)
