"""Streaming telemetry: periodic metric snapshots and resource sampling.

The journal records *what happened*; during a long pooled run the operator
also needs *what is happening* — are synthesis latencies drifting, is a
worker leaking memory, did a pool process die.  The
:class:`TelemetryPump` is a small daemon thread that, every ``interval_s``
seconds, emits two journal events:

* ``telemetry.snapshot`` — the cumulative flat metric snapshot
  (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`) plus the *delta*
  of counters since the previous tick (quiet intervals delta to ``{}``),
  so a journal tail shows live rates and an SLO tracker can evaluate per
  window;
* ``telemetry.resources`` — RSS and CPU time of this process read from
  ``/proc/self/stat``, and per-worker liveness + resources for any pool
  worker pids the caller exposes.

Everything is opt-in: no pump, no thread, no events.  A ``tick()`` is a
registry export + a handful of ``/proc`` reads — budgeted in
``benchmarks/bench_obs_overhead.py`` against the snapshot-path gate.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Iterable

from repro import perf
from repro.obs.journal import RunJournal
from repro.obs.metrics import MetricsRegistry, state_delta

#: Default snapshot period (seconds).
DEFAULT_INTERVAL_S = 1.0

#: Whether the /proc resource sampler has anything to read (Linux).
HAVE_PROC = os.path.exists("/proc/self/stat")


def sample_process(pid: "int | None" = None) -> "dict[str, Any] | None":
    """RSS and CPU time of one process from ``/proc/<pid>/stat``.

    Returns ``{"pid", "rss_kb", "cpu_s"}`` or ``None`` when the process is
    gone or ``/proc`` is unavailable (non-Linux) — callers treat ``None``
    for a worker pid as "not alive".
    """
    try:
        with open(f"/proc/{pid if pid is not None else 'self'}/stat") as fh:
            data = fh.read()
    except OSError:
        return None
    # Field 2 (comm) may contain spaces/parens; everything after the last
    # ')' is fixed-position: state utime=14 stime=15 rss=24 (1-based).
    try:
        fields = data.rsplit(")", 1)[1].split()
        utime, stime = int(fields[11]), int(fields[12])
        rss_pages = int(fields[21])
        clk_tck = os.sysconf("SC_CLK_TCK")
        page_size = os.sysconf("SC_PAGE_SIZE")
    except (IndexError, ValueError, OSError):
        return None
    return {
        "pid": pid if pid is not None else os.getpid(),
        "rss_kb": rss_pages * page_size // 1024,
        "cpu_s": (utime + stime) / clk_tck,
    }


class TelemetryPump:
    """A background thread emitting periodic telemetry journal events.

    ``journal`` is the sink (typically the run's configured journal);
    ``registry`` defaults to the live :func:`repro.perf.registry` resolved
    at each tick.  ``worker_pids`` is an optional zero-argument callable
    returning the pool's current worker pids (see
    :meth:`~repro.engine.SynthesisEngine.worker_pids`) — each tick then
    reports per-worker RSS/CPU and liveness, which is how a silently
    OOM-killed worker shows up in the journal before the engine notices.
    """

    def __init__(
        self,
        journal: RunJournal,
        interval_s: float = DEFAULT_INTERVAL_S,
        registry: "MetricsRegistry | None" = None,
        worker_pids: "Callable[[], Iterable[int]] | None" = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.journal = journal
        self.interval_s = interval_s
        self._registry = registry
        self._worker_pids = worker_pids
        self._prev_state: "dict | None" = None
        self._started_at: "float | None" = None
        self._window = 0
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    @property
    def windows(self) -> int:
        """How many snapshot windows have been emitted so far."""
        return self._window

    def _resolve_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else perf.registry()

    def tick(self) -> dict[str, Any]:
        """Emit one snapshot + resources window; returns the snapshot record.

        Exposed directly (not just via the thread) so a caller can force a
        final flush on shutdown and tests can drive the pump without
        sleeping.
        """
        now = time.monotonic()
        if self._started_at is None:
            self._started_at = now
        self._window += 1
        registry = self._resolve_registry()
        state = registry.export_state()
        delta = state_delta(self._prev_state, state)
        self._prev_state = state
        snapshot_record: dict[str, Any] = {
            "window": self._window,
            "elapsed_s": round(now - self._started_at, 3),
            "interval_s": self.interval_s,
            "metrics": registry.snapshot(),
            "delta_counters": delta["counters"],
        }
        self.journal.emit("telemetry.snapshot", **snapshot_record)

        resources: dict[str, Any] = {
            "window": self._window,
            "process": sample_process(),
        }
        if self._worker_pids is not None:
            workers = {}
            for pid in self._worker_pids():
                sample = sample_process(pid)
                workers[str(pid)] = (
                    {"alive": False} if sample is None
                    else {"alive": True, **sample}
                )
            resources["workers"] = workers
            resources["workers_alive"] = sum(
                1 for w in workers.values() if w["alive"]
            )
        self.journal.emit("telemetry.resources", **resources)
        perf.incr("obs.pump.ticks")
        return snapshot_record

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except Exception:  # pragma: no cover - never kill the host run
                perf.incr("obs.pump.errors")

    def start(self) -> "TelemetryPump":
        if self._thread is not None:
            raise RuntimeError("pump already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry-pump", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, flush: bool = True) -> None:
        """Stop the thread; ``flush`` emits one final window first."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(5.0, 2 * self.interval_s))
            self._thread = None
        if flush:
            self.tick()

    def __enter__(self) -> "TelemetryPump":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
