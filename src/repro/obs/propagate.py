"""Cross-process telemetry propagation for pool workers.

Pool workers used to be telemetry black holes: the parent's tracer,
journal and metrics live in the parent process, and a
``ProcessPoolExecutor`` worker starts with all of them off.  This module
closes the loop without any side channel — telemetry piggybacks on the
payloads that already cross the process boundary:

* the parent attaches a **capture config** to each submission
  (:func:`capture_config`): which pillars are on, plus a correlation id;
* the worker wraps the solve in a :class:`WorkerCapture` — a fresh
  process-local :class:`~repro.obs.tracing.Tracer`, an in-memory
  :class:`~repro.obs.journal.RunJournal`, and a fresh
  :class:`~repro.obs.metrics.MetricsRegistry` swapped in for the task so
  the metric delta is exact — and ships the bundle back on the result
  payload;
* the parent merges the bundle (:func:`merge_telemetry`): spans graft into
  the parent trace under the ``engine.submit`` span that launched the work
  (wall-clock aligned, rendered on a per-worker Perfetto track), journal
  events replay with ``worker_pid``/``corr`` stamped on, and metric deltas
  fold into the parent registry.

When the parent has no telemetry configured, :func:`capture_config`
returns ``None``, the payload carries nothing, and the worker-side
``WorkerCapture`` is a no-op — the disabled fast path stays inside the
``bench_obs_overhead`` budget.
"""

from __future__ import annotations

import os
from typing import Any

from repro import obs, perf
from repro.obs.journal import RunJournal
from repro.obs.metrics import MetricsRegistry

#: Journal-record fields that are journal bookkeeping, not event payload;
#: stripped before a worker event is re-emitted into the parent journal
#: (which assigns its own ``seq``/``schema_version``/``cycle``).
_REPLAY_BOOKKEEPING = ("seq", "schema_version", "event", "cycle")


def capture_config(corr: "str | None" = None) -> "dict[str, Any] | None":
    """The telemetry capture request to attach to a worker payload.

    Returns ``None`` when the parent process has no telemetry switched on
    (no tracer, no journal, no explicit ``metrics`` request) — the common
    case, costing three module-global reads.  Otherwise a small dict the
    worker-side :class:`WorkerCapture` understands; metrics ship whenever
    anything is on (the delta is cheap and keeps pooled counter totals
    truthful).  ``corr`` is an opaque correlation id stamped onto worker
    spans and replayed journal events.
    """
    trace = obs.enabled()
    journal = obs.journal() is not None
    if not (trace or journal or obs.metrics_enabled()):
        return None
    return {"trace": trace, "journal": journal, "metrics": True, "corr": corr}


class WorkerCapture:
    """Worker-side capture of one task's spans, events and metric delta.

    Use as a context manager around the solve; :meth:`export` afterwards
    returns the bundle to attach to the result payload (or ``None`` when
    the capture was inactive).  The worker's own telemetry state is
    restored on exit — in particular the task's metric delta is folded
    back into the worker's cumulative registry, so worker-local totals
    stay monotone whether or not the parent consumes the bundle.
    """

    def __init__(self, config: "dict[str, Any] | None") -> None:
        self.config = config
        self._tracer = None
        self._journal: RunJournal | None = None
        self._registry: MetricsRegistry | None = None
        self._saved_registry: MetricsRegistry | None = None

    @property
    def active(self) -> bool:
        return self.config is not None

    @property
    def corr(self) -> "str | None":
        return None if self.config is None else self.config.get("corr")

    def __enter__(self) -> "WorkerCapture":
        if self.config is None:
            return self
        if self.config.get("trace"):
            self._tracer, _ = obs.configure(tracing=True)
        if self.config.get("journal"):
            self._journal = RunJournal()
            obs.configure(journal=self._journal)
        if self.config.get("metrics"):
            self._registry = MetricsRegistry()
            self._saved_registry = perf.swap_registry(self._registry)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._registry is not None and self._saved_registry is not None:
            perf.swap_registry(self._saved_registry)
            self._saved_registry.merge(self._registry.export_state())
        if self._tracer is not None or self._journal is not None:
            obs.shutdown()

    def export(self) -> "dict[str, Any] | None":
        """The pickle-safe telemetry bundle for the result payload."""
        if self.config is None:
            return None
        bundle: dict[str, Any] = {"pid": os.getpid()}
        if self.corr is not None:
            bundle["corr"] = self.corr
        if self._tracer is not None:
            bundle["wall_epoch_ns"] = self._tracer.wall_epoch_ns
            bundle["spans"] = [s.to_record() for s in self._tracer.spans]
        if self._journal is not None:
            bundle["events"] = self._journal.records
        if self._registry is not None:
            bundle["metrics"] = self._registry.export_state()
        return bundle


def merge_telemetry(
    bundle: "dict[str, Any] | None",
    parent_span_id: "int | None" = None,
) -> dict[str, int]:
    """Merge a worker's telemetry bundle into this process's obs state.

    Each pillar merges only if the corresponding parent sink still exists
    (the run may have shut telemetry down while the speculation was in
    flight).  Returns ``{"spans", "events", "metrics"}`` merge counts.
    """
    merged = {"spans": 0, "events": 0, "metrics": 0}
    if not bundle:
        return merged
    pid = bundle.get("pid")
    corr = bundle.get("corr")

    tracer = obs.tracer()
    spans = bundle.get("spans")
    if tracer is not None and spans:
        merged["spans"] = tracer.adopt(
            spans,
            parent_id=parent_span_id,
            pid=pid,
            wall_epoch_ns=bundle.get("wall_epoch_ns"),
        )

    journal = obs.journal()
    events = bundle.get("events")
    if journal is not None and events:
        for record in events:
            fields = {
                key: value
                for key, value in record.items()
                if key not in _REPLAY_BOOKKEEPING
            }
            if pid is not None:
                fields.setdefault("worker_pid", pid)
            if corr is not None:
                fields.setdefault("corr", corr)
            journal.emit(
                record.get("event", "worker.event"),
                cycle=record.get("cycle"),
                **fields,
            )
        merged["events"] = len(events)

    metrics = bundle.get("metrics")
    if metrics:
        perf.merge(metrics)
        merged["metrics"] = 1

    if merged["spans"] or merged["events"] or merged["metrics"]:
        perf.incr("obs.worker.merges")
    return merged
