"""The admission queue: priority-ordered, depth-gauged, closeable.

A thin wrapper over ``heapq`` + condition variable rather than
``queue.PriorityQueue`` for three serving-specific behaviours: strict
(priority, FIFO) ordering without comparing job objects, a ``close()``
that wakes every blocked worker exactly once (drain), and a ``drain()``
that atomically empties the backlog so unstarted jobs can be rejected at
shutdown.  Depth is exported as the ``serve.queue.depth`` gauge on every
transition.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from repro import perf
from repro.serve.job import AssayJob


class JobQueue:
    """Priority admission queue (higher ``spec.priority`` runs first)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, AssayJob]] = []
        self._tick = itertools.count()
        self._closed = False

    def put(self, job: AssayJob) -> None:
        """Enqueue; raises ``RuntimeError`` once the queue is closed."""
        with self._nonempty:
            if self._closed:
                raise RuntimeError("queue is closed")
            heapq.heappush(
                self._heap, (-job.spec.priority, next(self._tick), job)
            )
            perf.set_gauge("serve.queue.depth", float(len(self._heap)))
            self._nonempty.notify()

    def get(self, timeout: float | None = None) -> AssayJob | None:
        """Next job by (priority, FIFO); ``None`` on timeout or close."""
        with self._nonempty:
            while not self._heap:
                if self._closed:
                    return None
                if not self._nonempty.wait(timeout):
                    return None
            _, _, job = heapq.heappop(self._heap)
            perf.set_gauge("serve.queue.depth", float(len(self._heap)))
            return job

    def drain(self) -> list[AssayJob]:
        """Atomically remove and return every queued job (drain path)."""
        with self._nonempty:
            jobs = [job for _, _, job in sorted(self._heap)]
            self._heap.clear()
            perf.set_gauge("serve.queue.depth", 0.0)
            return jobs

    def close(self) -> None:
        """Stop accepting puts and wake every blocked ``get``."""
        with self._nonempty:
            self._closed = True
            self._nonempty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
