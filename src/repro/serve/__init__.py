"""``repro.serve`` — the multi-assay serving core.

A resident process hosting one shared synthesis engine + strategy store
and multiplexing N concurrent assay jobs onto them over a stdlib
HTTP/JSONL API.  See :mod:`repro.serve.service` for the API surface and
the drain semantics, :mod:`repro.serve.scheduler` for the worker model,
and :mod:`repro.serve.runner` for the trace-identity contract with solo
``repro run`` executions.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.job import (
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    REJECTED,
    RUNNING,
    AssayJob,
    AssaySpec,
)
from repro.serve.queue import JobQueue
from repro.serve.runner import AssayOutcome, execute_assay
from repro.serve.scheduler import AssayScheduler
from repro.serve.service import ServeDraining, ServeService

__all__ = [
    "AssayJob",
    "AssayOutcome",
    "AssayScheduler",
    "AssaySpec",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "JobQueue",
    "QUEUED",
    "REJECTED",
    "RUNNING",
    "ServeClient",
    "ServeDraining",
    "ServeError",
    "ServeService",
    "execute_assay",
]
