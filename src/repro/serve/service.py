"""The serving core: queue + scheduler + shared engine + HTTP surface.

:class:`ServeService` is the resident process that ``repro serve``
runs: one shared :class:`~repro.engine.pool.SynthesisEngine` and one
shared :class:`~repro.engine.store.StrategyStore` multiplexed across N
concurrent assays, with a stdlib HTTP/JSONL API grafted onto the
existing :class:`~repro.obs.monitor.MonitorServer` (one listener serves
``/metrics``, ``/healthz`` *and* the job API):

* ``POST /jobs`` — submit an assay spec (JSON body); ``202`` with the
  job id, ``400`` on a bad spec, ``503`` while draining;
* ``GET /jobs`` — summary list of every known job;
* ``GET /jobs/<id>`` — one job's full document (state, spec, result);
* ``GET /jobs/<id>/events?since=N`` — that job's journal records as
  JSONL, paged by buffer offset; the trailing control line
  ``{"event": "serve.events.page", "next": M, "state": ...}`` carries
  the offset to resume from and the job's current state (so a client
  can tail events until the state goes terminal).

Per-job correlation works by construction: the scheduler wraps each run
in ``journal_scope(job_id=...)``, and this service installs a fan-out
journal sink that routes every record carrying a ``job_id`` into that
job's bounded event buffer (optionally teeing all records to a JSONL
file for post-mortem ``repro report``).

Graceful shutdown (:meth:`drain`): new submissions 503, queued jobs get
their chance within the drain deadline, still-queued jobs past the
deadline are rejected, the engine and store close (salvaging worker
telemetry), and ``serve.drain`` begin/end events bracket the whole
sequence in the journal.
"""

from __future__ import annotations

import json
import threading
from typing import Any

from repro import obs, perf
from repro.serve.job import (
    DONE,
    FAILED,
    QUEUED,
    REJECTED,
    RUNNING,
    AssayJob,
    AssaySpec,
)
from repro.serve.queue import JobQueue
from repro.serve.runner import AssayOutcome
from repro.serve.scheduler import AssayScheduler

_JSON = "application/json; charset=utf-8"
_JSONL = "application/jsonl; charset=utf-8"


class ServeDraining(RuntimeError):
    """Raised by :meth:`ServeService.submit` once a drain has begun."""


class _JournalFan:
    """Journal sink: route records by ``job_id``, optionally tee to file."""

    def __init__(self, service: "ServeService", path: Any = None) -> None:
        self._service = service
        self._lock = threading.Lock()
        self._fh = open(path, "w", encoding="utf-8") if path else None

    def __call__(self, record: dict[str, Any]) -> None:
        job_id = record.get("job_id")
        if job_id is not None:
            job = self._service.job(str(job_id))
            if job is not None:
                job.record_event(record)
        if self._fh is not None:
            with self._lock:
                if self._fh is not None:
                    self._fh.write(json.dumps(record) + "\n")
                    self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class ServeService:
    """A resident multi-assay serving process (see module docstring).

    ``engine_workers`` follows the ``repro run --workers`` convention
    (1 = synchronous engine, 0 = one process per core, N>1 = pool of N);
    the engine is created with ``admission_floor=True`` so a lone tenant
    on a single-core host never pays for speculation it cannot overlap.
    ``store_path`` of ``None`` serves without a persistent store (memo
    and library warmth only); ``keep_traces=True`` retains each job's
    ``ExecutionTrace`` in memory for bit-identity checks (tests, bench).
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        serve_workers: int = 2,
        engine_workers: int = 1,
        store_path: Any = None,
        prefetch: bool = True,
        drain_deadline_s: float = 30.0,
        keep_traces: bool = False,
        journal_path: Any = None,
        engine_retries: int = 2,
        engine_deadline_ms: float | None = None,
    ) -> None:
        from repro.engine import StrategyStore, SynthesisEngine
        from repro.obs.monitor import MonitorServer

        self.drain_deadline_s = drain_deadline_s
        self.keep_traces = keep_traces
        self._lock = threading.RLock()
        self._jobs: dict[str, AssayJob] = {}
        self._order: list[str] = []
        self._traces: dict[str, Any] = {}
        self._draining = False
        self._drain_done = threading.Event()
        self._drain_summary: dict[str, int] = {}
        self._stopped = False

        # store_path: None = no persistent store; "auto" = the default
        # cache location (StrategyStore(None)); anything else = that path.
        if store_path is None:
            store = None
        elif store_path == "auto":
            store = StrategyStore(None)
        else:
            store = StrategyStore(store_path)
        self.engine = SynthesisEngine(
            workers=engine_workers, store=store, prefetch=prefetch,
            retries=engine_retries, deadline_ms=engine_deadline_ms,
            admission_floor=True,
        )
        self.queue = JobQueue()
        self.scheduler = AssayScheduler(
            self.queue, workers=serve_workers, engine=self.engine,
            on_finish=self._job_finished,
        )
        self._fan = _JournalFan(self, journal_path)
        self.monitor = MonitorServer(
            port=port, host=host, health=self._health, routes=self._routes
        )

    # -- lifecycle -------------------------------------------------------

    def start(self) -> int:
        """Configure telemetry, bind the HTTP listener, start workers."""
        obs.configure(journal=self._fan, metrics=True)
        port = self.monitor.start()
        self.scheduler.start()
        obs.journal_event(
            "serve.start", port=port,
            serve_workers=self.scheduler.workers,
            engine_workers=self.engine.workers,
            pooled=self.engine.pooled,
        )
        return port

    @property
    def url(self) -> str:
        return self.monitor.url

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def drain(self, deadline_s: float | None = None) -> dict[str, int]:
        """Stop admissions, settle the backlog, tear everything down.

        Returns a small summary dict (also journaled as the
        ``serve.drain`` end event).  Idempotent: later calls return the
        first drain's summary.
        """
        with self._lock:
            if self._draining:
                already = True
            else:
                already = False
                self._draining = True
        if already:
            # A drain is running (or done) on another thread: wait it out.
            self._drain_done.wait(
                (self.drain_deadline_s if deadline_s is None else deadline_s)
                + 60.0
            )
            return dict(self._drain_summary)
        deadline_s = (
            self.drain_deadline_s if deadline_s is None else deadline_s
        )
        obs.journal_event(
            "serve.drain", phase="begin", deadline_s=deadline_s,
            queued=len(self.queue), inflight=self.scheduler.inflight,
        )
        settled = self.scheduler.wait_idle(timeout=deadline_s)
        rejected = 0
        if not settled:
            for job in self.queue.drain():
                job.state = REJECTED
                job.error = "cancelled: drain deadline expired before start"
                job.mark_finished()
                job.mark_done()
                rejected += 1
                perf.incr("serve.jobs.rejected")
                obs.journal_event(
                    "serve.job.rejected", job_id=job.id, reason="drain"
                )
        self.scheduler.stop(timeout=max(deadline_s, 1.0))
        self.engine.close()
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            summary = {
                "settled": int(settled),
                "rejected_at_drain": rejected,
                **{f"jobs_{state}": n for state, n in sorted(states.items())},
            }
            self._drain_summary = summary
        obs.journal_event("serve.drain", phase="end", **summary)
        self._fan.close()
        obs.shutdown()
        self.monitor.stop()
        with self._lock:
            self._stopped = True
        self._drain_done.set()
        return summary

    def __enter__(self) -> "ServeService":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        if not self._stopped:
            self.drain()

    # -- job management --------------------------------------------------

    def submit(self, spec: AssaySpec) -> AssayJob:
        """Validate, register and enqueue one job (thread-safe)."""
        spec.validate()
        with self._lock:
            if self._draining:
                perf.incr("serve.jobs.rejected")
                raise ServeDraining("server is draining; not accepting jobs")
            job = AssayJob(spec=spec)
            self._jobs[job.id] = job
            self._order.append(job.id)
        self.queue.put(job)
        perf.incr("serve.jobs.submitted")
        obs.journal_event(
            "serve.job.queued", job_id=job.id, bioassay=spec.bioassay,
            seed=spec.seed, priority=spec.priority,
        )
        return job

    def job(self, job_id: str) -> AssayJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[AssayJob]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def trace(self, job_id: str) -> Any:
        """A finished job's retained ExecutionTrace (``keep_traces`` only)."""
        with self._lock:
            return self._traces.get(job_id)

    def _job_finished(
        self, job: AssayJob, outcome: "AssayOutcome | None"
    ) -> None:
        if self.keep_traces and outcome is not None:
            with self._lock:
                self._traces[job.id] = outcome.trace

    # -- HTTP surface (mounted on the MonitorServer) ---------------------

    def _health(self) -> dict[str, Any]:
        with self._lock:
            states: dict[str, int] = {
                state: 0 for state in (QUEUED, RUNNING, DONE, FAILED, REJECTED)
            }
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            draining = self._draining
        return {
            "role": "serve",
            "draining": draining,
            "queue_depth": len(self.queue),
            "inflight": self.scheduler.inflight,
            "jobs": states,
            "engine_degraded": self.engine.degraded,
        }

    def _routes(
        self, method: str, raw_path: str, body: bytes
    ) -> tuple[int, str, str] | None:
        path, _, query = raw_path.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/jobs":
            if method == "POST":
                return self._post_jobs(body)
            if method == "GET":
                return self._get_jobs()
            return 405, _JSON, json.dumps({"error": "method not allowed"})
        if path.startswith("/jobs/"):
            parts = path.split("/")  # "", "jobs", <id>[, "events"]
            if method != "GET" or len(parts) not in (3, 4):
                return None
            job = self.job(parts[2])
            if job is None:
                return 404, _JSON, json.dumps(
                    {"error": f"no such job: {parts[2]}"}
                )
            if len(parts) == 3:
                return self._get_job(job, query)
            if parts[3] == "events":
                return self._get_events(job, query)
        return None

    def _get_job(self, job: AssayJob, query: str) -> tuple[int, str, str]:
        # ?wait=S long-polls until the job is terminal (capped at 30 s per
        # request; the client loops).  Each request runs on its own
        # ThreadingHTTPServer thread, so blocking here wedges nothing.
        for part in query.split("&"):
            if part.startswith("wait="):
                try:
                    wait_s = min(max(float(part[len("wait="):]), 0.0), 30.0)
                except ValueError:
                    return 400, _JSON, json.dumps(
                        {"error": f"bad wait: {part!r}"}
                    )
                if job.state in (QUEUED, RUNNING):
                    job.wait_done(wait_s)
        return 200, _JSON, json.dumps(job.to_dict())

    def _post_jobs(self, body: bytes) -> tuple[int, str, str]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
            spec = AssaySpec.from_dict(payload)
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, _JSON, json.dumps({"error": str(exc)})
        try:
            job = self.submit(spec)
        except ServeDraining as exc:
            return 503, _JSON, json.dumps({"error": str(exc)})
        return 202, _JSON, json.dumps({"id": job.id, "state": job.state})

    def _get_jobs(self) -> tuple[int, str, str]:
        summaries = [
            {"id": job.id, "state": job.state,
             "bioassay": job.spec.bioassay, "seed": job.spec.seed}
            for job in self.jobs()
        ]
        return 200, _JSON, json.dumps({"jobs": summaries})

    def _get_events(self, job: AssayJob, query: str) -> tuple[int, str, str]:
        since = 0
        for part in query.split("&"):
            if part.startswith("since="):
                try:
                    since = max(int(part[len("since="):]), 0)
                except ValueError:
                    return 400, _JSON, json.dumps(
                        {"error": f"bad since: {part!r}"}
                    )
        page, next_offset = job.events(since)
        lines = [json.dumps(record) for record in page]
        lines.append(json.dumps({
            "event": "serve.events.page",
            "job_id": job.id,
            "next": next_offset,
            "state": job.state,
        }))
        return 200, _JSONL, "\n".join(lines) + "\n"
