"""Job model of the serving layer: what one queued assay request is.

An :class:`AssaySpec` is the immutable description of the work (which
bioassay, which sampled chip, which seed); an :class:`AssayJob` wraps one
spec with serving state — queue position, lifecycle timestamps, the run
outcome, and the per-job journal event buffer the HTTP event stream
serves.  Specs deliberately mirror the ``repro run`` CLI options so a
submitted job reproduces, bit for bit, the trace of the equivalent solo
``repro run`` invocation (the core correctness gate of the serving
layer).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

#: Lifecycle states of a served job, in order.  ``rejected`` is terminal
#: for jobs refused at admission (draining server) or cancelled from the
#: queue when a drain deadline expires before they run.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
REJECTED = "rejected"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, REJECTED)

_ids = itertools.count(1)


def next_job_id() -> str:
    """Process-unique, monotonically increasing job ids (``job-7``)."""
    return f"job-{next(_ids)}"


@dataclass(frozen=True)
class AssaySpec:
    """One assay request: bioassay + chip sampling + execution bounds.

    Field-for-field this is the deterministic core of the ``repro run``
    options: the same spec always samples the same chip and simulator
    RNG streams, so the execution trace is a pure function of the spec
    (plus strategy content, which the engine/store keep bit-identical to
    the synchronous path).
    """

    bioassay: str = "covid-rat"
    width: int = 60
    height: int = 30
    seed: int = 0
    max_cycles: int = 800
    tau_min: float = 0.5
    tau_max: float = 0.9
    c_min: float = 200.0
    c_max: float = 500.0
    priority: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on the first out-of-domain field."""
        from repro.bioassay.library import ALL_BIOASSAYS

        if self.bioassay not in ALL_BIOASSAYS:
            raise ValueError(
                f"unknown bioassay {self.bioassay!r}; "
                f"known: {', '.join(sorted(ALL_BIOASSAYS))}"
            )
        if self.width < 8 or self.height < 8:
            raise ValueError(
                f"chip too small: {self.width}x{self.height} (min 8x8)"
            )
        if self.max_cycles < 1:
            raise ValueError(f"max_cycles must be >= 1, got {self.max_cycles}")
        if not (0.0 < self.tau_min <= self.tau_max):
            raise ValueError(
                f"bad tau range ({self.tau_min}, {self.tau_max})"
            )
        if not (0.0 < self.c_min <= self.c_max):
            raise ValueError(f"bad c range ({self.c_min}, {self.c_max})")

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AssaySpec":
        """Build and validate a spec from a decoded JSON body.

        Unknown keys are an error (they would silently change nothing —
        the classic mistyped-field trap); missing keys take the CLI
        defaults above.
        """
        if not isinstance(payload, dict):
            raise ValueError(
                f"job spec must be a JSON object, got {type(payload).__name__}"
            )
        known = cls.__dataclass_fields__
        unknown = sorted(set(payload) - set(known))
        if unknown:
            raise ValueError(
                f"unknown spec field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        coerced: dict[str, Any] = {}
        for name, value in payload.items():
            target = known[name].type
            try:
                if target == "int":
                    coerced[name] = int(value)
                elif target == "float":
                    coerced[name] = float(value)
                else:
                    coerced[name] = str(value)
            except (TypeError, ValueError) as exc:
                raise ValueError(f"bad value for {name!r}: {value!r}") from exc
        spec = cls(**coerced)
        spec.validate()
        return spec

    def to_dict(self) -> dict[str, Any]:
        return {
            name: getattr(self, name) for name in self.__dataclass_fields__
        }


@dataclass
class AssayJob:
    """One spec plus its serving lifecycle.

    Mutable state is guarded by the owning service's structures (the
    scheduler moves ``state`` forward under the service lock); the events
    buffer has its own lock because the journal sink appends from
    arbitrary emitting threads while HTTP readers page through it.
    """

    spec: AssaySpec
    id: str = field(default_factory=next_job_id)
    state: str = QUEUED
    #: Wall-clock timestamps (``time.time``) — what HTTP clients see.
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    max_events: int = 10_000

    def __post_init__(self) -> None:
        self._events: list[dict[str, Any]] = []
        self._dropped = 0
        self._events_lock = threading.Lock()
        self._done = threading.Event()
        # Monotonic twins of the wall-clock timestamps: durations must not
        # jump when NTP steps the system clock mid-job.
        self._submitted_mono = time.monotonic()
        self._started_mono: float | None = None
        self._finished_mono: float | None = None

    # -- lifecycle timestamps --------------------------------------------

    def mark_started(self) -> None:
        """Stamp the start on both clocks (wall for clients, mono for
        durations)."""
        self.started_at = time.time()
        self._started_mono = time.monotonic()

    def mark_finished(self) -> None:
        """Stamp the finish on both clocks."""
        self.finished_at = time.time()
        self._finished_mono = time.monotonic()

    # -- terminal-state signalling (HTTP long-poll) ----------------------

    def mark_done(self) -> None:
        """Signal that the job reached a terminal state."""
        self._done.set()

    def wait_done(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; ``False`` on timeout."""
        return self._done.wait(timeout)

    # -- event buffer (journal sink -> HTTP event stream) ----------------

    def record_event(self, record: dict[str, Any]) -> None:
        """Append one journal record; oldest records drop past the cap."""
        with self._events_lock:
            self._events.append(record)
            if len(self._events) > self.max_events:
                del self._events[0]
                self._dropped += 1

    def events(self, since: int = 0) -> tuple[list[dict[str, Any]], int]:
        """Records after buffer offset ``since``; returns (page, next).

        ``next`` is the offset to pass as the next ``since`` — offsets
        count all records ever buffered, so a reader that fell behind a
        trimmed buffer resumes at the oldest retained record rather than
        silently re-reading.
        """
        with self._events_lock:
            start = max(since - self._dropped, 0)
            page = self._events[start:]
            return page, self._dropped + len(self._events)

    # -- documents -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "submitted_at": round(self.submitted_at, 6),
        }
        if self.started_at is not None:
            document["started_at"] = round(self.started_at, 6)
        if self.finished_at is not None:
            document["finished_at"] = round(self.finished_at, 6)
        if self._started_mono is not None:
            document["queued_ms"] = round(
                (self._started_mono - self._submitted_mono) * 1e3, 3
            )
        if self._finished_mono is not None and self._started_mono is not None:
            document["run_ms"] = round(
                (self._finished_mono - self._started_mono) * 1e3, 3
            )
        if self.result is not None:
            document["result"] = self.result
        if self.error is not None:
            document["error"] = self.error
        return document
