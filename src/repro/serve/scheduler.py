"""The assay scheduler: N worker threads draining the job queue.

Each worker claims one job at a time, opens a per-job tenant view on the
shared :class:`~repro.engine.pool.SynthesisEngine` (so fair-share
admission arbitrates speculative submits between concurrently running
assays), wraps the run in a :func:`~repro.obs.journal.journal_scope`
stamping ``job_id`` into every journal record the run emits, and moves
the job through its lifecycle states.  Worker threads — not processes —
because the heavy lifting (value iteration) already happens either in
the engine's process pool or in numpy kernels that release the GIL, and
threads let every assay share one store memo and one strategy library
warm set for free.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Callable

from repro import obs, perf
from repro.serve.job import DONE, FAILED, RUNNING, AssayJob
from repro.serve.queue import JobQueue
from repro.serve.runner import AssayOutcome, execute_assay


class AssayScheduler:
    """Fan a :class:`JobQueue` out over ``workers`` assay threads.

    ``engine`` is the shared :class:`SynthesisEngine` (or ``None`` for
    engine-less serving); ``on_finish`` is called with
    ``(job, outcome | None)`` after every job settles, letting the
    service retain traces and update indexes without the scheduler
    knowing about HTTP.
    """

    def __init__(
        self,
        queue: JobQueue,
        workers: int = 2,
        engine: Any = None,
        on_finish: "Callable[[AssayJob, AssayOutcome | None], None] | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"serve workers must be >= 1, got {workers}")
        self.queue = queue
        self.engine = engine
        self.on_finish = on_finish
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        self._inflight = 0
        self._idle = threading.Condition()
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise RuntimeError("scheduler already started")
        self._started = True
        for thread in self._threads:
            thread.start()

    def stop(self, timeout: float = 30.0) -> bool:
        """Close the queue and join the workers; ``True`` if all exited."""
        self.queue.close()
        deadline = time.monotonic() + timeout
        alive = False
        for thread in self._threads:
            thread.join(timeout=max(deadline - time.monotonic(), 0.0))
            alive = alive or thread.is_alive()
        return not alive

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty and no job is running.

        Polls (50 ms) rather than relying purely on the finish
        notification: a job popped from the queue but not yet marked
        in-flight is invisible to both counters for a moment, and the
        poll re-checks past that window.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        idle_streak = 0
        while idle_streak < 2:  # two observations span the pop window
            with self._idle:
                if len(self.queue) or self._inflight:
                    idle_streak = 0
                    if deadline is not None and time.monotonic() >= deadline:
                        return False
                    self._idle.wait(0.05)
                    continue
            idle_streak += 1
            if idle_streak < 2:
                time.sleep(0.02)
        return True

    @property
    def inflight(self) -> int:
        with self._idle:
            return self._inflight

    @property
    def workers(self) -> int:
        return len(self._threads)

    # -- the worker loop -------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self.queue.get(timeout=0.2)
            if job is None:
                if self.queue.closed:
                    return
                continue
            self._run_job(job)

    def _run_job(self, job: AssayJob) -> None:
        with self._idle:
            self._inflight += 1
            perf.set_gauge("serve.jobs.inflight", float(self._inflight))
        job.state = RUNNING
        job.mark_started()
        view = self.engine.tenant(job.id) if self.engine is not None else None
        outcome: AssayOutcome | None = None
        try:
            with obs.journal_scope(job_id=job.id):
                obs.journal_event(
                    "serve.job.start", job_id=job.id,
                    bioassay=job.spec.bioassay, seed=job.spec.seed,
                    priority=job.spec.priority,
                )
                try:
                    outcome = execute_assay(job.spec, engine=view)
                except Exception as exc:  # noqa: BLE001 - job isolation
                    job.state = FAILED
                    job.error = (
                        f"{type(exc).__name__}: {exc}\n"
                        + traceback.format_exc(limit=8)
                    )
                    perf.incr("serve.jobs.failed")
                    obs.journal_event(
                        "serve.job.failed", job_id=job.id,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    job.result = outcome.to_result_dict()
                    job.state = DONE
                    perf.incr("serve.jobs.completed")
                    obs.journal_event(
                        "serve.job.done", job_id=job.id,
                        **job.result,
                    )
        finally:
            if view is not None:
                view.close()
            job.mark_finished()
            job.mark_done()
            if self.on_finish is not None:
                try:
                    self.on_finish(job, outcome)
                except Exception:  # noqa: BLE001 - callback isolation
                    traceback.print_exc()
            with self._idle:
                self._inflight -= 1
                perf.set_gauge("serve.jobs.inflight", float(self._inflight))
                self._idle.notify_all()
