"""A stdlib HTTP client for the serve API (``repro submit``, bench, tests).

Deliberately tiny: ``http.client`` against one base URL, JSON in/out,
no retries beyond connection reuse — the server is expected to be on
the same host (the serve layer binds 127.0.0.1 by default).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any
from urllib.parse import urlsplit

from repro.serve.job import AssaySpec


class ServeError(RuntimeError):
    """A non-2xx response from the serve API (``status`` + ``body``)."""

    def __init__(self, status: int, body: str) -> None:
        super().__init__(f"HTTP {status}: {body.strip()[:400]}")
        self.status = status
        self.body = body


class ServeClient:
    """Talk to one :class:`~repro.serve.service.ServeService` endpoint."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {base_url!r}")
        netloc = parts.netloc or parts.path  # accept "host:port" shorthand
        self.host, _, port = netloc.partition(":")
        self.port = int(port) if port else 80
        self.timeout = timeout

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, str]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload)
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            connection.close()

    def _json(self, method: str, path: str, payload: dict | None = None) -> Any:
        status, body = self._request(method, path, payload)
        if status >= 300:
            raise ServeError(status, body)
        return json.loads(body) if body else None

    # -- API verbs -------------------------------------------------------

    def submit(self, spec: "AssaySpec | dict[str, Any]") -> str:
        """POST the spec; returns the assigned job id."""
        payload = spec.to_dict() if isinstance(spec, AssaySpec) else dict(spec)
        return self._json("POST", "/jobs", payload)["id"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def events(
        self, job_id: str, since: int = 0
    ) -> tuple[list[dict[str, Any]], int, str]:
        """One page of a job's journal: ``(records, next_since, state)``."""
        status, body = self._request(
            "GET", f"/jobs/{job_id}/events?since={since}"
        )
        if status >= 300:
            raise ServeError(status, body)
        records = [json.loads(line) for line in body.splitlines() if line]
        trailer = records.pop()  # serve.events.page control record
        return records, int(trailer["next"]), str(trailer["state"])

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_s: float = 10.0
    ) -> dict[str, Any]:
        """Block until the job reaches a terminal state; returns its doc.

        Uses the server's ``?wait=S`` long-poll (one blocked request per
        ``poll_s`` window instead of a polling storm); ``poll_s`` is the
        per-request long-poll window, capped server-side at 30 s.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout:.0f}s"
                )
            window = max(min(poll_s, remaining), 0.01)
            document = self._json(
                "GET", f"/jobs/{job_id}?wait={window:.3f}"
            )
            if document["state"] not in ("queued", "running"):
                return document

    def healthz(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        status, body = self._request("GET", "/metrics")
        if status >= 300:
            raise ServeError(status, body)
        return body
