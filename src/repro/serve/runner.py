"""Execute one served assay exactly the way ``repro run`` would.

The serving layer's correctness contract is that a job's
:class:`~repro.biochip.trace.ExecutionTrace` is bit-identical to the solo
run of the same spec: same sampled chip (``default_rng(seed)``), same
simulator stream (``default_rng(seed + 1)``), same scheduler/router
construction, presynthesis only when the engine is pooled.  Everything
the shared engine adds (speculation, the cross-assay strategy store) is
latency-only by the engine's own invariants, so sharing cannot change a
trace — this module just has to not deviate from the solo code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import perf
from repro.serve.job import AssaySpec


@dataclass
class AssayOutcome:
    """What one executed job produced (kept in-process, not serialized)."""

    result: Any
    trace: Any
    duration_ms: float

    def to_result_dict(self) -> dict[str, Any]:
        """The JSON-safe result document served over ``GET /jobs/<id>``."""
        result = self.result
        document: dict[str, Any] = {
            "success": bool(result.success),
            "cycles": int(result.cycles),
            "resyntheses": int(result.resyntheses),
            "duration_ms": round(self.duration_ms, 3),
            "frames": len(self.trace.frames),
        }
        if not result.success:
            document["failure"] = str(result.failure)
        return document


def execute_assay(spec: AssaySpec, engine: Any = None) -> AssayOutcome:
    """Run one assay spec; ``engine`` is a TenantView, engine, or None.

    Mirrors ``repro.cli._cmd_run``'s single-run body — chip sampling,
    RNG streams, presynthesis gating — so served and solo traces match
    frame for frame.
    """
    from repro.bioassay.library import ALL_BIOASSAYS
    from repro.bioassay.planner import plan
    from repro.biochip.chip import MedaChip
    from repro.biochip.simulator import MedaSimulator
    from repro.biochip.trace import ExecutionTrace
    from repro.core.baseline import AdaptiveRouter
    from repro.core.scheduler import HybridScheduler

    started = time.perf_counter()
    graph = plan(ALL_BIOASSAYS[spec.bioassay](), spec.width, spec.height)
    chip = MedaChip.sample(
        spec.width, spec.height, np.random.default_rng(spec.seed),
        tau_range=(spec.tau_min, spec.tau_max),
        c_range=(spec.c_min, spec.c_max),
    )
    router = AdaptiveRouter(engine=engine)
    scheduler = HybridScheduler(graph, router, spec.width, spec.height)
    trace = ExecutionTrace()
    sim = MedaSimulator(chip, np.random.default_rng(spec.seed + 1), trace=trace)
    if engine is not None and engine.pooled:
        scheduler.presynthesize(chip.health())
    result = sim.run(scheduler, max_cycles=spec.max_cycles)
    duration_ms = (time.perf_counter() - started) * 1e3
    perf.observe("serve.assay_ms", duration_ms)
    return AssayOutcome(result=result, trace=trace, duration_ms=duration_ms)
