"""Least-squares fitting of the exponential degradation model (Fig. 6).

The paper fits ``F(n) = tau^(2n/c)`` to the measured relative-force curves
and reports per-size constants with adjusted R² above 0.94.  Note that the
model is over-parameterized: only the decay rate ``lambda = -2 ln(tau) / c``
is identifiable from a single exponential — every ``(tau, c)`` pair with the
same ratio fits identically.  We therefore expose both the identifiable rate
(:func:`fit_decay_rate`) and a two-parameter fit anchored the way the paper's
constants are (:func:`fit_force_curve` holds ``c`` near a reference scale);
tests compare reproductions on the identifiable rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit


@dataclass(frozen=True)
class ForceFit:
    """Result of fitting ``F(n) = tau^(2n/c)`` to a force curve."""

    tau: float
    c: float
    r2_adjusted: float

    @property
    def decay_rate(self) -> float:
        """The identifiable exponential rate ``-2 ln(tau) / c``."""
        return -2.0 * np.log(self.tau) / self.c

    def predict(self, n: np.ndarray) -> np.ndarray:
        """Model forces at actuation counts ``n``."""
        return self.tau ** (2.0 * np.asarray(n, dtype=float) / self.c)


def adjusted_r2(observed: np.ndarray, predicted: np.ndarray, n_params: int) -> float:
    """Adjusted coefficient of determination.

    ``R²_adj = 1 - (1 - R²) (n - 1) / (n - p - 1)`` for ``n`` samples and
    ``p`` fitted parameters.
    """
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if observed.shape != predicted.shape:
        raise ValueError("observed/predicted shapes differ")
    n = observed.size
    if n <= n_params + 1:
        raise ValueError("not enough samples for an adjusted R²")
    ss_res = float(np.sum((observed - predicted) ** 2))
    ss_tot = float(np.sum((observed - np.mean(observed)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else -np.inf
    r2 = 1.0 - ss_res / ss_tot
    return 1.0 - (1.0 - r2) * (n - 1) / (n - n_params - 1)


def fit_decay_rate(n: np.ndarray, force: np.ndarray) -> tuple[float, float]:
    """Fit ``F = exp(-lambda n)`` by linear regression on ``log F``.

    Returns ``(lambda, r2_adjusted)``.  This is the identifiable content of
    the paper's two-parameter model.  Non-positive force samples (possible
    under measurement noise near full decay) are excluded from the log fit.
    """
    n = np.asarray(n, dtype=float)
    force = np.asarray(force, dtype=float)
    mask = force > 0.0
    if mask.sum() < 3:
        raise ValueError("need at least three positive force samples")
    slope, intercept = np.polyfit(n[mask], np.log(force[mask]), 1)
    predicted = np.exp(intercept + slope * n[mask])
    return -float(slope), adjusted_r2(force[mask], predicted, n_params=1)


def fit_force_curve(
    n: np.ndarray,
    force: np.ndarray,
    c_reference: float = 800.0,
    c_slack: float = 0.25,
) -> ForceFit:
    """Two-parameter fit of ``F(n) = tau^(2n/c)`` anchored near ``c_reference``.

    ``c`` is constrained to ``c_reference * (1 ± c_slack)`` to resolve the
    (tau, c) ridge the same way the paper's reported constants do (all three
    of its ``c`` values sit near 800).  The returned adjusted R² is computed
    on the linear (not log) scale, matching how Fig. 6 reports fit quality.
    """
    n = np.asarray(n, dtype=float)
    force = np.asarray(force, dtype=float)
    if n.shape != force.shape:
        raise ValueError("n and force must have the same shape")
    if n.size < 4:
        raise ValueError("need at least four samples for the two-parameter fit")

    def model(x: np.ndarray, tau: float, c: float) -> np.ndarray:
        return tau ** (2.0 * x / c)

    c_lo, c_hi = c_reference * (1.0 - c_slack), c_reference * (1.0 + c_slack)
    popt, _ = curve_fit(
        model,
        n,
        force,
        p0=(0.55, c_reference),
        bounds=((1e-6, c_lo), (1.0, c_hi)),
        maxfev=10_000,
    )
    tau, c = float(popt[0]), float(popt[1])
    return ForceFit(
        tau=tau,
        c=c,
        r2_adjusted=adjusted_r2(force, model(n, tau, c), n_params=2),
    )


def fit_capacitance_slope(n: np.ndarray, capacitance: np.ndarray) -> tuple[float, float]:
    """Linear fit of capacitance vs actuation count (the Fig. 5 claim).

    Returns ``(slope, r2_adjusted)``; the paper's observation is that
    capacitance growth is linear in the number of actuations.
    """
    n = np.asarray(n, dtype=float)
    capacitance = np.asarray(capacitance, dtype=float)
    slope, intercept = np.polyfit(n, capacitance, 1)
    predicted = intercept + slope * n
    return float(slope), adjusted_r2(capacitance, predicted, n_params=1)
