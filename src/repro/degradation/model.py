"""Charge-trapping degradation model (Sec. IV of the paper).

The paper validates experimentally (Figs. 5-6) that the relative EWOD force a
microelectrode can exert decays exponentially with its number of actuations
``n``:

    F̄(n) ≈ τ^(2n/c)                                   (eq. 2)
    D(n)  = V(n)/Va ≈ τ^(n/c)            ∈ [0, 1]       (eq. 3)
    H(n)  = floor(2^b · D(n)),  clamped to [0, 2^b - 1]

where ``τ ∈ [0, 1]`` and ``c > 0`` are per-microelectrode degradation
constants, ``D`` is the (hidden) degradation level, and ``H`` is the health
level observable through the ``b``-bit sensing circuit of Sec. III.  The
fitted constants reported in the paper are, per electrode size,
``(τ2, c2) = (0.556, 822.7)``, ``(τ3, c3) = (0.543, 805.5)`` and
``(τ4, c4) = (0.530, 788.4)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Fitted constants reported in Fig. 6 of the paper, keyed by electrode size
#: in millimetres.  ``R²_adj > 0.94`` for all three fits.
PAPER_FITTED_CONSTANTS: dict[int, tuple[float, float]] = {
    2: (0.556, 822.7),
    3: (0.543, 805.5),
    4: (0.530, 788.4),
}

#: Number of health bits implemented by the proposed MC design (Sec. III-B).
DEFAULT_HEALTH_BITS = 2


@dataclass(frozen=True)
class DegradationParams:
    """Per-microelectrode degradation constants ``(tau, c)``.

    ``tau`` is the base of the exponential decay and ``c`` the actuation
    scale; both are strictly positive and ``tau <= 1`` (a microelectrode
    never improves with use).
    """

    tau: float
    c: float

    def __post_init__(self) -> None:
        if not 0.0 < self.tau <= 1.0:
            raise ValueError(f"tau must be in (0, 1], got {self.tau}")
        if self.c <= 0.0:
            raise ValueError(f"c must be positive, got {self.c}")

    def degradation(self, n: float | np.ndarray) -> float | np.ndarray:
        """Degradation level ``D(n) = tau^(n/c)`` (eq. 3)."""
        return self.tau ** (np.asarray(n, dtype=float) / self.c)

    def relative_force(self, n: float | np.ndarray) -> float | np.ndarray:
        """Relative EWOD force ``F̄(n) = tau^(2n/c) = D(n)²`` (eq. 2)."""
        return self.tau ** (2.0 * np.asarray(n, dtype=float) / self.c)

    def health(
        self, n: float | np.ndarray, bits: int = DEFAULT_HEALTH_BITS
    ) -> int | np.ndarray:
        """Observed health level ``H(n)`` quantized to ``bits`` bits."""
        return quantize_health(self.degradation(n), bits)

    def actuations_to_degradation(self, d: float) -> float:
        """Invert eq. 3: the ``n`` at which ``D(n)`` first reaches ``d``.

        Useful for lifetime estimation; returns ``inf`` when ``tau == 1``
        (a non-degrading microelectrode never reaches ``d < 1``).
        """
        if not 0.0 < d <= 1.0:
            raise ValueError(f"degradation level must be in (0, 1], got {d}")
        if d == 1.0:
            return 0.0
        if self.tau == 1.0:
            return float("inf")
        return self.c * np.log(d) / np.log(self.tau)


def quantize_health(
    d: float | np.ndarray, bits: int = DEFAULT_HEALTH_BITS
) -> int | np.ndarray:
    """Quantize a degradation level to the ``b``-bit health code.

    ``H = floor(2^b · D)`` clamped to ``[0, 2^b - 1]`` so that a pristine
    microelectrode (``D = 1``) reads the all-ones code, matching the "11"
    sensing result of the proposed MC design.
    """
    if bits < 1:
        raise ValueError(f"need at least one health bit, got {bits}")
    levels = 1 << bits
    arr = np.asarray(d, dtype=float)
    if np.any(arr < 0.0) or np.any(arr > 1.0):
        raise ValueError("degradation levels must lie in [0, 1]")
    h = np.floor(levels * arr).astype(int)
    h = np.minimum(h, levels - 1)
    if np.isscalar(d) or arr.ndim == 0:
        return int(h)
    return h


def health_to_degradation_estimate(
    h: int | np.ndarray, bits: int = DEFAULT_HEALTH_BITS, pessimistic: bool = False
) -> float | np.ndarray:
    """Reconstruct a degradation estimate from an observed health code.

    The controller only sees the quantized ``H``; the synthesizer needs a
    scalar force estimate.  The default mid-bucket estimator returns
    ``(H + 0.5) / 2^b``, except that ``H = 0`` maps to zero: a health-0
    microelectrode must yield zero-probability transitions (Sec. VII-D),
    otherwise the router would plan routes across dead cells.  With
    ``pessimistic=True`` the lower bucket edge ``H / 2^b`` is returned,
    which under-estimates force everywhere and yields more conservative
    routes.
    """
    levels = 1 << bits
    arr = np.asarray(h, dtype=float)
    if np.any(arr < 0) or np.any(arr > levels - 1):
        raise ValueError(f"health codes must lie in [0, {levels - 1}]")
    if pessimistic:
        est = arr / levels
    else:
        est = np.where(arr == 0, 0.0, (arr + 0.5) / levels)
    if np.isscalar(h) or arr.ndim == 0:
        return float(est)
    return est


def sample_params(
    rng: np.random.Generator,
    tau_range: tuple[float, float] = (0.5, 0.9),
    c_range: tuple[float, float] = (200.0, 500.0),
    shape: tuple[int, ...] | None = None,
) -> DegradationParams | np.ndarray:
    """Sample degradation constants ``tau ~ U(tau1, tau2)``, ``c ~ U(c1, c2)``.

    These are the distributions used for the Sec. VII-B experiments
    (``c ~ U(200, 500)``, ``tau ~ U(0.5, 0.9)``).  With ``shape`` given,
    returns an object array of :class:`DegradationParams` of that shape.
    """
    if shape is None:
        return DegradationParams(
            tau=float(rng.uniform(*tau_range)), c=float(rng.uniform(*c_range))
        )
    taus = rng.uniform(*tau_range, size=shape)
    cs = rng.uniform(*c_range, size=shape)
    out = np.empty(shape, dtype=object)
    for idx in np.ndindex(*shape):
        out[idx] = DegradationParams(tau=float(taus[idx]), c=float(cs[idx]))
    return out
