"""Microelectrode degradation: the charge-trapping model and its validation.

Implements Sec. III-C / IV of the paper: the exponential force-decay model,
the simulated PCB validation experiments (Figs. 5-6), model fitting, and the
fault-injection modes used in the evaluation (Sec. VII-C).
"""

from repro.degradation.faults import (
    CLUSTER_SIZE,
    FaultInjector,
    FaultMode,
    FaultPlan,
    no_faults,
)
from repro.degradation.fitting import (
    ForceFit,
    adjusted_r2,
    fit_capacitance_slope,
    fit_decay_rate,
    fit_force_curve,
)
from repro.degradation.model import (
    DEFAULT_HEALTH_BITS,
    PAPER_FITTED_CONSTANTS,
    DegradationParams,
    health_to_degradation_estimate,
    quantize_health,
    sample_params,
)
from repro.degradation.pcb import (
    DegradationCurve,
    Oscilloscope,
    PCBBiochip,
    PCBElectrode,
    run_degradation_experiment,
)

__all__ = [
    "CLUSTER_SIZE",
    "DEFAULT_HEALTH_BITS",
    "PAPER_FITTED_CONSTANTS",
    "DegradationCurve",
    "DegradationParams",
    "FaultInjector",
    "FaultMode",
    "FaultPlan",
    "ForceFit",
    "Oscilloscope",
    "PCBBiochip",
    "PCBElectrode",
    "adjusted_r2",
    "fit_capacitance_slope",
    "fit_decay_rate",
    "fit_force_curve",
    "health_to_degradation_estimate",
    "no_faults",
    "quantize_health",
    "run_degradation_experiment",
    "sample_params",
]
