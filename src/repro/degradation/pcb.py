"""Simulated PCB digital-microfluidic biochip for the degradation experiments.

Sec. IV-A validates the charge-trapping degradation model on a fabricated
PCB DMFB (Fig. 4): electrodes in three sizes (2x2, 3x3, 4x4 mm²), four
reservoirs, relay-driven actuation at 1.5 kHz / 200 Vpp with a 1 MOhm series
resistor, and capacitance measured from the RC charging time on an
oscilloscope.  We cannot ship the hardware, so this module simulates the
physics the experiment exercises:

* every actuation traps charge in the dielectric in proportion to the
  actuation duration (1 s in the charge-trapping experiment, 5 s in the
  residual-charge experiment);
* trapped charge raises the effective electrode capacitance *linearly* in
  the accumulated stress — the Fig. 5 observable — and excessive actuation
  additionally leaves residual charge that amplifies the growth (Fig. 5b is
  markedly steeper than 5a);
* trapped charge screens the actuation field, so the effective actuation
  voltage decays as ``V(n) = Va * tau^(n/c)`` and the relative EWOD force as
  ``F(n) = tau^(2n/c)`` — the Fig. 6 observable, with per-size constants
  matching the paper's fits.

Measurements are taken exactly as in the paper: the simulated oscilloscope
observes the charging-time of the electrode RC path and the capacitance is
recovered from the RC charge equation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.rc import RCPath, capacitance_from_charging_time
from repro.degradation.model import PAPER_FITTED_CONSTANTS, DegradationParams

#: Series resistance between each electrode and the high-voltage source.
SERIES_RESISTANCE_OHM = 1.0e6

#: Actuation source: 1.5 kHz, 200 Vpp (Sec. IV-A).
ACTUATION_VPP = 200.0

#: Threshold fraction of Vpp at which the oscilloscope reads the charging time.
SCOPE_THRESHOLD_FRACTION = 0.632  # one time constant

#: Electrode sizes on the fabricated DMFB, in millimetres.
ELECTRODE_SIZES_MM = (2, 3, 4)

#: Actuation durations for the two experiments (seconds).
NORMAL_ACTUATION_S = 1.0
EXCESSIVE_ACTUATION_S = 5.0

#: Duration above which residual charge accumulates (Sec. IV-A: excessive
#: actuation "substantially increases the amount of charge that accumulates").
RESIDUAL_CHARGE_ONSET_S = 2.0

#: Residual-charge amplification of the capacitance-growth slope.
RESIDUAL_AMPLIFICATION = 2.0


def nominal_capacitance(size_mm: int) -> float:
    """Nominal (undegraded) capacitance of a ``size_mm`` square electrode.

    Parallel-plate estimate with a ~25 um dielectric of relative
    permittivity ~3; gives a few picofarads for millimetre-scale electrodes,
    the scale the oscilloscope measurement resolves easily through a 1 MOhm
    series resistor.
    """
    if size_mm <= 0:
        raise ValueError("electrode size must be positive")
    eps = 3.0 * 8.854e-12
    area = (size_mm * 1e-3) ** 2
    gap = 25e-6
    return eps * area / gap


@dataclass
class PCBElectrode:
    """One electrode of the PCB DMFB and its degradation state.

    ``params`` are the exponential force-decay constants; the defaults come
    from the paper's per-size fits.  ``cap_growth_per_second`` is the
    fractional capacitance increase per second of accumulated actuation
    stress (the Fig. 5 slope).
    """

    size_mm: int
    params: DegradationParams
    cap_growth_per_second: float = 2.0e-4
    actuation_count: int = 0
    stress_seconds: float = field(default=0.0)

    @property
    def c0(self) -> float:
        """Nominal capacitance before any actuation."""
        return nominal_capacitance(self.size_mm)

    def actuate(self, duration_s: float = NORMAL_ACTUATION_S) -> None:
        """Apply one actuation of ``duration_s`` seconds.

        Durations past :data:`RESIDUAL_CHARGE_ONSET_S` accumulate residual
        charge on top of ordinary trapping, amplifying the effective stress.
        """
        if duration_s <= 0.0:
            raise ValueError("actuation duration must be positive")
        stress = duration_s
        if duration_s > RESIDUAL_CHARGE_ONSET_S:
            stress += RESIDUAL_AMPLIFICATION * (duration_s - RESIDUAL_CHARGE_ONSET_S)
        self.actuation_count += 1
        self.stress_seconds += stress

    @property
    def true_capacitance(self) -> float:
        """The electrode's current effective capacitance (noise-free)."""
        return self.c0 * (1.0 + self.cap_growth_per_second * self.stress_seconds)

    def effective_voltage(self, v_actuation: float = ACTUATION_VPP) -> float:
        """Actuation voltage reaching the droplet after charge screening.

        ``V(n) = Va * tau^(n/c)`` (eq. 3 of the paper).
        """
        return v_actuation * float(self.params.degradation(self.actuation_count))

    def relative_force(self) -> float:
        """Relative EWOD force ``(V/Va)^2 = tau^(2n/c)`` (eq. 1-2)."""
        return float(self.params.relative_force(self.actuation_count))


@dataclass(frozen=True)
class ScopeMeasurement:
    """One oscilloscope capacitance measurement."""

    actuation_count: int
    charging_time_s: float
    capacitance_f: float


class Oscilloscope:
    """Measures electrode capacitance from the RC charging time.

    Mirrors the Sec. IV-A procedure: actuate the electrode, watch the node
    voltage rise through ``SCOPE_THRESHOLD_FRACTION * Vpp``, and invert
    ``V_C(t) = Vpp (1 - e^(-t/RC))`` for the effective capacitance.
    ``noise_fraction`` models scope trigger/readout jitter.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        resistance: float = SERIES_RESISTANCE_OHM,
        v_supply: float = ACTUATION_VPP,
        noise_fraction: float = 0.01,
    ) -> None:
        if noise_fraction < 0.0:
            raise ValueError("noise fraction cannot be negative")
        self._rng = rng
        self._resistance = resistance
        self._v_supply = v_supply
        self._noise_fraction = noise_fraction

    def measure(self, electrode: PCBElectrode) -> ScopeMeasurement:
        """Measure the electrode's capacitance through the charging time."""
        path = RCPath(self._resistance, electrode.true_capacitance, self._v_supply)
        threshold = SCOPE_THRESHOLD_FRACTION * self._v_supply
        t_star = path.charging_time(threshold)
        if self._noise_fraction > 0.0:
            t_star *= 1.0 + self._rng.normal(0.0, self._noise_fraction)
            t_star = max(t_star, 1e-12)
        cap = capacitance_from_charging_time(
            t_star, self._resistance, self._v_supply, threshold
        )
        return ScopeMeasurement(
            actuation_count=electrode.actuation_count,
            charging_time_s=t_star,
            capacitance_f=cap,
        )


def default_params_for_size(size_mm: int) -> DegradationParams:
    """The paper's fitted ``(tau, c)`` for a given electrode size."""
    if size_mm not in PAPER_FITTED_CONSTANTS:
        raise ValueError(
            f"no fitted constants for {size_mm} mm electrodes; "
            f"known sizes: {sorted(PAPER_FITTED_CONSTANTS)}"
        )
    tau, c = PAPER_FITTED_CONSTANTS[size_mm]
    return DegradationParams(tau=tau, c=c)


class PCBBiochip:
    """The fabricated DMFB of Fig. 4: a bank of electrodes in three sizes.

    ``electrodes_per_size`` electrodes of each of the 2/3/4 mm sizes are
    instantiated; reservoirs are modelled as the dispensing endpoints of the
    actuation sequences (they carry no degradation state of their own).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        electrodes_per_size: int = 8,
        cap_growth_per_second: float = 2.0e-4,
    ) -> None:
        if electrodes_per_size <= 0:
            raise ValueError("need at least one electrode per size")
        self._rng = rng
        self.electrodes: dict[int, list[PCBElectrode]] = {
            size: [
                PCBElectrode(
                    size_mm=size,
                    params=default_params_for_size(size),
                    cap_growth_per_second=cap_growth_per_second,
                )
                for _ in range(electrodes_per_size)
            ]
            for size in ELECTRODE_SIZES_MM
        }
        self.scope = Oscilloscope(rng)

    def run_actuation_sequence(
        self, repetitions: int, duration_s: float = NORMAL_ACTUATION_S
    ) -> None:
        """Execute ``repetitions`` rounds of the repeated fluidic sequence.

        Each round actuates every electrode once for ``duration_s`` — the
        "each electrode is actuated for 1 s for hundreds of times" protocol.
        """
        if repetitions < 0:
            raise ValueError("repetitions cannot be negative")
        for _ in range(repetitions):
            for bank in self.electrodes.values():
                for electrode in bank:
                    electrode.actuate(duration_s)

    def measure_bank(self, size_mm: int) -> list[ScopeMeasurement]:
        """Scope measurements for every electrode of one size."""
        return [self.scope.measure(e) for e in self.electrodes[size_mm]]


@dataclass(frozen=True)
class DegradationCurve:
    """A (actuation count, mean capacitance, mean relative force) series."""

    size_mm: int
    duration_s: float
    actuations: np.ndarray
    capacitance_f: np.ndarray
    relative_force: np.ndarray

    def capacitance_slope(self) -> float:
        """Least-squares slope of capacitance vs actuation count (F/actuation)."""
        coeffs = np.polyfit(self.actuations, self.capacitance_f, 1)
        return float(coeffs[0])


def run_degradation_experiment(
    rng: np.random.Generator,
    duration_s: float = NORMAL_ACTUATION_S,
    total_actuations: int = 800,
    measure_every: int = 50,
    electrodes_per_size: int = 8,
    force_noise: float = 0.02,
) -> dict[int, DegradationCurve]:
    """Run the Fig. 5 / Fig. 6 experiment and return per-size curves.

    ``duration_s = 1`` reproduces the charge-trapping experiment (Fig. 5a);
    ``duration_s = 5`` the residual-charge experiment (Fig. 5b).  Relative
    force readings carry multiplicative noise ``force_noise`` to mimic the
    droplet-velocity-based force estimation scatter visible in Fig. 6.
    """
    if total_actuations <= 0 or measure_every <= 0:
        raise ValueError("actuation counts must be positive")
    chip = PCBBiochip(rng, electrodes_per_size=electrodes_per_size)
    checkpoints = list(range(0, total_actuations + 1, measure_every))
    series: dict[int, dict[str, list[float]]] = {
        size: {"n": [], "cap": [], "force": []} for size in ELECTRODE_SIZES_MM
    }
    done = 0
    for checkpoint in checkpoints:
        chip.run_actuation_sequence(checkpoint - done, duration_s=duration_s)
        done = checkpoint
        for size in ELECTRODE_SIZES_MM:
            measurements = chip.measure_bank(size)
            mean_cap = float(np.mean([m.capacitance_f for m in measurements]))
            forces = [
                e.relative_force() * (1.0 + rng.normal(0.0, force_noise))
                for e in chip.electrodes[size]
            ]
            series[size]["n"].append(float(checkpoint))
            series[size]["cap"].append(mean_cap)
            series[size]["force"].append(float(np.clip(np.mean(forces), 0.0, 1.5)))
    return {
        size: DegradationCurve(
            size_mm=size,
            duration_s=duration_s,
            actuations=np.asarray(series[size]["n"]),
            capacitance_f=np.asarray(series[size]["cap"]),
            relative_force=np.asarray(series[size]["force"]),
        )
        for size in ELECTRODE_SIZES_MM
    }
