"""Fault injection for the Sec. VII-C experiments.

The simulator divides microelectrodes into *normal* and *faulty* groups; both
degrade per the charge-trapping model, but a faulty MC additionally suffers a
sudden, complete failure (``D -> 0``) at a random actuation count.  Two
placement modes are simulated:

* **uniform** — faulty MCs are scattered independently across the array;
* **clustered** — faults appear as randomly placed 2x2 clusters, the pattern
  the Fig. 3 correlation study predicts (adjacent MCs see correlated
  actuation counts, so wear-induced faults co-locate).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class FaultMode(Enum):
    """Spatial placement of injected faults."""

    UNIFORM = "uniform"
    CLUSTERED = "clustered"


#: Edge length of an injected fault cluster (the paper uses 2x2).
CLUSTER_SIZE = 2


@dataclass(frozen=True)
class FaultPlan:
    """The outcome of fault injection for one chip.

    ``faulty`` is a boolean ``(W, H)`` mask; ``fail_at`` holds, for each
    faulty MC, the actuation count at which it fails completely (``inf``
    elsewhere so healthy MCs never trip the comparison).
    """

    faulty: np.ndarray
    fail_at: np.ndarray

    @property
    def fault_fraction(self) -> float:
        """Fraction of MCs marked faulty."""
        return float(self.faulty.mean())

    def failed_mask(self, actuation_counts: np.ndarray) -> np.ndarray:
        """Which MCs have already failed given per-MC actuation counts."""
        if actuation_counts.shape != self.fail_at.shape:
            raise ValueError("actuation-count shape does not match the plan")
        return actuation_counts >= self.fail_at


class FaultInjector:
    """Samples fault plans for a ``width x height`` MC array.

    ``fraction`` is the target fraction of faulty MCs; ``fail_range`` the
    uniform range of actuation counts at which sudden failure strikes.
    """

    def __init__(
        self,
        mode: FaultMode = FaultMode.UNIFORM,
        fraction: float = 0.05,
        fail_range: tuple[int, int] = (20, 200),
        cluster_size: int = CLUSTER_SIZE,
    ) -> None:
        """``cluster_size`` generalizes the paper's 2x2 clusters; sizes at or
        above the droplet width create hard roadblocks (fully dead
        frontiers) rather than slowdowns."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fault fraction must be in [0, 1], got {fraction}")
        lo, hi = fail_range
        if lo < 0 or hi < lo:
            raise ValueError(f"invalid failure-count range {fail_range}")
        if cluster_size < 1:
            raise ValueError(f"cluster size must be positive, got {cluster_size}")
        self.mode = mode
        self.fraction = fraction
        self.fail_range = fail_range
        self.cluster_size = cluster_size

    def inject(
        self, width: int, height: int, rng: np.random.Generator
    ) -> FaultPlan:
        """Sample a fault plan for a ``width x height`` array."""
        if width <= 0 or height <= 0:
            raise ValueError("array dimensions must be positive")
        if self.mode is FaultMode.UNIFORM:
            faulty = self._uniform_mask(width, height, rng)
        else:
            faulty = self._clustered_mask(width, height, rng)
        fail_at = np.full((width, height), np.inf)
        lo, hi = self.fail_range
        counts = rng.integers(lo, hi + 1, size=(width, height))
        fail_at[faulty] = counts[faulty]
        return FaultPlan(faulty=faulty, fail_at=fail_at)

    def _uniform_mask(
        self, width: int, height: int, rng: np.random.Generator
    ) -> np.ndarray:
        total = width * height
        n_faulty = round(self.fraction * total)
        mask = np.zeros(total, dtype=bool)
        if n_faulty:
            mask[rng.choice(total, size=n_faulty, replace=False)] = True
        return mask.reshape(width, height)

    def _clustered_mask(
        self, width: int, height: int, rng: np.random.Generator
    ) -> np.ndarray:
        size = self.cluster_size
        if width < size or height < size:
            raise ValueError(f"array too small for {size}x{size} clusters")
        mask = np.zeros((width, height), dtype=bool)
        target = round(self.fraction * width * height)
        # Place whole clusters until the target coverage is met.  Overlapping
        # placements are allowed (they just add fewer new cells), mirroring a
        # random spatial process; termination is guaranteed because a full
        # mask satisfies any target.
        attempts = 0
        max_attempts = 50 * max(target, 1)
        while mask.sum() < target and attempts < max_attempts:
            x = int(rng.integers(0, width - size + 1))
            y = int(rng.integers(0, height - size + 1))
            mask[x : x + size, y : y + size] = True
            attempts += 1
        return mask


def no_faults(width: int, height: int) -> FaultPlan:
    """A fault plan with no faulty MCs (the Sec. VII-B setting)."""
    return FaultPlan(
        faulty=np.zeros((width, height), dtype=bool),
        fail_at=np.full((width, height), np.inf),
    )
