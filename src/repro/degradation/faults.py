"""Fault injection for the Sec. VII-C experiments.

The simulator divides microelectrodes into *normal* and *faulty* groups; both
degrade per the charge-trapping model, but a faulty MC additionally suffers a
sudden, complete failure (``D -> 0``) at a random actuation count.  Two
placement modes are simulated:

* **uniform** — faulty MCs are scattered independently across the array;
* **clustered** — faults appear as randomly placed 2x2 clusters, the pattern
  the Fig. 3 correlation study predicts (adjacent MCs see correlated
  actuation counts, so wear-induced faults co-locate).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class FaultMode(Enum):
    """Spatial placement of injected faults."""

    UNIFORM = "uniform"
    CLUSTERED = "clustered"


#: Edge length of an injected fault cluster (the paper uses 2x2).
CLUSTER_SIZE = 2


@dataclass(frozen=True)
class FaultPlan:
    """The outcome of fault injection for one chip.

    ``faulty`` is a boolean ``(W, H)`` mask; ``fail_at`` holds, for each
    faulty MC, the actuation count at which it fails completely (``inf``
    elsewhere so healthy MCs never trip the comparison).
    """

    faulty: np.ndarray
    fail_at: np.ndarray

    @property
    def fault_fraction(self) -> float:
        """Fraction of MCs marked faulty."""
        return float(self.faulty.mean())

    def failed_mask(self, actuation_counts: np.ndarray) -> np.ndarray:
        """Which MCs have already failed given per-MC actuation counts."""
        if actuation_counts.shape != self.fail_at.shape:
            raise ValueError("actuation-count shape does not match the plan")
        return actuation_counts >= self.fail_at


class FaultInjector:
    """Samples fault plans for a ``width x height`` MC array.

    ``fraction`` is the target fraction of faulty MCs; ``fail_range`` the
    uniform range of actuation counts at which sudden failure strikes.
    """

    def __init__(
        self,
        mode: FaultMode = FaultMode.UNIFORM,
        fraction: float = 0.05,
        fail_range: tuple[int, int] = (20, 200),
        cluster_size: int = CLUSTER_SIZE,
    ) -> None:
        """``cluster_size`` generalizes the paper's 2x2 clusters; sizes at or
        above the droplet width create hard roadblocks (fully dead
        frontiers) rather than slowdowns."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fault fraction must be in [0, 1], got {fraction}")
        lo, hi = fail_range
        if lo < 0 or hi < lo:
            raise ValueError(f"invalid failure-count range {fail_range}")
        if cluster_size < 1:
            raise ValueError(f"cluster size must be positive, got {cluster_size}")
        self.mode = mode
        self.fraction = fraction
        self.fail_range = fail_range
        self.cluster_size = cluster_size

    def inject(
        self, width: int, height: int, rng: np.random.Generator
    ) -> FaultPlan:
        """Sample a fault plan for a ``width x height`` array."""
        if width <= 0 or height <= 0:
            raise ValueError("array dimensions must be positive")
        if self.mode is FaultMode.UNIFORM:
            faulty = self._uniform_mask(width, height, rng)
        else:
            faulty = self._clustered_mask(width, height, rng)
        fail_at = np.full((width, height), np.inf)
        lo, hi = self.fail_range
        counts = rng.integers(lo, hi + 1, size=(width, height))
        fail_at[faulty] = counts[faulty]
        return FaultPlan(faulty=faulty, fail_at=fail_at)

    def _uniform_mask(
        self, width: int, height: int, rng: np.random.Generator
    ) -> np.ndarray:
        total = width * height
        n_faulty = round(self.fraction * total)
        mask = np.zeros(total, dtype=bool)
        if n_faulty:
            mask[rng.choice(total, size=n_faulty, replace=False)] = True
        return mask.reshape(width, height)

    def _clustered_mask(
        self, width: int, height: int, rng: np.random.Generator
    ) -> np.ndarray:
        size = self.cluster_size
        if width < size or height < size:
            raise ValueError(f"array too small for {size}x{size} clusters")
        mask = np.zeros((width, height), dtype=bool)
        target = round(self.fraction * width * height)
        # Place whole clusters until the target coverage is met.  Overlapping
        # placements are allowed (they just add fewer new cells), mirroring a
        # random spatial process; termination is guaranteed because a full
        # mask satisfies any target.
        attempts = 0
        max_attempts = 50 * max(target, 1)
        while mask.sum() < target and attempts < max_attempts:
            x = int(rng.integers(0, width - size + 1))
            y = int(rng.integers(0, height - size + 1))
            mask[x : x + size, y : y + size] = True
            attempts += 1
        return mask


def no_faults(width: int, height: int) -> FaultPlan:
    """A fault plan with no faulty MCs (the Sec. VII-B setting)."""
    return FaultPlan(
        faulty=np.zeros((width, height), dtype=bool),
        fail_at=np.full((width, height), np.inf),
    )


def dead_column_plan(
    width: int,
    height: int,
    column: int,
    n_columns: int = 6,
    y_span: tuple[int, int] | None = None,
    fail_at: float = 0,
) -> FaultPlan:
    """A deterministic dead-column scenario (column-driver bank failure).

    Kills ``n_columns`` adjacent electrode columns starting at the 1-based
    ``column``, over ``y_span`` (1-based inclusive rows; default leaves
    routing corridors along the north and south edges so droplets can
    detour around the dead stripe).  A stripe as wide as a module pattern
    makes any module goal inside it *unreachable* — every pulling frontier
    of an arriving move is dead — while a single dead line would merely be
    straddled.  All affected MCs fail at the same ``fail_at`` actuation
    count; 0 means dead from the start.
    """
    if n_columns < 1:
        raise ValueError(f"need at least one dead column, got {n_columns}")
    if not 1 <= column <= width - n_columns + 1:
        raise ValueError(
            f"columns {column}..{column + n_columns - 1} outside a "
            f"{width}-wide chip"
        )
    if y_span is None:
        margin = max(7, height // 4)
        y_span = (1 + margin, height - margin)
    ya, yb = y_span
    if not (1 <= ya <= yb <= height):
        raise ValueError(f"invalid y span {y_span} for height {height}")
    faulty = np.zeros((width, height), dtype=bool)
    faulty[column - 1 : column - 1 + n_columns, ya - 1 : yb] = True
    fail = np.full((width, height), np.inf)
    fail[faulty] = fail_at
    return FaultPlan(faulty=faulty, fail_at=fail)


def dead_cluster_plan(
    width: int,
    height: int,
    centers: list[tuple[float, float]],
    size: int = 8,
    fail_at: float = 0,
) -> FaultPlan:
    """A deterministic clustered-fault scenario: dead ``size x size``
    blocks centered on the given (x, y) chip coordinates (module-slot
    centers, typically), clamped to the chip.  The default size covers a
    6x6 module pattern plus a 1-MC margin, so every droplet pattern a
    module at the center could form — and every frontier that could pull
    one into place — is dead.  All affected MCs share one ``fail_at``
    actuation count.
    """
    if size < 1:
        raise ValueError(f"cluster size must be positive, got {size}")
    faulty = np.zeros((width, height), dtype=bool)
    for cx, cy in centers:
        x0 = int(cx - size / 2)
        y0 = int(cy - size / 2)
        x0 = min(max(x0, 0), max(width - size, 0))
        y0 = min(max(y0, 0), max(height - size, 0))
        faulty[x0 : x0 + size, y0 : y0 + size] = True
    fail = np.full((width, height), np.inf)
    fail[faulty] = fail_at
    return FaultPlan(faulty=faulty, fail_at=fail)
