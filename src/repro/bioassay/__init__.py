"""Bioassay substrate: operation types, sequencing graphs, placement, suite."""

from repro.bioassay.io import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.bioassay.library import (
    ALL_BIOASSAYS,
    EVALUATION_BIOASSAYS,
    PATTERN_BIOASSAYS,
    cep,
    chip_assay,
    covid_pcr,
    covid_rat,
    gene_expression,
    master_mix,
    multiplex_invitro,
    nuip,
    serial_dilution,
    with_dispense_size,
)
from repro.bioassay.ops import DEFAULT_HOLD_CYCLES, MO, MO_ARITY, MO_LOCATIONS, MOType
from repro.bioassay.planner import Planner, PlannerConfig, plan
from repro.bioassay.seqgraph import SequencingGraph

__all__ = [
    "ALL_BIOASSAYS",
    "DEFAULT_HOLD_CYCLES",
    "EVALUATION_BIOASSAYS",
    "MO",
    "MO_ARITY",
    "MO_LOCATIONS",
    "MOType",
    "PATTERN_BIOASSAYS",
    "Planner",
    "PlannerConfig",
    "SequencingGraph",
    "cep",
    "chip_assay",
    "covid_pcr",
    "covid_rat",
    "gene_expression",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "master_mix",
    "multiplex_invitro",
    "nuip",
    "plan",
    "save_graph",
    "serial_dilution",
    "with_dispense_size",
]
