"""JSON serialization of sequencing graphs.

Bioassays are data, not code: labs exchange protocols as files.  This module
round-trips :class:`~repro.bioassay.seqgraph.SequencingGraph` through a
simple JSON schema so protocols can be versioned, edited and loaded by the
CLI (``python -m repro run --file protocol.json``).

Schema::

    {
      "name": "covid-rat",
      "mos": [
        {"name": "sample", "type": "dis", "size": [4, 4]},
        {"name": "bind", "type": "mix", "pre": ["sample", "conjugate"],
         "hold_cycles": 4, "locs": [[20.5, 12.5]]},
        ...
      ]
    }

``locs``/``size``/``pre``/``pre_output``/``hold_cycles`` are optional with
the same defaults as :class:`~repro.bioassay.ops.MO`; validation happens in
the MO and graph constructors, so a malformed file fails with the same
errors as malformed code.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.bioassay.ops import MO, MOType
from repro.bioassay.seqgraph import SequencingGraph


def graph_to_dict(graph: SequencingGraph) -> dict[str, Any]:
    """The JSON-ready dictionary form of a sequencing graph."""
    mos = []
    for mo in graph.mos:
        entry: dict[str, Any] = {"name": mo.name, "type": mo.type.value}
        if mo.pre:
            entry["pre"] = list(mo.pre)
        if mo.pre_output:
            entry["pre_output"] = list(mo.pre_output)
        if mo.locs:
            entry["locs"] = [list(loc) for loc in mo.locs]
        if mo.size is not None:
            entry["size"] = list(mo.size)
        if mo.hold_cycles:
            entry["hold_cycles"] = mo.hold_cycles
        if mo.concentration:
            entry["concentration"] = mo.concentration
        mos.append(entry)
    return {"name": graph.name, "mos": mos}


def graph_from_dict(data: dict[str, Any]) -> SequencingGraph:
    """Rebuild a sequencing graph from its dictionary form."""
    if "name" not in data or "mos" not in data:
        raise ValueError("bioassay JSON needs 'name' and 'mos' keys")
    mos = []
    for entry in data["mos"]:
        if "name" not in entry or "type" not in entry:
            raise ValueError(f"MO entry {entry!r} needs 'name' and 'type'")
        try:
            mo_type = MOType(entry["type"])
        except ValueError as exc:
            raise ValueError(
                f"unknown MO type {entry['type']!r} in {entry['name']!r}"
            ) from exc
        mos.append(MO(
            name=entry["name"],
            type=mo_type,
            pre=tuple(entry.get("pre", ())),
            pre_output=tuple(entry.get("pre_output", ())),
            locs=tuple(tuple(loc) for loc in entry.get("locs", ())),
            size=tuple(entry["size"]) if "size" in entry else None,
            hold_cycles=int(entry.get("hold_cycles", 0)),
            concentration=float(entry.get("concentration", 0.0)),
        ))
    return SequencingGraph(name=data["name"], mos=mos)


def save_graph(graph: SequencingGraph, path: str | Path) -> Path:
    """Write a bioassay to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(graph_to_dict(graph), indent=2) + "\n")
    return path


def load_graph(path: str | Path) -> SequencingGraph:
    """Load a bioassay from a JSON file."""
    return graph_from_dict(json.loads(Path(path).read_text()))
