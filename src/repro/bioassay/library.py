"""The benchmark bioassay suite.

Sec. VII simulates six benchmark bioassays — Master-Mix, CEP (cell lysis +
mRNA extraction + mRNA purification), Serial Dilution, nucleosome
immunoprecipitation (NuIP), COVID rapid-antigen test and COVID PCR test —
and the Fig. 3 degradation-pattern study uses three more: ChIP, multiplex
in-vitro, and gene expression.

The protocols themselves are proprietary lab procedures; what the evaluation
depends on is their *routing workload*: how many droplets move, how far, how
many mix/split/magnetic-bead steps chain together.  Each builder below
encodes the cited protocol's structure (operation counts and dependency
shape) as a sequencing graph of Table III operations; the planner assigns
on-chip locations.
"""

from __future__ import annotations

from typing import Callable

from repro.bioassay.ops import DEFAULT_HOLD_CYCLES, MO, MOType
from repro.bioassay.seqgraph import SequencingGraph

#: Default dispensed droplet footprint (4x4, as in the paper's examples).
DEFAULT_SIZE = (4, 4)


def _dis(name: str, size: tuple[int, int] = DEFAULT_SIZE,
         concentration: float = 0.0) -> MO:
    return MO(name=name, type=MOType.DIS, size=size,
              concentration=concentration)


def _mix(name: str, a: str, b: str, hold: int | None = None) -> MO:
    return MO(
        name=name,
        type=MOType.MIX,
        pre=(a, b),
        hold_cycles=DEFAULT_HOLD_CYCLES[MOType.MIX] if hold is None else hold,
    )


def _mag(name: str, a: str, hold: int | None = None) -> MO:
    return MO(
        name=name,
        type=MOType.MAG,
        pre=(a,),
        hold_cycles=DEFAULT_HOLD_CYCLES[MOType.MAG] if hold is None else hold,
    )


def _spt(name: str, a: str) -> MO:
    return MO(
        name=name, type=MOType.SPT, pre=(a,),
        hold_cycles=DEFAULT_HOLD_CYCLES[MOType.SPT],
    )


def _dlt(name: str, a: str, b: str, pre_output: tuple[int, int] = (0, 0)) -> MO:
    return MO(
        name=name, type=MOType.DLT, pre=(a, b), pre_output=pre_output,
        hold_cycles=DEFAULT_HOLD_CYCLES[MOType.DLT],
    )


def _out(name: str, a: str, slot: int = 0) -> MO:
    return MO(name=name, type=MOType.OUT, pre=(a,), pre_output=(slot,))


def _dsc(name: str, a: str, slot: int = 0) -> MO:
    return MO(name=name, type=MOType.DSC, pre=(a,), pre_output=(slot,))


def master_mix() -> SequencingGraph:
    """PCR master-mix preparation: pool three reagents, deliver the mix."""
    return SequencingGraph(
        "master-mix",
        [
            _dis("buffer"),
            _dis("primers"),
            _dis("polymerase"),
            _mix("mix1", "buffer", "primers"),
            _mix("mix2", "mix1", "polymerase"),
            _out("collect", "mix2"),
        ],
    )


def covid_rat() -> SequencingGraph:
    """COVID rapid antigen test: sample + conjugate, bind, read out."""
    return SequencingGraph(
        "covid-rat",
        [
            _dis("sample"),
            _dis("conjugate"),
            _mix("bind", "sample", "conjugate"),
            _mag("detect", "bind", hold=10),
            _out("readout", "detect"),
        ],
    )


def covid_pcr() -> SequencingGraph:
    """COVID PCR test: lysis, bead-based RNA extraction, wash, amplification.

    The thermal amplification stage is represented as a long magnetic-module
    hold (the droplet is parked on a heater module; from the routing
    perspective both are a route-and-hold).
    """
    return SequencingGraph(
        "covid-pcr",
        [
            _dis("swab"),
            _dis("lysis_buffer"),
            _mix("lyse", "swab", "lysis_buffer"),
            _dis("beads"),
            _mix("capture", "lyse", "beads"),
            _mag("extract", "capture", hold=10),
            _spt("elute", "extract"),
            _dsc("waste", "elute", slot=1),
            _dis("master_mix"),
            _mix("assemble", "elute", "master_mix"),
            _mag("amplify", "assemble", hold=14),
            _out("readout", "amplify"),
        ],
    )


def serial_dilution(stages: int = 4) -> SequencingGraph:
    """Serial dilution chain (ref. [40]): repeated two-fold dilutions.

    Each stage dilutes the running sample with fresh buffer (a ``dlt`` MO
    produces the diluted product and a to-discard remainder).
    """
    if stages < 1:
        raise ValueError("need at least one dilution stage")
    mos: list[MO] = [_dis("sample", concentration=1.0)]
    current = "sample"
    for i in range(stages):
        buffer = f"buffer{i}"
        dilute = f"dilute{i}"
        mos.append(_dis(buffer))
        mos.append(_dlt(dilute, current, buffer))
        mos.append(_dsc(f"waste{i}", dilute, slot=1))
        current = dilute
    mos.append(_out("collect", current, slot=0))
    return SequencingGraph("serial-dilution", mos)


def cep() -> SequencingGraph:
    """CEP bioprotocol: cell lysis, mRNA extraction, mRNA purification."""
    return SequencingGraph(
        "cep",
        [
            # cell lysis
            _dis("cells"),
            _dis("lysis_buffer"),
            _mix("lyse", "cells", "lysis_buffer"),
            # mRNA extraction on oligo-dT beads
            _dis("oligo_beads"),
            _mix("capture", "lyse", "oligo_beads"),
            _mag("immobilize", "capture", hold=10),
            _spt("separate", "immobilize"),
            _dsc("lysate_waste", "separate", slot=1),
            # purification: wash the bead fraction, elute
            _dis("wash_buffer"),
            _mix("wash", "separate", "wash_buffer"),
            _mag("re_immobilize", "wash", hold=8),
            _out("purified_mrna", "re_immobilize"),
        ],
    )


def nuip() -> SequencingGraph:
    """Nucleosome immunoprecipitation (ref. [17], [41]).

    Nucleosome prep, antibody binding, bead capture with two wash rounds,
    and elution — the longest benchmark, dominating Fig. 15/16's right side.
    """
    return SequencingGraph(
        "nuip",
        [
            _dis("chromatin"),
            _dis("digestion_buffer"),
            _mix("digest", "chromatin", "digestion_buffer"),
            _dis("antibody"),
            _mix("bind_ab", "digest", "antibody"),
            _dis("protein_a_beads"),
            _mix("bead_capture", "bind_ab", "protein_a_beads"),
            _mag("capture1", "bead_capture", hold=10),
            _spt("split1", "capture1"),
            _dsc("supernatant1", "split1", slot=1),
            _dis("wash1_buffer"),
            _mix("wash1", "split1", "wash1_buffer"),
            _mag("capture2", "wash1", hold=8),
            _spt("split2", "capture2"),
            _dsc("supernatant2", "split2", slot=1),
            _dis("elution_buffer"),
            _mix("elute_mix", "split2", "elution_buffer"),
            _mag("elute", "elute_mix", hold=8),
            _out("nucleosomes", "elute"),
        ],
    )


def chip_assay() -> SequencingGraph:
    """Chromatin immunoprecipitation (ChIP) — Fig. 3 workload."""
    return SequencingGraph(
        "chip",
        [
            _dis("chromatin"),
            _dis("shear_buffer"),
            _mix("shear", "chromatin", "shear_buffer"),
            _dis("antibody"),
            _mix("ip", "shear", "antibody"),
            _dis("beads"),
            _mix("capture", "ip", "beads"),
            _mag("pulldown", "capture", hold=10),
            _spt("clear", "pulldown"),
            _dsc("unbound", "clear", slot=1),
            _out("enriched", "clear"),
        ],
    )


def multiplex_invitro() -> SequencingGraph:
    """Multiplexed in-vitro diagnostics (two parallel assay arms merged)."""
    return SequencingGraph(
        "multiplex-invitro",
        [
            _dis("sample_a"),
            _dis("reagent_a"),
            _mix("react_a", "sample_a", "reagent_a"),
            _mag("sense_a", "react_a", hold=8),
            _dis("sample_b"),
            _dis("reagent_b"),
            _mix("react_b", "sample_b", "reagent_b"),
            _mag("sense_b", "react_b", hold=8),
            _mix("combine", "sense_a", "sense_b"),
            _out("panel_readout", "combine"),
        ],
    )


def gene_expression() -> SequencingGraph:
    """Gene-expression analysis: RT prep with a dilution and readout."""
    return SequencingGraph(
        "gene-expression",
        [
            _dis("rna"),
            _dis("rt_mix"),
            _mix("rt_reaction", "rna", "rt_mix"),
            _mag("incubate", "rt_reaction", hold=10),
            _dis("dilution_buffer"),
            _dlt("normalize", "incubate", "dilution_buffer"),
            _dsc("excess", "normalize", slot=1),
            _dis("probe"),
            _mix("hybridize", "normalize", "probe"),
            _mag("readout_hold", "hybridize", hold=8),
            _out("expression", "readout_hold"),
        ],
    )


def with_dispense_size(
    graph: SequencingGraph, size: tuple[int, int]
) -> SequencingGraph:
    """The same bioassay with every dispensed droplet resized.

    The Fig. 3 degradation-pattern study sweeps droplet sizes 3x3 through
    6x6 over the same bioassays; downstream droplet sizes follow from the
    dispense size through the RJ helper's area arithmetic.
    """
    resized = [
        MO(
            name=mo.name,
            type=mo.type,
            pre=mo.pre,
            locs=mo.locs,
            size=size if mo.type is MOType.DIS else mo.size,
            pre_output=mo.pre_output,
            hold_cycles=mo.hold_cycles,
            concentration=mo.concentration,
        )
        for mo in graph.mos
    ]
    return SequencingGraph(name=graph.name, mos=resized)


#: The six evaluation benchmarks of Sec. VII (Figs. 15-16).
EVALUATION_BIOASSAYS: dict[str, Callable[[], SequencingGraph]] = {
    "master-mix": master_mix,
    "cep": cep,
    "serial-dilution": serial_dilution,
    "nuip": nuip,
    "covid-rat": covid_rat,
    "covid-pcr": covid_pcr,
}

#: The three bioassays of the Fig. 3 degradation-pattern study.
PATTERN_BIOASSAYS: dict[str, Callable[[], SequencingGraph]] = {
    "chip": chip_assay,
    "multiplex-invitro": multiplex_invitro,
    "gene-expression": gene_expression,
}

#: Every bioassay in the suite.
ALL_BIOASSAYS: dict[str, Callable[[], SequencingGraph]] = {
    **EVALUATION_BIOASSAYS,
    **PATTERN_BIOASSAYS,
}
