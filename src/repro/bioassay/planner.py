"""Module placement planner: sequencing graph -> placed MO list.

The paper assumes the sequencing graph "is preprocessed by a planner that
determines the dependencies and module placements of MOs" (Sec. VI-A,
citing the MEDA synthesis flow of Zhong et al.).  This module is that
substrate: it assigns every MO a center location on the chip.

Placement policy (deterministic, router-independent):

* **dispense** MOs go to reservoir ports spread along the south and north
  chip edges (matching the Fig. 12 example, where droplets enter at
  ``(17.5, 2.5)`` and ``(17.5, 28.5)``); when an edge's nominal pitch no
  longer fits, the port falls back to the tightest non-merging pitch and
  then to the opposite edge before raising;
* **output/discard** MOs go to exit ports on the east edge, overflowing
  to the west edge the same way;
* all other MOs are placed on a grid of interior module slots, each MO
  taking the slot nearest to the centroid of its predecessors' locations
  (minimizing expected routing distance), with a usage-count tiebreak that
  spreads wear across the array.

When constructed with a ``wear`` array (accumulated per-cell actuation
counts), slot and reservoir-edge choice is additionally biased away from
worn silicon — the wear-leveling mode used by ``repro run --wear-level``.
With no wear array (or an all-zero one) placements are identical to the
unbiased planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bioassay.ops import MO, MOType, MO_LOCATIONS
from repro.bioassay.seqgraph import SequencingGraph

#: Clearance kept between interior module slots and the chip edge.
EDGE_CLEARANCE = 6

#: Cost-per-mean-actuation added to a slot when wear-leveling is active.
WEAR_WEIGHT = 0.25


@dataclass(frozen=True)
class PlannerConfig:
    """Chip dimensions and slot-grid spacing for the placement planner."""

    width: int
    height: int
    slot_spacing_x: int = 12
    slot_spacing_y: int = 9

    def __post_init__(self) -> None:
        if self.width < 2 * EDGE_CLEARANCE + 4 or self.height < 2 * EDGE_CLEARANCE + 4:
            raise ValueError(
                f"chip {self.width}x{self.height} too small for the planner"
            )


class Planner:
    """Assigns center locations to every MO of a sequencing graph."""

    def __init__(
        self,
        config: PlannerConfig,
        wear: np.ndarray | None = None,
        wear_weight: float = WEAR_WEIGHT,
    ) -> None:
        self.config = config
        self._slots = self._build_slots()
        self._slot_usage = [0] * len(self._slots)
        self._south_xs: list[float] = []
        self._north_xs: list[float] = []
        self._east_ys: list[float] = []
        self._west_ys: list[float] = []
        if wear is not None:
            wear = np.asarray(wear, dtype=float)
            if wear.shape != (config.width, config.height):
                raise ValueError(
                    f"wear array shape {wear.shape} does not match chip "
                    f"{config.width}x{config.height}"
                )
        self.wear = wear
        self.wear_weight = wear_weight

    def _build_slots(self) -> list[tuple[float, float]]:
        """Interior module slots, kept clear of reservoir and exit ports.

        Slots start ``EDGE_CLEARANCE + 4`` MCs from each edge so a module's
        droplet pattern (plus merge margin) cannot touch droplets parked at
        the edge ports.
        """
        cfg = self.config
        xs = list(range(EDGE_CLEARANCE + 4, cfg.width - EDGE_CLEARANCE - 2,
                        cfg.slot_spacing_x))
        ys = list(range(EDGE_CLEARANCE + 4, cfg.height - EDGE_CLEARANCE - 2,
                        cfg.slot_spacing_y))
        return [(float(x) + 0.5, float(y) + 0.5) for y in ys for x in xs]

    @property
    def n_slots(self) -> int:
        return len(self._slots)

    def slot(self, idx: int) -> tuple[float, float]:
        return self._slots[idx]

    def place(self, graph: SequencingGraph) -> SequencingGraph:
        """Return a placed copy of the graph (already-placed MOs are kept)."""
        placed: dict[str, tuple[tuple[float, float], ...]] = {}
        locations: dict[str, tuple[float, float]] = {}
        for mo in graph.topological():
            if mo.placed:
                locations[mo.name] = mo.locs[0]
                continue
            locs = self._place_mo(mo, locations)
            placed[mo.name] = locs
            locations[mo.name] = locs[0]
        return graph.with_placement(placed)

    def _place_mo(
        self, mo: MO, known: dict[str, tuple[float, float]]
    ) -> tuple[tuple[float, float], ...]:
        n_locs = MO_LOCATIONS[mo.type]
        if mo.type is MOType.DIS:
            return (self._dispense_port(mo),)
        if mo.type in (MOType.OUT, MOType.DSC):
            return (self._exit_port(),)
        centroid = self._centroid(mo, known)
        primary_idx = self.take_slot(centroid)
        primary = self._slots[primary_idx]
        if n_locs == 1:
            return (primary,)
        secondary = self._slots[self.take_slot(primary, exclude=primary_idx)]
        return (primary, secondary)

    def _centroid(
        self, mo: MO, known: dict[str, tuple[float, float]]
    ) -> tuple[float, float]:
        coords = [known[p] for p in mo.pre if p in known]
        if not coords:
            return (self.config.width / 2, self.config.height / 2)
        return (
            sum(c[0] for c in coords) / len(coords),
            sum(c[1] for c in coords) / len(coords),
        )

    def slot_order(
        self,
        target: tuple[float, float],
        exclude: int | None = None,
        slot_cost: Callable[[int, tuple[float, float]], float] | None = None,
    ) -> list[int]:
        """Slot indices ordered cheapest-first for a droplet near ``target``.

        Cost is usage-balanced Manhattan distance with a deterministic
        ``(cost, idx)`` tie-break; ``exclude`` skips one slot *by index*
        (two distinct slots may legitimately share coordinates once
        remapping introduces spares).  ``slot_cost`` adds an arbitrary
        extra term — the reconfiguration policy uses it for health-weighted
        relocation costs.
        """
        keyed: list[tuple[float, int]] = []
        for idx, slot in enumerate(self._slots):
            if idx == exclude:
                continue
            dist = abs(slot[0] - target[0]) + abs(slot[1] - target[1])
            cost = self._slot_usage[idx] * 5.0 + dist
            if self.wear is not None:
                cost += self.wear_weight * self._slot_wear(idx)
            if slot_cost is not None:
                cost += slot_cost(idx, slot)
            keyed.append((cost, idx))
        keyed.sort()
        return [idx for _, idx in keyed]

    def take_slot(
        self,
        target: tuple[float, float],
        exclude: int | None = None,
        slot_cost: Callable[[int, tuple[float, float]], float] | None = None,
    ) -> int:
        """Claim (and usage-count) the cheapest slot for ``target``."""
        order = self.slot_order(target, exclude=exclude, slot_cost=slot_cost)
        if not order:
            raise RuntimeError("planner has no available module slots")
        self._slot_usage[order[0]] += 1
        return order[0]

    def note_usage(self, idx: int) -> None:
        """Record an externally-assigned slot so later picks avoid it."""
        self._slot_usage[idx] += 1

    def _nearest_slot(
        self,
        target: tuple[float, float],
        exclude: int | None = None,
    ) -> tuple[float, float]:
        return self._slots[self.take_slot(target, exclude=exclude)]

    def _slot_wear(self, idx: int) -> float:
        """Mean accumulated actuations over a slot's module footprint."""
        assert self.wear is not None
        sx, sy = self._slots[idx]
        x0, x1 = max(0, int(sx) - 3), min(self.config.width, int(sx) + 3)
        y0, y1 = max(0, int(sy) - 3), min(self.config.height, int(sy) + 3)
        return float(self.wear[x0:x1, y0:y1].mean())

    def _port_wear(self, cx: float, cy: float, w: int, h: int) -> float:
        assert self.wear is not None
        x0 = max(0, int(cx - w / 2))
        x1 = min(self.config.width, int(cx + w / 2) + 1)
        y0 = max(0, int(cy - h / 2))
        y1 = min(self.config.height, int(cy + h / 2) + 1)
        return float(self.wear[x0:x1, y0:y1].mean())

    def _dispense_port(self, mo: MO) -> tuple[float, float]:
        """Alternate reservoir ports along the south and north edges.

        When the nominal pitch no longer fits an edge, fall back to the
        tightest non-merging pitch after that edge's last port, then to the
        opposite edge; raise when both edges are genuinely full.
        """
        cfg = self.config
        assert mo.size is not None
        w, h = mo.size
        south = (self._south_xs, h / 2 + 0.5)
        north = (self._north_xs, cfg.height - h / 2 + 0.5)
        prefer_south = len(self._south_xs) <= len(self._north_xs)
        if self.wear is not None:
            s_x = self._edge_port_x(self._south_xs, w)
            n_x = self._edge_port_x(self._north_xs, w)
            if s_x is not None and n_x is not None:
                s_wear = self._port_wear(s_x - 0.5, south[1], w, h)
                n_wear = self._port_wear(n_x - 0.5, north[1], w, h)
                if abs(s_wear - n_wear) > 1e-9:
                    prefer_south = s_wear < n_wear
        for placed, cy in (south, north) if prefer_south else (north, south):
            x = self._edge_port_x(placed, w)
            if x is not None:
                placed.append(x)
                return (x - 0.5, cy)
        raise ValueError(
            f"no reservoir port fits MO {mo.name!r} (pattern width {w}) on "
            f"either edge of a {cfg.width}-wide chip"
        )

    def _edge_port_x(self, placed: list[float], w: int) -> float | None:
        """Next port x on one edge, or None when the edge is full."""
        spacing = max(w + 6, 10)
        hi = self.config.width - w / 2
        x = 6 + len(placed) * spacing + w / 2
        if x > hi and placed:
            # Nominal pitch overflows: pack at the tightest pitch that still
            # keeps a 2-MC anti-merge gap after the edge's last port.
            x = placed[-1] + w + 2
        return None if x > hi else x

    def _exit_port(self) -> tuple[float, float]:
        """Exit ports spaced along the east edge, overflowing to the west."""
        cfg = self.config
        for placed, cx in ((self._east_ys, cfg.width - 2.5),
                           (self._west_ys, 2.5)):
            y = self._edge_exit_y(placed)
            if y is not None:
                placed.append(y)
                return (cx, y + 0.5)
        raise ValueError(
            f"no exit port left on either edge of a {cfg.height}-tall chip"
        )

    def _edge_exit_y(self, placed: list[float]) -> float | None:
        """Next exit-port y on one edge, or None when the edge is full."""
        cfg = self.config
        y = 8.0 + len(placed) * 8
        if y <= cfg.height - 4:
            return y
        if placed:
            # Compressed pitch: 4-tall exit pattern plus a 2-MC gap.
            y = placed[-1] + 6
            if y <= cfg.height - 2:
                return y
        return None


def plan(
    graph: SequencingGraph,
    width: int,
    height: int,
    wear: np.ndarray | None = None,
) -> SequencingGraph:
    """Convenience wrapper: place ``graph`` on a ``width x height`` chip.

    ``wear`` (accumulated actuation counts, shape ``(width, height)``)
    enables wear-leveled placement.
    """
    return Planner(PlannerConfig(width=width, height=height), wear=wear).place(graph)
