"""Module placement planner: sequencing graph -> placed MO list.

The paper assumes the sequencing graph "is preprocessed by a planner that
determines the dependencies and module placements of MOs" (Sec. VI-A,
citing the MEDA synthesis flow of Zhong et al.).  This module is that
substrate: it assigns every MO a center location on the chip.

Placement policy (deterministic, router-independent):

* **dispense** MOs go to reservoir ports spread along the south and north
  chip edges (matching the Fig. 12 example, where droplets enter at
  ``(17.5, 2.5)`` and ``(17.5, 28.5)``);
* **output/discard** MOs go to exit ports on the east edge;
* all other MOs are placed on a grid of interior module slots, each MO
  taking the slot nearest to the centroid of its predecessors' locations
  (minimizing expected routing distance), with a usage-count tiebreak that
  spreads wear across the array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bioassay.ops import MO, MOType, MO_LOCATIONS
from repro.bioassay.seqgraph import SequencingGraph

#: Clearance kept between interior module slots and the chip edge.
EDGE_CLEARANCE = 6


@dataclass(frozen=True)
class PlannerConfig:
    """Chip dimensions and slot-grid spacing for the placement planner."""

    width: int
    height: int
    slot_spacing_x: int = 12
    slot_spacing_y: int = 9

    def __post_init__(self) -> None:
        if self.width < 2 * EDGE_CLEARANCE + 4 or self.height < 2 * EDGE_CLEARANCE + 4:
            raise ValueError(
                f"chip {self.width}x{self.height} too small for the planner"
            )


class Planner:
    """Assigns center locations to every MO of a sequencing graph."""

    def __init__(self, config: PlannerConfig) -> None:
        self.config = config
        self._slots = self._build_slots()
        self._slot_usage = [0] * len(self._slots)
        self._south_ports = 0
        self._north_ports = 0
        self._exit_ports = 0

    def _build_slots(self) -> list[tuple[float, float]]:
        """Interior module slots, kept clear of reservoir and exit ports.

        Slots start ``EDGE_CLEARANCE + 4`` MCs from each edge so a module's
        droplet pattern (plus merge margin) cannot touch droplets parked at
        the edge ports.
        """
        cfg = self.config
        xs = list(range(EDGE_CLEARANCE + 4, cfg.width - EDGE_CLEARANCE - 2,
                        cfg.slot_spacing_x))
        ys = list(range(EDGE_CLEARANCE + 4, cfg.height - EDGE_CLEARANCE - 2,
                        cfg.slot_spacing_y))
        return [(float(x) + 0.5, float(y) + 0.5) for y in ys for x in xs]

    def place(self, graph: SequencingGraph) -> SequencingGraph:
        """Return a placed copy of the graph (already-placed MOs are kept)."""
        placed: dict[str, tuple[tuple[float, float], ...]] = {}
        locations: dict[str, tuple[float, float]] = {}
        for mo in graph.topological():
            if mo.placed:
                locations[mo.name] = mo.locs[0]
                continue
            locs = self._place_mo(mo, locations)
            placed[mo.name] = locs
            locations[mo.name] = locs[0]
        return graph.with_placement(placed)

    def _place_mo(
        self, mo: MO, known: dict[str, tuple[float, float]]
    ) -> tuple[tuple[float, float], ...]:
        n_locs = MO_LOCATIONS[mo.type]
        if mo.type is MOType.DIS:
            return (self._dispense_port(mo),)
        if mo.type in (MOType.OUT, MOType.DSC):
            return (self._exit_port(),)
        centroid = self._centroid(mo, known)
        primary = self._nearest_slot(centroid)
        if n_locs == 1:
            return (primary,)
        secondary = self._nearest_slot(primary, exclude=primary)
        return (primary, secondary)

    def _centroid(
        self, mo: MO, known: dict[str, tuple[float, float]]
    ) -> tuple[float, float]:
        coords = [known[p] for p in mo.pre if p in known]
        if not coords:
            return (self.config.width / 2, self.config.height / 2)
        return (
            sum(c[0] for c in coords) / len(coords),
            sum(c[1] for c in coords) / len(coords),
        )

    def _nearest_slot(
        self,
        target: tuple[float, float],
        exclude: tuple[float, float] | None = None,
    ) -> tuple[float, float]:
        best_idx = -1
        best_key: tuple[float, int] | None = None
        for idx, slot in enumerate(self._slots):
            if exclude is not None and slot == exclude:
                continue
            dist = abs(slot[0] - target[0]) + abs(slot[1] - target[1])
            key = (self._slot_usage[idx] * 5.0 + dist, idx)
            if best_key is None or key < best_key:
                best_key, best_idx = key, idx
        if best_idx < 0:
            raise RuntimeError("planner has no available module slots")
        self._slot_usage[best_idx] += 1
        return self._slots[best_idx]

    def _dispense_port(self, mo: MO) -> tuple[float, float]:
        """Alternate reservoir ports along the south and north edges."""
        cfg = self.config
        assert mo.size is not None
        w, h = mo.size
        spacing = max(w + 6, 10)
        if self._south_ports <= self._north_ports:
            idx = self._south_ports
            self._south_ports += 1
            x = min(6 + idx * spacing + w / 2, cfg.width - w / 2)
            return (x - 0.5, h / 2 + 0.5)
        idx = self._north_ports
        self._north_ports += 1
        x = min(6 + idx * spacing + w / 2, cfg.width - w / 2)
        return (x - 0.5, cfg.height - h / 2 + 0.5)

    def _exit_port(self) -> tuple[float, float]:
        """Exit ports spaced along the east edge."""
        cfg = self.config
        idx = self._exit_ports
        self._exit_ports += 1
        y = min(8 + idx * 8, cfg.height - 4)
        return (cfg.width - 2.5, float(y) + 0.5)


def plan(graph: SequencingGraph, width: int, height: int) -> SequencingGraph:
    """Convenience wrapper: place ``graph`` on a ``width x height`` chip."""
    return Planner(PlannerConfig(width=width, height=height)).place(graph)
