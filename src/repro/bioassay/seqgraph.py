"""Sequencing graphs (Sec. VI-A, Fig. 12).

A bioassay is represented as a sequencing graph: a DAG of microfluidic
operations whose edges carry droplets from producer to consumer.  The graph
is validated structurally (arity, acyclicity, single consumption of each
output droplet) and ordered topologically for the planner and RJ helper.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.bioassay.ops import MO, MOType


@dataclass
class SequencingGraph:
    """A validated bioassay sequencing graph."""

    name: str
    mos: list[MO]

    def __post_init__(self) -> None:
        self._by_name = {mo.name: mo for mo in self.mos}
        if len(self._by_name) != len(self.mos):
            raise ValueError(f"bioassay {self.name!r} has duplicate MO names")
        self._graph = nx.DiGraph()
        for mo in self.mos:
            self._graph.add_node(mo.name)
        for mo in self.mos:
            for pred in mo.pre:
                if pred not in self._by_name:
                    raise ValueError(
                        f"MO {mo.name!r} references unknown predecessor {pred!r}"
                    )
                self._graph.add_edge(pred, mo.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError(f"bioassay {self.name!r} has a dependency cycle")
        self._check_consumption()

    def _check_consumption(self) -> None:
        """Each producer output droplet feeds at most one consumer."""
        consumed: dict[tuple[str, int], str] = {}
        for mo in self.mos:
            slots = mo.pre_output if mo.pre_output else (0,) * len(mo.pre)
            for pred, slot in zip(mo.pre, slots):
                producer = self._by_name[pred]
                if slot >= producer.n_outputs:
                    raise ValueError(
                        f"MO {mo.name!r} consumes output {slot} of {pred!r}, "
                        f"which has only {producer.n_outputs} outputs"
                    )
                key = (pred, slot)
                if key in consumed:
                    raise ValueError(
                        f"output {slot} of {pred!r} consumed by both "
                        f"{consumed[key]!r} and {mo.name!r}"
                    )
                consumed[key] = mo.name

    # -- queries ------------------------------------------------------------

    def mo(self, name: str) -> MO:
        return self._by_name[name]

    def topological(self) -> list[MO]:
        """MOs in a dependency-respecting order (stable by list position)."""
        order = list(
            nx.lexicographical_topological_sort(
                self._graph, key=lambda n: self._index(n)
            )
        )
        return [self._by_name[n] for n in order]

    def _index(self, name: str) -> int:
        return next(i for i, mo in enumerate(self.mos) if mo.name == name)

    def successors(self, name: str) -> list[MO]:
        return [self._by_name[n] for n in self._graph.successors(name)]

    def predecessors(self, name: str) -> list[MO]:
        return [self._by_name[n] for n in self._graph.predecessors(name)]

    @property
    def depth(self) -> int:
        """Length of the longest dependency chain."""
        return int(nx.dag_longest_path_length(self._graph)) + 1

    def count(self, mo_type: MOType) -> int:
        """Number of MOs of a given type."""
        return sum(1 for mo in self.mos if mo.type is mo_type)

    def with_placement(self, placed: dict[str, tuple[tuple[float, float], ...]]) -> "SequencingGraph":
        """A copy with planner-assigned locations applied."""
        new_mos = []
        for mo in self.mos:
            if mo.name in placed:
                new_mos.append(mo.with_locs(placed[mo.name]))
            else:
                new_mos.append(mo)
        return SequencingGraph(name=self.name, mos=new_mos)

    def is_placed(self) -> bool:
        return all(mo.placed for mo in self.mos)

    def __len__(self) -> int:
        return len(self.mos)
