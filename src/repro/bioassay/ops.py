"""Microfluidic operation (MO) types and records (Table III, Fig. 12).

A bioassay's sequencing graph is preprocessed by a planner into an MO list;
each entry is ``MO = (type, pre, loc)`` plus the droplet-size information the
RJ helper needs.  The input/output droplet arity per type is Table III:

    dis       (0, 1)   dispense a droplet (enter biochip)
    out/dsc   (1, 0)   output / discard a droplet (exit biochip)
    mix       (2, 1)   mix two droplets into one
    spt       (1, 2)   split a droplet into two
    dlt       (2, 2)   dilute a droplet using another (buffer) droplet
    mag       (1, 1)   magnetic-bead sensing / immobilization
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class MOType(Enum):
    """The microfluidic operation types of Table III."""

    DIS = "dis"
    OUT = "out"
    DSC = "dsc"
    MIX = "mix"
    SPT = "spt"
    DLT = "dlt"
    MAG = "mag"


#: (input droplets, output droplets) per MO type — Table III.
MO_ARITY: dict[MOType, tuple[int, int]] = {
    MOType.DIS: (0, 1),
    MOType.OUT: (1, 0),
    MOType.DSC: (1, 0),
    MOType.MIX: (2, 1),
    MOType.SPT: (1, 2),
    MOType.DLT: (2, 2),
    MOType.MAG: (1, 1),
}

#: How many center locations each MO type needs (split and dilute produce
#: droplets at two distinct locations).
MO_LOCATIONS: dict[MOType, int] = {
    MOType.DIS: 1,
    MOType.OUT: 1,
    MOType.DSC: 1,
    MOType.MIX: 1,
    MOType.SPT: 2,
    MOType.DLT: 2,
    MOType.MAG: 1,
}


@dataclass(frozen=True)
class MO:
    """One microfluidic operation.

    ``pre`` names the predecessor MOs supplying the input droplets (their
    order matters: input ``i`` comes from ``pre[i]``); ``pre_output`` picks
    which output droplet of each predecessor feeds this MO (defaults to
    output 0 — relevant for split/dilute predecessors with two outputs).
    ``locs`` are the center locations of Table IV; ``size`` the dispensed
    droplet's ``(w, h)`` for dis MOs; ``hold_cycles`` how long the droplet is
    held in place once routed (mixing time, magnetic sensing time, ...);
    ``concentration`` the dispensed reagent's analyte concentration (0 for
    pure buffer, 1 for neat sample) — the scheduler propagates it through
    mixes, splits and dilutions so dilution chains can be validated.
    """

    name: str
    type: MOType
    pre: tuple[str, ...] = ()
    locs: tuple[tuple[float, float], ...] = ()
    size: tuple[int, int] | None = None
    pre_output: tuple[int, ...] = ()
    hold_cycles: int = 0
    concentration: float = 0.0

    def __post_init__(self) -> None:
        n_in, _ = MO_ARITY[self.type]
        if len(self.pre) != n_in:
            raise ValueError(
                f"{self.type.value} MO {self.name!r} needs {n_in} predecessors, "
                f"got {len(self.pre)}"
            )
        if self.pre_output and len(self.pre_output) != len(self.pre):
            raise ValueError(
                f"MO {self.name!r}: pre_output must match pre in length"
            )
        if self.type is MOType.DIS and self.size is None:
            raise ValueError(f"dispense MO {self.name!r} needs a droplet size")
        if self.size is not None and (self.size[0] <= 0 or self.size[1] <= 0):
            raise ValueError(f"MO {self.name!r} has a non-positive droplet size")
        if self.hold_cycles < 0:
            raise ValueError(f"MO {self.name!r} has negative hold cycles")
        if not 0.0 <= self.concentration <= 1.0:
            raise ValueError(
                f"MO {self.name!r} concentration must lie in [0, 1]"
            )
        if self.locs and len(self.locs) != MO_LOCATIONS[self.type]:
            raise ValueError(
                f"{self.type.value} MO {self.name!r} needs "
                f"{MO_LOCATIONS[self.type]} locations, got {len(self.locs)}"
            )

    @property
    def n_inputs(self) -> int:
        return MO_ARITY[self.type][0]

    @property
    def n_outputs(self) -> int:
        return MO_ARITY[self.type][1]

    @property
    def placed(self) -> bool:
        """Whether the planner has assigned this MO its locations."""
        return len(self.locs) == MO_LOCATIONS[self.type]

    def with_locs(self, locs: tuple[tuple[float, float], ...]) -> "MO":
        """A placed copy of this MO (the planner's output)."""
        return MO(
            name=self.name,
            type=self.type,
            pre=self.pre,
            locs=locs,
            size=self.size,
            pre_output=self.pre_output,
            hold_cycles=self.hold_cycles,
            concentration=self.concentration,
        )


#: Default hold durations (operational cycles) per MO type: mixing and
#: magnetic sensing take time even after the droplets are in place.
DEFAULT_HOLD_CYCLES: dict[MOType, int] = {
    MOType.DIS: 0,
    MOType.OUT: 0,
    MOType.DSC: 0,
    MOType.MIX: 4,
    MOType.SPT: 2,
    MOType.DLT: 4,
    MOType.MAG: 8,
}
