"""Placement remapping policy: relocate module slots off dying silicon.

The policy owns a :class:`Planner` over the same slot grid the original
placement used, tracks the current :class:`QuarantineMap`, and — when the
scheduler asks — relocates an MO's module slot(s) to the cheapest spare
slot whose zone is clean, using the planner's usage/distance slot costs
augmented with a health-weighted term.  Relocation is validated by
trial-decomposing the MO at the candidate placement and checking that
every placement-derived pattern (goals, outputs, merged pattern) avoids
the quarantined region.
"""

from __future__ import annotations

import numpy as np

from repro import obs, perf
from repro.bioassay.ops import MO, MO_LOCATIONS
from repro.bioassay.planner import Planner, PlannerConfig
from repro.core.routing_job import DecomposedMO, RJHelper
from repro.geometry.rect import Rect
from repro.reconfig.quarantine import (
    GUARD_BAND,
    MIN_HEALTH,
    QuarantineMap,
    quarantine_mask,
)

#: Cost per unit of lost mean health when ranking relocation candidates.
HEALTH_WEIGHT = 4.0

#: Half-extent of the footprint checked around a slot center (covers the
#: largest module droplet patterns, 6x6, plus the merge margin).
SLOT_MARGIN = 3


class ReconfigPolicy:
    """Quarantine tracking plus module-slot remapping for one execution."""

    def __init__(
        self,
        width: int,
        height: int,
        min_health: int = MIN_HEALTH,
        guard: int = GUARD_BAND,
        health_weight: float = HEALTH_WEIGHT,
        wear: np.ndarray | None = None,
    ) -> None:
        self.width = width
        self.height = height
        self.min_health = min_health
        self.guard = guard
        self.health_weight = health_weight
        self.planner = Planner(PlannerConfig(width=width, height=height),
                               wear=wear)
        self.map: QuarantineMap | None = None
        self._version = 0
        self.remaps = 0
        self.remap_failures = 0

    def seed_placement(self, mos) -> None:
        """Mark the original placement's module slots as used.

        The policy's planner starts with zero usage counts; without this,
        remapping would happily relocate an MO onto a slot another MO
        already occupies.  Any MO location that coincides with a slot
        center bumps that slot's usage.
        """
        for mo in mos:
            for loc in mo.locs:
                for idx in range(self.planner.n_slots):
                    if self.planner.slot(idx) == loc:
                        self.planner.note_usage(idx)
                        break

    # -- quarantine tracking -------------------------------------------------

    def update(self, health: np.ndarray, cycle: int | None = None) -> QuarantineMap:
        """Recompute the quarantine map; journal + count on change."""
        mask = quarantine_mask(health, self.min_health, self.guard)
        if self.map is not None and np.array_equal(mask, self.map.mask):
            return self.map
        if self.map is None and not mask.any():
            # Healthy chip, nothing quarantined: version 0, no event — a
            # reconfig-enabled run on clean silicon stays telemetry-silent.
            self.map = QuarantineMap(mask, 0, self.min_health, self.guard)
            return self.map
        self._version += 1
        self.map = QuarantineMap(mask, self._version, self.min_health, self.guard)
        perf.incr("reconfig.map_changes")
        perf.set_gauge("reconfig.quarantined_cells", self.map.cells)
        obs.journal_event(
            "reconfig.quarantine", cycle=cycle,
            version=self._version, cells=self.map.cells,
            rects=[r.as_tuple() for r in self.map.rects()[:8]],
        )
        return self.map

    # -- placement checks ----------------------------------------------------

    def placement_tainted(self, dec: DecomposedMO) -> bool:
        """Does any placement-derived pattern of ``dec`` touch quarantine?

        Checks job goals, output patterns and the merged pattern — the
        rectangles determined by the MO's own module slot(s).  Job *starts*
        are predecessor territory: the scheduler rebases them onto actual
        droplet positions at activation, so a remap cannot (and need not)
        move them.
        """
        qmap = self.map
        if qmap is None or not qmap.cells:
            return False
        rects = [job.goal for job in dec.jobs]
        rects.extend(dec.output_patterns)
        if dec.merged_pattern is not None:
            rects.append(dec.merged_pattern)
        return any(qmap.overlaps(r) for r in rects)

    def _slot_tainted(self, slot: tuple[float, float], qmap: QuarantineMap) -> bool:
        x, y = int(slot[0]), int(slot[1])
        return qmap.overlaps(Rect(x - SLOT_MARGIN + 1, y - SLOT_MARGIN + 1,
                                  x + SLOT_MARGIN, y + SLOT_MARGIN))

    def _slot_health(self, health: np.ndarray, slot: tuple[float, float]) -> float:
        x0 = max(0, int(slot[0]) - SLOT_MARGIN)
        x1 = min(self.width, int(slot[0]) + SLOT_MARGIN)
        y0 = max(0, int(slot[1]) - SLOT_MARGIN)
        y1 = min(self.height, int(slot[1]) + SLOT_MARGIN)
        return float(health[x0:x1, y0:y1].mean())

    # -- remapping -----------------------------------------------------------

    def remap(
        self,
        mo: MO,
        centroid: tuple[float, float],
        health: np.ndarray,
        helper: RJHelper,
    ) -> DecomposedMO | None:
        """Relocate ``mo``'s module slot(s) onto clean silicon.

        Candidates are ranked by the planner's usage-balanced distance cost
        plus a health-weighted penalty; the first candidate whose trial
        decomposition is quarantine-free wins and is committed into
        ``helper`` (so successor MOs rebase onto the new outputs).  Returns
        ``None`` when no spare slot works.
        """
        qmap = self.map
        if qmap is None or not qmap.cells:
            return None
        health = np.asarray(health)
        top = float(health.max())

        def slot_cost(idx: int, slot: tuple[float, float]) -> float:
            return self.health_weight * (top - self._slot_health(health, slot))

        n_locs = MO_LOCATIONS[mo.type]
        for idx in self.planner.slot_order(centroid, slot_cost=slot_cost):
            primary = self.planner.slot(idx)
            if self._slot_tainted(primary, qmap):
                continue
            locs = (primary,)
            second_idx: int | None = None
            if n_locs == 2:
                second_idx = next(
                    (j for j in self.planner.slot_order(
                        primary, exclude=idx, slot_cost=slot_cost)
                     if not self._slot_tainted(self.planner.slot(j), qmap)),
                    None,
                )
                if second_idx is None:
                    continue
                locs = (primary, self.planner.slot(second_idx))
            candidate = helper.redecompose(mo.with_locs(locs), commit=False)
            if candidate is None or self.placement_tainted(candidate):
                continue
            committed = helper.redecompose(mo.with_locs(locs), commit=True)
            assert committed is not None
            self.planner.note_usage(idx)
            if second_idx is not None:
                self.planner.note_usage(second_idx)
            self.remaps += 1
            perf.incr("reconfig.remaps")
            return committed
        self.remap_failures += 1
        perf.incr("reconfig.remap_failures")
        return None
