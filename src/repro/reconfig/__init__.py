"""Reconfiguration layer: quarantine maps and placement remapping.

Sits between the degradation model and the scheduler.  The paper's
adaptivity re-synthesizes routes *within* a fixed placement; this package
adds the space-redundancy layer from the fault-tolerance literature
(Su/Chakrabarty/Pamula's local reconfiguration): dead silicon is
quarantined, module slots whose zones are quarantined are remapped to
spare slots, and an optional wear-leveling mode spreads placements by
accumulated actuation load.
"""

from repro.reconfig.quarantine import QuarantineMap, quarantine_mask
from repro.reconfig.policy import ReconfigPolicy

__all__ = ["QuarantineMap", "quarantine_mask", "ReconfigPolicy"]
