"""Hazard-zone quarantine maps derived from the chip health array.

A microelectrode whose quantized health falls below the viability
threshold cannot reliably move a droplet; any droplet pattern overlapping
it risks a no-route failure (the MDP assigns it zero transition
probability).  The quarantine map marks those cells — dilated by a guard
band so droplets keep a merge-safe distance from dying silicon — and
exposes them as rectangles the scheduler can inject as routing obstacles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.rect import Rect

#: Health levels strictly below this are quarantined (0 = outright dead).
MIN_HEALTH = 1

#: Chebyshev radius of the guard band dilated around quarantined cells.
GUARD_BAND = 1


def _dilate(mask: np.ndarray, radius: int) -> np.ndarray:
    """Chebyshev (8-neighbour) dilation of a boolean mask by ``radius``."""
    if radius <= 0 or not mask.any():
        return mask.copy()
    w, h = mask.shape
    padded = np.zeros((w + 2 * radius, h + 2 * radius), dtype=bool)
    padded[radius:radius + w, radius:radius + h] = mask
    out = mask.copy()
    for dx in range(-radius, radius + 1):
        for dy in range(-radius, radius + 1):
            if dx == 0 and dy == 0:
                continue
            out |= padded[radius + dx:radius + dx + w,
                          radius + dy:radius + dy + h]
    return out


def quarantine_mask(
    health: np.ndarray,
    min_health: int = MIN_HEALTH,
    guard: int = GUARD_BAND,
) -> np.ndarray:
    """Boolean ``(width, height)`` mask of quarantined cells."""
    return _dilate(np.asarray(health) < min_health, guard)


def mask_rects(mask: np.ndarray) -> tuple[Rect, ...]:
    """Greedy decomposition of a boolean mask into disjoint rectangles.

    Merges identical per-column runs of set cells across adjacent columns,
    so axis-aligned fault shapes (dead columns, square clusters) come back
    as single rectangles.  Coordinates are 1-based inclusive like
    :class:`Rect`.
    """
    rects: list[Rect] = []
    open_runs: dict[tuple[int, int], int] = {}
    width, height = mask.shape
    for x in range(width + 1):
        runs: set[tuple[int, int]] = set()
        if x < width:
            col = mask[x]
            y = 0
            while y < height:
                if col[y]:
                    y0 = y
                    while y < height and col[y]:
                        y += 1
                    runs.add((y0, y - 1))
                else:
                    y += 1
        for run in [r for r in open_runs if r not in runs]:
            xa = open_runs.pop(run)
            rects.append(Rect(xa + 1, run[0] + 1, x, run[1] + 1))
        for run in runs:
            open_runs.setdefault(run, x)
    return tuple(sorted(rects))


@dataclass(frozen=True)
class QuarantineMap:
    """An immutable snapshot of the quarantined region of the chip.

    ``version`` increments every time the mask changes over a policy's
    lifetime, letting the scheduler re-check placements exactly once per
    map change instead of every cycle.
    """

    mask: np.ndarray
    version: int
    min_health: int = MIN_HEALTH
    guard: int = GUARD_BAND
    _rects: list = field(default_factory=list, repr=False, compare=False)

    @property
    def cells(self) -> int:
        """Number of quarantined microelectrodes."""
        return int(self.mask.sum())

    def overlaps(self, rect: Rect) -> bool:
        """Does ``rect`` (clamped to the chip) cover a quarantined cell?"""
        w, h = self.mask.shape
        x0, x1 = max(0, rect.xa - 1), min(w, rect.xb)
        y0, y1 = max(0, rect.ya - 1), min(h, rect.yb)
        if x0 >= x1 or y0 >= y1:
            return False
        return bool(self.mask[x0:x1, y0:y1].any())

    def rects(self) -> tuple[Rect, ...]:
        """Quarantined region as disjoint rectangles (cached)."""
        if not self._rects:
            self._rects.append(mask_rects(self.mask))
        return self._rects[0]
