"""Circuit-level substrate: the microelectrode cell and its sensing path.

Replaces the paper's HSPICE simulations (Fig. 2) with closed-form RC
transients; see DESIGN.md for the substitution argument.
"""

from repro.circuits.mc_cell import (
    C_DEGRADED,
    C_HEALTHY,
    C_PARTIAL,
    DFF_CLOCK_SKEW_S,
    VDD,
    HealthSenseConfig,
    OriginalCell,
    ProposedCell,
    default_proposed_cell,
    health_capacitance,
    transistor_states,
)
from repro.circuits.rc import (
    RCPath,
    capacitance_from_charging_time,
    parallel_plate_capacitance,
)
from repro.circuits.sensing import (
    MultiEdgeSenseConfig,
    OperationalCycle,
    ScanChain,
    multi_edge_health,
)

__all__ = [
    "C_DEGRADED",
    "C_HEALTHY",
    "C_PARTIAL",
    "DFF_CLOCK_SKEW_S",
    "VDD",
    "HealthSenseConfig",
    "MultiEdgeSenseConfig",
    "OperationalCycle",
    "OriginalCell",
    "ProposedCell",
    "RCPath",
    "ScanChain",
    "capacitance_from_charging_time",
    "default_proposed_cell",
    "health_capacitance",
    "multi_edge_health",
    "parallel_plate_capacitance",
    "transistor_states",
]
