"""Microelectrode-cell (MC) models: the original and the proposed design.

Sec. III of the paper describes an MC as a microelectrode plus a control
circuit (transistors T1-T4 driven by ACT, ACT_b and SEL) and a sensing module
built around one D flip-flop (original design, Fig. 1a) or two D flip-flops
with skewed clocks (proposed design, Fig. 1b).

Sensing works by charging the electrode-to-top-plate capacitor and sampling a
comparator against the charging waveform:

* **Droplet sensing** (both designs): a droplet above the microelectrode
  raises the capacitance by orders of magnitude (the droplet's permittivity
  dwarfs the filler fluid's), so the charging time blows past the sampling
  edge and the DFF latches the droplet-present code.
* **Health sensing** (proposed design only): charge trapped in the dielectric
  perturbs the effective capacitance by a few attofarads (Table I:
  2.375 / 2.380 / 2.385 fF for healthy / partially / completely degraded).
  The added DFF's clock edge arrives a fixed skew (5 ns in Fig. 2) after the
  original DFF's edge; where the charging waveform crosses the comparator
  threshold relative to the two edges yields a 2-bit health code:
  ``11`` healthy, ``01`` partially degraded, ``00`` completely degraded.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.circuits.rc import RCPath

#: Table I capacitances (farads).
C_HEALTHY = 2.375e-15
C_PARTIAL = 2.380e-15
C_DEGRADED = 2.385e-15

#: Nominal supply of the fabricated MC array (Sec. III-B).
VDD = 3.3

#: Clock skew between the original and the added DFF (Fig. 2).
DFF_CLOCK_SKEW_S = 5e-9


class SensePhase(Enum):
    """The two phases of the MC sensing sequence (Sec. III-B)."""

    CHARGE = "charge"
    DISCHARGE = "discharge"


@dataclass(frozen=True)
class TransistorStates:
    """On/off states of T1-T4 for a given control-signal assignment."""

    t1: bool
    t2: bool
    t3: bool
    t4: bool


def transistor_states(act: int, act_b: int, sel: int) -> TransistorStates:
    """Switch states of the MC control circuit for (ACT, ACT_b, SEL).

    Reproduces the two sensing phases described in Sec. III-B:

    * ``ACT=0, ACT_b=1, SEL=1`` — T1, T2, T4 on, T3 off; the bottom plate is
      tied to VDD and charges to 3.3 V.
    * ``ACT=0, ACT_b=0, SEL=1`` — T1, T3, T4 on, T2 off; the bottom plate is
      tied to ground and discharges.

    ``ACT=1`` is the actuation configuration: the electrode is driven by the
    EWOD actuation voltage and the sense path is disabled.
    """
    for name, value in (("ACT", act), ("ACT_b", act_b), ("SEL", sel)):
        if value not in (0, 1):
            raise ValueError(f"{name} must be 0 or 1, got {value}")
    if act == 1:
        return TransistorStates(t1=False, t2=False, t3=False, t4=False)
    return TransistorStates(
        t1=bool(sel),
        t2=bool(act_b),
        t3=not act_b,
        t4=bool(sel),
    )


@dataclass(frozen=True)
class HealthSenseConfig:
    """Timing configuration of the proposed health-sensing circuit.

    The comparator threshold sits at ``v_threshold``; the original DFF clock
    rises at ``t_clk`` and the added DFF at ``t_clk + clock_skew``.  The
    sense-path resistance is chosen so that one attofarad-scale capacitance
    step shifts the threshold-crossing time by one clock skew — the design
    degree of freedom Fig. 2 demonstrates.
    """

    resistance: float
    v_supply: float = VDD
    v_threshold: float = VDD / 2
    t_clk: float = 0.0
    clock_skew: float = DFF_CLOCK_SKEW_S

    @staticmethod
    def calibrated(
        c_healthy: float = C_HEALTHY,
        c_partial: float = C_PARTIAL,
        clock_skew: float = DFF_CLOCK_SKEW_S,
        v_supply: float = VDD,
        v_threshold: float = VDD / 2,
    ) -> "HealthSenseConfig":
        """Pick R and the clock phase so the three classes straddle the edges.

        The charging time of a capacitance ``C`` is
        ``t*(C) = R C ln(Vs / (Vs - Vth))``, linear in ``C``; we solve for the
        ``R`` that makes the healthy-to-partial capacitance step correspond to
        exactly one clock skew, then place the original DFF edge halfway
        between the healthy and partial crossing times.
        """
        if c_partial <= c_healthy:
            raise ValueError("partial capacitance must exceed healthy capacitance")
        log_term = np.log(v_supply / (v_supply - v_threshold))
        resistance = clock_skew / ((c_partial - c_healthy) * log_term)
        t_healthy = resistance * c_healthy * log_term
        return HealthSenseConfig(
            resistance=resistance,
            v_supply=v_supply,
            v_threshold=v_threshold,
            t_clk=t_healthy + clock_skew / 2,
            clock_skew=clock_skew,
        )

    def crossing_time(self, capacitance: float) -> float:
        """Time at which the charging node first reaches the threshold."""
        path = RCPath(self.resistance, capacitance, self.v_supply)
        return path.charging_time(self.v_threshold)

    def sample_bits(self, capacitance: float) -> tuple[int, int]:
        """The (original, added) DFF bits for a given effective capacitance.

        A DFF latches ``1`` when the node has already crossed the comparator
        threshold by its clock edge.  Healthy cells charge fastest (smallest
        C) and latch ``(1, 1)``; a partially degraded cell crosses between the
        two edges and latches ``(0, 1)``; a completely degraded cell crosses
        after both and latches ``(0, 0)`` — the codes of Sec. III-B.
        """
        t_cross = self.crossing_time(capacitance)
        original = int(t_cross <= self.t_clk)
        added = int(t_cross <= self.t_clk + self.clock_skew)
        return (original, added)


def health_capacitance(degradation: float, c_healthy: float = C_HEALTHY,
                       c_degraded: float = C_DEGRADED) -> float:
    """Effective capacitance of a microelectrode at degradation level ``D``.

    Interpolates linearly between the healthy (``D = 1``) and completely
    degraded (``D = 0``) capacitances of Table I; charge trapping raises the
    capacitance as the cell degrades (Sec. III-B / ref. [30]).
    """
    if not 0.0 <= degradation <= 1.0:
        raise ValueError(f"degradation must be in [0, 1], got {degradation}")
    return c_degraded - degradation * (c_degraded - c_healthy)


@dataclass(frozen=True)
class OriginalCell:
    """The original MC design (Fig. 1a): a single DFF, droplet sensing only."""

    config: HealthSenseConfig

    def sense_droplet(self, droplet_present: bool, degradation: float = 1.0) -> int:
        """One-bit droplet-presence code (``1`` = droplet overhead).

        A droplet multiplies the effective capacitance by orders of
        magnitude, so the charging waveform cannot reach the threshold by the
        droplet-sensing clock edge.  That edge sits far later than the
        health-sensing edges (the droplet capacitance step is ~1000x the
        attofarad-scale degradation step), so degradation never masquerades
        as a droplet.
        """
        capacitance = health_capacitance(degradation)
        if droplet_present:
            capacitance *= 1e3
        t_cross = self.config.crossing_time(capacitance)
        t_clk_droplet = 10.0 * (self.config.t_clk + self.config.clock_skew)
        return int(t_cross > t_clk_droplet)


@dataclass(frozen=True)
class ProposedCell:
    """The proposed MC design (Fig. 1b): two skewed DFFs, 2-bit health code."""

    config: HealthSenseConfig

    def sense_health(self, degradation: float) -> tuple[int, int]:
        """The 2-bit health code for a cell at degradation level ``D``."""
        return self.config.sample_bits(health_capacitance(degradation))

    def health_level(self, degradation: float) -> int:
        """The health code as an integer in [0, 3] (``3`` = fully healthy)."""
        original, added = self.sense_health(degradation)
        return 2 * original + added


def default_proposed_cell() -> ProposedCell:
    """A proposed cell with the calibrated Fig. 2 timing."""
    return ProposedCell(HealthSenseConfig.calibrated())
