"""Scan-chain and operational-cycle model of the MEDA sensing subsystem.

Sec. III-A: in each *operational cycle* the controller (1) shifts an actuation
bitstream into the MC array through a scan chain, (2) actuates the MCs,
(3) switches all MCs to sensing mode to capture droplet locations (and, with
the proposed design, health levels), and (4) shifts the sensing results out as
a bitstream.

This module is the circuit-faithful path: every health code is produced by
simulating the RC charging waveform against staggered DFF clock edges.  The
biochip simulator uses the vectorized quantization in
:mod:`repro.degradation.model` for speed; :func:`multi_edge_health` is proven
equivalent to that quantization by the unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.mc_cell import (
    C_DEGRADED,
    C_HEALTHY,
    VDD,
    HealthSenseConfig,
    health_capacitance,
)
from repro.circuits.rc import RCPath


class ScanChain:
    """A serial scan chain over ``length`` single-bit cells.

    Models the shift-register used to move actuation patterns into and
    sensing results out of the MC array.  Bits are shifted in/out LSB-first;
    a full load or unload takes ``length`` shift clocks, which is what makes
    an operational cycle's latency proportional to the array size.
    """

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ValueError("scan chain needs a positive length")
        self.length = length
        self._bits = [0] * length
        self.shift_count = 0

    def shift_in(self, bit: int) -> int:
        """Shift one bit in; returns the bit that falls off the far end."""
        if bit not in (0, 1):
            raise ValueError(f"scan bits must be 0 or 1, got {bit}")
        out = self._bits[-1]
        self._bits = [bit] + self._bits[:-1]
        self.shift_count += 1
        return out

    def load(self, bits: list[int]) -> list[int]:
        """Shift a full pattern in; returns the pattern shifted out."""
        if len(bits) != self.length:
            raise ValueError(
                f"pattern length {len(bits)} does not match chain length {self.length}"
            )
        return [self.shift_in(b) for b in reversed(bits)][::-1]

    def snapshot(self) -> list[int]:
        """The bits currently held in the chain (index 0 = farthest cell)."""
        return list(self._bits)


@dataclass(frozen=True)
class MultiEdgeSenseConfig:
    """Health sensing with ``2^b - 1`` staggered clock edges.

    Sec. III-B notes that "by carefully controlling the rising edges of the
    two DFFs, we can dynamically measure the health status"; with GHz-range
    CMOS frequency dividers the sampling edge can be re-phased across
    operational cycles.  Generalizing the 2-DFF design, ``2^b - 1`` edges
    placed at the charging times of the quantization-bucket boundaries yield
    exactly the paper's ``H = floor(2^b D)`` code:

    the charging time ``t*(D)`` is strictly decreasing in ``D``, so the number
    of boundary edges the waveform has already crossed equals the bucket
    index.
    """

    bits: int = 2
    resistance: float = 1.0e9
    v_supply: float = VDD
    v_threshold: float = VDD / 2
    c_healthy: float = C_HEALTHY
    c_degraded: float = C_DEGRADED

    def crossing_time(self, degradation: float) -> float:
        """Threshold-crossing time of a cell at degradation level ``D``."""
        capacitance = health_capacitance(
            degradation, c_healthy=self.c_healthy, c_degraded=self.c_degraded
        )
        path = RCPath(self.resistance, capacitance, self.v_supply)
        return path.charging_time(self.v_threshold)

    def edge_times(self) -> list[float]:
        """Clock-edge times at the quantization-bucket boundaries.

        Edge ``k`` (1-based) sits at the crossing time of ``D = k / 2^b``;
        a waveform that crossed before edge ``k`` certifies ``D >= k / 2^b``.
        """
        levels = 1 << self.bits
        return [self.crossing_time(k / levels) for k in range(1, levels)]

    def sense(self, degradation: float) -> int:
        """The ``b``-bit health code measured for degradation level ``D``."""
        if not 0.0 <= degradation <= 1.0:
            raise ValueError(f"degradation must be in [0, 1], got {degradation}")
        t_cross = self.crossing_time(degradation)
        return sum(1 for edge in self.edge_times() if t_cross <= edge)


def multi_edge_health(
    degradation: np.ndarray, bits: int = 2, config: MultiEdgeSenseConfig | None = None
) -> np.ndarray:
    """Circuit-level health matrix for a degradation matrix ``D``.

    Runs the staggered-edge sensing cell by cell.  Slow but faithful; the
    tests verify it agrees with :func:`repro.degradation.model.quantize_health`
    everywhere except exactly at bucket boundaries (where the two round in
    the same direction by construction).
    """
    cfg = config if config is not None else MultiEdgeSenseConfig(bits=bits)
    if cfg.bits != bits:
        raise ValueError("config bits disagree with requested bits")
    out = np.empty(degradation.shape, dtype=int)
    for idx in np.ndindex(*degradation.shape):
        out[idx] = cfg.sense(float(degradation[idx]))
    return out


@dataclass
class OperationalCycle:
    """One scan-in / actuate / sense / scan-out cycle over a W x H array.

    ``sense_config`` supplies the health-sensing timing; droplet sensing uses
    the two-DFF config's droplet edge.  The object keeps cycle counters so
    tests can assert the latency bookkeeping (one full scan-in plus one full
    scan-out per cycle).
    """

    width: int
    height: int
    health_config: MultiEdgeSenseConfig = field(default_factory=MultiEdgeSenseConfig)
    cycles_run: int = 0

    def __post_init__(self) -> None:
        self._chain = ScanChain(self.width * self.height)

    def run(
        self, actuation: np.ndarray, degradation: np.ndarray, occupancy: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Execute one operational cycle.

        ``actuation`` is the 0/1 actuation matrix scanned in; ``degradation``
        the hidden per-MC degradation levels; ``occupancy`` the boolean
        droplet-presence matrix.  Returns ``(Y, H)``: the sensed droplet map
        and the sensed health matrix, both scanned out of the array.
        """
        for name, mat in (
            ("actuation", actuation),
            ("degradation", degradation),
            ("occupancy", occupancy),
        ):
            if mat.shape != (self.width, self.height):
                raise ValueError(
                    f"{name} shape {mat.shape} does not match array "
                    f"({self.width}, {self.height})"
                )
        # Scan the actuation pattern in (flattened row-major).
        self._chain.load([int(b) for b in actuation.astype(int).ravel()])
        # Sense: droplet presence dominates the capacitance; health sensing
        # is meaningful only where no droplet sits on the cell.
        health = multi_edge_health(degradation, bits=self.health_config.bits,
                                   config=self.health_config)
        y = occupancy.astype(int)
        # Scan the results out (droplet bits first, then health bits).
        self._chain.load([int(b) for b in y.ravel()])
        self.cycles_run += 1
        return y, health


def droplet_sense_config() -> HealthSenseConfig:
    """The calibrated two-DFF timing used for droplet/health discrimination."""
    return HealthSenseConfig.calibrated()
