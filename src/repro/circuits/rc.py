"""First-order RC transient models for the microelectrode sense path.

The MC sensing mechanism (Sec. III-B) charges and discharges the capacitor
formed by the bottom-plate microelectrode and the grounded top plate through a
series resistance, and detects a droplet (or, with the proposed design,
degradation) from the *charging time*.  The PCB experiment of Sec. IV-A uses
the same physics explicitly:

    V_C(t) = Vpp (1 - e^(-t / RC))

These closed-form transients replace the paper's HSPICE runs.  The
discrimination result of Fig. 2 depends only on where the charging waveform
crosses the comparator threshold relative to the two DFF clock edges, which
the analytic model reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RCPath:
    """A series-RC charge/discharge path.

    ``resistance`` in ohms, ``capacitance`` in farads, ``v_supply`` in volts.
    ``v_initial`` models residual (trapped) charge already on the node when
    charging starts.
    """

    resistance: float
    capacitance: float
    v_supply: float
    v_initial: float = 0.0

    def __post_init__(self) -> None:
        if self.resistance <= 0.0 or self.capacitance <= 0.0:
            raise ValueError("R and C must be positive")
        if self.v_supply <= 0.0:
            raise ValueError("supply voltage must be positive")
        if not 0.0 <= self.v_initial < self.v_supply:
            raise ValueError("initial voltage must lie in [0, v_supply)")

    @property
    def time_constant(self) -> float:
        """The RC time constant in seconds."""
        return self.resistance * self.capacitance

    def charge_voltage(self, t: float | np.ndarray) -> float | np.ndarray:
        """Node voltage ``t`` seconds after charging starts.

        ``V(t) = Vs - (Vs - V0) e^(-t/RC)``; reduces to the paper's
        ``Vpp (1 - e^(-t/RC))`` when ``V0 = 0``.
        """
        t = np.asarray(t, dtype=float)
        v = self.v_supply - (self.v_supply - self.v_initial) * np.exp(
            -t / self.time_constant
        )
        return float(v) if v.ndim == 0 else v

    def discharge_voltage(
        self, t: float | np.ndarray, v_start: float | None = None
    ) -> float | np.ndarray:
        """Node voltage ``t`` seconds after discharging from ``v_start``.

        ``v_start`` defaults to the supply voltage (a fully charged node).
        """
        v0 = self.v_supply if v_start is None else v_start
        t = np.asarray(t, dtype=float)
        v = v0 * np.exp(-t / self.time_constant)
        return float(v) if v.ndim == 0 else v

    def charging_time(self, v_threshold: float) -> float:
        """Time for the charging node to first reach ``v_threshold``.

        Solves ``V(t*) = v_threshold`` in closed form.  Returns ``inf`` when
        the threshold can never be reached and ``0`` when the node starts at
        or above it.
        """
        if v_threshold >= self.v_supply:
            return float("inf")
        if v_threshold <= self.v_initial:
            return 0.0
        return self.time_constant * np.log(
            (self.v_supply - self.v_initial) / (self.v_supply - v_threshold)
        )

    def discharging_time(self, v_threshold: float, v_start: float | None = None) -> float:
        """Time for the discharging node to first fall to ``v_threshold``."""
        v0 = self.v_supply if v_start is None else v_start
        if v_threshold <= 0.0:
            return float("inf")
        if v_threshold >= v0:
            return 0.0
        return self.time_constant * np.log(v0 / v_threshold)


def capacitance_from_charging_time(
    t_star: float, resistance: float, v_supply: float, v_threshold: float
) -> float:
    """Invert the charging-time equation to recover an effective capacitance.

    This is the measurement procedure of the PCB experiment (Sec. IV-A): an
    oscilloscope observes the time ``t*`` at which the electrode voltage
    reaches ``v_threshold`` and the effective capacitance follows from the RC
    charge equation.
    """
    if not 0.0 < v_threshold < v_supply:
        raise ValueError("threshold must lie strictly between 0 and the supply")
    if t_star <= 0.0:
        raise ValueError("charging time must be positive")
    return t_star / (resistance * np.log(v_supply / (v_supply - v_threshold)))


def parallel_plate_capacitance(
    area_m2: float, permittivity: float, gap_m: float
) -> float:
    """Parallel-plate capacitance ``C = eps * A / d``.

    With the Table-I parameters (50x50 um² electrode, silicon-oil
    permittivity 19e-12 F/m and a 20 um filler gap) this reproduces the
    healthy-microelectrode capacitance ``C_o ≈ 2.375 fF``.
    """
    if area_m2 <= 0.0 or permittivity <= 0.0 or gap_m <= 0.0:
        raise ValueError("area, permittivity and gap must be positive")
    return permittivity * area_m2 / gap_m
