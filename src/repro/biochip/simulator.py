"""MEDA biochip simulator: the Fig. 14 control flow.

Each operational cycle: the scheduler reads the sensed health matrix and
emits an actuation plan; the simulator applies the actuation to the chip
(wearing the actuated MCs), then samples every moving droplet's next pattern
from the probability distributions of Sec. V-B using the chip's *true*
degradation-derived forces, and reports the outcomes back to the scheduler.

This realizes the incomplete-information variant of the MEDA SMG: the
droplet controller plays against the hidden degradation matrix ``D`` while
observing only the quantized health ``H``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs, perf
from repro.biochip.chip import MedaChip
from repro.biochip.recorder import ActuationRecorder
from repro.biochip.trace import ExecutionTrace, TraceFrame
from repro.core.actions import ACTIONS
from repro.core.droplet import actuation_matrix
from repro.core.scheduler import HybridScheduler
from repro.core.transitions import MatrixForceField, sample_outcome


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one bioassay execution.

    ``cycles`` counts operational cycles until completion (or until the
    failure was detected); ``failure`` is ``None`` on success, else one of
    ``"no-route"``, ``"unintended-merge"``, ``"max-cycles"``.
    """

    success: bool
    cycles: int
    failure: str | None
    resyntheses: int
    total_actuations: int

    @property
    def failure_reason(self) -> str:
        return "success" if self.success else (self.failure or "unknown")


class MedaSimulator:
    """Runs bioassay executions on a :class:`MedaChip`."""

    def __init__(
        self,
        chip: MedaChip,
        rng: np.random.Generator,
        recorder: ActuationRecorder | None = None,
        trace: ExecutionTrace | None = None,
        sensing_policy: str | None = None,
        sensing_weight: float = 0.1,
    ) -> None:
        """``sensing_policy`` optionally charges sensing stress each cycle:
        ``"full"`` scans the whole array (the default MEDA operational
        cycle), ``"selective"`` only the scheduler's active zones and
        droplet neighbourhoods (the lifetime-extension technique of the
        paper's ref. [32]); ``None`` ignores sensing wear (the paper's
        evaluation setting)."""
        if sensing_policy not in (None, "full", "selective"):
            raise ValueError(f"unknown sensing policy {sensing_policy!r}")
        self.chip = chip
        self.rng = rng
        self.recorder = recorder
        self.trace = trace
        self.sensing_policy = sensing_policy
        self.sensing_weight = sensing_weight

    def run(self, scheduler: HybridScheduler, max_cycles: int) -> ExecutionResult:
        """Execute one bioassay to completion, failure, or the cycle cap."""
        if max_cycles <= 0:
            raise ValueError("max_cycles must be positive")
        if (scheduler.width, scheduler.height) != (self.chip.width, self.chip.height):
            raise ValueError("scheduler and chip dimensions disagree")
        with obs.span("assay", width=self.chip.width, height=self.chip.height,
                      max_cycles=max_cycles):
            obs.journal_event(
                "run.start", width=self.chip.width, height=self.chip.height,
                max_cycles=max_cycles, mos=len(scheduler.graph),
                sensing_policy=self.sensing_policy,
            )
            return self._run(scheduler, max_cycles)

    def _run(self, scheduler: HybridScheduler, max_cycles: int) -> ExecutionResult:
        start_actuations = self.chip.total_actuations
        journaling = obs.journal() is not None
        prev_health = self.chip.health() if journaling else None
        cycles = 0
        for cycles in range(1, max_cycles + 1):
            perf.incr("simulator.steps")
            health = self.chip.health()
            if journaling and prev_health is not None:
                crossed = prev_health != health
                if crossed.any():
                    cells = np.argwhere(crossed)
                    obs.journal_event(
                        "degradation.crossing", cycle=scheduler.cycle + 1,
                        cells=int(crossed.sum()),
                        min_health=int(health.min()),
                        sample=[(int(x) + 1, int(y) + 1)
                                for x, y in cells[:8]],
                    )
                prev_health = health
            plan = scheduler.plan_cycle(health)
            if plan.failure is not None:
                return self._result(scheduler, False, cycles - 1, plan.failure,
                                    start_actuations)
            if plan.complete:
                return self._result(scheduler, True, cycles - 1, None,
                                    start_actuations)
            with obs.span("simulator.step", cycle=cycles,
                          moving=len(plan.moves)):
                actuation = actuation_matrix(
                    list(plan.targets.values()), self.chip.width, self.chip.height
                )
                self.chip.apply_actuation(actuation)
                if self.sensing_policy == "full":
                    self.chip.apply_sensing(weight=self.sensing_weight)
                elif self.sensing_policy == "selective":
                    self.chip.apply_sensing(
                        scheduler.sensing_mask(), weight=self.sensing_weight
                    )
                if self.recorder is not None:
                    self.recorder.record(actuation)
                if self.trace is not None:
                    self.trace.record(TraceFrame(
                        cycle=cycles,
                        droplets=dict(scheduler.droplets),
                        moving=tuple(sorted(plan.moves)),
                        total_actuations=self.chip.total_actuations,
                    ))
                field = MatrixForceField(self.chip.true_force())
                moved = {}
                for did, action_name in plan.moves.items():
                    rect = scheduler.droplets[did]
                    outcome = sample_outcome(
                        rect, ACTIONS[action_name], field, self.rng
                    )
                    moved[did] = outcome.delta
                    perf.incr("simulator.transport_attempts")
                    if outcome.delta != plan.targets[did]:
                        # The droplet fell short of the asserted pattern —
                        # a (possibly partial) transport failure caused by
                        # degraded frontier MCs.
                        perf.incr("simulator.transport_failures")
                        obs.journal_event(
                            "transport.failure", cycle=cycles, droplet=did,
                            action=action_name,
                            intended=plan.targets[did].as_tuple(),
                            actual=outcome.delta.as_tuple(),
                        )
            scheduler.apply_outcomes(moved)
            if scheduler.failure is not None:
                return self._result(scheduler, False, cycles, scheduler.failure,
                                    start_actuations)
            if scheduler.complete:
                return self._result(scheduler, True, cycles, None, start_actuations)
        return self._result(scheduler, False, max_cycles, "max-cycles",
                            start_actuations)

    def _result(
        self,
        scheduler: HybridScheduler,
        success: bool,
        cycles: int,
        failure: str | None,
        start_actuations: int,
    ) -> ExecutionResult:
        if self.trace is not None:
            self.trace.events = list(scheduler.events)
        result = ExecutionResult(
            success=success,
            cycles=cycles,
            failure=failure,
            resyntheses=scheduler.resyntheses,
            total_actuations=self.chip.total_actuations - start_actuations,
        )
        obs.journal_event(
            "run.end", cycle=cycles, cycles=cycles, success=success,
            failure=failure, resyntheses=scheduler.resyntheses,
            recoveries=scheduler.recoveries,
            total_actuations=result.total_actuations,
        )
        return result
