"""MEDA biochip state: actuation counts, degradation, health (Sec. VII-A).

The simulator's chip tracks, per microelectrode, the degradation constants
``(tau, c)``, the actuation count ``N`` and an optional sudden-failure plan.
Derived quantities follow Sec. IV-B:

* degradation  ``D = tau^(N/c)`` (zero once a faulty MC passes its failure
  actuation count);
* health       ``H = floor(2^b D)`` clipped to ``[0, 2^b - 1]`` — what the
  droplet controller observes;
* true force   ``F = D²`` — what the simulator rolls droplet motion with.
"""

from __future__ import annotations

import numpy as np

from repro.degradation.faults import FaultPlan, no_faults
from repro.degradation.model import DEFAULT_HEALTH_BITS, quantize_health


class MedaChip:
    """A ``width x height`` MEDA microelectrode array with degradation state."""

    def __init__(
        self,
        tau: np.ndarray,
        c: np.ndarray,
        fault_plan: FaultPlan | None = None,
        bits: int = DEFAULT_HEALTH_BITS,
    ) -> None:
        if tau.shape != c.shape or tau.ndim != 2:
            raise ValueError("tau and c must be equal-shape 2-D arrays")
        if np.any(tau <= 0.0) or np.any(tau > 1.0):
            raise ValueError("tau values must lie in (0, 1]")
        if np.any(c <= 0.0):
            raise ValueError("c values must be positive")
        self.tau = tau.astype(float)
        self.c = c.astype(float)
        self.width, self.height = tau.shape
        self.faults = fault_plan if fault_plan is not None else no_faults(*tau.shape)
        if self.faults.fail_at.shape != tau.shape:
            raise ValueError("fault plan shape does not match the chip")
        self.bits = bits
        self.actuations = np.zeros(tau.shape, dtype=float)

    @classmethod
    def sample(
        cls,
        width: int,
        height: int,
        rng: np.random.Generator,
        tau_range: tuple[float, float] = (0.5, 0.9),
        c_range: tuple[float, float] = (200.0, 500.0),
        fault_plan: FaultPlan | None = None,
        bits: int = DEFAULT_HEALTH_BITS,
    ) -> "MedaChip":
        """A chip with per-MC constants sampled as in Sec. VII-B.

        ``c ~ U(200, 500)`` and ``tau ~ U(0.5, 0.9)`` by default; once
        assigned the constants stay fixed for the chip's lifetime.
        """
        tau = rng.uniform(*tau_range, size=(width, height))
        c = rng.uniform(*c_range, size=(width, height))
        return cls(tau=tau, c=c, fault_plan=fault_plan, bits=bits)

    # -- state evolution -----------------------------------------------------

    def apply_actuation(self, actuation: np.ndarray) -> None:
        """Apply one cycle's actuation matrix ``U`` (0/1 per MC)."""
        if actuation.shape != (self.width, self.height):
            raise ValueError(
                f"actuation shape {actuation.shape} does not match chip "
                f"({self.width}, {self.height})"
            )
        self.actuations += actuation.astype(float)

    def apply_sensing(
        self, mask: np.ndarray | None = None, weight: float = 0.1
    ) -> None:
        """Apply one cycle's *sensing* stress.

        Droplet/health sensing charges and discharges the microelectrode
        like a (weaker) actuation, so full-array scans also consume
        lifetime — the motivation for selective sensing (Liang et al.,
        TCAD'20, the paper's ref. [32]).  ``mask`` limits the scan to a
        subset of MCs (``None`` = full-array scan); ``weight`` is the
        charge-trapping stress of one sensing cycle relative to one
        actuation.
        """
        if weight < 0.0:
            raise ValueError("sensing weight cannot be negative")
        if mask is None:
            self.actuations += weight
            return
        if mask.shape != (self.width, self.height):
            raise ValueError(
                f"sensing mask shape {mask.shape} does not match chip "
                f"({self.width}, {self.height})"
            )
        self.actuations += weight * mask.astype(float)

    # -- derived matrices ------------------------------------------------------

    def degradation(self) -> np.ndarray:
        """The hidden degradation matrix ``D`` (with sudden faults applied)."""
        d = self.tau ** (self.actuations / self.c)
        d[self.faults.failed_mask(self.actuations)] = 0.0
        return d

    def health(self) -> np.ndarray:
        """The observable health matrix ``H`` (b-bit quantization of D)."""
        return np.asarray(quantize_health(self.degradation(), self.bits))

    def true_force(self) -> np.ndarray:
        """Per-MC relative EWOD force ``F = D²`` (eq. 2)."""
        return self.degradation() ** 2

    @property
    def total_actuations(self) -> int:
        """Total actuation-equivalent stress applied so far, over all MCs.

        Sensing stress contributes fractionally (see :meth:`apply_sensing`),
        so the total is rounded to the nearest whole event.
        """
        return int(round(self.actuations.sum()))
