"""Execution traces: per-cycle snapshots of a bioassay run.

A trace records, for every operational cycle, the droplet patterns on the
chip and the cumulative actuation count, plus the scheduler's MO lifecycle
events.  Used for debugging routing decisions, rendering replays, and the
scheduler-policy ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scheduler import MOEvent
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class TraceFrame:
    """One cycle's snapshot."""

    cycle: int
    droplets: dict[int, Rect]
    moving: tuple[int, ...]
    total_actuations: int


@dataclass
class ExecutionTrace:
    """The full history of one execution.

    A per-droplet index is maintained incrementally so
    :meth:`droplet_path` is O(len(path)) instead of a linear scan over
    every frame — replay rendering of a long run asks for paths once per
    droplet, which used to make it quadratic in run length.
    """

    frames: list[TraceFrame] = field(default_factory=list)
    events: list[MOEvent] = field(default_factory=list)
    _paths: dict[int, list[tuple[int, Rect]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # Frames handed to the constructor directly (tests, loaders) must
        # populate the index the same way record() does.
        for frame in self.frames:
            self._index(frame)

    def _index(self, frame: TraceFrame) -> None:
        for droplet_id, rect in frame.droplets.items():
            self._paths.setdefault(droplet_id, []).append((frame.cycle, rect))

    def record(self, frame: TraceFrame) -> None:
        if self.frames and frame.cycle <= self.frames[-1].cycle:
            raise ValueError("trace frames must have increasing cycle numbers")
        self.frames.append(frame)
        self._index(frame)

    @property
    def num_cycles(self) -> int:
        return len(self.frames)

    def droplet_path(self, droplet_id: int) -> list[tuple[int, Rect]]:
        """The (cycle, pattern) history of one droplet."""
        return list(self._paths.get(droplet_id, ()))

    def droplet_ids(self) -> list[int]:
        """Every droplet id that ever appeared in a frame."""
        return sorted(self._paths)

    def max_concurrent_droplets(self) -> int:
        """Peak droplet concurrency over the execution."""
        return max((len(f.droplets) for f in self.frames), default=0)

    def stall_cycles(self, droplet_id: int) -> int:
        """Cycles in which the droplet attempted a move but did not change.

        Counts frames where the droplet was in the moving set yet occupies
        the same pattern in the next frame — the observable cost of
        degraded frontier microelectrodes.
        """
        path = {f.cycle: f for f in self.frames}
        stalls = 0
        cycles = sorted(path)
        for a, b in zip(cycles, cycles[1:]):
            fa, fb = path[a], path[b]
            if (
                droplet_id in fa.moving
                and droplet_id in fa.droplets
                and droplet_id in fb.droplets
                and fa.droplets[droplet_id] == fb.droplets[droplet_id]
            ):
                stalls += 1
        return stalls

    def timeline(self) -> str:
        """A human-readable MO timeline built from the scheduler events."""
        lines = []
        started: dict[str, int] = {}
        for event in self.events:
            if event.kind == "activated":
                started[event.mo] = event.cycle
            elif event.kind == "done":
                begin = started.get(event.mo, event.cycle)
                lines.append(
                    f"  cycle {begin:4d} - {event.cycle:4d}  {event.mo}"
                )
        return "MO timeline:\n" + "\n".join(lines) if lines else "MO timeline: (empty)"
