"""Actuation-history recording for the Fig. 3 correlation study.

Sec. III-C records, per microelectrode, the Boolean actuation vector
``A_ij in {0,1}^N`` over a bioassay execution and studies the correlation
coefficient between pairs of MCs as a function of their Manhattan distance.
The recorder captures the per-cycle actuation matrices compactly (one
``uint8`` plane per cycle) and exposes them stacked for the analysis layer.
"""

from __future__ import annotations

import numpy as np


class ActuationRecorder:
    """Accumulates the per-cycle actuation matrices of one execution."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("recorder dimensions must be positive")
        self.width = width
        self.height = height
        self._frames: list[np.ndarray] = []

    def record(self, actuation: np.ndarray) -> None:
        """Store one cycle's actuation matrix."""
        if actuation.shape != (self.width, self.height):
            raise ValueError(
                f"actuation shape {actuation.shape} does not match recorder "
                f"({self.width}, {self.height})"
            )
        self._frames.append(actuation.astype(np.uint8).copy())

    @property
    def num_cycles(self) -> int:
        return len(self._frames)

    def vectors(self) -> np.ndarray:
        """The actuation vectors, shape ``(W, H, N)`` for ``N`` cycles.

        ``vectors()[i, j]`` is the paper's ``A_ij``.
        """
        if not self._frames:
            raise ValueError("nothing recorded yet")
        return np.stack(self._frames, axis=-1)

    def actuation_counts(self) -> np.ndarray:
        """Total actuations per MC over the recorded window."""
        if not self._frames:
            return np.zeros((self.width, self.height), dtype=np.int64)
        return np.sum(np.stack(self._frames), axis=0).astype(np.int64)
