"""Actuation-history recording for the Fig. 3 correlation study.

Sec. III-C records, per microelectrode, the Boolean actuation vector
``A_ij in {0,1}^N`` over a bioassay execution and studies the correlation
coefficient between pairs of MCs as a function of their Manhattan distance.
The recorder captures the per-cycle actuation matrices compactly (one
``uint8`` plane per cycle) and exposes them stacked for the analysis layer.
"""

from __future__ import annotations

import numpy as np


class ActuationRecorder:
    """Accumulates the per-cycle actuation matrices of one execution."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("recorder dimensions must be positive")
        self.width = width
        self.height = height
        self._frames: list[np.ndarray] = []

    def record(self, actuation: np.ndarray) -> None:
        """Store one cycle's actuation matrix."""
        if actuation.shape != (self.width, self.height):
            raise ValueError(
                f"actuation shape {actuation.shape} does not match recorder "
                f"({self.width}, {self.height})"
            )
        self._frames.append(actuation.astype(np.uint8).copy())

    @property
    def num_cycles(self) -> int:
        return len(self._frames)

    def vectors(self) -> np.ndarray:
        """The actuation vectors, shape ``(W, H, N)`` for ``N`` cycles.

        ``vectors()[i, j]`` is the paper's ``A_ij``.

        .. warning:: This materializes a *dense* ``(W, H, N)`` byte array —
           one byte per MC per cycle, e.g. ~1.4 GB for a 60x30 chip over
           800k cycles.  Long-horizon consumers (lifetime studies, fleet
           replays) should use :meth:`packed_vectors`, which stores the
           same Boolean history bit-packed at 1/8th the memory and never
           builds the dense stack.
        """
        if not self._frames:
            raise ValueError("nothing recorded yet")
        return np.stack(self._frames, axis=-1)

    def packed_vectors(self) -> tuple[np.ndarray, int]:
        """The actuation history bit-packed along the cycle axis.

        Returns ``(packed, num_cycles)`` where ``packed`` has shape
        ``(W, H, ceil(N / 8))`` and dtype ``uint8``: cycle ``n`` of MC
        ``(i, j)`` is bit ``7 - (n % 8)`` of ``packed[i, j, n // 8]``
        (``np.packbits`` big-endian bit order).  Built in 8-cycle chunks,
        so peak extra memory is ``O(W * H * 8)`` regardless of ``N``.
        Recover the dense form with :meth:`unpack_vectors`.
        """
        if not self._frames:
            raise ValueError("nothing recorded yet")
        n = len(self._frames)
        packed = np.zeros((self.width, self.height, (n + 7) // 8),
                          dtype=np.uint8)
        for start in range(0, n, 8):
            chunk = np.stack(self._frames[start:start + 8], axis=-1) != 0
            packed[:, :, start // 8] = np.packbits(chunk, axis=-1)[:, :, 0]
        return packed, n

    @staticmethod
    def unpack_vectors(packed: np.ndarray, num_cycles: int) -> np.ndarray:
        """Invert :meth:`packed_vectors` back to a dense ``(W, H, N)``."""
        dense = np.unpackbits(packed, axis=-1)
        return dense[:, :, :num_cycles]

    def actuation_counts(self) -> np.ndarray:
        """Total actuations per MC over the recorded window."""
        if not self._frames:
            return np.zeros((self.width, self.height), dtype=np.int64)
        return np.sum(np.stack(self._frames), axis=0).astype(np.int64)
