"""MEDA biochip simulation substrate (Sec. VII-A, Fig. 14)."""

from repro.biochip.chip import MedaChip
from repro.biochip.recorder import ActuationRecorder
from repro.biochip.simulator import ExecutionResult, MedaSimulator
from repro.biochip.trace import ExecutionTrace, TraceFrame

__all__ = [
    "ActuationRecorder",
    "ExecutionResult",
    "ExecutionTrace",
    "MedaChip",
    "MedaSimulator",
    "TraceFrame",
]
