"""Graph-based qualitative precomputation over compiled MDPs.

Before any numeric iteration the solver pins every state whose reach-avoid
probability is *exactly* 0 or 1, using only the support (structure) of the
transition relation — the classic PRISM-style precomputation algorithms:

* ``Pmax`` semantics: :func:`prob0a_mask` (no strategy reaches the goal —
  the complement of exists-reach) and :func:`prob1e_mask` (some strategy
  reaches the goal with probability one — the nested fixpoint
  ``nu Z. mu Y. goal | Pre(Z, Y)``);
* ``Pmin`` semantics: :func:`prob0e_mask` (some strategy avoids the goal
  forever — a greatest fixpoint keeping states that own a choice whose
  support stays inside the candidate set) and :func:`prob1a_mask` (every
  strategy reaches the goal with probability one — the complement of
  exists-reach of the ``prob0e`` set).

Pinning matters twice over.  *Soundness*: interval value iteration needs a
unique fixpoint of the Bellman operator, which only holds once the
qualitative 0/1 states are fixed — otherwise end components that can dodge
the goal forever admit spurious fixpoints.  *Convergence*: the classic
``Pmin`` divergence (hypothesis seed 1186 in ``tests/test_modelcheck.py``)
is a model whose every state has value exactly 1 but whose plain iteration
contracts at rate ``1 - 6.4e-3``; precomputation settles it with zero
numeric sweeps.

Everything here is vectorized: each fixpoint round is one boolean sparse
mat-vec over the structure matrix, so cost scales with the number of
transitions times the graph diameter, not with state pairs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro import perf


@dataclass(frozen=True)
class QualitativeSets:
    """Masks of states whose value is known exactly from the graph alone."""

    zero: np.ndarray
    one: np.ndarray

    @property
    def maybe(self) -> np.ndarray:
        """States whose value is strictly inside ``(0, 1)`` — the only ones
        that need numeric iteration."""
        return ~(self.zero | self.one)


def structure(cm) -> sparse.csr_matrix:
    """Boolean support of the transition matrix, one row per real choice.

    ``CompiledMDP.transitions`` pads a single empty row when the model has
    no choices at all; the padding is sliced off so row indices line up
    with ``choice_state``.
    """
    t = cm.transitions
    if t.shape[0] != cm.num_choices:
        t = t[: cm.num_choices]
    return (t > 0).astype(np.int8)


def _exists_reach(
    struct: sparse.csr_matrix,
    owners: np.ndarray,
    live: np.ndarray,
    target: np.ndarray,
) -> np.ndarray:
    """States with a positive-probability path to ``target`` via live choices.

    Backward closure: a state joins when one of its live choices has support
    intersecting the current set.  One round per graph depth.
    """
    y = target.copy()
    while True:
        hits = (struct @ y.astype(np.int8)) > 0
        src = owners[hits & live]
        if np.all(y[src]):
            return y
        y = y.copy()
        y[src] = True


def _live_choices(owners: np.ndarray, frozen: np.ndarray) -> np.ndarray:
    """Choices owned by non-frozen (non-goal, non-avoid) states."""
    return ~frozen[owners]


def prob0a_mask(
    cm, goal_mask: np.ndarray, avoid_mask: np.ndarray,
    struct: sparse.csr_matrix | None = None,
) -> np.ndarray:
    """``Pmax = 0``: no strategy reaches ``goal`` while avoiding ``avoid``."""
    if struct is None:
        struct = structure(cm)
    owners = cm.choice_state
    live = _live_choices(owners, goal_mask | avoid_mask)
    return ~_exists_reach(struct, owners, live, goal_mask)


def prob1e_mask(
    cm, goal_mask: np.ndarray, avoid_mask: np.ndarray,
    struct: sparse.csr_matrix | None = None,
) -> np.ndarray:
    """``Pmax = 1``: some strategy reaches ``goal`` w.p. 1, avoiding ``avoid``.

    The nested fixpoint ``nu Z. mu Y. goal | Pre(Z, Y)``: a state qualifies
    when some choice keeps all its probability inside the candidate set
    ``Z`` while stepping into ``Y`` (states already known to reach the
    goal) with positive probability.  The "stays inside Z" test depends
    only on ``Z``, so it is hoisted out of the inner ``mu`` loop.
    """
    if struct is None:
        struct = structure(cm)
    n = cm.num_states
    owners = cm.choice_state
    has_choice = np.zeros(n, dtype=bool)
    has_choice[owners] = True

    z = ~avoid_mask & (goal_mask | has_choice)
    while True:
        ok = ((struct @ (~z).astype(np.int8)) == 0) & z[owners]
        y = goal_mask & z
        while True:
            hits = (struct @ y.astype(np.int8)) > 0
            new_y = y.copy()
            new_y[owners[ok & hits]] = True
            new_y |= goal_mask & z
            if np.array_equal(new_y, y):
                break
            y = new_y
        if np.array_equal(y, z):
            return z
        z = y


def prob0e_mask(
    cm, goal_mask: np.ndarray, avoid_mask: np.ndarray,
    struct: sparse.csr_matrix | None = None,
) -> np.ndarray:
    """``Pmin = 0``: some strategy avoids ``goal`` forever.

    Greatest fixpoint over ``Z`` (initially all non-goal states): a state
    survives when it is absorbed at value 0 — an avoid state or a choiceless
    trap — or owns a live choice whose entire support stays inside ``Z``.
    Note a choice *into* the avoid region counts as staying (avoid states
    never leave ``Z``), which is exactly right: entering it forfeits the
    reach-avoid objective.
    """
    if struct is None:
        struct = structure(cm)
    n = cm.num_states
    owners = cm.choice_state
    live = _live_choices(owners, goal_mask | avoid_mask)
    has_live = np.zeros(n, dtype=bool)
    has_live[owners[live]] = True

    z = ~goal_mask
    while True:
        stays = (struct @ (~z).astype(np.int8)) == 0
        ok = stays & live & z[owners]
        keep = np.zeros(n, dtype=bool)
        keep[owners[ok]] = True
        new_z = z & (keep | ~has_live)
        if np.array_equal(new_z, z):
            return z
        z = new_z


def prob1a_mask(
    cm, goal_mask: np.ndarray, avoid_mask: np.ndarray,
    struct: sparse.csr_matrix | None = None,
    prob0e: np.ndarray | None = None,
) -> np.ndarray:
    """``Pmin = 1``: every strategy reaches ``goal`` w.p. 1.

    ``Prob1A = not exists-reach(Prob0E)``: a state falls short of
    probability one exactly when some strategy gives the ``prob0e`` region
    positive probability.
    """
    if struct is None:
        struct = structure(cm)
    if prob0e is None:
        prob0e = prob0e_mask(cm, goal_mask, avoid_mask, struct)
    owners = cm.choice_state
    live = _live_choices(owners, goal_mask | avoid_mask)
    return ~_exists_reach(struct, owners, live, prob0e)


def qualitative(
    cm, goal_mask: np.ndarray, avoid_mask: np.ndarray, maximize: bool,
    struct: sparse.csr_matrix | None = None,
) -> QualitativeSets:
    """The prob0/prob1 sets for one objective, with perf accounting.

    Counters: ``vi.precompute.runs``, ``vi.precompute.zero_states``,
    ``vi.precompute.one_states``, ``vi.precompute.trap_states`` (choiceless
    non-goal states, always pinned to zero — previously these hid behind
    the solver's ``isfinite`` scatter mask and could retain stale warm-seed
    values), and ``vi.precompute.seconds``.
    """
    t0 = time.perf_counter()
    if struct is None:
        struct = structure(cm)
    if maximize:
        zero = prob0a_mask(cm, goal_mask, avoid_mask, struct)
        one = prob1e_mask(cm, goal_mask, avoid_mask, struct)
    else:
        zero = prob0e_mask(cm, goal_mask, avoid_mask, struct)
        one = prob1a_mask(cm, goal_mask, avoid_mask, struct, prob0e=zero)

    has_choice = np.zeros(cm.num_states, dtype=bool)
    has_choice[cm.choice_state] = True
    traps = ~has_choice & ~goal_mask

    perf.incr("vi.precompute.runs")
    perf.incr("vi.precompute.zero_states", int(np.count_nonzero(zero)))
    perf.incr("vi.precompute.one_states", int(np.count_nonzero(one)))
    perf.incr("vi.precompute.trap_states", int(np.count_nonzero(traps)))
    perf.add_time("vi.precompute.seconds", time.perf_counter() - t0)
    return QualitativeSets(zero=zero, one=one)
