"""Stochastic-game solving for the full MEDA SMG (Sec. V-C).

The MEDA model is a turn-based stochastic game between the droplet controller
(player 1, maximizing) and chip degradation (player 2).  The synthesis path
of the paper reduces the game to an MDP per routing job (Sec. VI-C); the
game-level solver here serves the second purpose the paper names for the
degradation player — analyzing worst-case (adversarial) and best-case
(cooperative) degradation assumptions — and is used by the ablation bench.

Value iteration for reach-avoid probability on a turn-based SMG:

    V(s) = max_a sum P V    if player(s) = 1
    V(s) = opt_a sum P V    if player(s) = 2

with ``opt = min`` for the adversarial semantics ``<<1>> Pmax=?`` and
``opt = max`` for the cooperative one.
"""

from __future__ import annotations

import numpy as np

from repro.modelcheck.model import PLAYER_CONTROLLER, SMG
from repro.modelcheck.reachability import (
    DEFAULT_EPSILON,
    DEFAULT_MAX_ITERATIONS,
    ValueResult,
)


def game_reach_avoid_reward(
    game: SMG,
    goal: str = "goal",
    avoid: str = "hazard",
    adversarial: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ValueResult:
    """Game value of the expected cumulated reward until ``goal``.

    Player 1 minimizes the expected reward (cycles); with
    ``adversarial=True`` player 2 maximizes it — the worst-case completion
    time under hostile degradation (``<<1>> Rmin=?`` in PRISM-games terms).
    States from which player 1 cannot force reaching the goal almost surely
    get value ``inf``: the iteration is restricted to player-1 choices that
    keep the run inside the player-1 almost-sure winning region, computed by
    the game variant of ``prob1e`` below.
    """
    goal_states = game.label_set(goal)
    sure = _game_prob1e(game, goal, avoid, adversarial=adversarial)

    n = game.num_states
    values = np.full(n, np.inf)
    for g in goal_states & sure:
        values[g] = 0.0
    choice = np.full(n, -1, dtype=int)
    active = []
    usable: dict[int, list[int]] = {}
    for s in sure:
        if s in goal_states or game.is_absorbing(s):
            continue
        if game.player_of(s) == PLAYER_CONTROLLER:
            ok = [
                i for i, c in enumerate(game.enabled(s))
                if all(t in sure for t, _ in c.successors)
            ]
        else:
            ok = list(range(len(game.enabled(s))))
        if ok:
            usable[s] = ok
            active.append(s)
            values[s] = 0.0

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        delta = 0.0
        for s in active:
            minimizing = (
                game.player_of(s) == PLAYER_CONTROLLER or not adversarial
            )
            best_val: float | None = None
            best_choice = -1
            for c_idx in usable[s]:
                c = game.enabled(s)[c_idx]
                v = c.reward + sum(p * values[t] for t, p in c.successors)
                if (
                    best_val is None
                    or (minimizing and v < best_val)
                    or (not minimizing and v > best_val)
                ):
                    best_val, best_choice = v, c_idx
            assert best_val is not None
            delta = max(delta, abs(best_val - values[s]))
            values[s], choice[s] = best_val, best_choice
        if delta < epsilon:
            break
    else:  # pragma: no cover - indicates a modelling bug
        raise RuntimeError("game reward iteration did not converge")
    return ValueResult(values=values, choice=choice, iterations=iterations)


def _game_prob1e(
    game: SMG, goal: str, avoid: str, adversarial: bool
) -> set[int]:
    """States where player 1 forces reaching ``goal`` w.p. 1 (avoiding
    ``avoid``) against the chosen environment semantics.

    The cooperative case reduces to the MDP ``prob1e``; the adversarial
    nested fixpoint additionally requires *every* player-2 choice to stay
    in the candidate set and make progress possible.
    """
    goal_states = game.label_set(goal)
    avoid_states = game.label_set(avoid)
    candidates = {
        s for s in range(game.num_states)
        if s not in avoid_states
        and (s in goal_states or not game.is_absorbing(s))
    }
    while True:
        reached = set(goal_states & candidates)
        changed = True
        while changed:
            changed = False
            for s in candidates:
                if s in reached or s in goal_states:
                    continue
                if game.player_of(s) == PLAYER_CONTROLLER or not adversarial:
                    qualifies = any(
                        all(t in candidates for t, _ in c.successors)
                        and any(t in reached for t, _ in c.successors)
                        for c in game.enabled(s)
                    )
                else:
                    qualifies = all(
                        all(t in candidates for t, _ in c.successors)
                        and any(t in reached for t, _ in c.successors)
                        for c in game.enabled(s)
                    )
                if qualifies:
                    reached.add(s)
                    changed = True
        if reached == candidates:
            return candidates
        candidates = reached


def game_reach_avoid_probability(
    game: SMG,
    goal: str = "goal",
    avoid: str = "hazard",
    adversarial: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ValueResult:
    """Game value of ``[] !avoid && <> goal`` with player 1 maximizing.

    ``adversarial=True`` solves ``<<1>> Pmax=?`` (degradation minimizes);
    ``adversarial=False`` lets both players cooperate, yielding the MDP
    upper bound.  Returns optimal values and, per state, the owning player's
    optimal choice.
    """
    goal_states = game.label_set(goal)
    avoid_states = game.label_set(avoid)
    if goal_states & avoid_states:
        raise ValueError("goal and avoid labels overlap")

    n = game.num_states
    values = np.zeros(n)
    for g in goal_states:
        values[g] = 1.0
    choice = np.full(n, -1, dtype=int)
    frozen = goal_states | avoid_states

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        delta = 0.0
        for s in range(n):
            if s in frozen or game.is_absorbing(s):
                continue
            maximizing = (
                game.player_of(s) == PLAYER_CONTROLLER or not adversarial
            )
            best_val: float | None = None
            best_choice = -1
            for c_idx, c in enumerate(game.enabled(s)):
                v = sum(p * values[t] for t, p in c.successors)
                if (
                    best_val is None
                    or (maximizing and v > best_val)
                    or (not maximizing and v < best_val)
                ):
                    best_val, best_choice = v, c_idx
            assert best_val is not None
            delta = max(delta, abs(best_val - values[s]))
            values[s], choice[s] = best_val, best_choice
        if delta < epsilon:
            break
    else:  # pragma: no cover - indicates a modelling bug
        raise RuntimeError(f"game value iteration did not converge")
    return ValueResult(values=values, choice=choice, iterations=iterations)
