"""Explicit-state probabilistic models: MDPs and stochastic games.

This package replaces PRISM-games in the paper's toolchain (Algorithm 2 calls
the model checker as a black box ``PRISMG(G, phi, delta_s)``).  The queries
the paper issues — maximum probability of ``[] !hazard && <> goal`` and
minimum expected cycles to the goal — are constrained-reachability and
stochastic-shortest-path problems, solved here by the same explicit value
iteration PRISM uses for these query classes.

States are arbitrary hashable objects (the routing layer uses droplet
rectangles); choices carry an action label and a sparse successor
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

import numpy as np

State = Hashable


@dataclass(frozen=True)
class Choice:
    """One nondeterministic choice: an action label, reward and distribution.

    ``successors`` maps successor-state indices to probabilities; they must
    form a probability distribution.  ``reward`` is accrued when the choice
    is taken (the paper's ``r_k`` assigns one cycle per microfluidic action).
    """

    label: str
    successors: tuple[tuple[int, float], ...]
    reward: float = 0.0

    def __post_init__(self) -> None:
        total = 0.0
        for _, p in self.successors:
            if p <= 0.0:
                raise ValueError("successor probabilities must be positive")
            total += p
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"choice {self.label!r} distribution sums to {total}")
        if self.reward < 0.0:
            raise ValueError("rewards must be non-negative")


class MDP:
    """An explicit-state Markov decision process.

    Built incrementally via :meth:`add_state` / :meth:`add_choice`; states
    with no choices are absorbing (the solvers treat them as sinks).  Label
    sets mark goal/hazard states for the property layer.
    """

    def __init__(self) -> None:
        self.states: list[State] = []
        self.state_index: dict[State, int] = {}
        self.choices: list[list[Choice]] = []
        self.labels: dict[str, set[int]] = {}
        self.initial: int | None = None

    # -- construction ------------------------------------------------------

    def add_state(self, state: State) -> int:
        """Add (or look up) a state; returns its index."""
        if state in self.state_index:
            return self.state_index[state]
        idx = len(self.states)
        self.states.append(state)
        self.state_index[state] = idx
        self.choices.append([])
        return idx

    def add_choice(
        self,
        state: State,
        label: str,
        successors: Iterable[tuple[State, float]],
        reward: float = 0.0,
    ) -> None:
        """Attach a choice to ``state``; successor states are auto-added."""
        idx = self.add_state(state)
        succ = tuple(
            (self.add_state(s), float(p)) for s, p in successors if p > 0.0
        )
        self.choices[idx].append(Choice(label=label, successors=succ, reward=reward))

    def set_initial(self, state: State) -> None:
        """Mark the initial state (added if new)."""
        self.initial = self.add_state(state)

    def add_label(self, name: str, state: State) -> None:
        """Attach label ``name`` to ``state``."""
        idx = self.add_state(state)
        self.labels.setdefault(name, set()).add(idx)

    def label_set(self, name: str) -> set[int]:
        """Indices of states carrying label ``name`` (empty if unused)."""
        return self.labels.get(name, set())

    # -- statistics (the Table V columns) ------------------------------------

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_choices(self) -> int:
        """Total state-action pairs (PRISM's "choices" column)."""
        return sum(len(cs) for cs in self.choices)

    @property
    def num_transitions(self) -> int:
        """Total probabilistic edges (PRISM's "transitions" column)."""
        return sum(len(c.successors) for cs in self.choices for c in cs)

    def enabled(self, idx: int) -> list[Choice]:
        """Choices enabled in state ``idx``."""
        return self.choices[idx]

    def is_absorbing(self, idx: int) -> bool:
        """Whether state ``idx`` has no outgoing choices."""
        return not self.choices[idx]

    def validate(self) -> None:
        """Sanity-check the model: an initial state and valid distributions.

        Distribution validity is enforced at construction; this re-checks
        the global invariants cheaply so callers can assert before solving.
        """
        if self.initial is None:
            raise ValueError("model has no initial state")
        for name, members in self.labels.items():
            for idx in members:
                if not 0 <= idx < self.num_states:
                    raise ValueError(f"label {name!r} marks unknown state {idx}")


#: Player identifiers for stochastic games (the paper's (1) controller and
#: (2) degradation player).
PLAYER_CONTROLLER = 1
PLAYER_ENVIRONMENT = 2


class SMG(MDP):
    """A turn-based stochastic multiplayer game.

    Extends the MDP with a player assignment per state; player 1 (the droplet
    controller) maximizes the objective, player 2 (chip degradation) resolves
    its nondeterminism adversarially or cooperatively depending on the query.
    """

    def __init__(self) -> None:
        super().__init__()
        self.player: dict[int, int] = {}

    def set_player(self, state: State, player: int) -> None:
        if player not in (PLAYER_CONTROLLER, PLAYER_ENVIRONMENT):
            raise ValueError(f"unknown player {player}")
        self.player[self.add_state(state)] = player

    def player_of(self, idx: int) -> int:
        """The player owning state ``idx`` (controller when unset)."""
        return self.player.get(idx, PLAYER_CONTROLLER)

    def validate(self) -> None:
        super().validate()
        for idx in range(self.num_states):
            if not self.is_absorbing(idx) and idx not in self.player:
                raise ValueError(
                    f"non-absorbing state {self.states[idx]!r} has no player"
                )
