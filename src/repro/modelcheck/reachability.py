"""Constrained-reachability probabilities by value iteration.

Computes ``Pmax`` / ``Pmin`` of ``[] !avoid && <> goal`` on an explicit MDP:
goal states get value 1, avoid states value 0 (entering one falsifies the
safety conjunct), and every other state iterates

    V(s) = opt_a  sum_{s'} P(s' | s, a) V(s')

to the least fixpoint from V = 0, which is the standard characterization of
maximal/minimal reachability probabilities.  Absorbing non-goal states keep
value 0 (the run never reaches the goal).

Also provides the graph-based ``prob1e`` set — the states from which *some*
strategy reaches the goal with probability one while avoiding hazards —
needed for the well-definedness of expected-reward queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.modelcheck.model import MDP

#: Convergence threshold for value iteration (absolute sup-norm).
DEFAULT_EPSILON = 1e-9

#: Hard cap on iterations; reach-avoid VI on these models converges
#: geometrically, so hitting the cap indicates a modelling bug.
DEFAULT_MAX_ITERATIONS = 100_000


@dataclass(frozen=True)
class ValueResult:
    """Values per state plus the optimal choice index where defined.

    ``choice[s]`` is -1 for states with no enabled choices or where every
    choice is equally (non-)optimal because the state is absorbing/goal.
    """

    values: np.ndarray
    choice: np.ndarray
    iterations: int


def _prepare(mdp: MDP, goal: str, avoid: str) -> tuple[set[int], set[int]]:
    goal_states = mdp.label_set(goal)
    avoid_states = mdp.label_set(avoid)
    if overlap := goal_states & avoid_states:
        raise ValueError(f"states {overlap} are both goal and avoid")
    return goal_states, avoid_states


def reach_avoid_probability(
    mdp: MDP,
    goal: str = "goal",
    avoid: str = "hazard",
    maximize: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ValueResult:
    """``Pmax`` (or ``Pmin``) of ``[] !avoid && <> goal`` for every state."""
    goal_states, avoid_states = _prepare(mdp, goal, avoid)
    n = mdp.num_states
    values = np.zeros(n)
    for g in goal_states:
        values[g] = 1.0
    choice = np.full(n, -1, dtype=int)
    frozen = goal_states | avoid_states

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        delta = 0.0
        for s in range(n):
            if s in frozen or mdp.is_absorbing(s):
                continue
            best_val: float | None = None
            best_choice = -1
            for c_idx, c in enumerate(mdp.enabled(s)):
                v = sum(p * values[t] for t, p in c.successors)
                if (
                    best_val is None
                    or (maximize and v > best_val)
                    or (not maximize and v < best_val)
                ):
                    best_val, best_choice = v, c_idx
            assert best_val is not None
            delta = max(delta, abs(best_val - values[s]))
            values[s], choice[s] = best_val, best_choice
        if delta < epsilon:
            break
    else:  # pragma: no cover - indicates a modelling bug
        raise RuntimeError(f"value iteration did not converge in {max_iterations} steps")
    return ValueResult(values=values, choice=choice, iterations=iterations)


def prob1e(mdp: MDP, goal: str = "goal", avoid: str = "hazard") -> set[int]:
    """States where some strategy reaches ``goal`` w.p. 1, avoiding ``avoid``.

    The classic nested fixpoint ``nu Z. mu Y. goal | Pre(Z, Y)``: a state
    qualifies when some choice keeps all probability inside the candidate set
    ``Z`` while giving a positive-probability step toward ``Y`` (states
    already known to reach the goal).  Avoid states and absorbing non-goal
    states never qualify.
    """
    goal_states, avoid_states = _prepare(mdp, goal, avoid)
    n = mdp.num_states
    candidates = {
        s
        for s in range(n)
        if s not in avoid_states and (s in goal_states or not mdp.is_absorbing(s))
    }

    while True:
        # mu Y: least fixpoint of goal | exists-choice(succ subset Z, hits Y)
        reached = set(goal_states & candidates)
        changed = True
        while changed:
            changed = False
            for s in candidates:
                if s in reached or s in goal_states:
                    continue
                for c in mdp.enabled(s):
                    succs = [t for t, _ in c.successors]
                    if all(t in candidates for t in succs) and any(
                        t in reached for t in succs
                    ):
                        reached.add(s)
                        changed = True
                        break
        if reached == candidates:
            return candidates
        candidates = reached


def reachable_states(mdp: MDP, from_state: int | None = None) -> set[int]:
    """Indices reachable from ``from_state`` (default: the initial state)."""
    start = mdp.initial if from_state is None else from_state
    if start is None:
        raise ValueError("model has no initial state")
    seen = {start}
    frontier = [start]
    while frontier:
        s = frontier.pop()
        for c in mdp.enabled(s):
            for t, _ in c.successors:
                if t not in seen:
                    seen.add(t)
                    frontier.append(t)
    return seen
