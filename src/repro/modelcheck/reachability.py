"""Constrained-reachability probabilities by value iteration.

Computes ``Pmax`` / ``Pmin`` of ``[] !avoid && <> goal`` on an explicit MDP:
goal states get value 1, avoid states value 0 (entering one falsifies the
safety conjunct), and every other state iterates

    V(s) = opt_a  sum_{s'} P(s' | s, a) V(s')

to the fixpoint.  Before iterating, the graph-based qualitative sets pin
every state whose value is exactly 0 or 1 (``prob0``/``prob1`` under the
matching semantics) — without this, end components that can dodge the goal
forever make the iteration contract at a rate arbitrarily close to 1 and
the sweep loop times out (the compiled solver's hypothesis seed 1186).
Absorbing non-goal states keep value 0 (the run never reaches the goal).

Also provides the graph-based ``prob1e`` set — the states from which *some*
strategy reaches the goal with probability one while avoiding hazards —
needed for the well-definedness of expected-reward queries.

These are the pure-Python *reference* implementations; the production path
is :mod:`repro.modelcheck.compiled` (vectorized, with certified interval
bounds).  The unit tests check agreement between the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.modelcheck.model import MDP

#: Convergence threshold for value iteration (absolute sup-norm).
DEFAULT_EPSILON = 1e-9

#: Hard cap on iterations; with qualitative precomputation the remaining
#: reach-avoid VI contracts geometrically, so hitting the cap indicates a
#: modelling bug.
DEFAULT_MAX_ITERATIONS = 100_000


@dataclass(frozen=True)
class ValueResult:
    """Values per state plus the optimal choice index where defined.

    ``choice[s]`` is -1 for states with no enabled choices or where every
    choice is equally (non-)optimal because the state is absorbing/goal.

    ``lower``/``upper`` are certified pointwise bounds on the true values
    (``lower <= V <= upper``) when the producing solver computed them (the
    compiled interval pipeline); reference solvers leave them ``None``.
    """

    values: np.ndarray
    choice: np.ndarray
    iterations: int
    lower: np.ndarray | None = None
    upper: np.ndarray | None = None

    @property
    def certified(self) -> bool:
        """Whether this result carries two-sided error bounds."""
        return self.lower is not None and self.upper is not None

    @property
    def gap(self) -> float:
        """Largest certified interval width over states where both bounds
        are finite (``nan`` when the result is uncertified)."""
        if self.lower is None or self.upper is None:
            return float("nan")
        finite = np.isfinite(self.lower) & np.isfinite(self.upper)
        if not finite.any():
            return 0.0
        return float(np.max(self.upper[finite] - self.lower[finite]))


def _prepare(mdp: MDP, goal: str, avoid: str) -> tuple[set[int], set[int]]:
    goal_states = mdp.label_set(goal)
    avoid_states = mdp.label_set(avoid)
    if overlap := goal_states & avoid_states:
        raise ValueError(f"states {overlap} are both goal and avoid")
    return goal_states, avoid_states


def _live_choices(mdp: MDP, s: int, frozen: set[int]):
    return [] if s in frozen else mdp.enabled(s)


def _exists_reach(mdp: MDP, target: set[int], frozen: set[int]) -> set[int]:
    """States with a positive-probability path into ``target`` that only
    uses choices of non-frozen states (goal/avoid are absorbing here)."""
    reach = set(target)
    changed = True
    while changed:
        changed = False
        for s in range(mdp.num_states):
            if s in reach:
                continue
            for c in _live_choices(mdp, s, frozen):
                if any(t in reach for t, _ in c.successors):
                    reach.add(s)
                    changed = True
                    break
    return reach


def _prob0e_set(
    mdp: MDP, goal_states: set[int], avoid_states: set[int]
) -> set[int]:
    """``Pmin = 0``: some strategy avoids ``goal`` forever.

    Greatest fixpoint over the non-goal states: a state survives when it is
    absorbed at value 0 (avoid state or choiceless trap) or owns a choice
    whose entire support stays in the surviving set.
    """
    frozen = goal_states | avoid_states
    z = set(range(mdp.num_states)) - goal_states
    while True:
        new_z = set()
        for s in z:
            live = _live_choices(mdp, s, frozen)
            if not live:
                new_z.add(s)
                continue
            if any(
                all(t in z for t, _ in c.successors) for c in live
            ):
                new_z.add(s)
        if new_z == z:
            return z
        z = new_z


def qualitative_sets(
    mdp: MDP, goal_states: set[int], avoid_states: set[int], maximize: bool
) -> tuple[set[int], set[int]]:
    """``(zero, one)`` state sets for one objective (scalar reference).

    ``Pmax``: ``zero`` is ``prob0a`` (no strategy reaches the goal) and
    ``one`` is ``prob1e`` (the nested fixpoint, see :func:`prob1e`).
    ``Pmin``: ``zero`` is ``prob0e`` (some strategy dodges the goal
    forever) and ``one`` is ``prob1a`` (the complement of exists-reach of
    ``prob0e``).
    """
    frozen = goal_states | avoid_states
    if maximize:
        reach = _exists_reach(mdp, goal_states, frozen)
        zero = set(range(mdp.num_states)) - reach
        one = _prob1e_set(mdp, goal_states, avoid_states)
    else:
        zero = _prob0e_set(mdp, goal_states, avoid_states)
        one = set(range(mdp.num_states)) - _exists_reach(mdp, zero, frozen)
    return zero, one


def reach_avoid_probability(
    mdp: MDP,
    goal: str = "goal",
    avoid: str = "hazard",
    maximize: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ValueResult:
    """``Pmax`` (or ``Pmin``) of ``[] !avoid && <> goal`` for every state."""
    goal_states, avoid_states = _prepare(mdp, goal, avoid)
    n = mdp.num_states
    zero, one = qualitative_sets(mdp, goal_states, avoid_states, maximize)
    values = np.zeros(n)
    for s in one:
        values[s] = 1.0
    choice = np.full(n, -1, dtype=int)
    frozen = goal_states | avoid_states
    pinned = frozen | zero | one

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        delta = 0.0
        for s in range(n):
            if s in pinned or mdp.is_absorbing(s):
                continue
            best_val: float | None = None
            for c in mdp.enabled(s):
                v = sum(p * values[t] for t, p in c.successors)
                if (
                    best_val is None
                    or (maximize and v > best_val)
                    or (not maximize and v < best_val)
                ):
                    best_val = v
            assert best_val is not None
            delta = max(delta, abs(best_val - values[s]))
            values[s] = best_val
        if delta < epsilon:
            break
    else:  # pragma: no cover - indicates a modelling bug
        raise RuntimeError(f"value iteration did not converge in {max_iterations} steps")

    # One greedy pass over the converged values assigns choices everywhere
    # a decision is meaningful — including the precomputation-pinned states,
    # which never enter the sweep loop.
    for s in range(n):
        if s in frozen or mdp.is_absorbing(s):
            continue
        best_val = None
        best_choice = -1
        for c_idx, c in enumerate(mdp.enabled(s)):
            v = sum(p * values[t] for t, p in c.successors)
            if (
                best_val is None
                or (maximize and v > best_val)
                or (not maximize and v < best_val)
            ):
                best_val, best_choice = v, c_idx
        choice[s] = best_choice
    return ValueResult(values=values, choice=choice, iterations=iterations)


def _prob1e_set(
    mdp: MDP, goal_states: set[int], avoid_states: set[int]
) -> set[int]:
    """Set form of :func:`prob1e` (labels already resolved)."""
    n = mdp.num_states
    candidates = {
        s
        for s in range(n)
        if s not in avoid_states and (s in goal_states or not mdp.is_absorbing(s))
    }

    while True:
        # mu Y: least fixpoint of goal | exists-choice(succ subset Z, hits Y)
        reached = set(goal_states & candidates)
        changed = True
        while changed:
            changed = False
            for s in candidates:
                if s in reached or s in goal_states:
                    continue
                for c in mdp.enabled(s):
                    succs = [t for t, _ in c.successors]
                    if all(t in candidates for t in succs) and any(
                        t in reached for t in succs
                    ):
                        reached.add(s)
                        changed = True
                        break
        if reached == candidates:
            return candidates
        candidates = reached


def prob1e(mdp: MDP, goal: str = "goal", avoid: str = "hazard") -> set[int]:
    """States where some strategy reaches ``goal`` w.p. 1, avoiding ``avoid``.

    The classic nested fixpoint ``nu Z. mu Y. goal | Pre(Z, Y)``: a state
    qualifies when some choice keeps all probability inside the candidate set
    ``Z`` while giving a positive-probability step toward ``Y`` (states
    already known to reach the goal).  Avoid states and absorbing non-goal
    states never qualify.
    """
    goal_states, avoid_states = _prepare(mdp, goal, avoid)
    return _prob1e_set(mdp, goal_states, avoid_states)


def reachable_states(mdp: MDP, from_state: int | None = None) -> set[int]:
    """Indices reachable from ``from_state`` (default: the initial state)."""
    start = mdp.initial if from_state is None else from_state
    if start is None:
        raise ValueError("model has no initial state")
    seen = {start}
    frontier = [start]
    while frontier:
        s = frontier.pop()
        for c in mdp.enabled(s):
            for t, _ in c.successors:
                if t not in seen:
                    seen.add(t)
                    frontier.append(t)
    return seen
