"""Expected total reward to the goal (stochastic shortest path).

Solves the paper's reward query ``phi_r: Rmin=? [ [] !hazard && <> goal ]``:
the minimum expected cumulated reward (cycles, with the paper's ``r_k``
assigning one unit per microfluidic action) until a goal state is reached
along hazard-free paths.

Following PRISM's total-reward semantics, a state gets value ``inf`` unless
some strategy reaches the goal with probability one while avoiding hazards —
otherwise reward accrues forever on the non-reaching runs.  The optimal
strategy must also *stay* inside that probability-one region, so value
iteration only considers choices whose successors all remain in it.
"""

from __future__ import annotations

import numpy as np

from repro.modelcheck.model import MDP
from repro.modelcheck.reachability import (
    DEFAULT_EPSILON,
    DEFAULT_MAX_ITERATIONS,
    ValueResult,
    prob1e,
)


def reach_avoid_reward(
    mdp: MDP,
    goal: str = "goal",
    avoid: str = "hazard",
    minimize: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ValueResult:
    """``Rmin`` (or ``Rmax``) of the cumulated reward until ``goal``.

    Goal states have value 0; states outside the probability-one region have
    value ``inf``.  For ``Rmax`` the iteration is capped to the same region
    (maximal total reward is infinite wherever the goal can be postponed
    forever, so the meaningful maximization is over goal-reaching
    strategies; this matches PRISM's ``Rmax`` on proper policies).
    """
    goal_states = mdp.label_set(goal)
    sure = prob1e(mdp, goal=goal, avoid=avoid)

    n = mdp.num_states
    values = np.full(n, np.inf)
    choice = np.full(n, -1, dtype=int)
    for g in goal_states:
        if g in sure:
            values[g] = 0.0

    # Restrict to choices that keep the run inside the probability-one
    # region; these always exist for states in `sure` by construction.
    usable: list[list[int]] = [[] for _ in range(n)]
    for s in sure:
        if s in goal_states:
            continue
        for c_idx, c in enumerate(mdp.enabled(s)):
            if all(t in sure for t, _ in c.successors):
                usable[s].append(c_idx)

    active = [s for s in sure if s not in goal_states and usable[s]]
    # Start the iteration from 0 on active states: for minimization this is
    # the standard monotone-from-below SSP iteration; for maximization the
    # restriction to proper (goal-reaching) choices keeps it bounded.
    for s in active:
        values[s] = 0.0

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        delta = 0.0
        for s in active:
            best_val: float | None = None
            best_choice = -1
            for c_idx in usable[s]:
                c = mdp.enabled(s)[c_idx]
                v = c.reward + sum(p * values[t] for t, p in c.successors)
                if (
                    best_val is None
                    or (minimize and v < best_val)
                    or (not minimize and v > best_val)
                ):
                    best_val, best_choice = v, c_idx
            assert best_val is not None
            delta = max(delta, abs(best_val - values[s]))
            values[s], choice[s] = best_val, best_choice
        if delta < epsilon:
            break
    else:  # pragma: no cover - indicates a modelling bug
        raise RuntimeError(
            f"reward iteration did not converge in {max_iterations} steps"
        )
    return ValueResult(values=values, choice=choice, iterations=iterations)
