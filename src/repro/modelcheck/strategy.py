"""Memoryless strategy extraction from solved models.

For the reach-avoid fragment, memoryless deterministic strategies suffice on
MDPs and turn-based SMGs, so a strategy is simply a map from state to the
action label of the optimal choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.modelcheck.model import MDP
from repro.modelcheck.reachability import ValueResult

State = Hashable


@dataclass(frozen=True)
class MemorylessStrategy:
    """A state -> action-label map plus the value achieved from each state.

    ``value_at`` returns ``None`` for states outside the model, letting
    callers distinguish "unknown state" from "known but losing state".
    """

    decisions: dict[State, str]
    values: dict[State, float]
    initial_value: float

    def action(self, state: State) -> str | None:
        """The prescribed action label, or ``None`` if the strategy is
        undefined at ``state`` (goal/hazard/unreached states)."""
        return self.decisions.get(state)

    def value_at(self, state: State) -> float | None:
        return self.values.get(state)

    def __len__(self) -> int:
        return len(self.decisions)


def extract_strategy(mdp: MDP, result: ValueResult) -> MemorylessStrategy:
    """Build a :class:`MemorylessStrategy` from a solved model.

    States whose optimal choice index is -1 (absorbing, goal, hazard or
    unreachable under the objective) carry a value but no decision.
    """
    decisions: dict[State, str] = {}
    values: dict[State, float] = {}
    for idx, state in enumerate(mdp.states):
        values[state] = float(result.values[idx])
        c_idx = int(result.choice[idx])
        if c_idx >= 0:
            decisions[state] = mdp.enabled(idx)[c_idx].label
    if mdp.initial is None:
        raise ValueError("model has no initial state")
    initial_value = float(result.values[mdp.initial])
    if np.isnan(initial_value):
        raise ValueError("initial state has no defined value")
    return MemorylessStrategy(
        decisions=decisions, values=values, initial_value=initial_value
    )
