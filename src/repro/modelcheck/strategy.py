"""Memoryless strategy extraction from solved models.

For the reach-avoid fragment, memoryless deterministic strategies suffice on
MDPs and turn-based SMGs, so a strategy is simply a map from state to the
action label of the optimal choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.geometry.rect import Rect
from repro.modelcheck.model import MDP
from repro.modelcheck.reachability import ValueResult

State = Hashable


def _state_token(state: State) -> "list[int] | str":
    """JSON-safe encoding of a routing-model state (Rect or label str)."""
    if isinstance(state, Rect):
        return list(state.as_tuple())
    if isinstance(state, str):
        return state
    raise TypeError(f"state {state!r} has no payload encoding")


def _state_from_token(token: "list[int] | str") -> State:
    if isinstance(token, str):
        return token
    # Tokens only ever come from _state_token, so the rectangle is already
    # validated; bypass the dataclass constructor — strategy rehydration
    # builds tens of thousands of Rects and this path is ~4x faster.
    rect = object.__new__(Rect)
    d = rect.__dict__
    d["xa"], d["ya"], d["xb"], d["yb"] = token
    return rect


@dataclass(frozen=True)
class MemorylessStrategy:
    """A state -> action-label map plus the value achieved from each state.

    ``value_at`` returns ``None`` for states outside the model, letting
    callers distinguish "unknown state" from "known but losing state".
    """

    decisions: dict[State, str]
    values: dict[State, float]
    initial_value: float

    def action(self, state: State) -> str | None:
        """The prescribed action label, or ``None`` if the strategy is
        undefined at ``state`` (goal/hazard/unreached states)."""
        return self.decisions.get(state)

    def value_at(self, state: State) -> float | None:
        return self.values.get(state)

    def __len__(self) -> int:
        return len(self.decisions)

    def to_payload(self) -> dict:
        """A JSON/pickle-safe dict form of the strategy.

        Columnar layout — one ``states`` list with parallel ``values`` and
        ``actions`` columns (``None`` action = no decision at that state) —
        so rehydration decodes each state token exactly once.  Routing-model
        states (:class:`~repro.geometry.rect.Rect` patterns plus label
        strings like the hazard sink) are encoded as 4-int lists or strings;
        other state types are rejected.  Floats round-trip exactly through
        both pickle and ``json`` (``repr``-based), including the ``inf``
        values of unreachable states.
        """
        states, values, actions = [], [], []
        for state, value in self.values.items():
            states.append(_state_token(state))
            values.append(value)
            actions.append(self.decisions.get(state))
        for state, action in self.decisions.items():
            if state not in self.values:  # decision-only state (unusual)
                states.append(_state_token(state))
                values.append(None)
                actions.append(action)
        return {
            "states": states,
            "values": values,
            "actions": actions,
            "initial_value": self.initial_value,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MemorylessStrategy":
        """Rebuild a strategy from :meth:`to_payload` output."""
        decisions: dict[State, str] = {}
        values: dict[State, float] = {}
        for token, value, action in zip(
            payload["states"], payload["values"], payload["actions"]
        ):
            state = _state_from_token(token)
            if value is not None:
                values[state] = value
            if action is not None:
                decisions[state] = action
        return cls(
            decisions=decisions,
            values=values,
            initial_value=float(payload["initial_value"]),
        )


def extract_strategy(mdp: MDP, result: ValueResult) -> MemorylessStrategy:
    """Build a :class:`MemorylessStrategy` from a solved model.

    States whose optimal choice index is -1 (absorbing, goal, hazard or
    unreachable under the objective) carry a value but no decision.
    """
    decisions: dict[State, str] = {}
    values: dict[State, float] = {}
    for idx, state in enumerate(mdp.states):
        values[state] = float(result.values[idx])
        c_idx = int(result.choice[idx])
        if c_idx >= 0:
            decisions[state] = mdp.enabled(idx)[c_idx].label
    if mdp.initial is None:
        raise ValueError("model has no initial state")
    initial_value = float(result.values[mdp.initial])
    if np.isnan(initial_value):
        raise ValueError("initial state has no defined value")
    return MemorylessStrategy(
        decisions=decisions, values=values, initial_value=initial_value
    )
