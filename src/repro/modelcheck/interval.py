"""Certified interval value iteration over compiled MDPs.

Plain value iteration stops when one sweep moves no value by more than
``epsilon`` — a criterion that says nothing about the distance to the true
fixpoint (a rate-``1 - 1e-6`` contraction can sit ``1e6 * epsilon`` away
while passing it).  This module replaces that with *certified* solving:

* **Interval iteration** (Haddad–Monmege): maintain a lower iterate started
  from 0 and an upper iterate started from 1 (probabilities), each updated
  monotonically (``l <- max(l, Phi(l))``, ``u <- min(u, Phi(u))``).  Both
  bracket the true value at every sweep, so ``u - l <= epsilon`` is a real
  error certificate.  Uniqueness of the fixpoint — required for the upper
  iterate to descend all the way — is guaranteed by the qualitative
  prob0/prob1 pinning done by the caller (:mod:`.precompute`) plus, for
  ``Pmax``, end-component *deflation* (Kelmendi/Kretinsky/Weininger): each
  sweep caps the upper values of every maximal end component by its best
  exit value, destroying the spurious fixpoints ECs otherwise sustain.

* **Optimistic value iteration** (Hartmanns–Kaminski) for expected total
  rewards, where there is no natural finite upper starting point: converge
  the lower iterate, guess ``u = l + d``, and verify the guess by checking
  ``Phi(u) <= u`` pointwise — which, the fixpoint being unique on the
  pinned system, proves ``u`` is a true upper bound.  Failed guesses grow
  ``d`` geometrically and retry.

* **Verified Aitken acceleration** for slowly mixing components (escape
  mass ``q`` per sweep means plain iteration needs ``~log(eps)/log(1-q)``
  sweeps).  Periodically each state extrapolates its own geometric limit
  from two consecutive sweep deltas (``est = v + d * rho / (1 - rho)``
  with per-state ``rho = d_k / d_{k-1}``), the estimate is *smoothed* by a
  few plain Bellman applications (the extrapolation cancels the dominant
  error mode; what remains is subdominant and decays fast), and bound
  candidates ``est -/+ delta`` — with ``delta`` scaled to the smoothed
  estimate's own residual — are accepted only when one Bellman application
  certifies them (``Phi(c) >= c`` below, ``Phi(c) <= c`` above, under the
  deflated operator where deflation is in play).  A candidate that fails
  is discarded and plain sweeping continues — acceleration never weakens
  the certificate, it only jumps the bracket when the jump is provably
  safe.

* **Topological SCC ordering**: the unknown states are decomposed into
  strongly connected components (``scipy.sparse.csgraph``) and solved one
  condensation level at a time, successors first.  Acyclic layers — the
  common case in frontier-restricted routing models — resolve in one
  sweep each instead of participating in global sweeps, and each level
  iterates against already-certified successor bounds.  Per-level gap
  targets increase strictly with the level (``epsilon * (1/2 + ...)``),
  which keeps termination guaranteed: a level's achievable gap is bounded
  by its successors' (smaller) certified gap.

The module is deliberately free of model/label handling — callers hand in
masks and get an :class:`IntervalSolution` back; :mod:`.compiled` owns the
public query API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph
from scipy.sparse import linalg as sparse_linalg

from repro import perf

#: Pointwise slack for Bellman-domination checks (seed verification, OVI
#: acceptance, extrapolation acceptance); scaled by ``1 + |value|`` so it
#: stays meaningful for rewards.
_CHECK_RTOL = 1e-12

#: Sweeps spent trying to verify one OVI guess before growing the offset.
_OVI_VERIFY_SWEEPS = 12

#: Growth factor for the OVI offset after a failed verification.
_OVI_GROWTH = 8.0

#: Sweeps between Aitken acceleration attempts.  Solves that finish within
#: one window — the common warm-started production case — never pay for
#: acceleration at all.
_EXTRAP_EVERY = 32

#: Plain Bellman applications smoothing an extrapolated estimate before
#: bound candidates are built from it.  The extrapolation cancels the
#: dominant (slow) error mode; smoothing damps the per-state noise that
#: would otherwise straddle the fixpoint and fail the pointwise checks.
_SMOOTH_SWEEPS = 8

#: Growth factor between the two slack rungs tried per acceleration
#: attempt (candidates ``est -/+ delta`` and ``est -/+ 64 delta``).
_SLACK_GROWTH = 64.0

#: Largest SCC block whose policy-iteration linear systems are solved
#: densely (``np.linalg.solve``).  Slowly mixing blocks — escape mass per
#: sweep near zero — make any sweep-based scheme crawl; a policy's exact
#: value costs one solve and verifies immediately, so direct solving
#: skips iteration entirely.  Above this size the dense ``O(n^3)``
#: factorization loses to sparsity, so policy iteration switches to a
#: sparse LU of ``I - P_pi`` (the routing MDPs have a handful of
#: successors per choice, so fill-in stays benign).
_DIRECT_MAX = 512

#: Largest SCC block attempted by sparse-LU policy iteration before
#: falling back to accelerated sweeping outright.  Grid-local transition
#: structure keeps LU fill-in near-linear well past this size; the cap
#: only guards against pathological dense-ish blocks where factorization
#: could dwarf the sweeps it replaces.
_SPARSE_DIRECT_MAX = 65536

#: Policy-improvement rounds before the direct solver gives up.
_PI_MAX_ROUNDS = 64

#: Value-iteration prelude inside the direct solver: greedy policies
#: stabilize long before values converge, and a sweep costs a sparse
#: matvec while a policy evaluation costs an LU factorization.  Most
#: prelude sweeps update values only (one segment reduction); every
#: ``_PI_PRELUDE_CHECK`` sweeps the greedy policy is extracted and a held
#: policy updated by policy iteration's own rule — switch a state only on
#: *strict* q-improvement beyond the check margin, so ties between
#: equivalent actions cannot flap the policy forever.  After
#: ``_PI_PRELUDE_STABLE`` consecutive improvement-free checks the held
#: policy goes to policy iteration, which then typically accepts it after
#: a single exact solve.
_PI_PRELUDE_CHECK = 4
_PI_PRELUDE_STABLE = 1

#: Sweep cap for one settling stretch; a policy that has not stopped
#: improving by then is handed to policy iteration as-is (the exact
#: solves take over the remaining improvement).
_PI_PRELUDE_MAX = 256


@dataclass(frozen=True)
class IntervalSolution:
    """Certified bounds: ``lower <= value <= upper`` pointwise.

    ``iterations`` counts Bellman applications across all levels (sweeps
    plus seed-verification, OVI-verification, smoothing and
    acceptance-check applications); ``levels`` is the number of
    condensation levels the unknown region decomposed into.
    """

    lower: np.ndarray
    upper: np.ndarray
    iterations: int
    levels: int

    @property
    def gap(self) -> float:
        finite = np.isfinite(self.lower) & np.isfinite(self.upper)
        if not finite.any():
            return 0.0
        return float(np.max(self.upper[finite] - self.lower[finite]))


class NonConvergence(RuntimeError):
    """The iteration budget ran out before the gap closed."""


def _rows(cm) -> sparse.csr_matrix:
    """Transition matrix without the padding row of a choiceless model."""
    t = cm.transitions
    if t.shape[0] != cm.num_choices:
        t = t[: cm.num_choices]
    return t


def _entries(cm) -> tuple[np.ndarray, np.ndarray]:
    """COO view ``(choice_row, successor_col)`` of the real transitions."""
    t = _rows(cm)
    indptr = t.indptr
    cols = t.indices
    rows = np.repeat(np.arange(t.shape[0], dtype=np.int64), np.diff(indptr))
    return rows, cols


def _opt(owners: np.ndarray, q: np.ndarray, n: int, maximize: bool) -> np.ndarray:
    """Per-state optimum of per-choice values (±inf where no choice)."""
    out = np.full(n, -np.inf if maximize else np.inf)
    if maximize:
        np.maximum.at(out, owners, q)
    else:
        np.minimum.at(out, owners, q)
    return out


def _make_opt(own: np.ndarray, n: int, maximize: bool):
    """A per-state optimum operator specialized to one choice block.

    Compiled models group choices by owner state, so a block's ``own``
    array is sorted and its per-owner segments are contiguous: the
    scatter-reduce collapses to one ``reduceat`` over segment starts
    computed once per level — several times faster than ``np.maximum.at``,
    which re-derives the grouping on every sweep.  Unsorted blocks (never
    produced by :func:`compiled.compile_mdp`; kept as a correctness net)
    fall back to the generic scatter.
    """
    neutral = -np.inf if maximize else np.inf
    if own.size == 0:
        def empty(q: np.ndarray) -> np.ndarray:
            return np.full(n, neutral)

        return empty
    if np.any(own[1:] < own[:-1]):  # pragma: no cover - defensive fallback
        return lambda q: _opt(own, q, n, maximize)
    starts = np.flatnonzero(np.r_[True, own[1:] != own[:-1]])
    uniq = own[starts]
    red = np.maximum.reduceat if maximize else np.minimum.reduceat

    def opt(q: np.ndarray) -> np.ndarray:
        out = np.full(n, neutral)
        out[uniq] = red(q, starts)
        return out

    return opt


def _scc_levels(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    owners: np.ndarray,
    state_mask: np.ndarray,
    choice_mask: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Topological levels of the masked sub-MDP, successors first.

    Returns ``(level_of_state, num_levels)`` with ``level_of_state[s] = -1``
    outside the mask.  States in level ``k`` only depend (transitively,
    within the mask) on states in levels ``< k`` and on their own strongly
    connected component.
    """
    sel = choice_mask[rows] & state_mask[cols]
    src = owners[rows[sel]]
    dst = cols[sel]
    keep = state_mask[src] & (src != dst)
    src, dst = src[keep], dst[keep]

    adj = sparse.csr_matrix(
        (np.ones(src.size, dtype=np.int8), (src, dst)), shape=(n, n)
    )
    ncomp, comp = csgraph.connected_components(
        adj, directed=True, connection="strong"
    )
    csrc, cdst = comp[src], comp[dst]
    cross = csrc != cdst
    if cross.any():
        key = csrc[cross].astype(np.int64) * ncomp + cdst[cross]
        pairs = np.unique(key)
        esrc = pairs // ncomp
        edst = pairs % ncomp
    else:
        esrc = np.empty(0, dtype=np.int64)
        edst = np.empty(0, dtype=np.int64)

    relevant = np.zeros(ncomp, dtype=bool)
    relevant[comp[state_mask]] = True
    resolved = ~relevant
    level_of_comp = np.full(ncomp, -1, dtype=np.int64)
    active = np.ones(esrc.size, dtype=bool)
    level = 0
    while True:
        outdeg = np.bincount(esrc[active], minlength=ncomp)
        ready = ~resolved & (outdeg == 0)
        if not ready.any():
            break
        level_of_comp[ready] = level
        resolved |= ready
        active &= ~resolved[edst]
        level += 1
    if not resolved.all():  # pragma: no cover - condensations are acyclic
        level_of_comp[~resolved] = level
        level += 1
    level_of_state = np.where(state_mask, level_of_comp[comp], -1)
    return level_of_state, level


def _mec_info(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    owners: np.ndarray,
    state_mask: np.ndarray,
    choice_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Maximal end components of the masked sub-MDP.

    Returns ``(mec_of_state, exit_mask, count)``: ``mec_of_state[s]`` is the
    MEC id of ``s`` (-1 when ``s`` is in no MEC); ``exit_mask`` marks the
    candidate choices owned by MEC states whose support leaves the MEC —
    the choices deflation maximizes over.

    Standard refinement: repeatedly drop choices that leak outside the
    surviving states or cross SCCs, then drop states left without choices,
    until stable.  Surviving SCCs are genuine end components (every
    survivor owns a choice fully inside its component).
    """
    nc = owners.size
    alive_s = state_mask.copy()
    alive_c = choice_mask.copy()
    comp = np.zeros(n, dtype=np.int64)
    while True:
        alive_c = alive_c & alive_s[owners]
        leak = np.zeros(nc, dtype=bool)
        np.logical_or.at(leak, rows[~alive_s[cols]], True)
        alive_c = alive_c & ~leak
        if not alive_c.any():
            alive_s = np.zeros(n, dtype=bool)
            break
        sel = alive_c[rows]
        src = owners[rows[sel]]
        dst = cols[sel]
        adj = sparse.csr_matrix(
            (np.ones(src.size, dtype=np.int8), (src, dst)), shape=(n, n)
        )
        _, comp = csgraph.connected_components(
            adj, directed=True, connection="strong"
        )
        cross = np.zeros(nc, dtype=bool)
        np.logical_or.at(cross, rows[comp[owners[rows]] != comp[cols]], True)
        new_c = alive_c & ~cross
        new_s = np.zeros(n, dtype=bool)
        new_s[owners[new_c]] = True
        new_s &= alive_s
        if np.array_equal(new_c, alive_c) and np.array_equal(new_s, alive_s):
            break
        alive_c, alive_s = new_c, new_s

    mec_of_state = np.full(n, -1, dtype=np.int64)
    if not alive_s.any():
        return mec_of_state, np.zeros(nc, dtype=bool), 0
    uniq, inv = np.unique(comp[alive_s], return_inverse=True)
    mec_of_state[alive_s] = inv
    exit_mask = choice_mask & alive_s[owners] & ~alive_c
    return mec_of_state, exit_mask, int(uniq.size)


def _deflate(
    per_state: np.ndarray,
    q_upper: np.ndarray,
    idx: np.ndarray,
    owners: np.ndarray,
    mec_of_state: np.ndarray,
    exit_mask: np.ndarray,
    mec_count: int,
) -> None:
    """Cap each MEC's values by its best exit value (in place).

    ``q_upper`` are the q-values of the choices ``idx`` (aligned with
    ``idx``); exit choices among them bound what the MEC can achieve by
    ever leaving, and a probability-1 ``Pmax`` MEC would have been pinned
    by precomputation, so the cap is sound and removes the spurious
    internal fixpoints.
    """
    ex = exit_mask[idx]
    if not ex.any():
        return
    caps = np.full(mec_count, -np.inf)
    np.maximum.at(caps, mec_of_state[owners[idx[ex]]], q_upper[ex])
    states = np.flatnonzero(mec_of_state >= 0)
    capped = caps[mec_of_state[states]]
    usable_cap = np.isfinite(capped)
    states = states[usable_cap]
    np.minimum.at(per_state, states, capped[usable_cap])


def _level_targets(epsilon: float, num_levels: int) -> np.ndarray:
    """Strictly increasing per-level gap targets, all ``<= epsilon``.

    A level's reachable gap is limited by its successors' certified gap;
    giving earlier (successor) levels strictly tighter targets keeps every
    level's own target reachable in finitely many sweeps.
    """
    k = np.arange(1, num_levels + 1, dtype=float)
    return epsilon * (0.5 + 0.5 * k / num_levels)


def _aitken(
    values: np.ndarray, d: np.ndarray, prev_d: np.ndarray, toward_upper: bool
) -> np.ndarray | None:
    """Per-state geometric limit estimate from two consecutive deltas.

    Each state extrapolates ``v + d * rho / (1 - rho)`` (added when the
    iterate climbs, subtracted when it descends) with its own observed
    ratio ``rho = d_k / d_{k-1}``.  Returns ``None`` when no state shows
    geometric progress.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = np.where(prev_d > 0, d / prev_d, 0.0)
    rho = np.clip(rho, 0.0, 1.0 - 1e-9)
    if not (rho > 0).any():
        return None
    jump = d * (rho / (1.0 - rho))
    return values + jump if toward_upper else values - jump


def _argopt_idx(own: np.ndarray, q: np.ndarray, maximize: bool) -> np.ndarray:
    """Index of each owner's best choice (deterministic tie-break).

    Returns one entry per distinct owner, ordered by owner id — which for a
    block whose every state owns a choice lines up with the sorted state
    indices of the block.  Ties break toward the lowest choice index.
    Compiled models group choices by owner, so the common path is two
    segment reductions; unsorted owners fall back to a stable argsort.
    """
    if own.size == 0:
        return np.empty(0, dtype=np.int64)
    fast = _make_argopt(own)
    if fast is not None:
        return fast(q, maximize)
    order = np.argsort(-q if maximize else q, kind="stable")
    _, first = np.unique(own[order], return_index=True)
    return order[first]


def _make_argopt(own: np.ndarray):
    """Per-owner argopt closure with the segment structure precomputed.

    The structure (segment starts, segment ids, choice indices) depends
    only on ``own``, so hot loops that argopt the same block every sweep
    build it once.  Returns ``None`` when the owners are unsorted (the
    caller falls back to :func:`_argopt_idx`'s argsort path).
    """
    if own.size == 0 or np.any(own[1:] < own[:-1]):
        return None
    newseg = np.r_[True, own[1:] != own[:-1]]
    starts = np.flatnonzero(newseg)
    seg = np.cumsum(newseg) - 1
    idx = np.arange(own.size)

    def argopt(q: np.ndarray, maximize: bool) -> np.ndarray:
        red = np.maximum.reduceat if maximize else np.minimum.reduceat
        best = red(q, starts)
        cand = np.where(q == best[seg], idx, own.size)
        return np.minimum.reduceat(cand, starts)

    return argopt


def _exit_policy(
    states: np.ndarray,
    Tsub: sparse.csr_matrix,
    own: np.ndarray,
    block: np.ndarray,
) -> np.ndarray | None:
    """A proper policy: each state steps toward the block's exits.

    Backward BFS from the complement of ``block``: a state is assigned the
    first choice whose support hits the already-reached set, so every
    state's chosen action has positive probability of moving strictly
    closer to leaving the block.  Returns choice indices (into the block's
    choice arrays) aligned with sorted ``states``, or ``None`` if some
    state cannot reach an exit (an absorbing block — its values diverge
    and no proper policy exists).
    """
    support = Tsub > 0
    joined = ~block
    chosen = np.full(states.size, -1, dtype=np.int64)
    pos = np.searchsorted(states, own)
    while True:
        hits = (support @ joined.astype(np.int8)) > 0
        ready = np.flatnonzero(hits & (chosen[pos] == -1))
        if ready.size == 0:
            break
        _, first = np.unique(own[ready], return_index=True)
        sel = ready[first]
        chosen[pos[sel]] = sel
        joined = joined.copy()
        joined[own[sel]] = True
    return chosen if bool(np.all(chosen >= 0)) else None


def _policy_fixpoint(
    states: np.ndarray,
    Tsub: sparse.csr_matrix,
    rsub: np.ndarray,
    own: np.ndarray,
    outside: np.ndarray,
    block: np.ndarray,
    budget: "_Budget",
    *,
    maximize: bool,
) -> np.ndarray | None:
    """Exact block values by policy iteration with direct linear solves.

    ``Tsub``/``rsub``/``own`` describe the block's choices; ``outside``
    supplies certified values for successors outside the block (its
    entries at ``states`` are overwritten).  Each round solves
    ``(I - P_pi) x = r_pi + P_pi->outside`` for the current policy —
    densely up to ``_DIRECT_MAX`` states, by sparse LU beyond that — and
    improves it; improvement switches a state's action only on *strict*
    q-value improvement, so starting from the proper exit policy the
    iteration can never drift into an improper (forever-looping) policy
    through ties, and a stable policy's value is the Bellman fixpoint to
    machine precision.  Returns the last solvable iterate (``None`` when
    no proper start exists or the first system is singular/non-finite);
    the caller certifies the result before trusting it, so a stale or
    garbage iterate merely fails verification.

    The starting policy comes from a value-iteration prelude: greedy
    policies settle long before values converge, and a sweep costs a
    sparse matvec while a policy evaluation costs a factorization.  In
    the sparse regime only the first evaluation factorizes; later rounds
    solve iteratively, preconditioned by that factorization (consecutive
    policies differ in few rows), and refactorize only when the iterative
    solve stalls.  A prelude policy is not guaranteed proper (it can loop
    inside the block), so a singular or non-finite evaluation restarts
    once from the backward-BFS exit policy, which is.
    """
    Tblock = Tsub[:, states]
    vals = outside.copy()
    x0 = vals[states].copy()
    x0[~np.isfinite(x0)] = 0.0
    vals[states] = 0.0
    base = rsub + Tsub @ vals
    fast = _make_argopt(own)
    argopt = fast if fast is not None else (
        lambda q, m: _argopt_idx(own, q, m))
    if fast is not None:
        starts = np.flatnonzero(np.r_[True, own[1:] != own[:-1]])
        vred = np.maximum.reduceat if maximize else np.minimum.reduceat

    def settle(xi: np.ndarray, held: np.ndarray | None) -> np.ndarray | None:
        """Sweep until the held policy sees no strict improvement."""
        stable = 0
        for k in range(_PI_PRELUDE_MAX):
            budget.tick()
            q = base + Tblock @ xi
            if fast is not None and (k + 1) % _PI_PRELUDE_CHECK:
                xi = vred(q, starts)
                if xi.size != states.size:
                    return None
                continue
            greedy = argopt(q, maximize)
            if greedy.size != states.size:
                return None
            best = q[greedy]
            xi = best
            if held is None:
                held = greedy
                continue
            cur = q[held]
            margin = _CHECK_RTOL * (1.0 + np.abs(cur))
            improve = ((best > cur + margin) if maximize
                       else (best < cur - margin))
            if improve.any():
                held = np.where(improve, greedy, held)
                stable = 0
            else:
                stable += 1
                if stable >= _PI_PRELUDE_STABLE:
                    break
        return held

    chosen = settle(x0, None)
    return _pi_finish(
        states, Tsub, Tblock, base, own, block, chosen, budget,
        maximize=maximize,
    )


def _pi_finish(
    states: np.ndarray,
    Tsub: sparse.csr_matrix,
    Tblock: sparse.csr_matrix,
    base: np.ndarray,
    own: np.ndarray,
    block: np.ndarray,
    held: np.ndarray | None,
    budget: "_Budget",
    *,
    maximize: bool,
) -> np.ndarray | None:
    """Run policy iteration from a settled policy (or the exit fallback).

    ``held`` is the policy the value-iteration prelude settled on, or
    ``None`` when settling failed — in which case the backward-BFS exit
    policy restarts the rounds, exactly as :func:`_policy_fixpoint` does.
    Split out so the batched kernel (:mod:`.batch`) can substitute its own
    vectorized settling prelude and still finish each model through the
    same rounds loop, keeping batched and solo results bit-identical.
    """
    fellback = held is None
    if fellback:
        held = _exit_policy(states, Tsub, own, block)
        if held is None:
            return None
    return _pi_rounds(
        states, Tsub, Tblock, base, own, block, held, budget,
        maximize=maximize, fellback=fellback,
    )


def _pi_rounds(
    states: np.ndarray,
    Tsub: sparse.csr_matrix,
    Tblock: sparse.csr_matrix,
    base: np.ndarray,
    own: np.ndarray,
    block: np.ndarray,
    chosen: np.ndarray,
    budget: "_Budget",
    *,
    maximize: bool,
    fellback: bool,
) -> np.ndarray | None:
    """Policy-improvement rounds from a held starting policy.

    The exact-solve half of :func:`_policy_fixpoint`, split out so the
    batched kernel (:mod:`.batch`) can run its own vectorized settling
    prelude across many models and still finish each model through the
    *same* rounds loop — keeping batched and solo results bit-identical.
    """
    fast = _make_argopt(own)
    argopt = fast if fast is not None else (
        lambda q, m: _argopt_idx(own, q, m))
    x = None
    lu = None
    dense = states.size <= _DIRECT_MAX
    eye = (np.eye(states.size) if dense
           else sparse.identity(states.size, format="csr"))
    for _ in range(_PI_MAX_ROUNDS):
        budget.tick()
        Ppi = Tblock[chosen]
        xn = None
        try:
            if dense:
                xn = np.linalg.solve(eye - Ppi.toarray(), base[chosen])
            else:
                A = (eye - Ppi).tocsc()
                if lu is not None:
                    # Consecutive policies differ in few rows, so the
                    # previous round's factorization is an excellent
                    # preconditioner — a handful of matvecs replace a
                    # fresh factorization.
                    xn, info = sparse_linalg.bicgstab(
                        A, base[chosen], x0=x, rtol=1e-12, atol=0.0,
                        maxiter=32,
                        M=sparse_linalg.LinearOperator(A.shape, lu.solve),
                    )
                    if info != 0:
                        xn = None
                if xn is None:
                    # splu raises RuntimeError on an exactly singular
                    # factor (an improper policy trapped in the block).
                    lu = sparse_linalg.splu(A)
                    xn = lu.solve(base[chosen])
        except (np.linalg.LinAlgError, RuntimeError):
            xn = None
            lu = None
        if xn is None or not np.all(np.isfinite(xn)):
            if fellback:
                return x
            fellback = True
            chosen = _exit_policy(states, Tsub, own, block)
            if chosen is None:
                return x
            continue
        x = xn
        q = base + Tblock @ x
        greedy = argopt(q, maximize)
        best = q[greedy]
        cur = q[chosen]
        margin = _CHECK_RTOL * (1.0 + np.abs(cur))
        improve = (best > cur + margin) if maximize else (best < cur - margin)
        if not improve.any():
            return x
        chosen = np.where(improve, greedy, chosen)
    return x


def _window_error(resid: float, norm_now: float, norm_then: float,
                  window: int) -> float:
    """Distance-to-fixpoint scale from a residual and a windowed rate.

    The contraction rate is estimated as the geometric mean of the sweep
    deltas over the attempt window — far more stable than single-step
    ratios, whose noise near 1 explodes ``rho / (1 - rho)``.  Returns
    ``inf`` when the window shows no geometric progress.
    """
    if not (0.0 < norm_now < norm_then):
        return np.inf
    rho = (norm_now / norm_then) ** (1.0 / window)
    return resid * rho / (1.0 - rho)


class _Budget:
    """Shared application counter enforcing the caller's iteration cap."""

    __slots__ = ("iterations", "max_iterations", "message")

    def __init__(self, max_iterations: int, message: str) -> None:
        self.iterations = 0
        self.max_iterations = max_iterations
        self.message = message

    def tick(self) -> None:
        if self.iterations >= self.max_iterations:
            raise NonConvergence(self.message)
        self.iterations += 1


def _tighten(
    lower: np.ndarray,
    upper: np.ndarray,
    block: np.ndarray,
    phi_plain,
    phi_check,
    budget: _Budget,
    *,
    target: float,
    hi: float,
) -> None:
    """Joint monotone tightening of ``lower``/``upper`` over ``block``.

    ``phi_plain`` drives the sweeps; ``phi_check`` is the operator used for
    certification (the deflated one under ``Pmax``, otherwise the same).
    Every :data:`_EXTRAP_EVERY` sweeps the slower side's Aitken estimate is
    smoothed and turned into verified bound candidates ``est -/+ delta``;
    accepted candidates jump the bracket, rejected ones cost one check
    application each and plain sweeping resumes.  Values are clipped to
    ``[0, hi]``.
    """
    slack0 = target / 4.0
    d_l = d_u = prev_d_l = prev_d_u = None
    sweeps = 0
    mark = 0
    nl_mark = nu_mark = np.inf
    while True:
        if float(np.max(upper[block] - lower[block])) <= target:
            return
        budget.tick()
        sweeps += 1
        pl = phi_plain(lower)
        pu = phi_check(upper)
        new_l = np.maximum(lower[block], pl[block])
        new_u = np.minimum(upper[block], pu[block])
        prev_d_l, prev_d_u = d_l, d_u
        d_l = new_l - lower[block]
        d_u = upper[block] - new_u
        lower[block] = new_l
        upper[block] = new_u
        if sweeps - mark < _EXTRAP_EVERY or prev_d_l is None:
            continue
        window = sweeps - mark
        mark = sweeps
        nl, nu = float(np.max(d_l)), float(np.max(d_u))
        from_upper = nu >= nl
        if from_upper:
            guess = _aitken(upper[block], d_u, prev_d_u, toward_upper=False)
            norm_now, norm_then = nu, nu_mark
        else:
            guess = _aitken(lower[block], d_l, prev_d_l, toward_upper=True)
            norm_now, norm_then = nl, nl_mark
        nl_mark, nu_mark = nl, nu
        if guess is None:
            continue
        est = np.clip(guess, 0.0, hi)
        # Smooth against the midpoint of the certified surroundings; the
        # residual of the last application scales the candidate slack.
        base = 0.5 * (lower + upper)
        resid = np.inf
        for _ in range(_SMOOTH_SWEEPS):
            budget.tick()
            vec = base.copy()
            vec[block] = est
            new_est = np.clip(phi_check(vec)[block], 0.0, hi)
            resid = float(np.max(np.abs(new_est - est)))
            est = new_est
        err = _window_error(resid, norm_now, norm_then, window)
        gap = float(np.max(upper[block] - lower[block]))
        delta = max(slack0, min(err, gap / 4.0))
        got_l = got_u = False
        for _ in range(2):
            if not got_l:
                cand = np.maximum(lower[block], est - delta)
                if float(np.max(cand - lower[block])) > 0.0:
                    vec = lower.copy()
                    vec[block] = cand
                    budget.tick()
                    tol = 2.0 * _CHECK_RTOL * (1.0 + float(np.max(np.abs(cand))))
                    if bool(np.all(phi_check(vec)[block] >= cand - tol)):
                        lower[block] = cand
                        got_l = True
            if not got_u:
                cand = np.minimum(upper[block], np.clip(est + delta, 0.0, hi))
                if float(np.max(upper[block] - cand)) > 0.0:
                    vec = upper.copy()
                    vec[block] = cand
                    budget.tick()
                    tol = 2.0 * _CHECK_RTOL * (1.0 + float(np.max(np.abs(cand))))
                    if bool(np.all(phi_check(vec)[block] <= cand + tol)):
                        upper[block] = cand
                        got_u = True
            delta *= _SLACK_GROWTH
            if (got_l and got_u) or delta > gap:
                break


def solve_probability_interval(
    cm,
    *,
    zero: np.ndarray,
    one: np.ndarray,
    maximize: bool,
    epsilon: float,
    max_iterations: int,
    seed: np.ndarray | None = None,
) -> IntervalSolution:
    """Certified ``Pmax``/``Pmin`` bounds with prob0/prob1 pinning.

    ``zero``/``one`` are the qualitative masks (pinned exactly); ``seed``
    is an optional warm-start candidate for the contracting side (lower
    for ``Pmax``, upper for ``Pmin``).  The seed is *verified* with one
    Bellman application — accepted only when the (deflated, for ``Pmax``)
    operator moves it toward the fixpoint, which proves it bounds the true
    value from the right side — and silently dropped otherwise
    (``vi.warm.rejected``).
    """
    n = cm.num_states
    owners = cm.choice_state
    lower = np.zeros(n)
    upper = np.ones(n)
    lower[one] = 1.0
    upper[zero] = 0.0
    unknown = ~(zero | one)
    budget = _Budget(max_iterations, "value iteration did not converge")
    if not unknown.any():
        return IntervalSolution(lower, upper, budget.iterations, 0)

    T = _rows(cm)
    rows, cols = _entries(cm)
    choice_mask = unknown[owners]
    if maximize:
        mec_of_state, exit_mask, mec_count = _mec_info(
            n, rows, cols, owners, unknown, choice_mask
        )
    else:
        mec_of_state = exit_mask = None
        mec_count = 0

    def make_ops(block_T, block_idx):
        opt = _make_opt(owners[block_idx], n, maximize)

        def plain(vec: np.ndarray) -> np.ndarray:
            return opt(block_T @ vec)

        def check(vec: np.ndarray) -> np.ndarray:
            q = block_T @ vec
            phi = opt(q)
            if maximize and mec_count:
                _deflate(phi, q, block_idx, owners, mec_of_state,
                         exit_mask, mec_count)
            return phi

        return plain, check

    if seed is not None:
        all_idx = np.flatnonzero(choice_mask)
        _, check_all = make_ops(T[all_idx], all_idx)
        v = np.clip(seed - epsilon if maximize else seed + epsilon, 0.0, 1.0)
        v[one] = 1.0
        v[zero] = 0.0
        phi = check_all(v)
        budget.tick()
        tol = 2.0 * _CHECK_RTOL
        if maximize:
            ok = bool(np.all(phi[unknown] >= v[unknown] - tol))
        else:
            ok = bool(np.all(phi[unknown] <= v[unknown] + tol))
        if ok:
            if maximize:
                lower[unknown] = v[unknown]
            else:
                upper[unknown] = v[unknown]
        else:
            perf.incr("vi.warm.rejected")

    level_of_state, num_levels = _scc_levels(
        n, rows, cols, owners, unknown, choice_mask
    )
    targets = _level_targets(epsilon, num_levels)
    for level in range(num_levels):
        block = unknown & (level_of_state == level)
        idx = np.flatnonzero(choice_mask & block[owners])
        plain, check = make_ops(T[idx], idx)
        target = float(targets[level])
        states = np.flatnonzero(block)
        if states.size <= _SPARSE_DIRECT_MAX:
            x = _policy_fixpoint(
                states, T[idx], np.zeros(idx.size), owners[idx],
                0.5 * (lower + upper), block, budget, maximize=maximize,
            )
            if x is not None:
                delta = target / 4.0
                tol = 2.0 * _CHECK_RTOL
                cl = np.maximum(np.clip(x - delta, 0.0, 1.0), lower[block])
                vec = lower.copy()
                vec[block] = cl
                budget.tick()
                if bool(np.all(check(vec)[block] >= cl - tol)):
                    lower[block] = cl
                cu = np.minimum(np.clip(x + delta, 0.0, 1.0), upper[block])
                cu = np.maximum(cu, lower[block])
                vec = upper.copy()
                vec[block] = cu
                budget.tick()
                if bool(np.all(check(vec)[block] <= cu + tol)):
                    upper[block] = cu
        _tighten(lower, upper, block, plain, check, budget,
                 target=target, hi=1.0)
    # Rounding can cross the bounds by strictly less than one ulp of the
    # sweep arithmetic; restore the invariant without moving either side
    # beyond certification noise.
    np.maximum(upper, lower, out=upper)
    return IntervalSolution(lower, upper, budget.iterations, num_levels)


def solve_reward_interval(
    cm,
    *,
    goal_zero: np.ndarray,
    active: np.ndarray,
    usable: np.ndarray,
    minimize: bool,
    epsilon: float,
    max_iterations: int,
    seed: np.ndarray | None = None,
) -> IntervalSolution:
    """Certified expected-total-reward bounds (optimistic value iteration).

    ``goal_zero`` marks states pinned at 0 (goal inside the prob-1 region),
    ``active`` the states to iterate, ``usable`` the choices that stay in
    the prob-1 region; everything else is ``inf`` on both sides (PRISM
    total-reward semantics).  ``seed`` optionally warm-starts the lower
    iterate; it is verified per level with one Bellman application and
    dropped where it fails (``vi.warm.rejected``).

    Restricted to ``usable`` choices the sub-MDP is goal-reaching under
    proper policies; for minimization every policy in the restriction is
    proper, making the fixpoint unique so the OVI acceptance check
    (``Phi(u) <= u`` pointwise) certifies the upper bound.  For
    maximization an end component inside the restriction makes the
    supremum infinite; there the guesses never verify and the iteration
    budget surfaces the divergence as :class:`NonConvergence` — the same
    contract as the plain solver, now with an explicit mechanism.
    """
    n = cm.num_states
    owners = cm.choice_state
    lower = np.full(n, np.inf)
    upper = np.full(n, np.inf)
    lower[goal_zero] = 0.0
    upper[goal_zero] = 0.0
    lower[active] = 0.0
    budget = _Budget(max_iterations, "reward iteration did not converge")
    if not active.any():
        return IntervalSolution(lower, upper, budget.iterations, 0)

    T = _rows(cm)
    rows, cols = _entries(cm)
    rewards = cm.choice_reward
    maximize = not minimize

    level_of_state, num_levels = _scc_levels(
        n, rows, cols, owners, active, usable
    )
    targets = _level_targets(epsilon, num_levels)
    for level in range(num_levels):
        block = active & (level_of_state == level)
        idx = np.flatnonzero(usable & block[owners])
        _solve_reward_level(
            lower, upper, block, T[idx], rewards[idx], owners[idx], budget,
            target=float(targets[level]), epsilon=epsilon,
            minimize=minimize, seed=seed,
        )
    return IntervalSolution(lower, upper, budget.iterations, num_levels)


#: Sentinel distinguishing "no presettled policy supplied" (run the full
#: value-iteration prelude inside :func:`_policy_fixpoint`) from "settling
#: ran externally and produced this result" (which may be ``None`` when the
#: external prelude failed to settle).
_NO_PRESETTLE = object()


def _verify_reward_seed(
    lower: np.ndarray,
    block: np.ndarray,
    phi_of,
    seed: np.ndarray,
    epsilon: float,
    budget: "_Budget",
) -> None:
    """Accept a warm-start candidate for one level's lower iterate.

    The candidate (relaxed down by ``epsilon``, floored at 0) is kept only
    when one Bellman application confirms it sits below the fixpoint;
    rejections cold-start and count as ``vi.warm.rejected``.  Shared by
    the solo per-level body and the batched kernel so the verification
    arithmetic can never drift apart.
    """
    v = lower.copy()
    v[block] = np.maximum(seed[block] - epsilon, 0.0)
    phi = phi_of(v)
    budget.tick()
    tol = _CHECK_RTOL * (1.0 + float(np.max(v[block])))
    if bool(np.all(phi[block] >= v[block] - tol)):
        lower[block] = v[block]
    else:
        perf.incr("vi.warm.rejected")


def _solve_reward_level(
    lower: np.ndarray,
    upper: np.ndarray,
    block: np.ndarray,
    Tl: sparse.csr_matrix,
    rl: np.ndarray,
    own: np.ndarray,
    budget: _Budget,
    *,
    target: float,
    epsilon: float,
    minimize: bool,
    seed: np.ndarray | None,
    presettled=_NO_PRESETTLE,
) -> None:
    """Solve one condensation level of a total-reward objective in place.

    The per-level body of :func:`solve_reward_interval`, split out so the
    batched kernel (:mod:`.batch`) can drive the identical sequence of
    operations per model while replacing only the value-iteration settling
    prelude with its vectorized counterpart.  ``presettled`` is either the
    :data:`_NO_PRESETTLE` sentinel (solo path: :func:`_policy_fixpoint`
    runs its own prelude) or a ``(held, Tblock, base)`` triple from an
    external prelude, handed straight to :func:`_pi_finish`.
    """
    n = lower.size
    maximize = not minimize
    opt = _make_opt(own, n, maximize)

    def phi_of(vec: np.ndarray) -> np.ndarray:
        return opt(rl + Tl @ vec)

    def sweep_lower() -> np.ndarray:
        """One monotone lower sweep; returns the per-state change."""
        pl = phi_of(lower)
        new = np.maximum(lower[block], pl[block])
        d = new - lower[block]
        lower[block] = new
        return d

    if seed is not None:
        _verify_reward_seed(lower, block, phi_of, seed, epsilon, budget)

    # Direct solve: exact policy iteration, both bounds certified from
    # the machine-precision value in two Bellman applications (dense
    # solves for small blocks, sparse LU for large ones).  Only for
    # minimization, where every policy of the usable restriction
    # that PI stabilizes on is proper; the verification gate below
    # keeps an improper intermediate from ever leaking out.
    states = np.flatnonzero(block)
    if minimize and states.size <= _SPARSE_DIRECT_MAX:
        if presettled is _NO_PRESETTLE:
            vals = lower.copy()
            certified = np.isfinite(upper)
            vals[certified] = 0.5 * (lower[certified] + upper[certified])
            x = _policy_fixpoint(states, Tl, rl, own, vals, block, budget,
                                 maximize=False)
        else:
            held, Tblock, base = presettled
            x = _pi_finish(states, Tl, Tblock, base, own, block, held,
                           budget, maximize=False)
        if x is not None:
            delta = target / 4.0
            cl = np.maximum(lower[block], x - delta)
            vec = lower.copy()
            vec[block] = cl
            budget.tick()
            tol = _CHECK_RTOL * (1.0 + float(np.max(cl)))
            if bool(np.all(phi_of(vec)[block] >= cl - tol)):
                lower[block] = cl
                cu = np.maximum(cl, x + delta)
                vec = upper.copy()
                vec[block] = cu
                budget.tick()
                tol = _CHECK_RTOL * (1.0 + float(np.max(cu)))
                if bool(np.all(phi_of(vec)[block] <= cu + tol)):
                    upper[block] = cu
                    np.maximum(upper, lower, out=upper)
                    return

    # Phase A: converge the lower iterate, with verified Aitken jumps
    # for slowly mixing components.  The stop is *error*-based, not
    # residual-based: sweeping continues past the residual floor until
    # the windowed geometric estimate of the remaining distance drops
    # to the OVI offset Phase B will guess — so the verified upper
    # lands within the level target and Phase C has nothing left to
    # grind.  A stall valve bounds the extra sweeps in case the rate
    # estimate refuses to certify progress (Phase C then takes over,
    # exactly as before).
    delta = np.inf
    prev_delta = np.inf
    d = prev_d = None
    sweeps = 0
    mark = 0
    delta_mark = np.inf
    hist: list[float] = []
    stalled = 0
    resid_floor = max(target / 4.0, 1e-300)
    while True:
        budget.tick()
        sweeps += 1
        prev_delta = delta
        prev_d = d
        d = sweep_lower()
        delta = float(np.max(d))
        if delta == 0.0:
            break
        hist.append(delta)
        if delta <= resid_floor:
            w = min(len(hist) - 1, 8)
            err = _window_error(delta, delta, hist[-1 - w], w) if w else 0.0
            stalled += 1
            if err <= target / 2.0 or stalled > 4 * _EXTRAP_EVERY:
                break
        if sweeps - mark < _EXTRAP_EVERY or prev_d is None:
            continue
        window = sweeps - mark
        mark = sweeps
        delta_then, delta_mark = delta_mark, delta
        guess = _aitken(lower[block], d, prev_d, toward_upper=True)
        if guess is None:
            continue
        est = np.maximum(guess, lower[block])
        resid = np.inf
        for _ in range(_SMOOTH_SWEEPS):
            budget.tick()
            vec = lower.copy()
            vec[block] = est
            new_est = np.maximum(phi_of(vec)[block], lower[block])
            resid = float(np.max(np.abs(new_est - est)))
            est = new_est
        err = _window_error(resid, delta, delta_then, window)
        reach = float(np.max(est - lower[block]))
        slack = max(target / 4.0, min(err, reach / 4.0))
        for _ in range(2):
            cand = np.maximum(lower[block], est - slack)
            if float(np.max(cand - lower[block])) <= 0.0:
                break
            vec = lower.copy()
            vec[block] = cand
            phi = phi_of(vec)
            budget.tick()
            tol = _CHECK_RTOL * (1.0 + float(np.max(cand)))
            if bool(np.all(phi[block] >= cand - tol)):
                lower[block] = cand
                break
            slack *= _SLACK_GROWTH
    if delta > 0.0:
        w = min(len(hist) - 1, 8)
        error_estimate = (
            _window_error(delta, delta, hist[-1 - w], w) if w else 0.0
        )
        if not np.isfinite(error_estimate):
            rho = min(
                max(delta / prev_delta if prev_delta > 0 else 0.0, 0.0),
                0.999999,
            )
            error_estimate = delta * rho / (1.0 - rho)
    else:
        error_estimate = 0.0

    # Phase B: optimistic upper guess + verification.
    offset = max(min(error_estimate, 1e12), target / 2.0)
    accepted = False
    while not accepted:
        upper[block] = lower[block] + offset
        for _ in range(_OVI_VERIFY_SWEEPS):
            budget.tick()
            pu = phi_of(upper)
            tol = _CHECK_RTOL * (1.0 + float(np.max(upper[block])))
            if bool(np.all(pu[block] <= upper[block] + tol)):
                accepted = True
                upper[block] = np.minimum(upper[block], pu[block])
                break
            upper[block] = np.minimum(upper[block], pu[block])
            sweep_lower()
            if bool(np.any(upper[block] < lower[block] - tol)):
                break  # guess collapsed below the lower bound
        if not accepted:
            offset *= _OVI_GROWTH

    # Phase C: tighten jointly (with acceleration) to the level target.
    _tighten(lower, upper, block, phi_of, phi_of, budget,
             target=target, hi=np.inf)
    np.maximum(upper, lower, out=upper)
