"""Batched certified solving of same-shape MDP families.

Adaptive routing re-synthesizes the same routing-job model over and over
with different health fingerprints: the sparsity pattern (which cells can
reach which) is fixed by the chip geometry while the transition
*probabilities* move with degradation.  Solving those models one at a time
repeats two kinds of work:

* **graph precompute** — qualitative prob0/prob1 sets, the total-reward
  region and the SCC condensation depend only on the transition *support*,
  so models sharing a support share all of it (:class:`SharedContext`,
  memoized on a structural fingerprint);
* **sweep scheduling** — the value-iteration settling prelude that costs
  most of a warm solve runs the same reductions per model; stacking the
  models into one ``(models, choices)`` value array turns ``m`` sweeps
  into one block-diagonal matvec plus one axis-1 segment reduction.

The kernel is *exact*, not approximate: every per-model operation either
reuses the solo code verbatim (:func:`interval._solve_reward_level`,
:func:`interval._pi_finish`) or mirrors it op-for-op with no cross-model
data flow, so each model's float sequence — and therefore its certified
``lower``/``upper`` bounds, gap and extracted strategy — is bit-identical
to a solo :func:`~repro.modelcheck.compiled.solve_reach_avoid_reward` call
with the same seed.  Models retire from the active set as they settle;
any model the batch path cannot handle (stored zero probabilities,
unsorted owners, a solver failure) falls back to the full solo solve,
which reproduces solo behavior including its exceptions.

The boundary is pure array-in/array-out: callers hand in compiled models
(plus optional warm seeds) and get :class:`ValueResult` objects back —
nothing here knows about routing jobs, strategies or engines.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro import perf
from repro.modelcheck import compiled, interval, precompute
from repro.modelcheck.reachability import (
    DEFAULT_EPSILON,
    DEFAULT_MAX_ITERATIONS,
    ValueResult,
)


def structural_key(cm) -> str:
    """Fingerprint of everything the shared precompute depends on.

    Two models with equal keys have identical state/choice layout,
    transition sparsity, labels and initial state — they may differ only
    in transition probabilities (and rewards), which is exactly the family
    a :class:`SharedContext` covers.  Probability *values* are excluded on
    purpose; support equality additionally requires every stored entry to
    be positive (:func:`supports_batching`).
    """
    if cm._digest_cache:
        return cm._digest_cache[0]
    t = interval._rows(cm)
    h = hashlib.sha256()
    h.update(np.int64(cm.num_states).tobytes())
    h.update(np.int64(cm.num_choices).tobytes())
    h.update(np.int64(cm.initial).tobytes())
    h.update(np.ascontiguousarray(cm.choice_state).tobytes())
    h.update(np.ascontiguousarray(t.indptr).tobytes())
    h.update(np.ascontiguousarray(t.indices).tobytes())
    for name in sorted(cm.labels):
        h.update(name.encode())
        h.update(np.ascontiguousarray(cm.labels[name]).tobytes())
    digest = h.hexdigest()
    cm._digest_cache.append(digest)
    return digest


def supports_batching(cm) -> bool:
    """True when the stored sparsity *is* the support (no explicit zeros).

    A stored zero would make two equal-key models have different
    qualitative sets, silently invalidating the shared precompute; such
    models take the solo path instead.
    """
    return bool((interval._rows(cm).data > 0.0).all())


def _raw_csr(data, indices, indptr, shape) -> sparse.csr_matrix:
    """CSR from pre-validated arrays, skipping the constructor's checks.

    The arrays come from skeletons derived off a canonical matrix (or a
    gather through one), so re-running ``check_format`` per model per
    level would only re-verify what the construction guarantees.
    """
    out = sparse.csr_matrix(shape, dtype=data.dtype)
    out.data = data
    out.indices = indices
    out.indptr = indptr
    return out


def _block_diag_csr(mats: "list[sparse.csr_matrix]") -> sparse.csr_matrix:
    """Block-diagonal stack of same-shape, same-sparsity CSR matrices.

    ``scipy.sparse.block_diag`` round-trips through COO (a sort over the
    whole stacked nnz); with identical skeletons the result is a plain
    concatenation, so build it directly.
    """
    m = len(mats)
    first = mats[0]
    if m == 1:
        return first
    nr, nc = first.shape
    idx = first.indices
    data = np.concatenate([A.data for A in mats])
    offsets = np.repeat(
        np.arange(m, dtype=idx.dtype) * idx.dtype.type(nc), idx.size
    )
    indices = np.tile(idx, m) + offsets
    counts = np.diff(first.indptr)
    indptr = np.concatenate(([0], np.cumsum(np.tile(counts, m)))).astype(
        first.indptr.dtype
    )
    return _raw_csr(data, indices, indptr, (m * nr, m * nc))


@dataclass(frozen=True)
class _Level:
    """Shared per-condensation-level structure (support-derived)."""

    block: np.ndarray  # bool state mask of the level
    idx: np.ndarray  # global choice indices of the level
    own: np.ndarray  # owner state per level choice
    states: np.ndarray  # sorted state indices of the level
    rowpos: np.ndarray  # gather: T.data[rowpos] -> Tl.data
    tl_indices: np.ndarray
    tl_indptr: np.ndarray
    blockpos: np.ndarray  # gather: Tl.data[blockpos] -> Tblock.data
    tb_indices: np.ndarray
    tb_indptr: np.ndarray
    argopt_starts: np.ndarray | None  # None when owners are unsorted/empty
    argopt_seg: np.ndarray | None
    direct_ok: bool

    def make_tl(self, T: sparse.csr_matrix, n: int) -> sparse.csr_matrix:
        """This model's level rows — bit-identical to ``T[idx]``."""
        return _raw_csr(
            T.data[self.rowpos], self.tl_indices, self.tl_indptr,
            (self.idx.size, n),
        )

    def make_tblock(self, Tl: sparse.csr_matrix) -> sparse.csr_matrix:
        """The in-block columns — bit-identical to ``Tl[:, states]``."""
        return _raw_csr(
            Tl.data[self.blockpos], self.tb_indices, self.tb_indptr,
            (self.idx.size, self.states.size),
        )


@dataclass(frozen=True)
class SharedContext:
    """Support-derived precompute shared by a same-shape model family."""

    key: str
    goal: str
    avoid: str
    goal_zero: np.ndarray
    active: np.ndarray
    usable: np.ndarray
    num_levels: int
    levels: tuple[_Level, ...]


def _build_level(
    T: sparse.csr_matrix,
    owners: np.ndarray,
    block: np.ndarray,
    usable: np.ndarray,
    minimize: bool,
) -> _Level:
    idx = np.flatnonzero(usable & block[owners])
    own = owners[idx]
    states = np.flatnonzero(block)

    counts = np.diff(T.indptr)[idx]
    total = int(counts.sum())
    seg0 = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(np.int64)
    rowpos = np.repeat(T.indptr[idx], counts) + (
        np.arange(total, dtype=np.int64) - np.repeat(seg0, counts)
    )
    tl_indices = T.indices[rowpos]
    tl_indptr = np.concatenate(([0], np.cumsum(counts))).astype(
        T.indptr.dtype
    )

    # Column-slice skeleton: slicing an index-valued matrix with the same
    # structure records, in the exact data order scipy's slicing produces,
    # which Tl entry lands where — so per-model Tblocks are one gather.
    marker = sparse.csr_matrix(
        (np.arange(1, total + 1, dtype=np.int64), tl_indices, tl_indptr),
        shape=(idx.size, T.shape[1]),
    )
    msub = marker[:, states]
    blockpos = np.asarray(msub.data, dtype=np.int64) - 1
    tb_indices = msub.indices
    tb_indptr = msub.indptr

    fast = interval._make_argopt(own)
    if fast is not None and own.size:
        newseg = np.r_[True, own[1:] != own[:-1]]
        argopt_starts = np.flatnonzero(newseg)
        argopt_seg = np.cumsum(newseg) - 1
    else:
        argopt_starts = argopt_seg = None
    return _Level(
        block=block,
        idx=idx,
        own=own,
        states=states,
        rowpos=rowpos,
        tl_indices=tl_indices,
        tl_indptr=tl_indptr,
        blockpos=blockpos,
        tb_indices=tb_indices,
        tb_indptr=tb_indptr,
        argopt_starts=argopt_starts,
        argopt_seg=argopt_seg,
        direct_ok=(
            minimize
            and states.size <= interval._SPARSE_DIRECT_MAX
            and argopt_starts is not None
            and argopt_starts.size == states.size
        ),
    )


def build_context(cm, goal: str, avoid: str, minimize: bool) -> SharedContext:
    """Compute the shared precompute from one representative model."""
    goal_mask = cm.label_mask(goal)
    avoid_mask = cm.label_mask(avoid)
    goal_zero, active, usable = compiled._reward_region(
        cm, goal_mask, avoid_mask
    )
    T = interval._rows(cm)
    owners = cm.choice_state
    rows, cols = interval._entries(cm)
    level_of_state, num_levels = interval._scc_levels(
        cm.num_states, rows, cols, owners, active, usable
    )
    levels = tuple(
        _build_level(
            T, owners, active & (level_of_state == level), usable, minimize
        )
        for level in range(num_levels)
    )
    return SharedContext(
        key=structural_key(cm),
        goal=goal,
        avoid=avoid,
        goal_zero=goal_zero,
        active=active,
        usable=usable,
        num_levels=num_levels,
        levels=levels,
    )


#: Shared-context memo.  Worker processes solve many batches for the same
#: assay geometry, so a small LRU holds the handful of live shapes.
_CONTEXT_CACHE: OrderedDict[tuple, SharedContext] = OrderedDict()
_CONTEXT_CACHE_MAX = 32


def reward_context(cm, goal: str, avoid: str, minimize: bool) -> SharedContext:
    """Memoized :func:`build_context` keyed on the structural fingerprint."""
    key = (structural_key(cm), goal, avoid, minimize)
    ctx = _CONTEXT_CACHE.get(key)
    if ctx is not None:
        _CONTEXT_CACHE.move_to_end(key)
        perf.incr("vi.batch.precompute.hits")
        return ctx
    perf.incr("vi.batch.precompute.misses")
    ctx = build_context(cm, goal, avoid, minimize)
    _CONTEXT_CACHE[key] = ctx
    while len(_CONTEXT_CACHE) > _CONTEXT_CACHE_MAX:
        _CONTEXT_CACHE.popitem(last=False)
    return ctx


def clear_context_cache() -> None:
    _CONTEXT_CACHE.clear()


class _ModelState:
    """Mutable per-model solve state threaded through the levels."""

    __slots__ = ("cm", "T", "lower", "upper", "budget", "seed", "failed")

    def __init__(self, cm, ctx: SharedContext, max_iterations: int, seed):
        n = cm.num_states
        self.cm = cm
        self.T = interval._rows(cm)
        self.lower = np.full(n, np.inf)
        self.upper = np.full(n, np.inf)
        self.lower[ctx.goal_zero] = 0.0
        self.upper[ctx.goal_zero] = 0.0
        self.lower[ctx.active] = 0.0
        self.budget = interval._Budget(
            max_iterations, "reward iteration did not converge"
        )
        self.seed = seed
        self.failed = False


def _batched_settle(
    lvl: _Level,
    ms: "list[_ModelState]",
    x0s: "list[np.ndarray]",
    bases: "list[np.ndarray]",
    tblocks: "list[sparse.csr_matrix]",
) -> "list[np.ndarray | None]":
    """Lockstep settling prelude over all models of one level.

    Mirrors the ``settle`` closure of :func:`interval._policy_fixpoint`
    op-for-op per model: same budget ticks, same value-only vs greedy
    round cadence, same strict-improvement policy update.  There is no
    data flow between models — stacking only amortizes the matvec and
    reduction calls — so each model's iterate sequence is identical to
    its solo run.  Returns each model's held policy (``None`` where the
    prelude failed to settle, matching solo).
    """
    ns = lvl.states.size
    nc = lvl.own.size
    starts = lvl.argopt_starts
    seg = lvl.argopt_seg
    idxarr = np.arange(nc, dtype=np.int64)
    minimize_red = np.minimum.reduceat

    active = [i for i, m in enumerate(ms) if not m.failed]
    held: "list[np.ndarray | None]" = [None] * len(ms)
    stable = {i: 0 for i in active}
    done: "set[int]" = set()

    if starts is None or starts.size != ns:
        # Solo settling would bail on the first value-only round (the
        # reduction cannot cover every block state); replicate its single
        # budget tick and report failure for every model.
        for i in active:
            try:
                ms[i].budget.tick()
            except interval.NonConvergence:
                ms[i].failed = True
        return held

    def rebuild(models: "list[int]"):
        B = _block_diag_csr([tblocks[i] for i in models])
        Base = np.stack([bases[i] for i in models])
        return B, Base

    # ``lanes`` are the models materialized in the stacked arrays; models
    # retire from ``live`` immediately but their lanes are only compacted
    # once half are dead — a retired lane keeps sweeping into values nobody
    # reads (block-diagonal structure means it cannot influence a live
    # lane), which is cheaper than rebuilding the stack per retirement.
    lanes = list(active)
    live = set(active)
    B, Base = rebuild(lanes)
    X = np.stack([x0s[i] for i in lanes])
    sweeps = 0
    for k in range(interval._PI_PRELUDE_MAX):
        if not live:
            break
        for i in list(live):
            try:
                ms[i].budget.tick()
            except interval.NonConvergence:
                ms[i].failed = True
                live.discard(i)
        if not live:
            break
        if 2 * len(live) <= len(lanes):
            keep = [row for row, i in enumerate(lanes) if i in live]
            lanes = [i for i in lanes if i in live]
            X = X[keep]
            B, Base = rebuild(lanes)
        sweeps += 1
        Q = Base + (B @ X.reshape(-1)).reshape(len(lanes), nc)
        if (k + 1) % interval._PI_PRELUDE_CHECK:
            X = minimize_red(Q, starts, axis=1)
            continue
        Best = minimize_red(Q, starts, axis=1)
        cand = np.where(Q == Best[:, seg], idxarr, nc)
        G = np.minimum.reduceat(cand, starts, axis=1)
        Best = np.take_along_axis(Q, G, axis=1)
        X = Best
        for row, i in enumerate(lanes):
            if i not in live:
                continue
            if held[i] is None:
                held[i] = G[row]
                continue
            cur = Q[row, held[i]]
            margin = interval._CHECK_RTOL * (1.0 + np.abs(cur))
            improve = Best[row] < cur - margin
            if improve.any():
                held[i] = np.where(improve, G[row], held[i])
                stable[i] = 0
            else:
                stable[i] += 1
                if stable[i] >= interval._PI_PRELUDE_STABLE:
                    done.add(i)
                    live.discard(i)
                    if live:
                        perf.incr("vi.batch.retired_early")
    perf.incr("vi.batch.sweeps", sweeps)
    return held


def _solve_level_for_model(
    lvl: _Level,
    m: _ModelState,
    Tl: sparse.csr_matrix,
    rl: np.ndarray,
    target: float,
    epsilon: float,
    minimize: bool,
    presettled,
) -> None:
    interval._solve_reward_level(
        m.lower,
        m.upper,
        lvl.block,
        Tl,
        rl,
        lvl.own,
        m.budget,
        target=target,
        epsilon=epsilon,
        minimize=minimize,
        seed=None,
        presettled=presettled,
    )


def solve_reach_avoid_reward_batch(
    models,
    goal: str = "goal",
    avoid: str = "hazard",
    minimize: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    initial_values=None,
    context: SharedContext | None = None,
) -> "list[ValueResult]":
    """Solve a same-shape family of reward queries in one batched pass.

    Every entry of the returned list is bit-identical — bounds, values,
    choices, iteration counts — to what
    :func:`compiled.solve_reach_avoid_reward` returns for that model and
    seed.  Models the batch cannot handle fall back to exactly that call
    (``vi.batch.fallbacks``), so failure modes (including
    :class:`~repro.modelcheck.interval.NonConvergence`) also match solo
    behavior.  Raises ``ValueError`` when the models do not share a
    structural key — callers bucket by :func:`structural_key` first.
    """
    models = list(models)
    if initial_values is None:
        initial_values = [None] * len(models)
    if len(initial_values) != len(models):
        raise ValueError("initial_values length does not match models")
    if not models:
        return []

    def solo(cm, seed):
        perf.incr("vi.batch.fallbacks")
        return compiled.solve_reach_avoid_reward(
            cm, goal, avoid, minimize=minimize, epsilon=epsilon,
            max_iterations=max_iterations, initial_values=seed,
        )

    keys = [structural_key(cm) for cm in models]
    if len(set(keys)) != 1:
        raise ValueError(
            "batched solve requires a single shape bucket; got "
            f"{len(set(keys))} distinct structural keys"
        )

    perf.incr("vi.batch.solves")
    perf.incr("vi.batch.models", len(models))

    results: "list[ValueResult | None]" = [None] * len(models)
    batchable: "list[int]" = []
    for i, cm in enumerate(models):
        if supports_batching(cm):
            batchable.append(i)
        else:
            results[i] = solo(cm, initial_values[i])
    if not batchable:
        return results
    # A single batchable model still runs the shared-context machinery:
    # the per-epoch win in resynthesis storms is the memoized prob0/prob1
    # and SCC precompute (keyed on support), which the plain solo path
    # would recompute from scratch every call.

    rep = models[batchable[0]]
    if context is None or context.key != keys[batchable[0]] or (
        context.goal != goal or context.avoid != avoid
    ):
        context = reward_context(rep, goal, avoid, minimize)
    ctx = context

    states_list: "list[_ModelState]" = []
    for i in batchable:
        cm = models[i]
        seed = None
        if initial_values[i] is not None:
            seed = compiled._sanitize_reward_seed(
                initial_values[i], cm.num_states
            )
            perf.incr("vi.reward.warm_solves")
        else:
            perf.incr("vi.reward.cold_solves")
        states_list.append(_ModelState(cm, ctx, max_iterations, seed))

    targets = interval._level_targets(epsilon, ctx.num_levels)
    if ctx.active.any():
        for level in range(ctx.num_levels):
            lvl = ctx.levels[level]
            target = float(targets[level])
            live = [m for m in states_list if not m.failed]
            if not live:
                break
            tls = {id(m): lvl.make_tl(m.T, m.cm.num_states) for m in live}
            rls = {id(m): m.cm.choice_reward[lvl.idx] for m in live}

            if not lvl.direct_ok or len(live) == 1:
                # No batched prelude possible (maximization, oversized or
                # degenerate level), or a single live model (nothing to
                # batch) — run the solo per-level body whole.  Either way
                # the shared-context precompute is still amortized.
                for m in live:
                    try:
                        interval._solve_reward_level(
                            m.lower, m.upper, lvl.block, tls[id(m)],
                            rls[id(m)], lvl.own, m.budget, target=target,
                            epsilon=epsilon, minimize=minimize, seed=m.seed,
                        )
                    except interval.NonConvergence:
                        m.failed = True
                continue

            # Seed verification (solo order: before the direct attempt).
            for m in live:
                if m.seed is None:
                    continue
                try:
                    opt = interval._make_opt(
                        lvl.own, m.cm.num_states, not minimize
                    )
                    interval._verify_reward_seed(
                        m.lower, lvl.block,
                        lambda vec, m=m, opt=opt: opt(
                            rls[id(m)] + tls[id(m)] @ vec
                        ),
                        m.seed, epsilon, m.budget,
                    )
                except interval.NonConvergence:
                    m.failed = True
            live = [m for m in live if not m.failed]
            if not live:
                continue

            # Inputs of the settling prelude, exactly as
            # interval._policy_fixpoint derives them.
            x0s, bases, tblocks = [], [], []
            for m in live:
                vals = m.lower.copy()
                certified = np.isfinite(m.upper)
                vals[certified] = 0.5 * (
                    m.lower[certified] + m.upper[certified]
                )
                x0 = vals[lvl.states].copy()
                x0[~np.isfinite(x0)] = 0.0
                vals[lvl.states] = 0.0
                bases.append(rls[id(m)] + tls[id(m)] @ vals)
                x0s.append(x0)
                tblocks.append(lvl.make_tblock(tls[id(m)]))

            held = _batched_settle(
                lvl, live, x0s, bases, tblocks
            )
            for row, m in enumerate(live):
                if m.failed:
                    continue
                try:
                    _solve_level_for_model(
                        lvl, m, tls[id(m)], rls[id(m)], target, epsilon,
                        minimize,
                        (held[row], tblocks[row], bases[row]),
                    )
                except interval.NonConvergence:
                    m.failed = True

    for i, m in zip(batchable, states_list):
        if m.failed:
            results[i] = solo(models[i], initial_values[i])
            continue
        solution = interval.IntervalSolution(
            m.lower, m.upper, m.budget.iterations, ctx.num_levels
        )
        cm = models[i]
        values = np.where(
            np.isfinite(solution.lower) & np.isfinite(solution.upper),
            0.5 * (solution.lower + solution.upper),
            solution.lower,
        )
        remapped = compiled._extract(
            cm, values, ctx.usable, cm.choice_reward, not minimize
        )
        iterations = solution.iterations + 1
        perf.incr("vi.reward.iterations", iterations)
        perf.incr("vi.interval.iters", solution.iterations)
        perf.observe(
            "vi.interval.gap", solution.gap, bounds=compiled.GAP_BUCKETS
        )
        results[i] = ValueResult(
            values=values,
            choice=compiled._to_local(cm, remapped),
            iterations=iterations,
            lower=solution.lower,
            upper=solution.upper,
        )
    return results


#: Probability-objective memo: qualitative sets depend only on support.
_QUAL_CACHE: OrderedDict[tuple, precompute.QualitativeSets] = OrderedDict()
_QUAL_CACHE_MAX = 64


def qualitative_context(
    cm, goal: str, avoid: str, maximize: bool
) -> precompute.QualitativeSets:
    """Memoized qualitative prob0/prob1 sets for a model family."""
    key = (structural_key(cm), goal, avoid, maximize)
    sets = _QUAL_CACHE.get(key)
    if sets is not None:
        _QUAL_CACHE.move_to_end(key)
        perf.incr("vi.batch.precompute.hits")
        return sets
    perf.incr("vi.batch.precompute.misses")
    sets = precompute.qualitative(
        cm, cm.label_mask(goal), cm.label_mask(avoid), maximize
    )
    _QUAL_CACHE[key] = sets
    while len(_QUAL_CACHE) > _QUAL_CACHE_MAX:
        _QUAL_CACHE.popitem(last=False)
    return sets


def solve_reach_avoid_probability_batch(
    models,
    goal: str = "goal",
    avoid: str = "hazard",
    maximize: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    initial_values=None,
) -> "list[ValueResult]":
    """Batched probability queries: shared qualitative precompute.

    Production routing solves reward objectives, so this path stays thin:
    the graph precompute (the shape-dependent half of a probability solve)
    is shared across the family and the numeric interval iteration runs
    per model through the untouched solo code, keeping results trivially
    bit-identical to :func:`compiled.solve_reach_avoid_probability`.
    """
    models = list(models)
    if initial_values is None:
        initial_values = [None] * len(models)
    if len(initial_values) != len(models):
        raise ValueError("initial_values length does not match models")
    if not models:
        return []
    perf.incr("vi.batch.solves")
    perf.incr("vi.batch.models", len(models))
    results = []
    for cm, seed_values in zip(models, initial_values):
        goal_mask = cm.label_mask(goal)
        avoid_mask = cm.label_mask(avoid)
        if np.any(goal_mask & avoid_mask):
            raise ValueError("goal and avoid labels overlap")
        seed = None
        if seed_values is not None:
            seed = compiled._sanitize_probability_seed(
                seed_values, cm.num_states, maximize
            )
            perf.incr("vi.probability.warm_solves")
        else:
            perf.incr("vi.probability.cold_solves")
        if supports_batching(cm):
            sets = qualitative_context(cm, goal, avoid, maximize)
        else:
            sets = precompute.qualitative(
                cm, goal_mask, avoid_mask, maximize
            )
        solution = interval.solve_probability_interval(
            cm, zero=sets.zero, one=sets.one, maximize=maximize,
            epsilon=epsilon, max_iterations=max_iterations, seed=seed,
        )
        values = 0.5 * (solution.lower + solution.upper)
        frozen = goal_mask | avoid_mask
        remapped = compiled._extract(
            cm, values, ~frozen[cm.choice_state], None, maximize
        )
        remapped[frozen] = -1
        iterations = solution.iterations + 1
        perf.incr("vi.probability.iterations", iterations)
        perf.incr("vi.interval.iters", solution.iterations)
        perf.observe(
            "vi.interval.gap", solution.gap, bounds=compiled.GAP_BUCKETS
        )
        results.append(
            ValueResult(
                values=values,
                choice=compiled._to_local(cm, remapped),
                iterations=iterations,
                lower=solution.lower,
                upper=solution.upper,
            )
        )
    return results
