"""Explicit-state probabilistic model checking (the PRISM-games substitute).

Provides the query classes Algorithm 2 sends to the model checker: maximum
reach-avoid probability and minimum expected total reward on MDPs, plus
turn-based stochastic-game values for the full MEDA SMG.
"""

from repro.modelcheck.export import export_prism_explicit, import_prism_explicit
from repro.modelcheck.interval import IntervalSolution, NonConvergence
from repro.modelcheck.games import (
    game_reach_avoid_probability,
    game_reach_avoid_reward,
)
from repro.modelcheck.model import (
    MDP,
    PLAYER_CONTROLLER,
    PLAYER_ENVIRONMENT,
    SMG,
    Choice,
)
from repro.modelcheck.properties import (
    Objective,
    Query,
    ReachAvoid,
    probability_query,
    reward_query,
)
from repro.modelcheck.precompute import QualitativeSets, qualitative
from repro.modelcheck.reachability import (
    ValueResult,
    prob1e,
    qualitative_sets,
    reach_avoid_probability,
    reachable_states,
)
from repro.modelcheck.rewards import reach_avoid_reward
from repro.modelcheck.strategy import MemorylessStrategy, extract_strategy

__all__ = [
    "MDP",
    "PLAYER_CONTROLLER",
    "PLAYER_ENVIRONMENT",
    "SMG",
    "Choice",
    "IntervalSolution",
    "MemorylessStrategy",
    "NonConvergence",
    "Objective",
    "QualitativeSets",
    "Query",
    "ReachAvoid",
    "ValueResult",
    "export_prism_explicit",
    "extract_strategy",
    "game_reach_avoid_probability",
    "game_reach_avoid_reward",
    "import_prism_explicit",
    "prob1e",
    "probability_query",
    "qualitative",
    "qualitative_sets",
    "reach_avoid_probability",
    "reachable_states",
    "reward_query",
]
