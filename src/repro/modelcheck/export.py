"""PRISM explicit-format interchange for the induced models.

The paper runs its synthesis queries through PRISM-games; this module lets
a user cross-validate our solver against a real PRISM installation by
exporting any explicit MDP in PRISM's explicit-import format:

* ``<prefix>.tra`` — transitions: header ``states choices transitions``,
  then one ``src choice dst prob action`` row per probabilistic edge;
* ``<prefix>.lab`` — labels: a header mapping label ids to names
  (``0="init"`` is mandatory in PRISM), then ``state: ids`` rows;
* ``<prefix>.sta`` — state names (one representation string per state).

PRISM usage: ``prism -importtrans model.tra -importlabels model.lab -mdp
-pf 'Pmax=? [ !"hazard" U "goal" ]'``.

A matching importer reads the same three files back, enabling round-trip
tests and the import of models produced by other tools.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.modelcheck.model import MDP


def export_prism_explicit(mdp: MDP, prefix: str | Path) -> dict[str, Path]:
    """Write ``<prefix>.tra/.lab/.sta``; returns the created paths."""
    mdp.validate()
    prefix = Path(prefix)
    prefix.parent.mkdir(parents=True, exist_ok=True)
    paths = {
        "tra": prefix.with_suffix(".tra"),
        "lab": prefix.with_suffix(".lab"),
        "sta": prefix.with_suffix(".sta"),
    }

    lines = [f"{mdp.num_states} {mdp.num_choices} {mdp.num_transitions}"]
    for s in range(mdp.num_states):
        for c_idx, choice in enumerate(mdp.enabled(s)):
            for t, p in choice.successors:
                lines.append(f"{s} {c_idx} {t} {p:.12g} {choice.label}")
    paths["tra"].write_text("\n".join(lines) + "\n")

    label_names = ["init"] + sorted(mdp.labels)
    header = " ".join(f'{i}="{name}"' for i, name in enumerate(label_names))
    rows = [header]
    by_state: dict[int, list[int]] = {}
    assert mdp.initial is not None
    by_state.setdefault(mdp.initial, []).append(0)
    for i, name in enumerate(label_names[1:], start=1):
        for s in mdp.label_set(name):
            by_state.setdefault(s, []).append(i)
    for s in sorted(by_state):
        ids = " ".join(str(i) for i in sorted(by_state[s]))
        rows.append(f"{s}: {ids}")
    paths["lab"].write_text("\n".join(rows) + "\n")

    sta = ["(state)"]
    for s, state in enumerate(mdp.states):
        sta.append(f"{s}:({state!r})")
    paths["sta"].write_text("\n".join(sta) + "\n")
    return paths


def import_prism_explicit(prefix: str | Path) -> MDP:
    """Read a ``.tra``/``.lab`` pair back into an explicit MDP.

    States are reconstructed as their integer indices (the ``.sta`` file is
    informational only); choice rewards are set to 1 per action, matching
    the routing models' cycle reward.
    """
    prefix = Path(prefix)
    tra = prefix.with_suffix(".tra").read_text().splitlines()
    header = tra[0].split()
    n_states = int(header[0])

    mdp = MDP()
    for s in range(n_states):
        mdp.add_state(s)
    # Collect rows per (state, choice) so multi-successor distributions are
    # reassembled before validation.
    grouped: dict[tuple[int, int], tuple[str, list[tuple[int, float]]]] = {}
    for line in tra[1:]:
        if not line.strip():
            continue
        parts = line.split()
        src, choice, dst = int(parts[0]), int(parts[1]), int(parts[2])
        prob = float(parts[3])
        label = parts[4] if len(parts) > 4 else f"c{choice}"
        entry = grouped.setdefault((src, choice), (label, []))
        entry[1].append((dst, prob))
    for (src, _choice), (label, successors) in sorted(grouped.items()):
        mdp.add_choice(src, label, successors, reward=1.0)

    lab = prefix.with_suffix(".lab").read_text().splitlines()
    id_to_name = dict(
        (int(m.group(1)), m.group(2))
        for m in re.finditer(r'(\d+)="([^"]+)"', lab[0])
    )
    for line in lab[1:]:
        if not line.strip():
            continue
        state_part, ids = line.split(":")
        s = int(state_part)
        for token in ids.split():
            name = id_to_name[int(token)]
            if name == "init":
                mdp.set_initial(s)
            else:
                mdp.add_label(name, s)
    if mdp.initial is None:
        raise ValueError(f"{prefix}.lab declares no init state")
    return mdp
