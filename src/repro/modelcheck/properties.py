"""Property layer: labels, the reach-avoid LTL fragment, and queries.

The paper's routing requirement is the LTL formula

    phi: [] (!hazard) && <> goal

over the two state labels *goal* and *hazard* (Sec. VI-C), wrapped in either
a probabilistic query ``Pmax=? [phi]`` or a reward query ``Rmin=? [phi]``.
For this fragment, model checking reduces to constrained reachability:
maximize the probability of reaching a goal state along paths that never
enter a hazard state, or minimize the expected cumulated reward until a goal
state is reached while staying hazard-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Objective(Enum):
    """The query families the synthesizer issues (Sec. VI-C)."""

    PMAX = "Pmax=?"
    PMIN = "Pmin=?"
    RMIN = "Rmin=?"
    RMAX = "Rmax=?"


@dataclass(frozen=True)
class ReachAvoid:
    """The formula ``[] (!avoid) && <> goal`` over two state labels."""

    goal_label: str = "goal"
    avoid_label: str = "hazard"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[] (!{self.avoid_label}) && <> {self.goal_label}"


@dataclass(frozen=True)
class Query:
    """A synthesis query: an objective over a reach-avoid formula.

    ``phi_p`` of the paper is ``Query(Objective.PMAX, ReachAvoid())``;
    ``phi_r`` is ``Query(Objective.RMIN, ReachAvoid())`` with the per-action
    cycle reward attached to the model's choices.
    """

    objective: Objective
    formula: ReachAvoid = ReachAvoid()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.objective.value} [ {self.formula} ]"


def probability_query(goal: str = "goal", avoid: str = "hazard") -> Query:
    """The paper's ``phi_p: Pmax=? [ [] !hazard && <> goal ]``."""
    return Query(Objective.PMAX, ReachAvoid(goal, avoid))


def reward_query(goal: str = "goal", avoid: str = "hazard") -> Query:
    """The paper's ``phi_r: Rmin=? [ [] !hazard && <> goal ]``."""
    return Query(Objective.RMIN, ReachAvoid(goal, avoid))
