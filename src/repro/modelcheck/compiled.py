"""Vectorized solvers over a compiled (array-form) MDP.

The explicit :class:`~repro.modelcheck.model.MDP` is convenient to build but
slow to iterate in pure Python.  For the synthesis workload (hundreds of
value-iteration solves per bioassay execution) the model is compiled once
into flat numpy/scipy-sparse arrays:

* ``choice_state[c]`` — owner state of choice ``c`` (choices are grouped by
  state in construction order);
* ``choice_reward[c]`` — reward of choice ``c``;
* ``transitions`` — a ``(num_choices, num_states)`` CSR matrix of successor
  probabilities.

One Jacobi value-iteration sweep is then a sparse mat-vec plus a scatter
min/max — microseconds instead of milliseconds.  The pure-Python solvers in
:mod:`repro.modelcheck.reachability` / :mod:`repro.modelcheck.rewards` remain
as reference implementations; the unit tests check agreement between the two
on randomized models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro import perf
from repro.modelcheck.model import MDP
from repro.modelcheck.reachability import (
    DEFAULT_EPSILON,
    DEFAULT_MAX_ITERATIONS,
    ValueResult,
)


@dataclass(frozen=True)
class CompiledMDP:
    """Array form of an explicit MDP (see module docstring)."""

    num_states: int
    choice_state: np.ndarray
    choice_reward: np.ndarray
    transitions: sparse.csr_matrix
    labels: dict[str, np.ndarray]
    initial: int
    _first_choice_cache: list = field(
        default_factory=list, repr=False, compare=False
    )

    @property
    def num_choices(self) -> int:
        return int(self.choice_state.size)

    def label_mask(self, name: str) -> np.ndarray:
        """Boolean state mask for a label (all-false when unused)."""
        if name in self.labels:
            return self.labels[name]
        return np.zeros(self.num_states, dtype=bool)

    def first_choice(self) -> np.ndarray:
        """Index of each state's first choice (choices are state-grouped).

        Computed once per model and reused by every strategy extraction and
        local-index conversion instead of re-running bincount/cumsum per
        call.
        """
        if not self._first_choice_cache:
            first = np.zeros(self.num_states, dtype=np.int64)
            counts = np.bincount(self.choice_state, minlength=self.num_states)
            first[1:] = np.cumsum(counts)[:-1]
            self._first_choice_cache.append(first)
        return self._first_choice_cache[0]


def compile_mdp(mdp: MDP) -> CompiledMDP:
    """Flatten an explicit MDP into arrays for the vectorized solvers."""
    if mdp.initial is None:
        raise ValueError("model has no initial state")
    n = mdp.num_states
    choice_state: list[int] = []
    choice_reward: list[float] = []
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    c_idx = 0
    for s in range(n):
        for choice in mdp.enabled(s):
            choice_state.append(s)
            choice_reward.append(choice.reward)
            for t, p in choice.successors:
                rows.append(c_idx)
                cols.append(t)
                vals.append(p)
            c_idx += 1
    transitions = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(max(c_idx, 1), n)
    )
    labels = {
        name: _mask(n, members) for name, members in mdp.labels.items()
    }
    return CompiledMDP(
        num_states=n,
        choice_state=np.asarray(choice_state, dtype=np.int64),
        choice_reward=np.asarray(choice_reward, dtype=float),
        transitions=transitions,
        labels=labels,
        initial=mdp.initial,
    )


def _mask(n: int, members: set[int]) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    mask[list(members)] = True
    return mask


def _scatter_opt(
    owners: np.ndarray, q: np.ndarray, n: int, maximize: bool
) -> np.ndarray:
    """Per-state optimum of per-choice values ``q`` (NaN for choiceless)."""
    out = np.full(n, -np.inf if maximize else np.inf)
    if maximize:
        np.maximum.at(out, owners, q)
    else:
        np.minimum.at(out, owners, q)
    return out


def _argopt_choice(
    owners: np.ndarray, q: np.ndarray, per_state: np.ndarray, n: int
) -> np.ndarray:
    """First choice index per state achieving its optimal value.

    Fully vectorized: among the choices whose value matches the owner's
    optimum, ``np.unique(..., return_index=True)`` picks the first
    occurrence per state (``hit`` indices are scanned in ascending choice
    order, so the first occurrence is the lowest matching choice index).
    """
    choice = np.full(n, -1, dtype=np.int64)
    hit = np.isclose(q, per_state[owners], rtol=0.0, atol=1e-12) | (
        q == per_state[owners]
    )
    idx = np.flatnonzero(hit)
    states, first = np.unique(owners[idx], return_index=True)
    choice[states] = idx[first]
    return choice


def solve_reach_avoid_probability(
    cm: CompiledMDP,
    goal: str = "goal",
    avoid: str = "hazard",
    maximize: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    initial_values: np.ndarray | None = None,
) -> ValueResult:
    """Vectorized ``Pmax``/``Pmin`` of ``[] !avoid && <> goal``.

    ``initial_values`` warm-starts value iteration.  Because the objective
    is a *least* fixpoint (``Pmax``) / *greatest* fixpoint (``Pmin``) of
    the Bellman operator, the seed must bound the true values from the
    iteration's side — pointwise **below** for ``maximize=True``, above
    for ``maximize=False`` — or the iteration may stall on a spurious
    fixpoint (e.g. a self-loop holding a stale probability).  Values are
    clipped to ``[0, 1]`` and goal/avoid states are re-pinned; seeds for
    those states are ignored.
    """
    goal_mask = cm.label_mask(goal)
    avoid_mask = cm.label_mask(avoid)
    if np.any(goal_mask & avoid_mask):
        raise ValueError("goal and avoid labels overlap")
    n = cm.num_states
    frozen = goal_mask | avoid_mask
    values = np.where(goal_mask, 1.0, 0.0)
    if initial_values is not None:
        seed = np.clip(np.nan_to_num(np.asarray(initial_values, dtype=float),
                                     nan=0.0, posinf=1.0, neginf=0.0), 0.0, 1.0)
        values = np.where(frozen, values, seed)
        perf.incr("vi.probability.warm_solves")
    else:
        perf.incr("vi.probability.cold_solves")
    owners = cm.choice_state
    live = ~frozen[owners]  # choices of non-frozen states

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        q = cm.transitions @ values
        per_state = _scatter_opt(owners[live], q[live], n, maximize)
        updatable = np.isfinite(per_state) & ~frozen
        delta = np.max(np.abs(per_state[updatable] - values[updatable])) if updatable.any() else 0.0
        values[updatable] = per_state[updatable]
        if delta < epsilon:
            break
    else:  # pragma: no cover
        raise RuntimeError("value iteration did not converge")
    perf.incr("vi.probability.iterations", iterations)

    q = cm.transitions @ values
    per_state = _scatter_opt(owners[live], q[live], n, maximize)
    choice = _argopt_choice(owners[live], q[live], per_state, n)
    # Remap the choice indices (positions within the live subset) back to
    # global choice numbering.
    live_idx = np.flatnonzero(live)
    remapped = np.full(n, -1, dtype=np.int64)
    has = choice >= 0
    remapped[has] = live_idx[choice[has]]
    remapped[frozen] = -1
    return ValueResult(values=values, choice=_to_local(cm, remapped), iterations=iterations)


def solve_prob1e(
    cm: CompiledMDP, goal: str = "goal", avoid: str = "hazard"
) -> np.ndarray:
    """Boolean mask of states with a strategy reaching ``goal`` w.p. 1.

    Vectorized nested fixpoint ``nu Z. mu Y. goal | Pre(Z, Y)`` using the
    boolean structure of the transition matrix.
    """
    goal_mask = cm.label_mask(goal)
    avoid_mask = cm.label_mask(avoid)
    n = cm.num_states
    owners = cm.choice_state
    has_choice = np.zeros(n, dtype=bool)
    has_choice[owners] = True
    struct_t = (cm.transitions > 0).astype(np.int8)

    z = ~avoid_mask & (goal_mask | has_choice)
    while True:
        y = goal_mask & z
        while True:
            # A choice is "safe" when all successors stay in z, "progressive"
            # when some successor is already in y.
            leaves_z = (struct_t @ (~z).astype(np.int8)) > 0
            hits_y = (struct_t @ y.astype(np.int8)) > 0
            good_choice = (~leaves_z) & hits_y & z[owners]
            new_y = y.copy()
            np.logical_or.at(new_y, owners[good_choice], True)
            new_y &= z
            new_y |= goal_mask & z
            if np.array_equal(new_y, y):
                break
            y = new_y
        if np.array_equal(y, z):
            return z
        z = y


def solve_reach_avoid_reward(
    cm: CompiledMDP,
    goal: str = "goal",
    avoid: str = "hazard",
    minimize: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    initial_values: np.ndarray | None = None,
) -> ValueResult:
    """Vectorized ``Rmin``/``Rmax`` of cumulated reward until ``goal``.

    States outside the probability-one region get ``inf`` (PRISM total-reward
    semantics); the iteration is restricted to choices that stay inside it.

    ``initial_values`` warm-starts value iteration for the active states;
    goal states and states outside the probability-one region keep their
    pinned values regardless of the seed.  For ``Rmin`` (a stochastic
    shortest path with strictly positive cycle rewards, restricted to the
    prob-1 region where a proper policy exists) value iteration converges
    from *any* non-negative seed, so re-solving after a small model change
    from the previous fixpoint is sound and typically takes a handful of
    sweeps instead of hundreds.
    """
    goal_mask = cm.label_mask(goal)
    sure = solve_prob1e(cm, goal=goal, avoid=avoid)
    n = cm.num_states
    owners = cm.choice_state
    struct_t = (cm.transitions > 0).astype(np.int8)
    stays = (struct_t @ (~sure).astype(np.int8)) == 0  # all successors in `sure`
    usable = stays & sure[owners] & ~goal_mask[owners]

    values = np.full(n, np.inf)
    values[goal_mask & sure] = 0.0
    active = np.zeros(n, dtype=bool)
    active[owners[usable]] = True
    values[active] = 0.0
    if initial_values is not None:
        seed = np.nan_to_num(np.asarray(initial_values, dtype=float),
                             nan=0.0, posinf=0.0, neginf=0.0)
        values[active] = np.maximum(seed[active], 0.0)
        perf.incr("vi.reward.warm_solves")
    else:
        perf.incr("vi.reward.cold_solves")

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        q = cm.choice_reward + cm.transitions @ values
        per_state = _scatter_opt(owners[usable], q[usable], n, maximize=not minimize)
        delta = (
            np.max(np.abs(per_state[active] - values[active])) if active.any() else 0.0
        )
        values[active] = per_state[active]
        if delta < epsilon:
            break
    else:  # pragma: no cover
        raise RuntimeError("reward iteration did not converge")
    perf.incr("vi.reward.iterations", iterations)

    q = cm.choice_reward + cm.transitions @ values
    per_state = _scatter_opt(owners[usable], q[usable], n, maximize=not minimize)
    choice = _argopt_choice(owners[usable], q[usable], per_state, n)
    usable_idx = np.flatnonzero(usable)
    remapped = np.full(n, -1, dtype=np.int64)
    has = choice >= 0
    remapped[has] = usable_idx[choice[has]]
    return ValueResult(values=values, choice=_to_local(cm, remapped), iterations=iterations)


def _to_local(cm: CompiledMDP, global_choice: np.ndarray) -> np.ndarray:
    """Convert global choice indices to per-state (local) choice indices.

    :class:`ValueResult` stores the index of the optimal choice *within* the
    owning state's choice list, matching the reference solvers.
    """
    n = cm.num_states
    first_choice = cm.first_choice()
    local = np.full(n, -1, dtype=np.int64)
    has = global_choice >= 0
    states = np.flatnonzero(has)
    local[states] = global_choice[states] - first_choice[states]
    return local
