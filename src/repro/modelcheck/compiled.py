"""Vectorized solvers over a compiled (array-form) MDP.

The explicit :class:`~repro.modelcheck.model.MDP` is convenient to build but
slow to iterate in pure Python.  For the synthesis workload (hundreds of
value-iteration solves per bioassay execution) the model is compiled once
into flat numpy/scipy-sparse arrays:

* ``choice_state[c]`` — owner state of choice ``c`` (choices are grouped by
  state in construction order);
* ``choice_reward[c]`` — reward of choice ``c``;
* ``transitions`` — a ``(num_choices, num_states)`` CSR matrix of successor
  probabilities.

Solving is a *sound* three-stage pipeline (see :mod:`.precompute` and
:mod:`.interval`):

1. **qualitative precomputation** pins every state whose value is exactly
   0 or 1 from the graph alone (``prob0``/``prob1`` under both ``Pmax``
   and ``Pmin`` semantics), which both removes the non-contracting end
   components that made plain ``Pmin`` iteration diverge and gives the
   numeric stage a unique fixpoint;
2. **interval value iteration** brackets the remaining states between a
   monotone lower and upper iterate, so every :class:`ValueResult` carries
   certified ``lower``/``upper`` arrays with ``gap <= epsilon``;
3. **topological SCC ordering** solves the unknown region one condensation
   level at a time, successors first.

Warm-start seeds are *validated*, not trusted: values outside the
documented bound raise ``ValueError``, non-finite entries are filled with
the side-correct neutral value (0 for a lower/least-fixpoint side, 1 for
the ``Pmin`` upper side), and the surviving candidate is accepted only if
one Bellman application confirms it bounds the fixpoint from its side
(rejections cold-start and count as ``vi.warm.rejected``).

The pure-Python solvers in :mod:`repro.modelcheck.reachability` /
:mod:`repro.modelcheck.rewards` remain as reference implementations; the
unit tests check agreement between the two on randomized models.
``certified=False`` switches to the legacy single-sided sweep loop — kept
only as the ablation baseline for ``benchmarks/bench_interval.py``; its
stopping criterion proves nothing about the true error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro import perf
from repro.modelcheck import interval, precompute
from repro.modelcheck.model import MDP
from repro.modelcheck.reachability import (
    DEFAULT_EPSILON,
    DEFAULT_MAX_ITERATIONS,
    ValueResult,
)


@dataclass(frozen=True)
class CompiledMDP:
    """Array form of an explicit MDP (see module docstring)."""

    num_states: int
    choice_state: np.ndarray
    choice_reward: np.ndarray
    transitions: sparse.csr_matrix
    labels: dict[str, np.ndarray]
    initial: int
    _first_choice_cache: list = field(
        default_factory=list, repr=False, compare=False
    )
    _digest_cache: list = field(
        default_factory=list, repr=False, compare=False
    )

    @property
    def num_choices(self) -> int:
        return int(self.choice_state.size)

    def label_mask(self, name: str) -> np.ndarray:
        """Boolean state mask for a label (all-false when unused)."""
        if name in self.labels:
            return self.labels[name]
        return np.zeros(self.num_states, dtype=bool)

    def first_choice(self) -> np.ndarray:
        """Index of each state's first choice (choices are state-grouped).

        Computed once per model and reused by every strategy extraction and
        local-index conversion instead of re-running bincount/cumsum per
        call.
        """
        if not self._first_choice_cache:
            first = np.zeros(self.num_states, dtype=np.int64)
            counts = np.bincount(self.choice_state, minlength=self.num_states)
            first[1:] = np.cumsum(counts)[:-1]
            self._first_choice_cache.append(first)
        return self._first_choice_cache[0]


def compile_mdp(mdp: MDP) -> CompiledMDP:
    """Flatten an explicit MDP into arrays for the vectorized solvers."""
    if mdp.initial is None:
        raise ValueError("model has no initial state")
    n = mdp.num_states
    choice_state: list[int] = []
    choice_reward: list[float] = []
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    c_idx = 0
    for s in range(n):
        for choice in mdp.enabled(s):
            choice_state.append(s)
            choice_reward.append(choice.reward)
            for t, p in choice.successors:
                rows.append(c_idx)
                cols.append(t)
                vals.append(p)
            c_idx += 1
    transitions = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(max(c_idx, 1), n)
    )
    labels = {
        name: _mask(n, members) for name, members in mdp.labels.items()
    }
    return CompiledMDP(
        num_states=n,
        choice_state=np.asarray(choice_state, dtype=np.int64),
        choice_reward=np.asarray(choice_reward, dtype=float),
        transitions=transitions,
        labels=labels,
        initial=mdp.initial,
    )


def _mask(n: int, members: set[int]) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    mask[list(members)] = True
    return mask


def _scatter_opt(
    owners: np.ndarray, q: np.ndarray, n: int, maximize: bool
) -> np.ndarray:
    """Per-state optimum of per-choice values ``q`` (±inf for choiceless)."""
    out = np.full(n, -np.inf if maximize else np.inf)
    if maximize:
        np.maximum.at(out, owners, q)
    else:
        np.minimum.at(out, owners, q)
    return out


def _argopt_choice(
    owners: np.ndarray, q: np.ndarray, per_state: np.ndarray, n: int
) -> np.ndarray:
    """First choice index per state achieving its optimal value.

    Fully vectorized: among the choices whose value matches the owner's
    optimum, ``np.unique(..., return_index=True)`` picks the first
    occurrence per state (``hit`` indices are scanned in ascending choice
    order, so the first occurrence is the lowest matching choice index).
    """
    choice = np.full(n, -1, dtype=np.int64)
    hit = np.isclose(q, per_state[owners], rtol=0.0, atol=1e-12) | (
        q == per_state[owners]
    )
    idx = np.flatnonzero(hit)
    states, first = np.unique(owners[idx], return_index=True)
    choice[states] = idx[first]
    return choice


def _sanitize_probability_seed(
    initial_values: np.ndarray, n: int, maximize: bool
) -> np.ndarray:
    """Validate a probability warm-start seed.

    Finite entries must respect the documented ``[0, 1]`` bound (a gross
    violation raises instead of being silently clipped — it means the
    caller handed values from the wrong query).  Non-finite entries are
    filled *side-correctly*: 0 for the ``Pmax`` lower side, 1 for the
    ``Pmin`` upper side — a 0-fill under ``Pmin`` would sit below the
    greatest fixpoint and stall the old one-sided iteration on a spurious
    fixpoint.
    """
    seed = np.asarray(initial_values, dtype=float)
    if seed.shape != (n,):
        raise ValueError(
            f"warm-start seed has shape {seed.shape}, expected ({n},)"
        )
    finite = np.isfinite(seed)
    if bool(np.any(finite & ((seed < -1e-9) | (seed > 1.0 + 1e-9)))):
        raise ValueError(
            "probability warm-start seed has entries outside [0, 1]"
        )
    fill = 0.0 if maximize else 1.0
    return np.where(finite, np.clip(seed, 0.0, 1.0), fill)


def _sanitize_reward_seed(initial_values: np.ndarray, n: int) -> np.ndarray:
    """Validate a reward warm-start seed (lower side: non-negative)."""
    seed = np.asarray(initial_values, dtype=float)
    if seed.shape != (n,):
        raise ValueError(
            f"warm-start seed has shape {seed.shape}, expected ({n},)"
        )
    finite = np.isfinite(seed)
    if bool(np.any(finite & (seed < -1e-9))):
        raise ValueError("reward warm-start seed has negative entries")
    return np.where(finite, np.maximum(seed, 0.0), 0.0)


def _extract(
    cm: CompiledMDP,
    values: np.ndarray,
    choice_mask: np.ndarray,
    rewards: np.ndarray | None,
    maximize: bool,
) -> np.ndarray:
    """Greedy strategy (global choice indices) from converged values."""
    n = cm.num_states
    owners = cm.choice_state
    t = cm.transitions
    if t.shape[0] != cm.num_choices:
        t = t[: cm.num_choices]
    q = t @ values
    if rewards is not None:
        q = rewards + q
    per_state = _scatter_opt(owners[choice_mask], q[choice_mask], n, maximize)
    choice = _argopt_choice(owners[choice_mask], q[choice_mask], per_state, n)
    mask_idx = np.flatnonzero(choice_mask)
    remapped = np.full(n, -1, dtype=np.int64)
    has = choice >= 0
    remapped[has] = mask_idx[choice[has]]
    return remapped


def solve_reach_avoid_probability(
    cm: CompiledMDP,
    goal: str = "goal",
    avoid: str = "hazard",
    maximize: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    initial_values: np.ndarray | None = None,
    certified: bool = True,
) -> ValueResult:
    """Vectorized ``Pmax``/``Pmin`` of ``[] !avoid && <> goal``.

    The default pipeline is sound: qualitative precomputation pins the
    exact-0/exact-1 states, then interval value iteration brackets the rest
    between monotone bounds, so the result's ``lower``/``upper`` satisfy
    ``lower <= P <= upper`` pointwise with ``max(upper - lower) <= epsilon``
    and ``values`` is their midpoint (within ``epsilon/2`` of the truth).

    ``initial_values`` warm-starts the contracting side (lower for
    ``Pmax``, upper for ``Pmin``).  Seeds are validated: finite entries
    outside ``[0, 1]`` raise ``ValueError``; non-finite entries fill
    side-correctly; the candidate (relaxed by ``epsilon`` toward its side)
    is kept only when one Bellman application confirms it bounds the
    fixpoint, otherwise the solve silently cold-starts
    (``vi.warm.rejected``).

    ``certified=False`` runs the legacy single-sided sweep loop (no
    precomputation, no bounds) — ablation use only; it diverges on models
    with goal-dodging end components (hypothesis seed 1186).
    """
    goal_mask = cm.label_mask(goal)
    avoid_mask = cm.label_mask(avoid)
    if np.any(goal_mask & avoid_mask):
        raise ValueError("goal and avoid labels overlap")
    n = cm.num_states
    seed: np.ndarray | None = None
    if initial_values is not None:
        seed = _sanitize_probability_seed(initial_values, n, maximize)
        perf.incr("vi.probability.warm_solves")
    else:
        perf.incr("vi.probability.cold_solves")

    if not certified:
        return _solve_probability_plain(
            cm, goal_mask, avoid_mask, maximize, epsilon, max_iterations, seed
        )

    sets = precompute.qualitative(cm, goal_mask, avoid_mask, maximize)
    solution = interval.solve_probability_interval(
        cm,
        zero=sets.zero,
        one=sets.one,
        maximize=maximize,
        epsilon=epsilon,
        max_iterations=max_iterations,
        seed=seed,
    )
    values = 0.5 * (solution.lower + solution.upper)
    frozen = goal_mask | avoid_mask
    remapped = _extract(cm, values, ~frozen[cm.choice_state], None, maximize)
    remapped[frozen] = -1
    # The extraction Bellman application counts as an iteration, so even a
    # fully precomputed solve reports >= 1.
    iterations = solution.iterations + 1
    perf.incr("vi.probability.iterations", iterations)
    perf.incr("vi.interval.iters", solution.iterations)
    perf.observe("vi.interval.gap", solution.gap, bounds=GAP_BUCKETS)
    return ValueResult(
        values=values,
        choice=_to_local(cm, remapped),
        iterations=iterations,
        lower=solution.lower,
        upper=solution.upper,
    )


def _solve_probability_plain(
    cm: CompiledMDP,
    goal_mask: np.ndarray,
    avoid_mask: np.ndarray,
    maximize: bool,
    epsilon: float,
    max_iterations: int,
    seed: np.ndarray | None,
) -> ValueResult:
    """Legacy one-sided sweep loop (uncertified; ablation baseline).

    Keeps the satellite fixes — side-correct seed fill happens in
    :func:`_sanitize_probability_seed` and trap states (no live choice) are
    pinned to 0 instead of retaining stale seed values behind the
    ``isfinite`` scatter mask — but its ``delta < epsilon`` stop is still
    only a heuristic and it diverges on goal-dodging end components.
    """
    n = cm.num_states
    frozen = goal_mask | avoid_mask
    owners = cm.choice_state
    live = ~frozen[owners]
    has_live = np.zeros(n, dtype=bool)
    has_live[owners[live]] = True
    trap = ~has_live & ~frozen  # pinned to 0: the run can never reach goal

    values = np.where(goal_mask, 1.0, 0.0)
    if seed is not None:
        values = np.where(frozen | trap, values, seed)

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        q = cm.transitions @ values
        per_state = _scatter_opt(owners[live], q[live], n, maximize)
        updatable = np.isfinite(per_state) & ~frozen
        delta = (
            np.max(np.abs(per_state[updatable] - values[updatable]))
            if updatable.any()
            else 0.0
        )
        values[updatable] = per_state[updatable]
        if delta < epsilon:
            break
    else:
        raise interval.NonConvergence("value iteration did not converge")
    perf.incr("vi.probability.iterations", iterations)

    remapped = _extract(cm, values, live, None, maximize)
    remapped[frozen] = -1
    return ValueResult(
        values=values, choice=_to_local(cm, remapped), iterations=iterations
    )


def solve_prob1e(
    cm: CompiledMDP, goal: str = "goal", avoid: str = "hazard"
) -> np.ndarray:
    """Boolean mask of states with a strategy reaching ``goal`` w.p. 1.

    Thin wrapper over :func:`repro.modelcheck.precompute.prob1e_mask` (the
    vectorized nested fixpoint ``nu Z. mu Y. goal | Pre(Z, Y)``), kept for
    API compatibility.
    """
    return precompute.prob1e_mask(
        cm, cm.label_mask(goal), cm.label_mask(avoid)
    )


def _reward_region(
    cm: CompiledMDP, goal_mask: np.ndarray, avoid_mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(goal_zero, active, usable)`` for total-reward solving.

    ``usable`` restricts to choices whose support stays inside the
    probability-one region (PRISM total-reward semantics: any chance of
    leaving it means reward accrues forever on the non-reaching runs).
    """
    sure = precompute.prob1e_mask(cm, goal_mask, avoid_mask)
    n = cm.num_states
    owners = cm.choice_state
    struct = precompute.structure(cm)
    stays = (struct @ (~sure).astype(np.int8)) == 0
    usable = stays & sure[owners] & ~goal_mask[owners]
    active = np.zeros(n, dtype=bool)
    active[owners[usable]] = True
    return goal_mask & sure, active, usable


def solve_reach_avoid_reward(
    cm: CompiledMDP,
    goal: str = "goal",
    avoid: str = "hazard",
    minimize: bool = True,
    epsilon: float = DEFAULT_EPSILON,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    initial_values: np.ndarray | None = None,
    certified: bool = True,
) -> ValueResult:
    """Vectorized ``Rmin``/``Rmax`` of cumulated reward until ``goal``.

    States outside the probability-one region get ``inf`` (PRISM
    total-reward semantics); the iteration is restricted to choices that
    stay inside it.  The default pipeline certifies the finite values with
    optimistic value iteration: ``lower <= R <= upper`` pointwise with
    ``max(upper - lower) <= epsilon`` over the finite region, and
    ``values`` is the midpoint.

    ``initial_values`` warm-starts the lower iterate.  Negative finite
    entries raise ``ValueError``; non-finite entries fill with 0 (the sound
    lower start); the candidate (relaxed down by ``epsilon``) is verified
    per SCC level with a Bellman application and dropped where it fails
    (``vi.warm.rejected``).  Goal states and states outside the prob-1
    region keep their pinned values regardless of the seed.
    """
    goal_mask = cm.label_mask(goal)
    avoid_mask = cm.label_mask(avoid)
    n = cm.num_states
    seed: np.ndarray | None = None
    if initial_values is not None:
        seed = _sanitize_reward_seed(initial_values, n)
        perf.incr("vi.reward.warm_solves")
    else:
        perf.incr("vi.reward.cold_solves")

    goal_zero, active, usable = _reward_region(cm, goal_mask, avoid_mask)

    if not certified:
        return _solve_reward_plain(
            cm, goal_zero, active, usable, minimize, epsilon,
            max_iterations, seed,
        )

    solution = interval.solve_reward_interval(
        cm,
        goal_zero=goal_zero,
        active=active,
        usable=usable,
        minimize=minimize,
        epsilon=epsilon,
        max_iterations=max_iterations,
        seed=seed,
    )
    values = np.where(
        np.isfinite(solution.lower) & np.isfinite(solution.upper),
        0.5 * (solution.lower + solution.upper),
        solution.lower,
    )
    remapped = _extract(cm, values, usable, cm.choice_reward, not minimize)
    iterations = solution.iterations + 1
    perf.incr("vi.reward.iterations", iterations)
    perf.incr("vi.interval.iters", solution.iterations)
    perf.observe("vi.interval.gap", solution.gap, bounds=GAP_BUCKETS)
    return ValueResult(
        values=values,
        choice=_to_local(cm, remapped),
        iterations=iterations,
        lower=solution.lower,
        upper=solution.upper,
    )


def _solve_reward_plain(
    cm: CompiledMDP,
    goal_zero: np.ndarray,
    active: np.ndarray,
    usable: np.ndarray,
    minimize: bool,
    epsilon: float,
    max_iterations: int,
    seed: np.ndarray | None,
) -> ValueResult:
    """Legacy one-sided reward sweep loop (uncertified; ablation baseline)."""
    n = cm.num_states
    owners = cm.choice_state
    values = np.full(n, np.inf)
    values[goal_zero] = 0.0
    values[active] = 0.0
    if seed is not None:
        values[active] = seed[active]

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        q = cm.choice_reward + cm.transitions @ values
        per_state = _scatter_opt(
            owners[usable], q[usable], n, maximize=not minimize
        )
        delta = (
            np.max(np.abs(per_state[active] - values[active]))
            if active.any()
            else 0.0
        )
        values[active] = per_state[active]
        if delta < epsilon:
            break
    else:
        raise interval.NonConvergence("reward iteration did not converge")
    perf.incr("vi.reward.iterations", iterations)

    remapped = _extract(cm, values, usable, cm.choice_reward, not minimize)
    return ValueResult(
        values=values, choice=_to_local(cm, remapped), iterations=iterations
    )


#: Histogram buckets for certified-gap observations (``vi.interval.gap``).
GAP_BUCKETS = (1e-12, 1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-2, 1.0)


def _to_local(cm: CompiledMDP, global_choice: np.ndarray) -> np.ndarray:
    """Convert global choice indices to per-state (local) choice indices.

    :class:`ValueResult` stores the index of the optimal choice *within* the
    owning state's choice list, matching the reference solvers.
    """
    n = cm.num_states
    first_choice = cm.first_choice()
    local = np.full(n, -1, dtype=np.int64)
    has = global_choice >= 0
    states = np.flatnonzero(has)
    local[states] = global_choice[states] - first_choice[states]
    return local
