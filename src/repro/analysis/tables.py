"""Plain-text rendering of the reproduction's tables and figure series.

The benchmark harness prints the same rows/series the paper reports; this
module keeps the formatting in one place so every bench looks alike and
EXPERIMENTS.md can quote the output verbatim.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """A fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """A figure-style data block: one x column, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [vals[i] for vals in series.values()])
    return format_table(headers, rows, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if cell == float("inf"):
            return "inf"
        return f"{cell:.3f}"
    return str(cell)
