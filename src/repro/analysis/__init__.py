"""Experiment analytics: correlations, PoS/cycle metrics, table rendering."""

from repro.analysis.correlation import (
    CorrelationCurve,
    correlation_vs_distance,
    pairwise_correlation,
)
from repro.analysis.render import (
    render_actuation,
    render_degradation,
    render_health,
    render_route,
)
from repro.analysis.metrics import (
    PoSResult,
    TrialResult,
    chip_factory_for,
    probability_of_success,
    run_execution,
    trial_cycles,
)
from repro.analysis.tables import format_series, format_table
from repro.analysis.wear import (
    remaining_lifetime,
    wear_concentration,
    wear_gini,
    wear_histogram,
)

__all__ = [
    "CorrelationCurve",
    "PoSResult",
    "TrialResult",
    "chip_factory_for",
    "correlation_vs_distance",
    "format_series",
    "format_table",
    "pairwise_correlation",
    "probability_of_success",
    "render_actuation",
    "render_degradation",
    "render_health",
    "render_route",
    "remaining_lifetime",
    "run_execution",
    "trial_cycles",
    "wear_concentration",
    "wear_gini",
    "wear_histogram",
]
