"""Actuation-correlation analysis (Sec. III-C, Fig. 3).

For a recorded bioassay execution, computes the correlation coefficient
between the Boolean actuation vectors of MC pairs as a function of the
Manhattan distance between them:

    rho(A_ij, A_kl) = cov(A_ij, A_kl) / (sigma_ij * sigma_kl)

The paper's finding: adjacent MCs have strongly correlated actuation
histories (droplets actuate MCs in clusters), the correlation falls off with
distance, and larger droplets keep it higher — implying wear-induced faults
appear in clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CorrelationCurve:
    """Mean pairwise actuation correlation per Manhattan distance."""

    distances: np.ndarray
    mean_correlation: np.ndarray
    num_pairs: np.ndarray

    def as_dict(self) -> dict[int, float]:
        return {
            int(d): float(c)
            for d, c in zip(self.distances, self.mean_correlation)
        }


def pairwise_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation between two Boolean actuation vectors.

    Returns ``nan`` when either vector is constant (zero variance) — such
    MCs (never or always actuated) carry no pattern information and are
    excluded from the Fig. 3 averages.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("actuation vectors must be 1-D and equal-length")
    sa, sb = a.std(), b.std()
    if sa == 0.0 or sb == 0.0:
        return float("nan")
    return float(((a - a.mean()) * (b - b.mean())).mean() / (sa * sb))


def correlation_vs_distance(
    vectors: np.ndarray,
    distances: list[int],
    max_pairs_per_distance: int = 4000,
    rng: np.random.Generator | None = None,
    min_activity: float = 0.0,
) -> CorrelationCurve:
    """Mean actuation correlation at each Manhattan distance.

    ``vectors`` is the recorder's ``(W, H, N)`` stack.  MCs that were never
    actuated (or actuated in fewer than ``min_activity`` of the cycles) are
    excluded — the chip's idle periphery would otherwise dominate the
    average with undefined correlations.  For tractability, at most
    ``max_pairs_per_distance`` pairs are sampled per distance (the estimate
    is an average, so subsampling only adds noise).
    """
    if vectors.ndim != 3:
        raise ValueError("vectors must have shape (W, H, N)")
    rng = rng if rng is not None else np.random.default_rng(0)
    width, height, n_cycles = vectors.shape
    activity = vectors.mean(axis=2)
    active = [
        (i, j)
        for i in range(width)
        for j in range(height)
        if activity[i, j] > min_activity and activity[i, j] < 1.0
    ]
    flat = vectors.reshape(width * height, n_cycles).astype(float)
    means = flat.mean(axis=1)
    stds = flat.std(axis=1)
    centered = flat - means[:, None]

    mean_corr: list[float] = []
    pair_counts: list[int] = []
    for d in distances:
        pairs = _pairs_at_distance(active, d)
        if len(pairs) > max_pairs_per_distance:
            idx = rng.choice(len(pairs), size=max_pairs_per_distance, replace=False)
            pairs = [pairs[i] for i in idx]
        correlations: list[float] = []
        for (i0, j0), (i1, j1) in pairs:
            k0, k1 = i0 * height + j0, i1 * height + j1
            denom = stds[k0] * stds[k1]
            if denom == 0.0:
                continue
            rho = float((centered[k0] * centered[k1]).mean() / denom)
            correlations.append(rho)
        mean_corr.append(float(np.mean(correlations)) if correlations else float("nan"))
        pair_counts.append(len(correlations))
    return CorrelationCurve(
        distances=np.asarray(distances, dtype=int),
        mean_correlation=np.asarray(mean_corr),
        num_pairs=np.asarray(pair_counts, dtype=int),
    )


def _pairs_at_distance(
    cells: list[tuple[int, int]], distance: int
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """All unordered pairs of ``cells`` at exactly the given Manhattan distance."""
    if distance <= 0:
        raise ValueError("distance must be positive")
    cell_set = set(cells)
    pairs = []
    for (i, j) in cells:
        # Enumerate the upper half of the Manhattan ring to avoid duplicates.
        for dx in range(-distance, distance + 1):
            dy = distance - abs(dx)
            for candidate_dy in {dy, -dy}:
                if (dx, candidate_dy) <= (0, 0):
                    continue
                other = (i + dx, j + candidate_dy)
                if other in cell_set:
                    pairs.append(((i, j), other))
    return pairs
