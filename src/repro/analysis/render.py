"""ASCII rendering of chip state, droplets and routes.

Terminal-friendly visualizations used by the CLI, the examples, and — most
importantly — by anyone debugging a routing decision: a health heatmap with
droplet overlays, and a route plot for a synthesized strategy.

Conventions: x grows east (left to right), y grows north, so row 1 of the
printout is the chip's *top* (y = height).  Health renders as the digit of
the ``b``-bit code, with dead cells as ``#`` for visibility.
"""

from __future__ import annotations

import numpy as np

from repro.core.actions import ACTIONS, apply_action
from repro.core.strategy import RoutingStrategy
from repro.geometry.rect import Rect

#: Glyph for a completely dead microelectrode (health 0).
DEAD_GLYPH = "#"


def _grid(width: int, height: int, fill: str = ".") -> list[list[str]]:
    return [[fill] * width for _ in range(height)]


def _render(grid: list[list[str]]) -> str:
    # y grows north: print the top row (largest y) first.
    return "\n".join("".join(row) for row in reversed(grid))


def render_health(
    health: np.ndarray, droplets: dict[int, Rect] | None = None
) -> str:
    """The health matrix as a character map, droplets overlaid as letters.

    Droplet ``i`` renders as the letter ``chr(ord('A') + i % 26)``; health
    levels render as their digit, dead cells as ``#``.
    """
    width, height = health.shape
    grid = _grid(width, height)
    for i in range(width):
        for j in range(height):
            level = int(health[i, j])
            grid[j][i] = DEAD_GLYPH if level == 0 else str(level)
    if droplets:
        for did, rect in sorted(droplets.items()):
            glyph = chr(ord("A") + did % 26)
            for (i, j) in rect.cells():
                if 1 <= i <= width and 1 <= j <= height:
                    grid[j - 1][i - 1] = glyph
    return _render(grid)


def render_route(
    strategy: RoutingStrategy,
    health: np.ndarray,
    max_steps: int = 300,
) -> str:
    """The strategy's intended route from its job's start, over the chip.

    Walks the greedy (always-successful) outcome of each prescribed action;
    the stochastic simulator would interleave stalls but visit the same
    patterns.  Start cells render ``S``, goal cells ``G``, the route ``o``,
    dead cells ``#``.
    """
    width, height = health.shape
    grid = _grid(width, height)
    for i in range(width):
        for j in range(height):
            if health[i, j] == 0:
                grid[j][i] = DEAD_GLYPH
    job = strategy.job
    for (i, j) in job.goal.cells():
        grid[j - 1][i - 1] = "G"
    delta = job.start
    trail = [delta]
    for _ in range(max_steps):
        if job.goal.contains(delta):
            break
        action = strategy.action(delta)
        if action is None:
            break
        delta = apply_action(delta, ACTIONS[action])
        trail.append(delta)
    for step, rect in enumerate(trail):
        glyph = "S" if step == 0 else "o"
        for (i, j) in rect.cells():
            if grid[j - 1][i - 1] in (".", "o"):
                grid[j - 1][i - 1] = glyph
    return _render(grid)


def render_actuation(actuation: np.ndarray) -> str:
    """One cycle's actuation matrix (``*`` actuated, ``.`` idle)."""
    width, height = actuation.shape
    grid = _grid(width, height)
    for i in range(width):
        for j in range(height):
            if actuation[i, j]:
                grid[j][i] = "*"
    return _render(grid)


def render_degradation(
    degradation: np.ndarray, buckets: str = " .:-=+*%@#"
) -> str:
    """The hidden degradation matrix as a wear heatmap.

    Pristine cells render as the lightest glyph, dead cells as the densest
    (``1 - D`` indexes into ``buckets``).
    """
    if not buckets:
        raise ValueError("need at least one bucket glyph")
    width, height = degradation.shape
    grid = _grid(width, height)
    n = len(buckets)
    for i in range(width):
        for j in range(height):
            wear = 1.0 - float(degradation[i, j])
            idx = min(int(wear * n), n - 1)
            grid[j][i] = buckets[idx]
    return _render(grid)
