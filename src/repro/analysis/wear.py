"""Wear-distribution statistics: *how* adaptive routing extends chip life.

The adaptive router's advantage is not only avoiding already-degraded
microelectrodes — it is that doing so spreads actuations across the array
instead of hammering one shortest-path corridor.  This module quantifies
that with standard inequality statistics over the per-MC actuation counts:

* :func:`wear_gini` — the Gini coefficient of the actuation distribution
  (0 = perfectly even wear, → 1 = all wear on a few cells);
* :func:`wear_concentration` — the fraction of all actuations carried by
  the most-actuated ``q`` fraction of microelectrodes;
* :func:`wear_histogram` — bucketed counts for table rendering;
* :func:`remaining_lifetime` — per-MC actuations left until the health
  code drops below a threshold, given the chip's (tau, c) constants.
"""

from __future__ import annotations

import numpy as np

from repro.biochip.chip import MedaChip


def wear_gini(actuations: np.ndarray, active_only: bool = False) -> float:
    """Gini coefficient of the per-MC actuation counts.

    With ``active_only`` the statistic is computed over the cells that were
    actuated at least once — useful when most of the chip is untouched and
    would otherwise dominate the coefficient.
    """
    values = np.asarray(actuations, dtype=float).ravel()
    if active_only:
        values = values[values > 0]
    if values.size == 0:
        return 0.0
    total = values.sum()
    if total == 0.0:
        return 0.0
    sorted_vals = np.sort(values)
    n = sorted_vals.size
    # Gini = 1 + 1/n - 2 * sum((n + 1 - i) x_i) / (n * sum(x))
    ranks = np.arange(1, n + 1)
    return float(
        (2.0 * np.sum(ranks * sorted_vals)) / (n * total) - (n + 1.0) / n
    )


def wear_concentration(actuations: np.ndarray, q: float = 0.1) -> float:
    """Fraction of total actuations on the most-worn ``q`` of the MCs."""
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q}")
    values = np.sort(np.asarray(actuations, dtype=float).ravel())[::-1]
    total = values.sum()
    if total == 0.0:
        return 0.0
    top = max(1, int(round(q * values.size)))
    return float(values[:top].sum() / total)


def wear_histogram(
    actuations: np.ndarray, edges: list[int] | None = None
) -> list[tuple[str, int]]:
    """Bucketed MC counts by actuation count, for table rendering."""
    values = np.asarray(actuations).ravel()
    if edges is None:
        edges = [0, 1, 10, 50, 100, 250, 500, 1000]
    edges = sorted(edges)
    rows: list[tuple[str, int]] = []
    for lo, hi in zip(edges, edges[1:]):
        count = int(np.sum((values >= lo) & (values < hi)))
        rows.append((f"[{lo}, {hi})", count))
    rows.append((f">= {edges[-1]}", int(np.sum(values >= edges[-1]))))
    return rows


def remaining_lifetime(chip: MedaChip, min_health: int = 1) -> np.ndarray:
    """Per-MC actuations left before health falls below ``min_health``.

    Inverts the degradation model per cell: the threshold degradation is the
    lower edge of the ``min_health`` bucket, and the remaining budget is the
    difference between the actuation count reaching it and the current
    count.  Already-failed cells (and cells past the threshold) report 0;
    faulty cells report the distance to their sudden-failure count when
    that comes sooner.
    """
    levels = 1 << chip.bits
    if not 0 < min_health < levels:
        raise ValueError(f"min_health must be in [1, {levels - 1}]")
    d_threshold = min_health / levels
    with np.errstate(divide="ignore"):
        n_at_threshold = chip.c * np.log(d_threshold) / np.log(chip.tau)
    remaining = np.maximum(n_at_threshold - chip.actuations, 0.0)
    sudden = np.maximum(chip.faults.fail_at - chip.actuations, 0.0)
    return np.minimum(remaining, sudden)
