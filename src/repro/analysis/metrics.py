"""Evaluation metrics and experiment harnesses (Sec. VII-B/C).

* :func:`run_execution` — one bioassay execution on a chip (builds a fresh
  scheduler; the chip keeps its accumulated wear across calls).
* :func:`probability_of_success` — the Fig. 15 experiment: repeated
  executions on reused chips; the PoS at a time budget ``k_max`` is the
  fraction of executions that completed successfully within it.
* :func:`trial_cycles` — the Fig. 16 experiment: a *trial* repeats a
  bioassay on one chip until five successful executions or a cumulative
  cycle cap; reports the mean and SD of cycles consumed, plus the mean
  number of executions to first failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bioassay.planner import plan
from repro.bioassay.seqgraph import SequencingGraph
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import ExecutionResult, MedaSimulator
from repro.core.baseline import Router
from repro.core.scheduler import HybridScheduler
from repro.degradation.faults import FaultPlan

RouterFactory = Callable[[int, int], Router]
ChipFactory = Callable[[np.random.Generator], MedaChip]


def run_execution(
    graph: SequencingGraph,
    chip: MedaChip,
    router: Router,
    rng: np.random.Generator,
    max_cycles: int,
) -> ExecutionResult:
    """Execute a placed bioassay once on (the current state of) ``chip``."""
    scheduler = HybridScheduler(graph, router, chip.width, chip.height)
    simulator = MedaSimulator(chip, rng)
    return simulator.run(scheduler, max_cycles=max_cycles)


@dataclass(frozen=True)
class PoSResult:
    """Probability-of-success curve for one (bioassay, router) pair."""

    k_max_values: np.ndarray
    probability: np.ndarray
    executions: int

    def at(self, k_max: int) -> float:
        idx = int(np.searchsorted(self.k_max_values, k_max))
        if idx >= self.k_max_values.size or self.k_max_values[idx] != k_max:
            raise KeyError(f"k_max={k_max} was not evaluated")
        return float(self.probability[idx])


def probability_of_success(
    graph: SequencingGraph,
    chip_factory: ChipFactory,
    router_factory: RouterFactory,
    k_max_values: list[int],
    n_chips: int = 10,
    runs_per_chip: int = 5,
    seed: int = 0,
) -> PoSResult:
    """The Fig. 15 experiment.

    Each chip is reused for ``runs_per_chip`` consecutive executions
    (degradation persists — CMOS biochips are too expensive to discard).
    Every execution runs under the *largest* time budget; the PoS at a
    smaller ``k_max`` counts an execution as successful when it finished
    within that budget.  This derives the whole curve from one trace per
    execution; the approximation ignores the (second-order) effect that an
    earlier abort would have preserved slightly more chip health for
    subsequent runs.
    """
    if not k_max_values:
        raise ValueError("need at least one k_max value")
    k_sorted = sorted(k_max_values)
    budget = k_sorted[-1]
    completion: list[float] = []
    rng_master = np.random.default_rng(seed)
    router: Router | None = None
    for chip_idx in range(n_chips):
        chip_rng = np.random.default_rng(rng_master.integers(2**63))
        sim_rng = np.random.default_rng(rng_master.integers(2**63))
        chip = chip_factory(chip_rng)
        if router is None:
            # One router (and strategy library) serves every chip — the
            # hybrid scheme's offline library amortized across the fleet.
            router = router_factory(chip.width, chip.height)
        graph_placed = _ensure_placed(graph, chip.width, chip.height)
        for _ in range(runs_per_chip):
            result = run_execution(graph_placed, chip, router, sim_rng, budget)
            completion.append(result.cycles if result.success else np.inf)
    completion_arr = np.asarray(completion)
    probs = np.asarray(
        [float(np.mean(completion_arr <= k)) for k in k_sorted]
    )
    return PoSResult(
        k_max_values=np.asarray(k_sorted, dtype=int),
        probability=probs,
        executions=len(completion),
    )


@dataclass(frozen=True)
class TrialResult:
    """The Fig. 16 statistics for one (bioassay, router, fault-mode) cell."""

    mean_cycles: float
    std_cycles: float
    mean_executions_to_first_failure: float
    aborted_trials: int
    trials: int


def trial_cycles(
    graph: SequencingGraph,
    chip_factory: ChipFactory,
    router_factory: RouterFactory,
    n_trials: int = 10,
    target_successes: int = 5,
    k_max_total: int = 1000,
    per_execution_cap: int | None = None,
    seed: int = 0,
) -> TrialResult:
    """The Fig. 16 experiment.

    A trial repeatedly executes the bioassay on one chip until
    ``target_successes`` successes or until the cumulative cycle count
    exceeds ``k_max_total`` (abort: the chip is too degraded).  Per the
    paper, the reported ``k`` is the total number of cycles a trial
    consumed; the executions-to-first-failure statistic counts how many
    executions completed before the first failed one (``target_successes``
    when the trial never failed).
    """
    cycles_per_trial: list[float] = []
    first_failures: list[int] = []
    aborted = 0
    rng_master = np.random.default_rng(seed)
    router: Router | None = None
    for _ in range(n_trials):
        chip_rng = np.random.default_rng(rng_master.integers(2**63))
        sim_rng = np.random.default_rng(rng_master.integers(2**63))
        chip = chip_factory(chip_rng)
        if router is None:
            router = router_factory(chip.width, chip.height)
        graph_placed = _ensure_placed(graph, chip.width, chip.height)
        total = 0
        successes = 0
        executions = 0
        failed_yet = False
        first_failure_at = None
        while successes < target_successes and total < k_max_total:
            remaining = k_max_total - total
            cap = remaining if per_execution_cap is None else min(
                remaining, per_execution_cap
            )
            result = run_execution(graph_placed, chip, router, sim_rng, cap)
            executions += 1
            total += max(result.cycles, 1)
            if result.success:
                successes += 1
            elif not failed_yet:
                failed_yet = True
                first_failure_at = executions - 1
        if successes < target_successes:
            aborted += 1
        cycles_per_trial.append(float(total))
        first_failures.append(
            first_failure_at if first_failure_at is not None else successes
        )
    arr = np.asarray(cycles_per_trial)
    return TrialResult(
        mean_cycles=float(arr.mean()),
        std_cycles=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        mean_executions_to_first_failure=float(np.mean(first_failures)),
        aborted_trials=aborted,
        trials=n_trials,
    )


def chip_factory_for(
    width: int,
    height: int,
    tau_range: tuple[float, float] = (0.5, 0.9),
    c_range: tuple[float, float] = (200.0, 500.0),
    fault_plan_factory: Callable[[np.random.Generator], FaultPlan] | None = None,
) -> ChipFactory:
    """A chip factory with the Sec. VII-B degradation distributions."""

    def factory(rng: np.random.Generator) -> MedaChip:
        fault_plan = None
        if fault_plan_factory is not None:
            fault_plan = fault_plan_factory(rng)
        return MedaChip.sample(
            width, height, rng, tau_range=tau_range, c_range=c_range,
            fault_plan=fault_plan,
        )

    return factory


def _ensure_placed(
    graph: SequencingGraph, width: int, height: int
) -> SequencingGraph:
    if graph.is_placed():
        return graph
    return plan(graph, width, height)
