"""Persistent cross-run strategy store (SQLite).

The in-memory :class:`~repro.core.strategy.StrategyLibrary` amortizes
synthesis *within* one process; sweep experiments (EXPERIMENTS.md's
uniform/clustered fault grids) re-derive identical strategies run after run.
The :class:`StrategyStore` closes that gap: a small SQLite database (default
``~/.cache/repro/strategies.sqlite``) keyed by everything that can influence
a synthesized strategy —

* chip dimensions (frontier means clip at the chip border, so the same job
  near an edge solves differently on a different-size chip);
* the routing-job key (start, goal, hazard bounds, obstacle set);
* the health fingerprint of the hazard zone (the only health cells that
  can influence the strategy);
* the query (objective + labels), epsilon, and the synthesis parameters
  (health bits, pessimistic estimation, aspect bound);
* a code version tag (library version + store schema version), so stale
  formats from older checkouts can never poison a run.

Entries are stored as the JSON payloads of
:meth:`~repro.core.strategy.RoutingStrategy.to_payload`.  The store is
LRU-bounded (``max_entries``, evicted by last-use time) and *corruption
tolerant*: an unreadable database file is re-created, an undecodable row is
deleted and counted, and any unexpected SQLite failure degrades the store
to a no-op rather than failing the run.  Hit/miss/stale counts are kept on
the instance and mirrored into :mod:`repro.perf`
(``store.{hits,misses,stale,corrupt,evictions,puts}``).

**Concurrency** (the ``repro.serve`` substrate): one store instance may be
shared by N assay-worker threads.  The connection is opened with
``check_same_thread=False`` and every SQLite access is serialized by an
instance lock; the database runs in WAL mode with a ``busy_timeout`` so a
second *process* pointed at the same file blocks briefly instead of
erroring.  A process-shared **read-through memo** (an in-memory LRU of
decoded strategies, ``store.memo.{hits,misses}``) sits in front of SQLite
so concurrent assays resolving the same (job key, fingerprint) — the
common case under a mixed serving workload — do not serialize on the
database at all after the first read.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro import perf
from repro.core.routing_job import RoutingJob
from repro.core.strategy import RoutingStrategy, health_fingerprint
from repro.engine import chaos
from repro.modelcheck.properties import Query

#: Bump when the payload layout or key derivation changes; old rows become
#: unreachable (different key space) and age out via the LRU bound.
#: v2: solver values are interval-certified midpoints and warm-seed wire
#: payloads are side-tagged, so v1 entries (uncertified plain-VI values)
#: must not be replayed.
STORE_SCHEMA_VERSION = 2

#: Default on-disk location, honouring ``XDG_CACHE_HOME``.
DEFAULT_STORE_DIR = "repro"
DEFAULT_STORE_NAME = "strategies.sqlite"


def default_store_path() -> Path:
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / DEFAULT_STORE_DIR / DEFAULT_STORE_NAME


def _code_version() -> str:
    from repro import __version__

    return f"{__version__}+s{STORE_SCHEMA_VERSION}"


def _query_token(query: Query | None) -> str:
    if query is None:
        return "default"
    return (
        f"{query.objective.name}:{query.formula.goal_label}"
        f":{query.formula.avoid_label}"
    )


class StrategyStore:
    """An LRU-bounded, corruption-tolerant on-disk strategy cache.

    ``path`` may be a file path or ``None`` for :func:`default_store_path`.
    ``bits``/``pessimistic``/``max_aspect``/``query``/``epsilon`` are the
    synthesis parameters baked into every key — one store instance serves
    one synthesis configuration (the router's).
    """

    def __init__(
        self,
        path: "str | Path | None" = None,
        max_entries: int = 4096,
        bits: int = 2,
        pessimistic: bool = False,
        max_aspect: float = 3.0,
        query: Query | None = None,
        epsilon: float = 1e-6,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.path = Path(path) if path is not None else default_store_path()
        self.max_entries = max_entries
        self._params_token = (
            f"b{bits}|p{int(pessimistic)}|a{max_aspect!r}"
            f"|q{_query_token(query)}|e{epsilon!r}|v{_code_version()}"
        )
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.corrupt = 0
        self.use_after_close = 0
        self.memo_hits = 0
        self.memo_misses = 0
        # Instance lock: one store may serve N assay-worker threads
        # (repro.serve shares a single store across concurrent assays).
        self._lock = threading.RLock()
        # Read-through memo: full_key -> decoded strategy, LRU-bounded to
        # max_entries alongside the database itself.
        self._memo: "OrderedDict[str, RoutingStrategy]" = OrderedDict()
        self._conn: sqlite3.Connection | None = None
        self._broken = False
        self._closed = False
        self._open()

    # -- connection lifecycle ------------------------------------------------

    def _open(self) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = self._connect()
        except (sqlite3.Error, OSError):
            # Unreadable or corrupt database: recreate it once, then give up
            # and run storeless rather than failing the assay.
            self.corrupt += 1
            perf.incr("store.corrupt")
            try:
                self.path.unlink(missing_ok=True)
                self._conn = self._connect()
            except (sqlite3.Error, OSError):
                self._conn = None
                self._broken = True

    def _connect(self) -> sqlite3.Connection:
        # check_same_thread=False: the instance lock serializes access, so
        # any of the serving threads may touch the shared connection.
        conn = sqlite3.connect(str(self.path), check_same_thread=False)
        try:
            # WAL lets a concurrent reader proceed under a writer (and
            # vice versa) when several processes share the file; the busy
            # timeout turns residual lock contention into a short wait
            # instead of an immediate SQLITE_BUSY error.  Both are
            # best-effort: a filesystem that cannot do WAL (some network
            # mounts) just keeps the default journal.
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA busy_timeout=5000")
        except sqlite3.Error:
            pass
        conn.execute(
            "CREATE TABLE IF NOT EXISTS strategies ("
            " full_key TEXT PRIMARY KEY,"
            " base_key TEXT NOT NULL,"
            " payload TEXT NOT NULL,"
            " created REAL NOT NULL,"
            " last_used REAL NOT NULL)"
        )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_strategies_base"
            " ON strategies(base_key)"
        )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_strategies_lru"
            " ON strategies(last_used)"
        )
        # Integrity probe: a truncated/garbled file often connects fine but
        # fails on first real read.
        conn.execute("SELECT COUNT(*) FROM strategies").fetchone()
        conn.commit()
        return conn

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._memo.clear()
            self._shutdown()

    def _shutdown(self) -> None:
        if self._conn is not None:
            try:
                self._conn.commit()  # flush deferred LRU touches
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    def _check_open(self) -> bool:
        """Guard get/put against use after :meth:`close`.

        A closed connection would raise ``sqlite3.ProgrammingError`` on
        use; a late ``store_put`` from a router outliving its engine must
        be a counted no-op, not a crash mid-assay.
        """
        if self._closed:
            self.use_after_close += 1
            perf.incr("store.use_after_close")
            return False
        return self._conn is not None

    def __enter__(self) -> "StrategyStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            if self._conn is None:
                return 0
            try:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM strategies"
                ).fetchone()
                return int(row[0])
            except sqlite3.Error:
                return 0

    # -- keys ----------------------------------------------------------------

    def _keys(
        self, job: RoutingJob, health: np.ndarray
    ) -> tuple[str, str]:
        """``(full_key, base_key)``: base omits the health fingerprint."""
        width, height = health.shape
        base_raw = (
            f"{self._params_token}|chip{width}x{height}"
            f"|job{','.join(map(str, job.key()))}"
        )
        base = hashlib.sha256(base_raw.encode()).hexdigest()
        fp = health_fingerprint(health, job.hazard)
        full = hashlib.sha256(
            base_raw.encode() + b"|fp|" + fp
        ).hexdigest()
        return full, base

    # -- get / put -----------------------------------------------------------

    def get(
        self, job: RoutingJob, health: np.ndarray
    ) -> RoutingStrategy | None:
        """Look up a stored strategy for ``(job, health)``.

        A row whose job/params match but whose health fingerprint differs is
        counted as *stale* (the zone degraded since it was stored); both
        stale and absent lookups return ``None`` and count as misses.

        The read-through memo is consulted first: a decoded strategy
        cached by an earlier get/put on this instance is returned without
        touching SQLite (``store.memo.hits``), so concurrent assays
        resolving the same key don't serialize on the database.
        """
        with self._lock:
            return self._get(job, health)

    def _get(
        self, job: RoutingJob, health: np.ndarray
    ) -> RoutingStrategy | None:
        if not self._check_open():
            return None
        full, base = self._keys(job, health)
        memoized = self._memo.get(full)
        if memoized is not None:
            self._memo.move_to_end(full)
            self.memo_hits += 1
            self.hits += 1
            perf.incr("store.memo.hits")
            perf.incr("store.hits")
            # Still record the LRU touch (deferred, uncommitted — same as
            # the disk path) so eviction order matches a memo-less store;
            # the memo saves the row read and payload decode, not the
            # bookkeeping.
            try:
                self._conn.execute(
                    "UPDATE strategies SET last_used = ? WHERE full_key = ?",
                    (time.time(), full),
                )
            except sqlite3.Error:
                self._degrade()
            return memoized
        self.memo_misses += 1
        perf.incr("store.memo.misses")
        try:
            row = self._conn.execute(
                "SELECT payload FROM strategies WHERE full_key = ?", (full,)
            ).fetchone()
            if row is None:
                self.misses += 1
                perf.incr("store.misses")
                sibling = self._conn.execute(
                    "SELECT 1 FROM strategies WHERE base_key = ? LIMIT 1",
                    (base,),
                ).fetchone()
                if sibling is not None:
                    self.stale += 1
                    perf.incr("store.stale")
                return None
        except sqlite3.Error:
            self._degrade()
            return None
        try:
            strategy = RoutingStrategy.from_payload(json.loads(row[0]))
        except (ValueError, KeyError, TypeError):
            # Undecodable row: drop it and report a miss.
            self.corrupt += 1
            perf.incr("store.corrupt")
            self._execute(
                "DELETE FROM strategies WHERE full_key = ?", (full,)
            )
            self.misses += 1
            perf.incr("store.misses")
            return None
        self.hits += 1
        perf.incr("store.hits")
        self._memo_put(full, strategy)
        # LRU touch without an immediate commit: fsync-per-hit would double
        # the cost of a warm lookup.  The touch is flushed by the next
        # put/eviction commit or by close(); losing one on a crash only
        # perturbs eviction order.
        try:
            self._conn.execute(
                "UPDATE strategies SET last_used = ? WHERE full_key = ?",
                (time.time(), full),
            )
        except sqlite3.Error:
            self._degrade()
        return strategy

    def _memo_put(self, full_key: str, strategy: RoutingStrategy) -> None:
        self._memo[full_key] = strategy
        self._memo.move_to_end(full_key)
        while len(self._memo) > self.max_entries:
            self._memo.popitem(last=False)

    def put(
        self, job: RoutingJob, health: np.ndarray, strategy: RoutingStrategy
    ) -> None:
        """Store (or refresh) a synthesized strategy; evict past the bound."""
        with self._lock:
            self._put(job, health, strategy)

    def _put(
        self, job: RoutingJob, health: np.ndarray, strategy: RoutingStrategy
    ) -> None:
        if not self._check_open():
            return
        full, base = self._keys(job, health)
        now = time.time()
        clean = json.dumps(strategy.to_payload())
        payload = clean
        injector = chaos.injector()
        if injector is not None:
            # Chaos harness: maybe garble this row before it hits disk, so
            # the corruption-tolerance path (undecodable row -> delete +
            # miss) is exercised by real mid-run writes.
            payload = injector.corrupt_payload(full, payload)
        ok = self._execute(
            "INSERT INTO strategies"
            " (full_key, base_key, payload, created, last_used)"
            " VALUES (?, ?, ?, ?, ?)"
            " ON CONFLICT(full_key) DO UPDATE SET"
            " payload = excluded.payload, last_used = excluded.last_used",
            (full, base, payload, now, now),
        )
        if ok:
            perf.incr("store.puts")
            if payload == clean:
                # Memoize only what actually hit the disk intact: a
                # chaos-garbled row must still be discovered (and deleted)
                # by the corruption-tolerance read path, not masked by the
                # memo.
                self._memo_put(full, strategy)
            self._evict()

    def _evict(self) -> None:
        if self._conn is None:
            return
        try:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM strategies"
            ).fetchone()
            excess = int(count) - self.max_entries
            if excess > 0:
                evicted = self._conn.execute(
                    "SELECT full_key FROM strategies"
                    " ORDER BY last_used ASC LIMIT ?",
                    (excess,),
                ).fetchall()
                self._conn.execute(
                    "DELETE FROM strategies WHERE full_key IN ("
                    " SELECT full_key FROM strategies"
                    " ORDER BY last_used ASC LIMIT ?)",
                    (excess,),
                )
                self._conn.commit()
                # The memo must not outlive the rows it fronts: an entry
                # evicted from disk has to read as a miss again.
                for (evicted_key,) in evicted:
                    self._memo.pop(evicted_key, None)
                perf.incr("store.evictions", excess)
        except sqlite3.Error:
            self._degrade()

    # -- helpers -------------------------------------------------------------

    def _execute(self, sql: str, params: tuple) -> bool:
        if self._conn is None:
            return False
        try:
            self._conn.execute(sql, params)
            self._conn.commit()
            return True
        except sqlite3.Error:
            self._degrade()
            return False

    def _degrade(self) -> None:
        """An unexpected SQLite failure mid-run: stop using the store."""
        self.corrupt += 1
        perf.incr("store.corrupt")
        self._memo.clear()
        self._shutdown()
        self._broken = True

    @property
    def usable(self) -> bool:
        return self._conn is not None

    def counters(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "corrupt": self.corrupt,
            "use_after_close": self.use_after_close,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
        }
