"""Synthesis execution engine: worker pool, speculation, persistent store.

See :mod:`repro.engine.pool` for the speculative multi-worker engine and
:mod:`repro.engine.store` for the cross-run SQLite strategy cache.
"""

from repro.engine.pool import SynthesisEngine, resolve_workers
from repro.engine.store import StrategyStore, default_store_path

__all__ = [
    "SynthesisEngine",
    "StrategyStore",
    "default_store_path",
    "resolve_workers",
]
