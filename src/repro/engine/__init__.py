"""Synthesis execution engine: worker pool, speculation, persistent store.

See :mod:`repro.engine.pool` for the speculative multi-worker engine,
:mod:`repro.engine.store` for the cross-run SQLite strategy cache,
:mod:`repro.engine.faults` for the worker-failure taxonomy and retry
policy, and :mod:`repro.engine.chaos` for the deterministic
fault-injection harness.
"""

from repro.engine.chaos import ChaosConfig, ChaosInjectedError, ChaosInjector
from repro.engine.faults import FaultKind, RetryPolicy, classify_failure
from repro.engine.pool import SynthesisEngine, TenantView, resolve_workers
from repro.engine.store import StrategyStore, default_store_path

__all__ = [
    "ChaosConfig",
    "ChaosInjectedError",
    "ChaosInjector",
    "FaultKind",
    "RetryPolicy",
    "SynthesisEngine",
    "StrategyStore",
    "TenantView",
    "classify_failure",
    "default_store_path",
    "resolve_workers",
]
