"""Worker-failure taxonomy and retry policy for the synthesis engine.

The :class:`~repro.engine.pool.SynthesisEngine` runs speculation on a
``ProcessPoolExecutor``; everything that can go wrong there falls into one
of three buckets, and the recovery action differs per bucket:

* **pool** — the executor itself broke (``BrokenProcessPool``: a worker
  was OOM-killed, segfaulted, or died mid-pickle).  The pool is unusable
  and every in-flight future fails at once.  Recovery: rebuild the
  executor with capped exponential backoff and resubmit the surviving
  speculations, up to a rebuild budget; past the budget the engine
  *degrades permanently* to the synchronous path.
* **transient** — an individual future failed for an infrastructure
  reason (cancelled, timed out, a pipe error) while the executor stayed
  alive.  Recovery: the payload may be retried on the same pool.
* **payload** — the worker ran our code and it raised.  The failure is
  deterministic — retrying the identical payload reproduces it — so it is
  counted and the caller falls back to synchronous synthesis (which will
  surface the same bug where it can be debugged).

The classification is intentionally conservative: anything unrecognized is
treated as a payload error, because retrying an unknown failure risks
spinning on a deterministic one.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, CancelledError, TimeoutError
from dataclasses import dataclass
from enum import Enum


class FaultKind(Enum):
    """What went wrong with a speculation (drives the recovery action)."""

    #: The executor broke (worker killed / died): rebuild + retry.
    POOL = "pool"
    #: Per-future infrastructure failure on a live pool: retry.
    TRANSIENT = "transient"
    #: Deterministic error raised by the synthesis payload: do not retry.
    PAYLOAD = "payload"
    #: A speculation exceeded its deadline (hung worker): reap.
    DEADLINE = "deadline"


def classify_failure(exc: BaseException) -> FaultKind:
    """Map an exception raised by ``Future.result()`` to a fault kind."""
    if isinstance(exc, BrokenExecutor):
        return FaultKind.POOL
    if isinstance(exc, (CancelledError, TimeoutError, OSError)):
        return FaultKind.TRANSIENT
    return FaultKind.PAYLOAD


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the engine's recovery behaviour.

    ``retries`` — how many times one speculation payload may be
    *resubmitted* after a pool/transient failure (its first submission is
    not a retry).  ``rebuild_budget`` — how many times the executor may be
    rebuilt before the engine degrades permanently.  ``backoff_base_s`` /
    ``backoff_cap_s`` — capped exponential delay before rebuild *n*:
    ``min(cap, base * 2**n)``.  ``deadline_ms`` — per-speculation wall
    budget (``None`` disables deadlines): an in-flight speculation older
    than this is reaped, and if its worker is hung the pool is rebuilt to
    reclaim the process.
    """

    retries: int = 2
    rebuild_budget: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries cannot be negative")
        if self.rebuild_budget < 0:
            raise ValueError("rebuild_budget cannot be negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")

    def backoff(self, rebuilds_so_far: int) -> float:
        """Seconds to wait before the next rebuild attempt."""
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** rebuilds_so_far))

    @property
    def deadline_s(self) -> float | None:
        return None if self.deadline_ms is None else self.deadline_ms / 1e3
