"""The parallel synthesis engine: speculative multi-worker pre-synthesis.

Per-RJ strategy synthesis is the dominant cost of a bioassay execution
(Table V); the hybrid scheduler pays it serially, at MO-activation time, on
the planning thread.  The :class:`SynthesisEngine` moves that work onto a
``ProcessPoolExecutor``:

* **submission** ships a pickle-safe payload — the routing job, the force
  matrix derived from the sensed health, the query and epsilon, plus any
  warm-start values — to a worker that runs the ordinary
  :func:`~repro.core.synthesis.synthesize_with_field` and returns a compact
  ``{pattern: action, values}`` payload (no model object crosses the
  process boundary);
* **consumption** (:meth:`take`) matches results by the exact
  ``(job key, health fingerprint)`` pair.  A speculation computed for an
  older health state is *stale* and discarded; a result still in flight
  when the strategy is needed is a *miss* and the caller synthesizes
  synchronously.  Speculation therefore only ever changes latency, never
  routing decisions: any strategy it yields is the one synchronous
  synthesis would have produced for the same job and health.

Warm-start values are captured at submission time.  That matches the
synchronous path because warm values are keyed by job key and only change
when that same key is re-solved — and a re-solve installs a library entry
that takes precedence over any speculation.

**Fault tolerance** (:mod:`repro.engine.faults`): worker failures are
classified — a broken pool (worker OOM-killed / segfaulted) triggers an
executor rebuild with capped exponential backoff and resubmission of the
surviving speculations up to a retry budget; a deterministic payload error
is counted and falls back to synchronous synthesis; an in-flight
speculation that exceeds ``deadline_ms`` is reaped (a hung worker forces a
rebuild, since an executor cannot kill a single process).  When the
rebuild budget is exhausted the engine *degrades permanently*: the pool is
torn down, ``engine.degraded`` is set, an ``engine.degraded`` journal
event is emitted, and every subsequent plan runs on the synchronous path.
None of this can change routing: speculation results are matched exactly
and every failure path is a miss, so a faulted run routes bit-identically
to a no-pool run.

The engine also fronts the persistent :class:`~repro.engine.store.StrategyStore`
(``store_get``/``store_put``) so the router has a single speculation façade.
Counters: ``engine.prefetch.{submitted,hits,misses,stale,wasted,rejected,
deadline,floor}``, ``engine.fairshare.rejected``, ``engine.errors``,
``engine.fault.{pool,transient,payload}``, ``engine.rebuilds``,
``engine.retries``, ``engine.degraded``, ``engine.batch.submitted``; the
``engine.speculation.wasted_ratio`` gauge tracks wasted/submitted; spans:
``engine.submit`` / ``engine.wait`` / ``engine.batch.submit`` (the batched
presynthesis wave, also journaled as an ``engine.batch.submit`` event).

**Multi-tenancy** (:class:`TenantView`): one engine (and its store) can be
shared by N concurrent assays.  Every speculation is namespaced by a
tenant name, so assays can never consume — or block resubmission of —
each other's speculations; the engine itself is thread-safe (one lock
around the speculation state).  Fair-share admission splits
``max_inflight`` equally across registered tenants, so one assay's
speculative prefetch cannot starve another's, and the *admission floor*
(``admission_floor=True``) skips speculative submission entirely when a
single tenant runs on a single-core host — speculation there has nothing
to overlap with and only adds IPC cost (the ``BENCH_parallel`` quick-scale
regression).  The store façade is deliberately tenant-agnostic: store
entries are keyed by (job, health fingerprint) alone, which is exactly
what makes cross-assay amortization sound.

**Telemetry propagation** (:mod:`repro.obs.propagate`): when the parent
has any telemetry configured, submissions carry a capture config, workers
record their solve in a process-local ``worker.solve`` span (plus
``worker.synthesis`` journal events and a ``worker.solves`` counter), and
the bundle rides back on the result payload; :meth:`SynthesisEngine.take`
grafts it under the submitting span, so one merged Perfetto export shows
``engine.submit -> worker.solve -> take`` end to end.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro import obs, perf
from repro.obs.propagate import WorkerCapture, capture_config, merge_telemetry
from repro.core.actions import DEFAULT_MAX_ASPECT
from repro.core.routing_job import RoutingJob
from repro.core.strategy import (
    RoutingStrategy,
    health_fingerprint,
    job_from_payload,
    job_to_payload,
    strategy_from_synthesis,
)
from repro.core.synthesis import (
    SYNTHESIS_EPSILON,
    BatchRequest,
    force_field_from_health,
    synthesize_batch,
    synthesize_with_field,
)
from repro.core.transitions import MatrixForceField
from repro.engine import chaos
from repro.engine.faults import FaultKind, RetryPolicy, classify_failure
from repro.engine.payload import (
    correlation_id,
    side_for_objective,
    warm_values_from_payload,
    warm_values_to_payload,
)
from repro.engine.store import StrategyStore
from repro.modelcheck.properties import Query

#: ``(tenant, job key, health fingerprint)`` — the identity of one
#: speculation.  The tenant is ``""`` for single-assay use (the CLI, the
#: benches), which keeps keys, chaos tokens and counters byte-identical to
#: the pre-tenancy engine.
_EngineKey = tuple[str, tuple[int, ...], bytes]


def _chaos_token(key: _EngineKey, attempt: int) -> str:
    """The deterministic chaos-decision token for one submission attempt."""
    tenant, job_key, fingerprint = key
    prefix = f"{tenant}|" if tenant else ""
    return (
        f"{prefix}{','.join(map(str, job_key))}|{fingerprint.hex()}"
        f"|a{attempt}"
    )


def _worker_synthesize(payload: dict) -> dict:
    """Worker-side synthesis: plain payloads in, plain payloads out.

    Runs in a pool process; must stay importable at module level so the
    executor can pickle a reference to it.
    """
    injector = chaos.injector()
    if injector is not None:
        injector.worker_inject(payload.get("chaos_token", ""))
    job = job_from_payload(payload["job"])
    field = MatrixForceField(np.asarray(payload["forces"], dtype=float))
    query = payload["query"]
    # Validate the seed's bounding side against the query it will warm:
    # a mismatch is a submission bug and must fail here, not silently
    # degrade into a rejected seed inside the solver.
    expected_side = side_for_objective(
        None if query is None else query.objective
    )
    capture = WorkerCapture(payload.get("telemetry"))
    with capture:
        started = time.perf_counter()
        with obs.span("worker.solve", job=job.key(), corr=capture.corr):
            result = synthesize_with_field(
                job,
                field,
                query=query,
                max_aspect=payload["max_aspect"],
                epsilon=payload["epsilon"],
                warm_values=warm_values_from_payload(
                    payload["warm_values"], expected_side=expected_side
                ),
            )
        out = _result_payload(job, result)
        perf.incr("worker.solves")
        obs.journal_event(
            "worker.synthesis",
            job=job.key(),
            ms=round((time.perf_counter() - started) * 1e3, 3),
            construct_ms=out["construct_ms"],
            solve_ms=out["solve_ms"],
            exists=out["strategy"] is not None,
        )
    bundle = capture.export()
    if bundle is not None:
        out["telemetry"] = bundle
    return out


def _result_payload(job: RoutingJob, result) -> dict:
    """The compact cross-process form of one synthesis result."""
    strategy = strategy_from_synthesis(job, result)
    return {
        "strategy": None if strategy is None else strategy.to_payload(),
        "expected_cycles": result.expected_cycles,
        "construct_ms": result.construction_time * 1e3,
        "solve_ms": result.solve_time * 1e3,
    }


def _worker_synthesize_batch(payload: dict) -> dict:
    """Worker-side batched synthesis: one pool task, many routing jobs.

    A whole presynthesis wave rides a single task so the batch kernel can
    share graph precompute across same-shape members and so the worker
    process's template cache / batch-value memo persist across waves.
    Results come back positionally (``payload["items"]`` order); each
    member is bit-identical to what :func:`_worker_synthesize` would have
    returned for it (:func:`~repro.core.synthesis.synthesize_batch`
    guarantees equivalence with the per-RJ path).
    """
    injector = chaos.injector()
    if injector is not None:
        injector.worker_inject(payload.get("chaos_token", ""))
    field = MatrixForceField(np.asarray(payload["forces"], dtype=float))
    query = payload["query"]
    expected_side = side_for_objective(
        None if query is None else query.objective
    )
    jobs = [job_from_payload(item["job"]) for item in payload["items"]]
    requests = [
        BatchRequest(
            job,
            field,
            warm_values=warm_values_from_payload(
                item["warm_values"], expected_side=expected_side
            ),
        )
        for job, item in zip(jobs, payload["items"])
    ]
    capture = WorkerCapture(payload.get("telemetry"))
    with capture:
        started = time.perf_counter()
        with obs.span(
            "worker.solve", jobs=len(jobs), batch=True, corr=capture.corr
        ):
            results = synthesize_batch(
                requests,
                query=query,
                max_aspect=payload["max_aspect"],
                epsilon=payload["epsilon"],
            )
        out: dict = {
            "results": [
                _result_payload(job, result)
                for job, result in zip(jobs, results)
            ]
        }
        perf.incr("worker.solves", len(jobs))
        batch_ms = round((time.perf_counter() - started) * 1e3, 3)
        for job, member in zip(jobs, out["results"]):
            obs.journal_event(
                "worker.synthesis",
                job=job.key(),
                batch=True,
                batch_ms=batch_ms,
                construct_ms=member["construct_ms"],
                solve_ms=member["solve_ms"],
                exists=member["strategy"] is not None,
            )
    bundle = capture.export()
    if bundle is not None:
        out["telemetry"] = bundle
    return out


def resolve_workers(workers: int) -> int:
    """``0`` means "all cores"; ``1`` disables the pool.

    Negative counts are a configuration error, not a silent way to turn
    the pool off — they raise so a typo'd sweep script fails loudly.
    """
    if workers < 0:
        raise ValueError(
            f"workers must be >= 0 (0 = one per core, 1 = no pool), "
            f"got {workers}"
        )
    if workers == 0:
        return os.cpu_count() or 1
    return workers


@dataclass
class _Speculation:
    """One in-flight worker job and the state needed to retry or reap it.

    ``index`` is set when the speculation is one member of a batched
    submission: several speculations then share one ``future`` (a single
    pool task running :func:`_worker_synthesize_batch`) and ``index``
    selects this member's slot in its ``"results"`` list.  ``payload`` is
    always the member's *solo* payload, so retries after a pool rebuild
    fall back to independent per-job tasks.  ``span_id`` is the submitting
    ``engine.submit`` / ``engine.batch.submit`` span, under which any
    worker-side spans shipped back on the result are grafted at
    consumption time (see :mod:`repro.obs.propagate`).
    """

    future: Future
    payload: dict
    submitted_at: float
    attempts: int = 1
    index: int | None = None
    span_id: int | None = None


class SynthesisEngine:
    """Speculative synthesis execution: worker pool + persistent store.

    ``workers`` — pool size; ``0`` = one per core, ``1`` = no pool (the
    engine then only fronts the store).  ``prefetch`` — whether the
    scheduler's per-cycle speculative prefetch is enabled (pre-synthesis
    via :meth:`~repro.core.scheduler.HybridScheduler.presynthesize` is the
    caller's explicit choice either way).  The synthesis parameters must
    match the router's — they are baked into every worker payload.

    ``policy`` bounds the fault-tolerance behaviour (see
    :class:`~repro.engine.faults.RetryPolicy`); the ``retries`` /
    ``deadline_ms`` / ``rebuild_budget`` keywords are a convenience for the
    common overrides and are ignored when an explicit policy is given.

    ``admission_floor`` — skip speculative submission when there is no
    concurrent demand (a single tenant) *and* no spare core to overlap
    with: on a single-core host, single-assay speculation only moves the
    same work behind an IPC boundary and loses to the synchronous path.
    Off by default (direct engine tests exercise speculation regardless of
    host shape); the CLI, the benches and ``repro serve`` turn it on.

    The engine is thread-safe and multi-tenant: :meth:`tenant` registers a
    named tenant and returns a :class:`TenantView` whose speculations are
    namespaced to it, with ``max_inflight`` split fairly across registered
    tenants.
    """

    def __init__(
        self,
        workers: int = 0,
        *,
        bits: int = 2,
        query: Query | None = None,
        max_aspect: float = DEFAULT_MAX_ASPECT,
        pessimistic: bool = False,
        epsilon: float = SYNTHESIS_EPSILON,
        store: StrategyStore | None = None,
        prefetch: bool = True,
        max_inflight: int = 128,
        retries: int = 2,
        deadline_ms: float | None = None,
        rebuild_budget: int = 3,
        policy: RetryPolicy | None = None,
        admission_floor: bool = False,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.workers = resolve_workers(workers)
        self.bits = bits
        self.query = query
        self.max_aspect = max_aspect
        self.pessimistic = pessimistic
        self.epsilon = epsilon
        self.store = store
        self.prefetch_enabled = prefetch
        self.max_inflight = max_inflight
        self.policy = policy if policy is not None else RetryPolicy(
            retries=retries,
            rebuild_budget=rebuild_budget,
            deadline_ms=deadline_ms,
        )
        self._executor: ProcessPoolExecutor | None = (
            ProcessPoolExecutor(max_workers=self.workers)
            if self.workers > 1
            else None
        )
        self.admission_floor = admission_floor
        # One lock around all speculation state: submissions, consumption
        # and fault handling may come from N assay-worker threads sharing
        # this engine (repro.serve).  RLock because fault paths re-enter
        # (take -> _reap -> _rebuild_pool -> _resubmit_inflight).
        self._lock = threading.RLock()
        self._tenants: set[str] = set()
        self._pending: dict[_EngineKey, _Speculation] = {}
        self._by_job: dict[tuple[str, tuple[int, ...]], _EngineKey] = {}
        # Discarded speculations whose worker task was still running: their
        # telemetry bundles (worker.solve spans, metric deltas) are salvaged
        # once the future completes, so the trace shows the wasted worker
        # work too.  Bounded: overflow drops the oldest un-salvageable entry.
        self._zombies: deque[_Speculation] = deque(maxlen=128)
        # Consumed speculations that found no plan: a definitive answer for
        # that exact key (the library never caches None), so don't resubmit.
        self._no_plan: set[_EngineKey] = set()
        self._closed = False
        self.degraded = False
        self.submitted = 0
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.wasted = 0
        self.errors = 0
        self.rebuilds = 0
        self.retried = 0
        self.deadline_reaps = 0
        self.fair_rejected = 0
        self.floor_skips = 0
        self.faults: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    @property
    def pooled(self) -> bool:
        """Whether a worker pool is actually running."""
        return self._executor is not None

    def close(self) -> None:
        """Shut the pool down; unconsumed speculations count as wasted."""
        with self._lock:
            self._closed = True
            self._drop_all_speculations()
            self._drain_zombies(final=True)
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
        if self.store is not None:
            self.store.close()

    # -- multi-tenancy -------------------------------------------------------

    def tenant(self, name: str) -> "TenantView":
        """Register a named tenant and return its engine façade.

        The view namespaces every speculation under ``name`` and shares
        the store; registering also raises the engine's *demand* (the
        admission floor lifts, fair shares shrink).  Release with
        :meth:`TenantView.close` when the assay finishes.
        """
        if not name:
            raise ValueError("tenant name must be non-empty")
        with self._lock:
            self._tenants.add(name)
        return TenantView(self, name)

    def invalidate(self, job: "RoutingJob", tenant: str = "") -> bool:
        """Discard any in-flight speculation for ``job`` (any fingerprint).

        Placement remapping retires a routing job wholesale — its key can
        never be requested again, so letting the speculation linger would
        only hold an in-flight slot until the deadline reaper finds it.
        The persistent store needs no invalidation: entries are keyed by
        job geometry plus health fingerprint, and a retired key is simply
        never looked up.  Returns whether a speculation was discarded.
        """
        with self._lock:
            key = self._by_job.get((tenant, job.key()))
            if key is None:
                return False
            self._discard(key)
        perf.incr("engine.prefetch.invalidated")
        return True

    def release_tenant(self, name: str) -> None:
        """Deregister a tenant, discarding its in-flight speculations."""
        with self._lock:
            self._tenants.discard(name)
            for key in [k for k in self._pending if k[0] == name]:
                self._discard(key)
            self._no_plan = {k for k in self._no_plan if k[0] != name}

    def _tenant_share(self) -> int:
        """Per-tenant in-flight cap: an equal split of ``max_inflight``."""
        active = len(self._tenants)
        if active <= 1:
            return self.max_inflight
        return max(1, self.max_inflight // active)

    def _admit(self, tenant: str, extra: int = 0) -> bool:
        """Fair-share admission of one more speculative submission.

        ``extra`` counts submissions the caller has already accepted in
        the same wave (batched presynthesis admits incrementally).
        """
        if len(self._pending) + extra >= self.max_inflight:
            perf.incr("engine.prefetch.rejected")
            return False
        held = sum(1 for key in self._pending if key[0] == tenant) + extra
        if held >= self._tenant_share():
            self.fair_rejected += 1
            perf.incr("engine.prefetch.rejected")
            perf.incr("engine.fairshare.rejected")
            return False
        return True

    def _speculation_admitted(self) -> bool:
        """The admission floor: is there anything for speculation to overlap?

        With more than one registered tenant, speculation overlaps another
        assay's critical path; with a spare core it overlaps this assay's
        own planning thread.  A single tenant on a single core has
        neither — submitting would only move the same synthesis behind an
        IPC boundary.
        """
        if not self.admission_floor:
            return True
        if len(self._tenants) > 1:
            return True
        if (os.cpu_count() or 1) > 1:
            return True
        self.floor_skips += 1
        perf.incr("engine.prefetch.floor")
        return False

    def _gauge_wasted(self) -> None:
        ratio = self.wasted / self.submitted if self.submitted else 0.0
        perf.set_gauge("engine.speculation.wasted_ratio", round(ratio, 6))

    def __enter__(self) -> "SynthesisEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- fault handling ------------------------------------------------------

    def _record_fault(
        self, kind: FaultKind, detail: object, job_key: tuple | None = None
    ) -> None:
        """Count and journal one classified worker failure."""
        self.errors += 1
        self.faults[kind.value] = self.faults.get(kind.value, 0) + 1
        perf.incr("engine.errors")
        perf.incr(f"engine.fault.{kind.value}")
        obs.journal_event(
            "engine.fault",
            kind=kind.value,
            job=job_key,
            detail=detail if isinstance(detail, str) else repr(detail),
        )

    def _kill_worker_processes(self) -> None:
        """SIGKILL the pool's worker processes (reaping hung workers).

        ``ProcessPoolExecutor`` cannot cancel a *running* task — shutdown
        waits for it — so reclaiming a hung worker means killing the
        process outright.  Best-effort over the executor's internal
        process table; a worker that already died is skipped.
        """
        processes = getattr(self._executor, "_processes", None) or {}
        for proc in list(processes.values()):
            pid = getattr(proc, "pid", None)
            if pid is None:
                continue
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass

    def _degrade(self, reason: str) -> None:
        """Permanently fall back to the synchronous path (pool disabled)."""
        if self.degraded:
            return
        self.degraded = True
        perf.incr("engine.degraded")
        obs.journal_event(
            "engine.degraded", reason=reason, rebuilds=self.rebuilds
        )
        self._drop_all_speculations()
        if self._executor is not None:
            self._kill_worker_processes()
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _drop_all_speculations(self) -> None:
        # Abandon, never Future.cancel(): cancelling a queued work item of
        # a pool that later breaks makes the executor's terminate_broken
        # call set_exception on a CANCELLED future — the management thread
        # dies mid-cleanup and the call-queue feeder hangs the process at
        # exit.  shutdown(cancel_futures=True) cancels safely (it runs in
        # the management thread itself); abandoned futures cost at most
        # one wasted worker computation.
        leftover = len(self._pending)
        if leftover:
            self.wasted += leftover
            perf.incr("engine.prefetch.wasted", leftover)
        for spec in self._pending.values():
            self._note_unconsumed(spec)
        self._pending.clear()
        self._by_job.clear()
        self._gauge_wasted()

    # -- wasted-work telemetry salvage ---------------------------------------

    def _note_unconsumed(self, spec: _Speculation) -> None:
        """Queue a discarded speculation for telemetry salvage.

        A pending-missed / stale / reaped / dropped speculation's worker
        task usually completes *after* the engine gave up on it; its
        telemetry bundle (worker.solve span, metric delta) still describes
        real work and is merged once the future finishes — wasted worker
        computation is exactly what an operator wants visible in a trace.
        """
        if spec.future.done():
            self._salvage_telemetry(spec)
        else:
            self._zombies.append(spec)

    def _salvage_telemetry(self, spec: _Speculation) -> None:
        """Merge the telemetry of one completed, unconsumed speculation."""
        future = spec.future
        if not future.done() or future.cancelled():
            return
        if future.exception() is not None:
            return
        payload = future.result()
        if isinstance(payload, dict):
            telemetry = payload.pop("telemetry", None)
            if telemetry is not None:
                merge_telemetry(telemetry, parent_span_id=spec.span_id)

    def _drain_zombies(self, final: bool = False) -> None:
        """Salvage telemetry from discarded speculations that finished.

        Called opportunistically (futures complete roughly in submission
        order, so only the completed front is drained) and once more with
        ``final=True`` at close, where every remaining entry gets its last
        chance before the executor is torn down.
        """
        if final:
            while self._zombies:
                self._salvage_telemetry(self._zombies.popleft())
            return
        while self._zombies and self._zombies[0].future.done():
            self._salvage_telemetry(self._zombies.popleft())

    def _rebuild_pool(self) -> bool:
        """Replace a broken executor (backoff + budget); False = degraded.

        The old executor's workers are killed outright (a broken pool may
        still hold hung processes), the capped exponential backoff of the
        retry policy is paid, and the surviving in-flight speculations are
        resubmitted on the fresh pool within their retry budgets.
        """
        if self._executor is not None:
            self._kill_worker_processes()
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._closed:
            return False
        if self.rebuilds >= self.policy.rebuild_budget:
            self._degrade("rebuild budget exhausted")
            return False
        delay = self.policy.backoff(self.rebuilds)
        if delay > 0:
            time.sleep(delay)
        self.rebuilds += 1
        perf.incr("engine.rebuilds")
        obs.journal_event(
            "engine.rebuild", attempt=self.rebuilds, backoff_ms=delay * 1e3
        )
        try:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        except OSError as exc:
            self._record_fault(FaultKind.POOL, exc)
            self._degrade("executor re-creation failed")
            return False
        self._resubmit_inflight()
        return True

    def _resubmit_inflight(self) -> None:
        """Re-run the in-flight payloads on a freshly built pool.

        A pool breakage fails *every* in-flight future at once; the
        payloads themselves are (presumed) innocent, so each is retried on
        the new executor until its retry budget runs out.  The attempt
        number feeds the chaos token, so injected kills re-roll on retry.
        """
        survivors: dict[_EngineKey, _Speculation] = {}
        for key, spec in self._pending.items():
            if spec.attempts > self.policy.retries:
                self._by_job.pop(key[:2], None)
                self.wasted += 1
                perf.incr("engine.prefetch.wasted")
                continue
            attempts = spec.attempts + 1
            payload = dict(spec.payload)
            payload["chaos_token"] = _chaos_token(key, attempts)
            try:
                future = self._executor.submit(_worker_synthesize, payload)
            except (BrokenProcessPool, RuntimeError):
                self._by_job.pop(key[:2], None)
                self.wasted += 1
                perf.incr("engine.prefetch.wasted")
                continue
            self.retried += 1
            perf.incr("engine.retries")
            survivors[key] = _Speculation(
                future, spec.payload, time.monotonic(), attempts
            )
        self._pending = survivors
        self._gauge_wasted()

    def _reap(self, key: _EngineKey, spec: _Speculation) -> None:
        """Evict one overdue speculation; a hung worker forces a rebuild."""
        self._pending.pop(key, None)
        self._by_job.pop(key[:2], None)
        # No Future.cancel() here (see _drop_all_speculations); a queued
        # overdue item simply runs to waste, a *running* one is hung.
        hung = spec.future.running()
        self.deadline_reaps += 1
        self.wasted += 1
        perf.incr("engine.prefetch.deadline")
        perf.incr("engine.prefetch.wasted")
        self._gauge_wasted()
        self._note_unconsumed(spec)
        obs.journal_event(
            "engine.deadline",
            job=key[1],
            deadline_ms=self.policy.deadline_ms,
            attempts=spec.attempts,
            hung=hung,
        )
        if hung:
            # The worker is still executing the overdue payload and the
            # executor cannot take the slot back — kill and rebuild.
            self._rebuild_pool()

    def _reap_overdue(self, exclude: _EngineKey | None = None) -> None:
        """Sweep every in-flight speculation past its deadline.

        ``exclude`` protects the key the caller is about to consume, so
        :meth:`take` can report it as ``"deadline"`` itself instead of the
        sweep silently turning it into an ``"absent"``.
        """
        deadline = self.policy.deadline_s
        if deadline is None or not self._pending:
            return
        now = time.monotonic()
        overdue = [
            (key, spec)
            for key, spec in self._pending.items()
            if key != exclude
            and not spec.future.done()
            and now - spec.submitted_at > deadline
        ]
        for key, spec in overdue:
            if key in self._pending:  # a rebuild may have dropped it already
                self._reap(key, spec)

    # -- speculation ---------------------------------------------------------

    def submit(
        self,
        job: RoutingJob,
        health: np.ndarray,
        warm_values: dict | None = None,
        tenant: str = "",
    ) -> bool:
        """Speculatively synthesize ``(job, health)`` on the pool.

        At most one speculation per (tenant, job key) is in flight at a
        time, and the total in-flight count is bounded by ``max_inflight``
        split fairly across registered tenants; rejected submissions
        return ``False`` (the caller loses nothing — the job will fall
        back to synchronous synthesis).  Submission never raises: a broken
        or closed pool is counted, the pool is rebuilt when the budget
        allows, and ``False`` is returned — the scheduler loop must
        survive any engine state.
        """
        with self._lock:
            return self._submit(job, health, warm_values, tenant)

    def _submit(
        self,
        job: RoutingJob,
        health: np.ndarray,
        warm_values: dict | None,
        tenant: str,
    ) -> bool:
        if self._executor is None or self.degraded or self._closed:
            return False
        if not self._speculation_admitted():
            return False
        self._reap_overdue()
        if self._executor is None:  # a hung-worker reap may have degraded us
            return False
        job_key = job.key()
        if (tenant, job_key) in self._by_job:
            return False
        if not self._admit(tenant):
            return False
        fingerprint = health_fingerprint(health, job.hazard)
        key = (tenant, job_key, fingerprint)
        if key in self._no_plan:
            return False
        forces = force_field_from_health(
            health, bits=self.bits, pessimistic=self.pessimistic
        ).forces
        payload = {
            "job": job_to_payload(job),
            "forces": forces,
            "query": self.query,
            "max_aspect": self.max_aspect,
            "epsilon": self.epsilon,
            "warm_values": warm_values_to_payload(
                warm_values,
                side=side_for_objective(
                    None if self.query is None else self.query.objective
                ),
            ),
            "chaos_token": _chaos_token(key, 1),
        }
        telemetry = capture_config(corr=correlation_id(job_key, fingerprint))
        if telemetry is not None:
            payload["telemetry"] = telemetry
        try:
            with obs.span("engine.submit", job=job_key) as submit_span:
                future = self._executor.submit(_worker_synthesize, payload)
        except BrokenProcessPool as exc:
            # The pool died under us (worker OOM-kill / crash): classify,
            # rebuild within budget, and decline this submission — the job
            # simply synthesizes synchronously.
            self._record_fault(FaultKind.POOL, exc, job_key)
            self._rebuild_pool()
            return False
        except RuntimeError as exc:
            # Executor shut down concurrently (engine closed mid-cycle):
            # count and decline rather than crash the scheduler loop.
            self._record_fault(FaultKind.TRANSIENT, exc, job_key)
            return False
        self._pending[key] = _Speculation(
            future, payload, time.monotonic(),
            span_id=getattr(submit_span, "span_id", None),
        )
        self._by_job[(tenant, job_key)] = key
        self.submitted += 1
        perf.incr("engine.prefetch.submitted")
        return True

    def presynthesize_batch(
        self,
        items: "list[tuple[RoutingJob, dict | None]]",
        health: np.ndarray,
        tenant: str = "",
    ) -> int:
        """Speculatively synthesize a wave of jobs as one batched task.

        ``items`` pairs each routing job with its warm-start values (or
        ``None``).  All members share the sensed ``health``; jobs already
        in flight, already answered ``no-plan`` for this fingerprint, or
        past the in-flight budget (this tenant's fair share of it) are
        skipped.  The accepted members ship as a *single* pool task
        running the batched solver core — the worker shares graph
        precompute across same-shape members instead of re-deriving it per
        job — and each member is tracked as its own speculation, so
        :meth:`take` semantics (hit / stale / pending / error / deadline)
        are exactly those of per-job submission.  On a pool failure
        mid-flight, members retry as independent solo tasks.

        Without a pool (``workers=1`` or a degraded engine) the batch is
        solved synchronously in-process through the same batched kernel
        and parked as completed speculations — presynthesis still works,
        it just blocks the caller for the solve.  The admission floor only
        applies to the *pooled* path: the in-process batch is a synchronous
        computation the caller asked for, not speculation competing for a
        core.  Returns the number of jobs accepted.
        """
        with self._lock:
            return self._presynthesize_batch(items, health, tenant)

    def _presynthesize_batch(
        self,
        items: "list[tuple[RoutingJob, dict | None]]",
        health: np.ndarray,
        tenant: str,
    ) -> int:
        if self._closed or not items:
            return 0
        if self._executor is not None and not self._speculation_admitted():
            return 0
        self._reap_overdue()
        forces = force_field_from_health(
            health, bits=self.bits, pessimistic=self.pessimistic
        ).forces
        side = side_for_objective(
            None if self.query is None else self.query.objective
        )
        accepted: "list[tuple[_EngineKey, dict]]" = []
        for job, warm_values in items:
            job_key = job.key()
            if (tenant, job_key) in self._by_job:
                continue
            key = (tenant, job_key, health_fingerprint(health, job.hazard))
            if key in self._no_plan:
                continue
            if self._executor is not None and not self._admit(
                tenant, extra=len(accepted)
            ):
                continue
            solo = {
                "job": job_to_payload(job),
                "forces": forces,
                "query": self.query,
                "max_aspect": self.max_aspect,
                "epsilon": self.epsilon,
                "warm_values": warm_values_to_payload(
                    warm_values, side=side
                ),
                "chaos_token": _chaos_token(key, 1),
            }
            # Solo payloads carry their own capture config so a retry
            # after a pool rebuild (which resubmits members as independent
            # tasks) still propagates telemetry.
            telemetry = capture_config(corr=correlation_id(key[1], key[2]))
            if telemetry is not None:
                solo["telemetry"] = telemetry
            accepted.append((key, solo))
        if not accepted:
            return 0
        if self._executor is None:
            return self._presynthesize_sync(accepted)
        batch_payload = {
            "items": [
                {"job": solo["job"], "warm_values": solo["warm_values"]}
                for _, solo in accepted
            ],
            "forces": forces,
            "query": self.query,
            "max_aspect": self.max_aspect,
            "epsilon": self.epsilon,
            "chaos_token": (
                f"batch|{accepted[0][0][2].hex()}|n{len(accepted)}"
            ),
        }
        telemetry = capture_config(
            corr=f"batch@{accepted[0][0][2].hex()[:12]}*{len(accepted)}"
        )
        if telemetry is not None:
            batch_payload["telemetry"] = telemetry
        try:
            with obs.span(
                "engine.batch.submit", jobs=len(accepted)
            ) as batch_span:
                future = self._executor.submit(
                    _worker_synthesize_batch, batch_payload
                )
        except BrokenProcessPool as exc:
            self._record_fault(FaultKind.POOL, exc)
            self._rebuild_pool()
            return 0
        except RuntimeError as exc:
            self._record_fault(FaultKind.TRANSIENT, exc)
            return 0
        now = time.monotonic()
        batch_span_id = getattr(batch_span, "span_id", None)
        for index, (key, solo) in enumerate(accepted):
            self._pending[key] = _Speculation(
                future, solo, now, index=index, span_id=batch_span_id
            )
            self._by_job[key[:2]] = key
        self.submitted += len(accepted)
        perf.incr("engine.prefetch.submitted", len(accepted))
        perf.incr("engine.batch.submitted")
        obs.journal_event(
            "engine.batch.submit", jobs=len(accepted), pooled=True
        )
        return len(accepted)

    def _presynthesize_sync(
        self, accepted: "list[tuple[_EngineKey, dict]]"
    ) -> int:
        """Pool-less presynthesis: batched kernel in-process, parked done.

        The degraded / no-pool fallback of :meth:`presynthesize_batch`:
        the wave is solved synchronously through
        :func:`~repro.core.synthesis.synthesize_batch` and every result is
        stored as an already-completed speculation, so the consuming
        :meth:`take` path (and therefore routing) is unchanged.  Payloads
        go through the same wire-format round-trip as worker submissions
        to keep the two paths literally equivalent.
        """
        expected_side = side_for_objective(
            None if self.query is None else self.query.objective
        )
        field = MatrixForceField(
            np.asarray(accepted[0][1]["forces"], dtype=float)
        )
        jobs = [job_from_payload(solo["job"]) for _, solo in accepted]
        requests = [
            BatchRequest(
                job,
                field,
                warm_values=warm_values_from_payload(
                    solo["warm_values"], expected_side=expected_side
                ),
            )
            for job, (_, solo) in zip(jobs, accepted)
        ]
        with obs.span("engine.batch.submit", jobs=len(accepted), sync=True):
            batch_results = synthesize_batch(
                requests,
                query=self.query,
                max_aspect=self.max_aspect,
                epsilon=self.epsilon,
            )
        now = time.monotonic()
        for (key, solo), job, result in zip(accepted, jobs, batch_results):
            future: Future = Future()
            future.set_result(_result_payload(job, result))
            self._pending[key] = _Speculation(future, solo, now)
            self._by_job[key[:2]] = key
        self.submitted += len(accepted)
        perf.incr("engine.prefetch.submitted", len(accepted))
        perf.incr("engine.batch.submitted")
        obs.journal_event(
            "engine.batch.submit", jobs=len(accepted), pooled=False
        )
        return len(accepted)

    def take(
        self, job: RoutingJob, health: np.ndarray, tenant: str = ""
    ) -> tuple[str, RoutingStrategy | None]:
        """Consume a speculation for exactly ``(job, health)``.

        Never blocks: a result is either already done or reported as a
        miss.  Returns ``(status, strategy)`` with status one of:

        * ``"hit"`` — the speculation completed and matches; ``strategy``
          is the synthesized strategy (identical to what synchronous
          synthesis would return);
        * ``"no-plan"`` — completed and matching, but synthesis found no
          strategy (a definitive answer, same as the synchronous path);
        * ``"pending"`` — in flight but not done: the caller must fall
          back to synchronous synthesis.  The speculation is discarded
          (counted wasted) — the synchronous result will land in the
          library, so a later completion could never be consumed, and
          keeping the entry would block fresh resubmission of the key;
        * ``"stale"`` — the in-flight speculation was for an older health
          fingerprint; it is discarded so a fresh one can be submitted;
        * ``"deadline"`` — in flight past the deadline budget; reaped
          (a hung worker additionally forces a pool rebuild);
        * ``"absent"`` — nothing in flight for this job;
        * ``"error"`` — the worker failed; the fault is classified
          (pool / transient / payload), a broken pool is rebuilt within
          budget, and the caller falls back to synchronous synthesis.
        """
        with self._lock:
            return self._take(job, health, tenant)

    def _take(
        self, job: RoutingJob, health: np.ndarray, tenant: str
    ) -> tuple[str, RoutingStrategy | None]:
        job_key = job.key()
        self._drain_zombies()
        self._reap_overdue(exclude=self._by_job.get((tenant, job_key)))
        inflight = self._by_job.get((tenant, job_key))
        if inflight is None:
            return ("absent", None)
        fingerprint = health_fingerprint(health, job.hazard)
        if inflight != (tenant, job_key, fingerprint):
            self._discard(inflight)
            self.stale += 1
            perf.incr("engine.prefetch.stale")
            return ("stale", None)
        spec = self._pending.get(inflight)
        if spec is None:  # dropped by a rebuild triggered mid-sweep
            return ("absent", None)
        if not spec.future.done():
            deadline = self.policy.deadline_s
            if (
                deadline is not None
                and time.monotonic() - spec.submitted_at > deadline
            ):
                self._reap(inflight, spec)
                return ("deadline", None)
            self.misses += 1
            perf.incr("engine.prefetch.misses")
            # Pending-miss: the caller synthesizes synchronously and caches
            # the result in the library, so this speculation can never be
            # consumed — discard it (counted wasted) to unblock the key.
            self._discard(inflight)
            return ("pending", None)
        self._pending.pop(inflight, None)
        self._by_job.pop((tenant, job_key), None)
        with obs.span("engine.wait", job=job_key):
            try:
                payload = spec.future.result()
            except (Exception, CancelledError) as exc:
                kind = classify_failure(exc)
                self._record_fault(kind, exc, job_key)
                if kind is FaultKind.POOL:
                    self._rebuild_pool()
                return ("error", None)
        # Worker telemetry rides the top-level result payload; pop it
        # *before* selecting a batch member's slot so the bundle (shared by
        # every member of a batched task) merges exactly once — the first
        # consuming take grafts it, later members find it already gone.
        telemetry = payload.pop("telemetry", None)
        if telemetry is not None:
            merge_telemetry(telemetry, parent_span_id=spec.span_id)
        if spec.index is not None:
            # One member of a batched submission: select its slot.
            payload = payload["results"][spec.index]
        self.hits += 1
        perf.incr("engine.prefetch.hits")
        if payload["strategy"] is None:
            self._no_plan.add(inflight)
            return ("no-plan", None)
        return ("hit", RoutingStrategy.from_payload(payload["strategy"]))

    def _discard(self, key: _EngineKey) -> None:
        spec = self._pending.pop(key, None)
        self._by_job.pop(key[:2], None)
        if spec is not None:  # abandoned, not cancelled — see _drop_all
            self.wasted += 1
            perf.incr("engine.prefetch.wasted")
            self._gauge_wasted()
            self._note_unconsumed(spec)

    def worker_pids(self) -> list[int]:
        """Pids of the pool's live worker processes (empty when poolless).

        Best-effort over the executor's internal process table — the same
        table :meth:`_kill_worker_processes` uses — for the telemetry
        pump's per-worker resource/liveness sampling.
        """
        processes = getattr(self._executor, "_processes", None) or {}
        return [pid for pid in list(processes.keys()) if pid is not None]

    # -- persistent store façade ----------------------------------------------

    def store_get(
        self, job: RoutingJob, health: np.ndarray
    ) -> RoutingStrategy | None:
        if self.store is None:
            return None
        return self.store.get(job, health)

    def store_put(
        self, job: RoutingJob, health: np.ndarray, strategy: RoutingStrategy
    ) -> None:
        if self.store is not None:
            self.store.put(job, health, strategy)

    # -- stats ---------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        with self._lock:
            self._gauge_wasted()
            out = {
                "submitted": self.submitted,
                "hits": self.hits,
                "misses": self.misses,
                "stale": self.stale,
                "wasted": self.wasted,
                "errors": self.errors,
                "rebuilds": self.rebuilds,
                "retries": self.retried,
                "deadline_reaps": self.deadline_reaps,
                "fair_rejected": self.fair_rejected,
                "floor_skips": self.floor_skips,
                "degraded": int(self.degraded),
                "inflight": len(self._pending),
                "tenants": len(self._tenants),
            }
            for kind, count in self.faults.items():
                out[f"fault_{kind}"] = count
        if self.store is not None:
            out.update({f"store_{k}": v for k, v in self.store.counters().items()})
        return out


class TenantView:
    """One assay's handle on a shared :class:`SynthesisEngine`.

    Exposes exactly the engine surface the router/scheduler stack consumes
    (``submit``/``take``/``presynthesize_batch``, the store façade, and the
    ``pooled``/``degraded``/``rebuilds``/``prefetch_enabled`` attributes),
    with every speculation namespaced by the tenant name — concurrent
    assays on one shared engine can never consume, evict, or block each
    other's speculations, so each assay routes exactly as it would with a
    private engine.  The store façade is shared deliberately: store entries
    are keyed by (job, health fingerprint) alone, which is what lets one
    assay's synthesis warm another's.

    :meth:`close` releases the tenant (its in-flight speculations are
    discarded and counted wasted) without touching the shared engine.
    """

    def __init__(self, engine: SynthesisEngine, name: str) -> None:
        self._engine = engine
        self.name = name

    @property
    def pooled(self) -> bool:
        return self._engine.pooled

    @property
    def degraded(self) -> bool:
        return self._engine.degraded

    @property
    def rebuilds(self) -> int:
        return self._engine.rebuilds

    @property
    def prefetch_enabled(self) -> bool:
        return self._engine.prefetch_enabled

    @property
    def store(self) -> StrategyStore | None:
        return self._engine.store

    def submit(
        self,
        job: RoutingJob,
        health: np.ndarray,
        warm_values: dict | None = None,
    ) -> bool:
        return self._engine.submit(
            job, health, warm_values, tenant=self.name
        )

    def take(
        self, job: RoutingJob, health: np.ndarray
    ) -> tuple[str, RoutingStrategy | None]:
        return self._engine.take(job, health, tenant=self.name)

    def invalidate(self, job: RoutingJob) -> bool:
        return self._engine.invalidate(job, tenant=self.name)

    def presynthesize_batch(
        self,
        items: "list[tuple[RoutingJob, dict | None]]",
        health: np.ndarray,
    ) -> int:
        return self._engine.presynthesize_batch(
            items, health, tenant=self.name
        )

    def store_get(
        self, job: RoutingJob, health: np.ndarray
    ) -> RoutingStrategy | None:
        return self._engine.store_get(job, health)

    def store_put(
        self, job: RoutingJob, health: np.ndarray, strategy: RoutingStrategy
    ) -> None:
        self._engine.store_put(job, health, strategy)

    def counters(self) -> dict[str, int]:
        return self._engine.counters()

    def close(self) -> None:
        self._engine.release_tenant(self.name)

    def __enter__(self) -> "TenantView":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
