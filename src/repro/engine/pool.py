"""The parallel synthesis engine: speculative multi-worker pre-synthesis.

Per-RJ strategy synthesis is the dominant cost of a bioassay execution
(Table V); the hybrid scheduler pays it serially, at MO-activation time, on
the planning thread.  The :class:`SynthesisEngine` moves that work onto a
``ProcessPoolExecutor``:

* **submission** ships a pickle-safe payload — the routing job, the force
  matrix derived from the sensed health, the query and epsilon, plus any
  warm-start values — to a worker that runs the ordinary
  :func:`~repro.core.synthesis.synthesize_with_field` and returns a compact
  ``{pattern: action, values}`` payload (no model object crosses the
  process boundary);
* **consumption** (:meth:`take`) matches results by the exact
  ``(job key, health fingerprint)`` pair.  A speculation computed for an
  older health state is *stale* and discarded; a result still in flight
  when the strategy is needed is a *miss* and the caller synthesizes
  synchronously.  Speculation therefore only ever changes latency, never
  routing decisions: any strategy it yields is the one synchronous
  synthesis would have produced for the same job and health.

Warm-start values are captured at submission time.  That matches the
synchronous path because warm values are keyed by job key and only change
when that same key is re-solved — and a re-solve installs a library entry
that takes precedence over any speculation.

The engine also fronts the persistent :class:`~repro.engine.store.StrategyStore`
(``store_get``/``store_put``) so the router has a single speculation façade.
Counters: ``engine.prefetch.{submitted,hits,misses,stale,wasted,rejected}``,
``engine.errors``; spans: ``engine.submit`` / ``engine.wait``.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor

import numpy as np

from repro import obs, perf
from repro.core.actions import DEFAULT_MAX_ASPECT
from repro.core.routing_job import RoutingJob
from repro.core.strategy import (
    RoutingStrategy,
    health_fingerprint,
    job_from_payload,
    job_to_payload,
    strategy_from_synthesis,
)
from repro.core.synthesis import (
    SYNTHESIS_EPSILON,
    force_field_from_health,
    synthesize_with_field,
)
from repro.core.transitions import MatrixForceField
from repro.engine.payload import (
    side_for_objective,
    warm_values_from_payload,
    warm_values_to_payload,
)
from repro.engine.store import StrategyStore
from repro.modelcheck.properties import Query

_EngineKey = tuple[tuple[int, ...], bytes]


def _worker_synthesize(payload: dict) -> dict:
    """Worker-side synthesis: plain payloads in, plain payloads out.

    Runs in a pool process; must stay importable at module level so the
    executor can pickle a reference to it.
    """
    job = job_from_payload(payload["job"])
    field = MatrixForceField(np.asarray(payload["forces"], dtype=float))
    query = payload["query"]
    # Validate the seed's bounding side against the query it will warm:
    # a mismatch is a submission bug and must fail here, not silently
    # degrade into a rejected seed inside the solver.
    expected_side = side_for_objective(
        None if query is None else query.objective
    )
    result = synthesize_with_field(
        job,
        field,
        query=query,
        max_aspect=payload["max_aspect"],
        epsilon=payload["epsilon"],
        warm_values=warm_values_from_payload(
            payload["warm_values"], expected_side=expected_side
        ),
    )
    strategy = strategy_from_synthesis(job, result)
    return {
        "strategy": None if strategy is None else strategy.to_payload(),
        "expected_cycles": result.expected_cycles,
        "construct_ms": result.construction_time * 1e3,
        "solve_ms": result.solve_time * 1e3,
    }


def resolve_workers(workers: int) -> int:
    """``0`` means "all cores"; anything below 2 disables the pool."""
    if workers == 0:
        return os.cpu_count() or 1
    return workers


class SynthesisEngine:
    """Speculative synthesis execution: worker pool + persistent store.

    ``workers`` — pool size; ``0`` = one per core, ``1`` = no pool (the
    engine then only fronts the store).  ``prefetch`` — whether the
    scheduler's per-cycle speculative prefetch is enabled (pre-synthesis
    via :meth:`~repro.core.scheduler.HybridScheduler.presynthesize` is the
    caller's explicit choice either way).  The synthesis parameters must
    match the router's — they are baked into every worker payload.
    """

    def __init__(
        self,
        workers: int = 0,
        *,
        bits: int = 2,
        query: Query | None = None,
        max_aspect: float = DEFAULT_MAX_ASPECT,
        pessimistic: bool = False,
        epsilon: float = SYNTHESIS_EPSILON,
        store: StrategyStore | None = None,
        prefetch: bool = True,
        max_inflight: int = 128,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.workers = resolve_workers(workers)
        self.bits = bits
        self.query = query
        self.max_aspect = max_aspect
        self.pessimistic = pessimistic
        self.epsilon = epsilon
        self.store = store
        self.prefetch_enabled = prefetch
        self.max_inflight = max_inflight
        self._executor: ProcessPoolExecutor | None = (
            ProcessPoolExecutor(max_workers=self.workers)
            if self.workers > 1
            else None
        )
        self._pending: dict[_EngineKey, Future] = {}
        self._by_job: dict[tuple[int, ...], _EngineKey] = {}
        # Consumed speculations that found no plan: a definitive answer for
        # that exact key (the library never caches None), so don't resubmit.
        self._no_plan: set[_EngineKey] = set()
        self.submitted = 0
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.wasted = 0
        self.errors = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def pooled(self) -> bool:
        """Whether a worker pool is actually running."""
        return self._executor is not None

    def close(self) -> None:
        """Shut the pool down; unconsumed speculations count as wasted."""
        leftover = len(self._pending)
        if leftover:
            self.wasted += leftover
            perf.incr("engine.prefetch.wasted", leftover)
        for fut in self._pending.values():
            fut.cancel()
        self._pending.clear()
        self._by_job.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "SynthesisEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- speculation ---------------------------------------------------------

    def submit(
        self,
        job: RoutingJob,
        health: np.ndarray,
        warm_values: dict | None = None,
    ) -> bool:
        """Speculatively synthesize ``(job, health)`` on the pool.

        At most one speculation per job key is in flight at a time, and the
        total in-flight count is bounded by ``max_inflight``; rejected
        submissions return ``False`` (the caller loses nothing — the job
        will fall back to synchronous synthesis).
        """
        if self._executor is None:
            return False
        job_key = job.key()
        if job_key in self._by_job:
            return False
        if len(self._pending) >= self.max_inflight:
            perf.incr("engine.prefetch.rejected")
            return False
        fingerprint = health_fingerprint(health, job.hazard)
        key = (job_key, fingerprint)
        if key in self._no_plan:
            return False
        forces = force_field_from_health(
            health, bits=self.bits, pessimistic=self.pessimistic
        ).forces
        payload = {
            "job": job_to_payload(job),
            "forces": forces,
            "query": self.query,
            "max_aspect": self.max_aspect,
            "epsilon": self.epsilon,
            "warm_values": warm_values_to_payload(
                warm_values,
                side=side_for_objective(
                    None if self.query is None else self.query.objective
                ),
            ),
        }
        with obs.span("engine.submit", job=job_key):
            future = self._executor.submit(_worker_synthesize, payload)
        self._pending[key] = future
        self._by_job[job_key] = key
        self.submitted += 1
        perf.incr("engine.prefetch.submitted")
        return True

    def take(
        self, job: RoutingJob, health: np.ndarray
    ) -> tuple[str, RoutingStrategy | None]:
        """Consume a speculation for exactly ``(job, health)``.

        Returns ``(status, strategy)`` with status one of:

        * ``"hit"`` — the speculation completed and matches; ``strategy``
          is the synthesized strategy (identical to what synchronous
          synthesis would return);
        * ``"no-plan"`` — completed and matching, but synthesis found no
          strategy (a definitive answer, same as the synchronous path);
        * ``"pending"`` — in flight but not done: the caller must fall
          back to synchronous synthesis (the speculation becomes wasted);
        * ``"stale"`` — the in-flight speculation was for an older health
          fingerprint; it is discarded so a fresh one can be submitted;
        * ``"absent"`` — nothing in flight for this job;
        * ``"error"`` — the worker raised; treated as a miss.
        """
        job_key = job.key()
        inflight = self._by_job.get(job_key)
        if inflight is None:
            return ("absent", None)
        fingerprint = health_fingerprint(health, job.hazard)
        if inflight != (job_key, fingerprint):
            self._discard(inflight)
            self.stale += 1
            perf.incr("engine.prefetch.stale")
            return ("stale", None)
        future = self._pending[inflight]
        if not future.done():
            self.misses += 1
            perf.incr("engine.prefetch.misses")
            return ("pending", None)
        self._pending.pop(inflight, None)
        self._by_job.pop(job_key, None)
        with obs.span("engine.wait", job=job_key):
            try:
                payload = future.result()
            except Exception:
                self.errors += 1
                perf.incr("engine.errors")
                return ("error", None)
        self.hits += 1
        perf.incr("engine.prefetch.hits")
        if payload["strategy"] is None:
            self._no_plan.add(inflight)
            return ("no-plan", None)
        return ("hit", RoutingStrategy.from_payload(payload["strategy"]))

    def _discard(self, key: _EngineKey) -> None:
        future = self._pending.pop(key, None)
        self._by_job.pop(key[0], None)
        if future is not None:
            future.cancel()
            self.wasted += 1
            perf.incr("engine.prefetch.wasted")

    # -- persistent store façade ----------------------------------------------

    def store_get(
        self, job: RoutingJob, health: np.ndarray
    ) -> RoutingStrategy | None:
        if self.store is None:
            return None
        return self.store.get(job, health)

    def store_put(
        self, job: RoutingJob, health: np.ndarray, strategy: RoutingStrategy
    ) -> None:
        if self.store is not None:
            self.store.put(job, health, strategy)

    # -- stats ---------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        out = {
            "submitted": self.submitted,
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "wasted": self.wasted,
            "errors": self.errors,
            "inflight": len(self._pending),
        }
        if self.store is not None:
            out.update({f"store_{k}": v for k, v in self.store.counters().items()})
        return out
