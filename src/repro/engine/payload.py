"""Wire-format helpers for cross-process synthesis payloads.

The engine ships everything between processes as plain dicts/lists (see
``RoutingStrategy.to_payload`` / ``MemorylessStrategy.to_payload``); the
only encoding that lives here is the warm-start value map, whose keys are
routing-model states (Rect patterns or label strings) like a strategy's
``values``.
"""

from __future__ import annotations

from repro.modelcheck.strategy import _state_from_token, _state_token


def warm_values_to_payload(warm_values: dict | None) -> list | None:
    """Encode a ``{pattern: value}`` warm-start map as token pairs."""
    if warm_values is None:
        return None
    return [[_state_token(s), float(v)] for s, v in warm_values.items()]


def warm_values_from_payload(payload: list | None) -> dict | None:
    """Inverse of :func:`warm_values_to_payload`."""
    if payload is None:
        return None
    return {_state_from_token(t): float(v) for t, v in payload}
