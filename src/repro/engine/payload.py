"""Wire-format helpers for cross-process synthesis payloads.

The engine ships everything between processes as plain dicts/lists (see
``RoutingStrategy.to_payload`` / ``MemorylessStrategy.to_payload``); the
only encoding that lives here is the warm-start value map, whose keys are
routing-model states (Rect patterns or label strings) like a strategy's
``values``.

Since the solver became two-sided (interval value iteration), a warm seed
is only meaningful for one *side* of the bracket: reward and ``Pmax``
seeds warm the monotone lower iterate, ``Pmin`` seeds the upper one.  The
payload therefore carries an explicit ``side`` tag, and rehydration
validates it against the side the consuming query needs —
cross-objective reuse of a cached seed (e.g. feeding ``Rmin`` values to a
``Pmin`` solve) now fails loudly at the process boundary instead of being
silently rejected deep inside the solver.
"""

from __future__ import annotations

from repro.modelcheck.strategy import _state_from_token, _state_token

#: Valid bounding sides for a warm-start seed.
SEED_SIDES = ("lower", "upper")


def correlation_id(job_key: tuple, fingerprint: bytes) -> str:
    """A compact correlation id for one ``(job, health)`` submission.

    Stamped onto worker-side spans and replayed journal events (see
    :mod:`repro.obs.propagate`) so a merged trace/journal can be filtered
    back to the exact speculation that produced each record.  Human-legible
    on purpose: the job key verbatim, plus a fingerprint prefix long enough
    to disambiguate concurrent health states.
    """
    return f"{','.join(map(str, job_key))}@{fingerprint.hex()[:12]}"


def side_for_objective(objective) -> str:
    """The interval side a warm seed feeds for a query objective.

    ``Pmin`` iterates its contracting bound downward from 1 (the upper
    side); every other objective (``Pmax``, ``Rmin``, ``Rmax``) warms the
    monotone lower iterate.  Accepts an ``Objective`` or ``None`` (the
    engine's "default query" — a reward query, hence lower).
    """
    return "upper" if getattr(objective, "name", None) == "PMIN" else "lower"


def warm_values_to_payload(
    warm_values: dict | None, side: str = "lower"
) -> dict | None:
    """Encode a ``{pattern: value}`` warm-start map with its bounding side."""
    if warm_values is None:
        return None
    if side not in SEED_SIDES:
        raise ValueError(f"unknown warm-seed side {side!r}")
    return {
        "side": side,
        "entries": [[_state_token(s), float(v)] for s, v in warm_values.items()],
    }


def warm_values_from_payload(
    payload: "dict | list | None", expected_side: str | None = None
) -> dict | None:
    """Inverse of :func:`warm_values_to_payload`, validating the side tag.

    ``expected_side`` is the side the consuming solve will feed the seed
    into; a mismatched payload raises ``ValueError`` (a wrong-side seed is
    a caller bug — it would at best be rejected by the solver's Bellman
    validation, at worst mask a query mix-up).  Bare lists (the pre-side
    wire format, still produced by in-memory round-trip callers) default
    to ``"lower"``.
    """
    if payload is None:
        return None
    if isinstance(payload, dict):
        side = payload.get("side")
        if side not in SEED_SIDES:
            raise ValueError(f"warm-seed payload has invalid side {side!r}")
        entries = payload["entries"]
    else:
        side = "lower"
        entries = payload
    if expected_side is not None and side != expected_side:
        raise ValueError(
            f"warm-seed payload is {side}-side but the query needs "
            f"{expected_side}-side values"
        )
    return {_state_from_token(t): float(v) for t, v in entries}
