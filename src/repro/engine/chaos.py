"""Deterministic chaos injection for the synthesis engine.

The fault-tolerance layer (:mod:`repro.engine.faults`) claims a bioassay
run survives worker kills, hung workers, payload crashes, and corrupted
strategy-store rows.  This module makes those faults *injectable and
reproducible* so the claim is testable: ``tests/test_engine_faults.py``
and ``benchmarks/bench_chaos.py`` run whole assays under injection and
assert bit-identical routing against a fault-free serial run.

Determinism is the whole point.  Every decision is a pure function of
``(seed, fault site, decision token)`` — a SHA-256 draw, no global RNG, no
wall clock — so the same seed injects the same faults at the same payloads
run after run, regardless of worker scheduling.  The decision token
includes the submission *attempt*, so a payload killed on attempt 1 is
(typically) allowed through on its retry: injected kills behave like the
transient faults they simulate rather than a deterministic death loop.

Activation is process-wide and environment-propagated: :func:`activate`
stores the config in ``REPRO_CHAOS`` / ``REPRO_CHAOS_SEED`` so pool worker
processes (which inherit the environment) rebuild the same injector.  The
spec grammar (also the CLI's ``--chaos`` argument)::

    kill=0.1,raise=0.05,delay=0.1:250,store=0.2,seed=7

* ``kill=P`` — worker calls ``os._exit(1)`` mid-synthesis (an OOM-kill /
  segfault stand-in; surfaces as ``BrokenProcessPool``);
* ``raise=P`` — worker raises :class:`ChaosInjectedError` (a
  deterministic payload error);
* ``delay=P[:MS]`` — worker sleeps ``MS`` milliseconds (default 250)
  before synthesizing (a hung/slow worker; exercises deadlines);
* ``store=P`` — a :class:`~repro.engine.store.StrategyStore` row is
  garbled on write (exercises the corruption-tolerance path);
* ``seed=N`` — the decision seed (``REPRO_CHAOS_SEED`` overrides it).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, replace

ENV_SPEC = "REPRO_CHAOS"
ENV_SEED = "REPRO_CHAOS_SEED"


class ChaosInjectedError(RuntimeError):
    """The deterministic payload error raised by ``raise=`` injection."""


@dataclass(frozen=True)
class ChaosConfig:
    """Probabilities (all in ``[0, 1]``) and parameters of the injector."""

    seed: int = 0
    kill_p: float = 0.0
    raise_p: float = 0.0
    delay_p: float = 0.0
    delay_ms: float = 250.0
    store_p: float = 0.0

    def __post_init__(self) -> None:
        for name in ("kill_p", "raise_p", "delay_p", "store_p"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.delay_ms < 0:
            raise ValueError("delay_ms cannot be negative")

    @property
    def active(self) -> bool:
        return any((self.kill_p, self.raise_p, self.delay_p, self.store_p))

    def to_spec(self) -> str:
        """The ``kill=...,raise=...`` spec string (round-trips parse_spec)."""
        parts = []
        if self.kill_p:
            parts.append(f"kill={self.kill_p!r}")
        if self.raise_p:
            parts.append(f"raise={self.raise_p!r}")
        if self.delay_p:
            parts.append(f"delay={self.delay_p!r}:{self.delay_ms!r}")
        if self.store_p:
            parts.append(f"store={self.store_p!r}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


def parse_spec(spec: str) -> ChaosConfig:
    """Parse a ``kill=0.1,delay=0.05:100,seed=3`` spec into a config."""
    kwargs: dict[str, float | int] = {}
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        if "=" not in raw:
            raise ValueError(f"chaos spec entry {raw!r} is not key=value")
        key, _, value = raw.partition("=")
        key = key.strip()
        try:
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "delay":
                prob, _, ms = value.partition(":")
                kwargs["delay_p"] = float(prob)
                if ms:
                    kwargs["delay_ms"] = float(ms)
            elif key in ("kill", "raise", "store"):
                kwargs[f"{key}_p"] = float(value)
            else:
                raise ValueError(
                    f"unknown chaos key {key!r} "
                    f"(expected kill/raise/delay/store/seed)"
                )
        except ValueError as exc:
            # Re-raise float()/int() parse errors with the entry context.
            raise ValueError(f"bad chaos spec entry {raw!r}: {exc}") from None
    return ChaosConfig(**kwargs)  # type: ignore[arg-type]


class ChaosInjector:
    """Seeded, token-addressed fault decisions (pure SHA-256 draws)."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self._seed = str(config.seed).encode()

    def draw(self, site: str, token: str) -> float:
        """A uniform [0, 1) draw determined by (seed, site, token)."""
        digest = hashlib.sha256(
            self._seed + b"|" + site.encode() + b"|" + token.encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    # -- worker-side faults --------------------------------------------------

    def worker_inject(self, token: str) -> None:
        """Run the worker-side fault gauntlet for one payload.

        Checked in severity order: a kill pre-empts a raise pre-empts a
        delay.  ``token`` must identify the payload *and* its submission
        attempt (see :mod:`repro.engine.pool`) so retries re-roll.
        """
        cfg = self.config
        if cfg.kill_p and self.draw("kill", token) < cfg.kill_p:
            os._exit(1)  # abrupt worker death, as an OOM-kill would be
        if cfg.raise_p and self.draw("raise", token) < cfg.raise_p:
            raise ChaosInjectedError(f"chaos: injected payload error ({token})")
        if cfg.delay_p and self.draw("delay", token) < cfg.delay_p:
            time.sleep(cfg.delay_ms / 1e3)

    # -- store-side faults ---------------------------------------------------

    def corrupt_payload(self, token: str, payload: str) -> str:
        """Maybe garble a strategy-store row payload before it is written."""
        cfg = self.config
        if cfg.store_p and self.draw("store", token) < cfg.store_p:
            return payload[: max(1, len(payload) // 2)] + "\x00<chaos-garbled>"
        return payload


_injector: ChaosInjector | None = None
_loaded_from_env = False


def activate(config: ChaosConfig) -> ChaosInjector:
    """Install ``config`` process-wide and export it to the environment.

    Exporting matters: pool workers are separate processes and rebuild
    their injector from ``REPRO_CHAOS``/``REPRO_CHAOS_SEED`` on first use.
    """
    global _injector, _loaded_from_env
    _injector = ChaosInjector(config)
    _loaded_from_env = False
    os.environ[ENV_SPEC] = config.to_spec()
    os.environ[ENV_SEED] = str(config.seed)
    return _injector


def deactivate() -> None:
    """Remove the active injector and scrub the environment."""
    global _injector, _loaded_from_env
    _injector = None
    _loaded_from_env = False
    os.environ.pop(ENV_SPEC, None)
    os.environ.pop(ENV_SEED, None)


def injector() -> ChaosInjector | None:
    """The active injector, lazily constructed from the environment.

    Returns ``None`` when chaos is off (no :func:`activate` call and no
    ``REPRO_CHAOS`` in the environment) — the hooks in the worker and the
    store stay free in that case.
    """
    global _injector, _loaded_from_env
    if _injector is None and not _loaded_from_env:
        _loaded_from_env = True
        spec = os.environ.get(ENV_SPEC)
        if spec:
            config = parse_spec(spec)
            seed_override = os.environ.get(ENV_SEED)
            if seed_override is not None:
                config = replace(config, seed=int(seed_override))
            _injector = ChaosInjector(config)
    return _injector
