"""repro — reproduction of *Formal Synthesis of Adaptive Droplet Routing for
MEDA Biochips* (Elfar, Liang, Chakrabarty, Pajic — DATE 2021).

The package is layered bottom-up:

* :mod:`repro.geometry` — discrete rectangle algebra;
* :mod:`repro.circuits` — the microelectrode-cell sensing circuit (Fig. 1-2);
* :mod:`repro.degradation` — the charge-trapping model, its simulated PCB
  validation (Figs. 5-6) and fault injection;
* :mod:`repro.modelcheck` — explicit-state MDP/SMG model checking (the
  PRISM-games substitute);
* :mod:`repro.core` — the paper's contribution: droplet/actuation model,
  routing jobs, strategy synthesis, hybrid scheduler, baseline router;
* :mod:`repro.biochip` — the MEDA biochip simulator (Fig. 14);
* :mod:`repro.bioassay` — sequencing graphs, placement planner, and the
  benchmark bioassay suite;
* :mod:`repro.analysis` — evaluation metrics and table/figure rendering.

Quickstart::

    import numpy as np
    from repro.bioassay import covid_rat, plan
    from repro.biochip import MedaChip, MedaSimulator
    from repro.core import AdaptiveRouter, HybridScheduler

    chip = MedaChip.sample(60, 30, np.random.default_rng(1))
    graph = plan(covid_rat(), chip.width, chip.height)
    scheduler = HybridScheduler(graph, AdaptiveRouter(), chip.width, chip.height)
    result = MedaSimulator(chip, np.random.default_rng(2)).run(scheduler, 500)
    print(result.success, result.cycles)
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "bioassay",
    "biochip",
    "circuits",
    "core",
    "degradation",
    "geometry",
    "modelcheck",
]
