"""Process-global performance metrics for the synthesis stack.

Historically a flat ``dict`` of sums; now a facade over the typed
instruments in :mod:`repro.obs.metrics` so hot-path latencies get real
distributions (p50/p90/p99) instead of just totals.  The original API is
kept verbatim as shims — every pre-existing call site still works:

* :func:`incr` — monotone event counters (`synthesis.count`,
  `fastmdp.shape_memo.hit`, `vi.warm.solves`, ...);
* :func:`add_time` / :func:`timer` — accumulated wall time per phase
  (`synthesis.construct_seconds`, `synthesis.solve_seconds`, ...);
* :func:`snapshot` — a plain ``dict`` copy for benches and JSON reports
  (histograms contribute ``<name>.count``/``.sum``/``.p50``-style keys);
* :func:`reset` — zero everything (benches call this between configs).

New typed entry points:

* :func:`observe` — record one sample into a fixed-bucket histogram
  (default buckets suit millisecond latencies; pass ``bounds`` otherwise);
* :func:`set_gauge` — last-write-wins levels (library sizes, ...);
* :func:`percentiles` / :func:`histogram_summaries` — distribution queries.

Counter naming convention: ``<layer>.<event>`` with dotted sub-events;
time accumulators end in ``_seconds``; histograms of milliseconds end in
``_ms``.  The canonical counters are listed in README.md ("Performance"
and "Observability" sections).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterable, Iterator

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "incr", "add_time", "timer", "get", "snapshot", "reset", "report",
    "observe", "set_gauge", "percentiles", "histogram", "histogram_summaries",
    "registry", "swap_registry", "merge",
    "DEFAULT_LATENCY_BUCKETS_MS", "DEFAULT_COUNT_BUCKETS",
]

_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry (exposed for tests and benches)."""
    return _registry


def swap_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Install ``new`` as the process-global registry; returns the old one.

    The cross-process capture (:mod:`repro.obs.propagate`) swaps a fresh
    registry in for the duration of one worker task so the task's metrics
    are an exact, mergeable delta — min/max and bucket counts included —
    then swaps back and folds the delta into the worker's own totals.
    """
    global _registry
    old = _registry
    _registry = new
    return old


def merge(state: dict) -> None:
    """Fold an exported metric state (a worker-side delta) into the registry."""
    _registry.merge(state)


# -- original flat-counter API (shims over typed instruments) ---------------


def incr(name: str, amount: float = 1) -> None:
    """Increment an event counter."""
    _registry.incr(name, amount)


def add_time(name: str, seconds: float) -> None:
    """Accumulate wall time under ``name`` (convention: ``*_seconds``)."""
    _registry.incr(name, seconds)


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate the wall time of the ``with`` body under ``name``."""
    t0 = perf_counter()
    try:
        yield
    finally:
        _registry.incr(name, perf_counter() - t0)


def get(name: str, default: float = 0) -> float:
    """Current value of one counter or gauge (0 when never touched)."""
    return _registry.get(name, default)


def snapshot() -> dict[str, float]:
    """A copy of every metric, for reports and JSON dumps."""
    return _registry.snapshot()


def reset() -> None:
    """Zero the registry (benches call this between configurations)."""
    _registry.reset()


# -- typed instruments -------------------------------------------------------


def observe(
    name: str, value: float, bounds: Iterable[float] | None = None
) -> None:
    """Record one sample into the histogram ``name``.

    ``bounds`` (bucket upper bounds) applies only on first use; the default
    is :data:`DEFAULT_LATENCY_BUCKETS_MS`.
    """
    _registry.observe(name, value, bounds=bounds)


def set_gauge(name: str, value: float) -> None:
    """Set the gauge ``name`` to ``value``."""
    _registry.set_gauge(name, value)


def histogram(name: str, bounds: Iterable[float] | None = None) -> Histogram:
    """The named histogram instrument (created on first use)."""
    return _registry.histogram(name, bounds)


def percentiles(name: str, qs: Iterable[float] = (0.5, 0.9, 0.99)) -> dict[str, float]:
    """``{"p50": ..., ...}`` for one histogram (empty dict if absent)."""
    summaries = _registry.histogram_summaries()
    if name not in summaries:
        return {}
    return _registry.histogram(name).percentiles(qs)


def histogram_summaries() -> dict[str, dict[str, float]]:
    """Summary stats of every histogram."""
    return _registry.histogram_summaries()


def report() -> str:
    """Human-readable multi-line dump, sorted by metric name."""
    snap = snapshot()
    if not snap:
        return "(no perf counters recorded)"
    width = max(len(k) for k in snap)
    lines = []
    for name in sorted(snap):
        value = snap[name]
        if isinstance(value, float) and value != value:  # NaN (empty hist)
            shown = "-"
        elif isinstance(value, float) and not float(value).is_integer():
            shown = f"{value:.6f}".rstrip("0").rstrip(".")
        else:
            shown = f"{int(value)}"
        lines.append(f"{name.ljust(width)}  {shown}")
    return "\n".join(lines)
