"""Process-global performance counters and timers for the synthesis stack.

The synthesis fast path (Sec. VI-C/VI-D hot loop) is only worth optimizing
if the wins are observable, so every layer reports into this registry:

* :func:`incr` — monotone event counters (`synthesis.count`,
  `fastmdp.shape_memo.hit`, `vi.warm.solves`, ...);
* :func:`add_time` / :func:`timer` — accumulated wall time per phase
  (`synthesis.construct_seconds`, `synthesis.solve_seconds`, ...);
* :func:`snapshot` — a plain ``dict`` copy for benches and JSON reports;
* :func:`reset` — zero everything (benches call this between configs).

The registry is intentionally simple: a module-level dict guarded by a
lock.  Counter updates are a dict ``+=`` — cheap enough to leave enabled
everywhere, including the per-cycle scheduler loop.

Counter naming convention: ``<layer>.<event>`` with dotted sub-events;
time accumulators end in ``_seconds``.  The canonical counters are listed
in README.md ("Performance" section).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

_lock = threading.Lock()
_counters: dict[str, float] = {}


def incr(name: str, amount: int = 1) -> None:
    """Increment an event counter."""
    with _lock:
        _counters[name] = _counters.get(name, 0) + amount


def add_time(name: str, seconds: float) -> None:
    """Accumulate wall time under ``name`` (convention: ``*_seconds``)."""
    with _lock:
        _counters[name] = _counters.get(name, 0) + seconds


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate the wall time of the ``with`` body under ``name``."""
    t0 = perf_counter()
    try:
        yield
    finally:
        add_time(name, perf_counter() - t0)


def get(name: str, default: float = 0) -> float:
    """Current value of one counter (0 when never touched)."""
    with _lock:
        return _counters.get(name, default)


def snapshot() -> dict[str, float]:
    """A copy of every counter, for reports and JSON dumps."""
    with _lock:
        return dict(_counters)


def reset() -> None:
    """Zero the registry (benches call this between configurations)."""
    with _lock:
        _counters.clear()


def report() -> str:
    """Human-readable multi-line dump, sorted by counter name."""
    snap = snapshot()
    if not snap:
        return "(no perf counters recorded)"
    width = max(len(k) for k in snap)
    lines = []
    for name in sorted(snap):
        value = snap[name]
        shown = f"{value:.6f}".rstrip("0").rstrip(".") if isinstance(
            value, float
        ) and not float(value).is_integer() else f"{int(value)}"
        lines.append(f"{name.ljust(width)}  {shown}")
    return "\n".join(lines)
