"""Discrete rectangle algebra for droplets and zones.

The paper models a droplet as a tuple ``delta = (xa, ya, xb, yb)`` of the
lower-left and upper-right corners of the actuated rectangle (Sec. V-A), with
*inclusive* integer coordinates (the unit is the center distance between two
adjacent microelectrodes).  The same representation is used for goal regions
and hazard bounds, so the rectangle algebra lives in its own module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class Rect:
    """An axis-aligned rectangle with inclusive integer corners.

    ``Rect(xa, ya, xb, yb)`` covers every microelectrode ``(i, j)`` with
    ``xa <= i <= xb`` and ``ya <= j <= yb``.  Degenerate rectangles with
    ``xb < xa`` or ``yb < ya`` are rejected; the paper's off-chip sentinel
    ``(0, 0, 0, 0)`` is a valid 1x1 rectangle by this definition and is
    handled by the routing-job layer, not here.
    """

    xa: int
    ya: int
    xb: int
    yb: int

    def __post_init__(self) -> None:
        if self.xb < self.xa or self.yb < self.ya:
            raise ValueError(
                f"degenerate rectangle: ({self.xa}, {self.ya}, {self.xb}, {self.yb})"
            )

    # -- geometry ---------------------------------------------------------

    @property
    def width(self) -> int:
        """Droplet width ``w = xb - xa + 1``."""
        return self.xb - self.xa + 1

    @property
    def height(self) -> int:
        """Droplet height ``h = yb - ya + 1``."""
        return self.yb - self.ya + 1

    @property
    def area(self) -> int:
        """Number of covered microelectrodes ``A = w * h``."""
        return self.width * self.height

    @property
    def aspect_ratio(self) -> float:
        """Aspect ratio ``AR = w / h`` as defined in Sec. V-A."""
        return self.width / self.height

    @property
    def center(self) -> tuple[float, float]:
        """Geometric center ``((xa + xb) / 2, (ya + yb) / 2)``.

        For the paper's examples the center is reported in MC units, e.g. the
        4x4 droplet ``(16, 1, 19, 4)`` has center ``(17.5, 2.5)``.
        """
        return ((self.xa + self.xb) / 2, (self.ya + self.yb) / 2)

    # -- set-like operations ----------------------------------------------

    def cells(self) -> Iterator[tuple[int, int]]:
        """Iterate over every covered cell ``(i, j)`` in row-major order."""
        for i in range(self.xa, self.xb + 1):
            for j in range(self.ya, self.yb + 1):
                yield (i, j)

    def contains_cell(self, i: int, j: int) -> bool:
        """Whether the cell ``(i, j)`` is covered by this rectangle."""
        return self.xa <= i <= self.xb and self.ya <= j <= self.yb

    def contains(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this rectangle.

        This is the paper's *goal* predicate: a droplet satisfies *goal* when
        its rectangle is contained in the goal rectangle (Sec. VI-C uses
        inequalities rather than equality precisely to allow a larger goal
        region).
        """
        return (
            self.xa <= other.xa
            and self.ya <= other.ya
            and other.xb <= self.xb
            and other.yb <= self.yb
        )

    def overlaps(self, other: "Rect") -> bool:
        """Whether the two rectangles share at least one cell."""
        return (
            self.xa <= other.xb
            and other.xa <= self.xb
            and self.ya <= other.yb
            and other.ya <= self.yb
        )

    def adjacent_or_overlapping(self, other: "Rect") -> bool:
        """Whether the rectangles touch (Chebyshev gap <= 1) or overlap.

        Two droplets whose actuation patterns come within one MC of each
        other will merge under EWOD (each physical droplet bulges about one
        MC past its pattern); the simulator uses this predicate for merge
        detection.  Equivalent to ``self.expanded(1).overlaps(other.expanded(1))``.
        """
        return (
            self.xa - 2 <= other.xb
            and other.xa - 2 <= self.xb
            and self.ya - 2 <= other.yb
            and other.ya - 2 <= self.yb
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The common sub-rectangle, or ``None`` when disjoint."""
        if not self.overlaps(other):
            return None
        return Rect(
            max(self.xa, other.xa),
            max(self.ya, other.ya),
            min(self.xb, other.xb),
            min(self.yb, other.yb),
        )

    def union_bbox(self, other: "Rect") -> "Rect":
        """The bounding box of the two rectangles (used when droplets merge)."""
        return Rect(
            min(self.xa, other.xa),
            min(self.ya, other.ya),
            max(self.xb, other.xb),
            max(self.yb, other.yb),
        )

    # -- transforms --------------------------------------------------------

    def translated(self, dx: int, dy: int) -> "Rect":
        """The rectangle shifted by ``(dx, dy)``."""
        return Rect(self.xa + dx, self.ya + dy, self.xb + dx, self.yb + dy)

    def expanded(self, margin: int) -> "Rect":
        """The rectangle grown by ``margin`` cells on every side."""
        return Rect(
            self.xa - margin, self.ya - margin, self.xb + margin, self.yb + margin
        )

    def clamped(self, bounds: "Rect") -> "Rect":
        """This rectangle clipped to ``bounds`` (which must overlap it)."""
        clipped = self.intersection(bounds)
        if clipped is None:
            raise ValueError(f"{self} does not overlap clamp bounds {bounds}")
        return clipped

    # -- distances ----------------------------------------------------------

    def manhattan_gap(self, other: "Rect") -> int:
        """Number of empty cells separating the rectangles (Manhattan).

        Zero when the rectangles overlap or their cells are directly
        adjacent; ``adjacent_or_overlapping`` is ``manhattan_gap <= 1`` for
        axis-aligned separation (diagonal separation uses Chebyshev).
        """
        dx = max(self.xa - other.xb - 1, other.xa - self.xb - 1, 0)
        dy = max(self.ya - other.yb - 1, other.ya - self.yb - 1, 0)
        return dx + dy

    def center_manhattan(self, other: "Rect") -> float:
        """Manhattan distance between rectangle centers."""
        (cx0, cy0), (cx1, cy1) = self.center, other.center
        return abs(cx0 - cx1) + abs(cy0 - cy1)

    def as_tuple(self) -> tuple[int, int, int, int]:
        """The plain ``(xa, ya, xb, yb)`` tuple."""
        return (self.xa, self.ya, self.xb, self.yb)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.xa:02d}, {self.ya:02d}, {self.xb:02d}, {self.yb:02d})"


def manhattan(a: tuple[int, int], b: tuple[int, int]) -> int:
    """Manhattan distance between two cells."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def rect_from_center(
    cx: float, cy: float, width: int, height: int
) -> Rect:
    """Build a ``width x height`` rectangle approximately centered at (cx, cy).

    The center of the returned rectangle is within half an MC of the request
    in each axis; this mirrors how the RJ helper places droplet goal regions
    from an MO's center location (Example 5 / Table IV).
    """
    xa = round(cx - (width - 1) / 2)
    ya = round(cy - (height - 1) / 2)
    return Rect(xa, ya, xa + width - 1, ya + height - 1)
