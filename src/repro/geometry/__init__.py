"""Discrete geometry primitives shared across the library."""

from repro.geometry.rect import Rect, manhattan, rect_from_center

__all__ = ["Rect", "manhattan", "rect_from_center"]
